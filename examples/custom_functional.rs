//! Verify a *user-supplied* functional: write the DFA in the Python-subset
//! DSL (the form XCEncoder consumes after Maple translation), register it as
//! a first-class citizen of the functional registry, and run an exact-
//! condition campaign over it — no grid, no sampling, no enum variant added.
//!
//! ```sh
//! cargo run --release --example custom_functional
//! ```
//!
//! Two variants of a Wigner-like correlation functional are checked: a
//! correct one (ε_c = -a/(b + rs), negative everywhere) and a "buggy build"
//! with a wrong sign in the gradient correction, the kind of implementation
//! defect the paper's approach is designed to catch.

use std::sync::Arc;
use xcverifier::functionals::functional::info;
use xcverifier::prelude::*;

const GOOD: &str = "\
def wigner_c(rs, s):
    a = 0.44
    b = 7.8
    damp = 1 / (1 + 0.5 * s ** 2)
    return -a / (b + rs) * damp
";

// The damping term's sign is flipped: at large s the correlation energy
// becomes positive — a violation of E_c non-positivity.
const BUGGY: &str = "\
def wigner_c(rs, s):
    a = 0.44
    b = 7.8
    damp = 1 - 0.5 * s ** 2
    return -a / (b + rs) * damp
";

fn main() {
    // 1. Compile both builds from DSL source and register them. From here
    //    on they are indistinguishable from the built-in DFAs.
    let mut registry = Registry::empty();
    for (name, src) in [("wigner(correct)", GOOD), ("wigner(buggy)", BUGGY)] {
        let f = DslFunctional::new(
            info(name, Family::Gga, Design::Empirical, false, true),
            src,
            "wigner_c",
        )
        .expect("DSL compiles");
        registry.register(Arc::new(f)).expect("unique name");
    }

    // 2. Campaign: EC1 over both builds, counterexamples streamed as found.
    println!("Checking E_c non-positivity (EC1) for two DSL-defined functionals:\n");
    let report = Campaign::builder()
        .registry(&registry)
        .conditions([Condition::EcNonPositivity])
        .config(VerifierConfig {
            split_threshold: 0.3,
            solver: DeltaSolver::new(1e-4, SolveBudget::nodes(50_000)),
            parallel: true,
            parallel_depth: 3,
            max_depth: 5,
            pair_deadline_ms: Some(10_000),
        })
        .on_event(|e| {
            if let CampaignEvent::CounterexampleFound {
                functional,
                witness,
                ..
            } = e
            {
                println!(
                    "  {functional}: counterexample at rs={:.4}, s={:.4} \
                     (ε_c > 0 there — implementation violates EC1)",
                    witness[0], witness[1]
                );
            }
        })
        .build()
        .expect("non-empty campaign")
        .run();

    // 3. Verdicts.
    println!();
    for name in registry.names() {
        let mark = report
            .mark(&name, Condition::EcNonPositivity)
            .expect("cell exists");
        let verdict = match mark {
            TableMark::Verified => "VERIFIED — E_c <= 0 holds on the whole domain",
            TableMark::PartiallyVerified => "partially verified (rest undecided)",
            TableMark::Counterexample => "REFUTED — counterexamples above",
            _ => "undecided at this budget",
        };
        println!("{name:16} -> {mark:3}  {verdict}");
    }
}
