//! Verify a *user-supplied* functional: write the DFA in the Python-subset
//! DSL (the form XCEncoder consumes after Maple translation), compile it
//! symbolically, and check an exact condition with the δ-complete solver —
//! no grid, no sampling.
//!
//! ```sh
//! cargo run --release --example custom_functional
//! ```
//!
//! Two variants of a Wigner-like correlation functional are checked: a
//! correct one (ε_c = -a/(b + rs), negative everywhere) and a "buggy build"
//! with a wrong sign in the gradient correction, the kind of implementation
//! defect the paper's approach is designed to catch.

use xcverifier::prelude::*;
use xcverifier::expr::dsl;
use xcverifier::functionals::constants::A_X;

const GOOD: &str = "\
def wigner_c(rs, s):
    a = 0.44
    b = 7.8
    damp = 1 / (1 + 0.5 * s ** 2)
    return -a / (b + rs) * damp
";

// The damping term's sign is flipped: at large s the correlation energy
// becomes positive — a violation of E_c non-positivity.
const BUGGY: &str = "\
def wigner_c(rs, s):
    a = 0.44
    b = 7.8
    damp = 1 - 0.5 * s ** 2
    return -a / (b + rs) * damp
";

fn check(label: &str, source: &str) {
    // Compile the DSL to a symbolic expression over (rs, s).
    let mut vars = VarSet::from_names(["rs", "s"]);
    let eps_c = dsl::compile(source, "wigner_c", &mut vars).expect("DSL compiles");

    // EC1's local condition: F_c = ε_c/ε_x^unif = -ε_c rs / A_X >= 0.
    let rs = vars.var("rs").unwrap();
    let f_c = -(eps_c * rs) / A_X;
    let psi = Atom::new(f_c, Rel::Ge);
    let negation = Formula::single(psi.negate());

    // Refute ¬ψ over the PB domain with the δ-complete solver.
    let domain = BoxDomain::from_bounds(&[(1e-4, 5.0), (0.0, 5.0)]);
    let solver = DeltaSolver::new(1e-4, SolveBudget::nodes(200_000));
    match solver.solve(&domain, &negation) {
        Outcome::Unsat => {
            println!("{label}: VERIFIED — E_c <= 0 holds on the whole domain");
        }
        Outcome::DeltaSat(model) => {
            if !psi.holds_at(&model) {
                println!(
                    "{label}: COUNTEREXAMPLE at rs={:.4}, s={:.4} \
                     (ε_c > 0 there — implementation violates EC1)",
                    model[0], model[1]
                );
            } else {
                println!("{label}: inconclusive (δ-SAT model passed the exact re-check)");
            }
        }
        Outcome::Timeout => println!("{label}: solver budget exhausted"),
    }
}

fn main() {
    println!("Checking E_c non-positivity (EC1) for two DSL-defined functionals:\n");
    check("correct build", GOOD);
    check("buggy build  ", BUGGY);
}
