//! Reproduce one cell of the paper's Table II: run both the Pederson–Burke
//! grid search and the formal verifier on the same DFA-condition pair and
//! classify their agreement.
//!
//! ```sh
//! cargo run --release --example grid_vs_verifier
//! ```
//!
//! The pair chosen (PBE vs the conjectured `T_c` upper bound, EC7) is the one
//! the paper highlights in Figure 1c/1f: both methods find a violation region
//! covering the upper-left (small `rs`, large `s`) diagonal of the domain.

use xcverifier::prelude::*;

fn main() {
    let dfa = Dfa::Pbe;
    let cond = Condition::ConjTcUpperBound;

    // --- Pederson–Burke grid search (numerical derivatives) ---
    let grid_cfg = GridConfig {
        n_rs: 200,
        n_s: 200,
        n_alpha: 9,
        n_zeta: 2,
        tol: 1e-9,
    };
    let grid = pb_check(dfa, cond, &grid_cfg).expect("applicable");
    println!("=== PB grid search: {dfa} / {cond} ===");
    println!("{}", ascii_grid_map(&grid, 60, 20));
    match grid.violation_bbox() {
        Some(bb) => {
            // Per-axis bounds, labeled by the typed variable space.
            let box_str: Vec<String> = grid
                .space
                .axes()
                .iter()
                .zip(&bb)
                .map(|(ax, (lo, hi))| format!("{} ∈ [{lo:.2}, {hi:.2}]", ax.name))
                .collect();
            println!(
                "grid: {} of {} points violate; bounding box {}",
                grid.n_violations(),
                grid.pass.len(),
                box_str.join(", ")
            );
        }
        None => println!("grid: no violations found"),
    }

    // --- XCVerifier (formal, interval-based) ---
    let verifier = Verifier::new(VerifierConfig {
        split_threshold: 0.3,
        solver: DeltaSolver::new(1e-3, SolveBudget::millis(80)),
        parallel: true,
        parallel_depth: 3,
        max_depth: 5,
        pair_deadline_ms: None,
    });
    let problem = Encoder::encode(dfa, cond).unwrap();
    let map = verifier.verify(&problem);
    println!("\n=== XCVerifier: {dfa} / {cond} ===");
    println!("{}", ascii_region_map(&map, 60, 20));
    println!("verifier verdict: {}", map.table_mark());

    // --- Table II classification ---
    let agreement = classify(&map, &grid);
    println!("\nTable II cell: {agreement}  (C = consistent, C* = not inconsistent)");
    assert_eq!(
        agreement,
        Consistency::Consistent,
        "the paper reports consistent counterexample regions for this pair"
    );
}
