//! Audit an empirical functional: run every applicable exact condition
//! against LYP and map out exactly where its implementation violates each
//! one — the workload behind the paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example lyp_audit
//! ```

use xcverifier::prelude::*;

fn main() {
    let verifier = Verifier::new(VerifierConfig {
        split_threshold: 0.3,
        solver: DeltaSolver::new(1e-3, SolveBudget::millis(80)),
        parallel: true,
        parallel_depth: 3,
        max_depth: 5,
        pair_deadline_ms: None,
    });

    println!("=== LYP condition audit (domain: rs ∈ [1e-4, 5], s ∈ [0, 5]) ===\n");
    let mut violated = 0usize;
    let mut applicable = 0usize;
    for cond in Condition::all() {
        let Ok(problem) = Encoder::encode(Dfa::Lyp, cond) else {
            println!("{cond}: not applicable (LYP has no exchange part)\n");
            continue;
        };
        applicable += 1;
        let map = verifier.verify(&problem);
        println!("--- {cond}: {} ---", map.table_mark());
        println!("{}", ascii_region_map(&map, 56, 14));
        if map.table_mark() == TableMark::Counterexample {
            violated += 1;
            // Summarize the violating band the way the paper does
            // ("counterexamples at s > 1.6563").
            let ces = map.counterexamples();
            let s_min = ces.iter().map(|c| c[1]).fold(f64::INFINITY, f64::min);
            let rs_min = ces.iter().map(|c| c[0]).fold(f64::INFINITY, f64::min);
            let rs_max = ces.iter().map(|c| c[0]).fold(0.0_f64, f64::max);
            println!(
                "violations: s > {s_min:.2}, rs ∈ [{rs_min:.2}, {rs_max:.2}] \
                 ({} witness boxes)\n",
                ces.len()
            );
        } else {
            println!();
        }
    }
    println!(
        "LYP violates {violated} of {applicable} applicable conditions \
         (paper: all five)."
    );
}
