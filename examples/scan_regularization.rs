//! The paper's Section VI-A hypothesis, tested: SCAN's verification
//! intractability comes from the essential singularity in its α-switch, so a
//! regularized SCAN (the rSCAN family) should be decidable where SCAN is not.
//!
//! ```sh
//! cargo run --release --example scan_regularization
//! ```
//!
//! Runs the same condition at the same solver budget against SCAN and the
//! rSCAN-style regularized variant, and reports how much of the domain each
//! one decides.

use xcverifier::prelude::*;

fn main() {
    let cond = Condition::EcNonPositivity;
    let verifier = Verifier::new(VerifierConfig {
        split_threshold: 0.7,
        solver: DeltaSolver::new(1e-3, SolveBudget::millis(60)),
        parallel: true,
        parallel_depth: 3,
        max_depth: 3,
        pair_deadline_ms: Some(30_000),
    });

    println!("condition: {cond}");
    println!("budget   : 60 ms per box, 30 s per functional\n");
    let mut decided_fracs = Vec::new();
    for dfa in [Dfa::Scan, Dfa::RScan] {
        let problem = Encoder::encode(dfa, cond).expect("applies to meta-GGAs");
        let t0 = std::time::Instant::now();
        let map = verifier.verify(&problem);
        let decided = map.volume_fraction(|s| {
            matches!(s, RegionStatus::Verified | RegionStatus::Counterexample(_))
        });
        decided_fracs.push(decided);
        println!(
            "{dfa:11} -> {:4} | decided {:5.1}% of the (rs, s, α) volume in {:.1?}",
            map.table_mark().symbol(),
            100.0 * decided,
            t0.elapsed()
        );
    }
    println!(
        "\nregularization gain: {:+.1} percentage points of decided volume",
        100.0 * (decided_fracs[1] - decided_fracs[0])
    );
    println!(
        "(the paper's dReal decided 0% of SCAN and conjectured regularization\n\
         would help; for an ICP solver the exponential switch is already\n\
         interval-benign, while rSCAN's degree-7 polynomial in α' suffers the\n\
         dependency problem — see EXPERIMENTS.md)"
    );
}
