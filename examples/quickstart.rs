//! Quickstart: verify one exact condition for one functional.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Encodes the `E_c` non-positivity condition (EC1) for the PBE correlation
//! functional, runs the domain-splitting verifier over the Pederson–Burke
//! domain, and prints the resulting region map and verdict.

use xcverifier::prelude::*;

fn main() {
    // 1. Pick a functional and a condition, and encode the local condition
    //    ψ together with its negation ¬ψ (what the δ-complete solver will
    //    try to satisfy) over the PB domain rs ∈ [1e-4, 5], s ∈ [0, 5].
    let problem = Encoder::encode(Dfa::Pbe, Condition::EcNonPositivity)
        .expect("EC1 applies to every correlation functional");
    println!("functional : {}", problem.functional_name());
    println!("condition  : {}", problem.condition);
    println!(
        "psi        : {}",
        truncate(&format!("{}", problem.psi()), 100)
    );
    println!("domain     : {}", problem.domain);
    println!();

    // 2. Configure Algorithm 1: per-box solver budget, δ, recursion floor.
    let verifier = Verifier::new(VerifierConfig {
        split_threshold: 0.3,
        solver: DeltaSolver::new(1e-3, SolveBudget::millis(100)),
        parallel: true,
        parallel_depth: 3,
        max_depth: 5,
        pair_deadline_ms: None,
    });

    // 3. Verify; the result is a partition of the domain into verified /
    //    counterexample / inconclusive / timeout regions.
    let map = verifier.verify(&problem);
    println!("{}", ascii_region_map(&map, 64, 24));
    println!(
        "verdict: {}  (+ verified, x counterexample, ? inconclusive, T timeout)",
        map.table_mark()
    );
    println!(
        "verified volume: {:.1}%",
        100.0 * map.volume_fraction(|s| matches!(s, RegionStatus::Verified))
    );
    for ce in map.counterexamples().into_iter().take(3) {
        println!("counterexample at rs={:.4}, s={:.4}", ce[0], ce[1]);
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
