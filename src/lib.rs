//! # xcverifier
//!
//! A Rust reproduction of **XCVerifier** (*Towards Verifying Exact Conditions
//! for Implementations of Density Functional Approximations*, SC 2024): a
//! toolchain that formally verifies whether a density functional
//! approximation (DFA) implementation satisfies the DFT exact conditions, or
//! finds the input regions where it does not.
//!
//! The workspace builds every substrate the system needs, from scratch:
//!
//! * [`interval`] — outward-rounded interval arithmetic with certified
//!   transcendental enclosures (including Lambert W for AM05);
//! * [`expr`] — a hash-consed symbolic expression DAG with exact
//!   differentiation, evaluation back-ends, and a Python-subset DSL frontend
//!   with a symbolic executor (the XCEncoder pipeline);
//! * [`solver`] — a δ-complete decision procedure (HC4 interval constraint
//!   propagation + branch-and-prune), the dReal substitute;
//! * [`functionals`] — PBE, SCAN, LYP, AM05 and VWN RPA (unpolarized), each
//!   as a symbolic DAG and an independent closed-form scalar implementation;
//! * [`conditions`] — the seven Pederson–Burke exact conditions as local
//!   conditions over enhancement factors;
//! * [`core`] — the encoder and the recursive domain-splitting verifier
//!   (Algorithm 1);
//! * [`grid`] — the Pederson–Burke grid-search baseline;
//! * [`report`] — region-map rendering and the paper's Tables I/II.
//!
//! ## Quickstart
//!
//! ```
//! use xcverifier::prelude::*;
//!
//! // Does LYP's implementation satisfy E_c non-positivity? (It does not.)
//! let problem = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
//! let verifier = Verifier::new(VerifierConfig {
//!     split_threshold: 1.25,
//!     solver: DeltaSolver::new(1e-3, SolveBudget::nodes(20_000)),
//!     parallel: false,
//!     max_depth: 4,
//!     pair_deadline_ms: None,
//! });
//! let map = verifier.verify(&problem);
//! assert_eq!(map.table_mark(), TableMark::Counterexample);
//! let witness = map.counterexamples()[0];
//! assert!(witness[1] > 1.0, "LYP violates EC1 at large s");
//! ```

pub use xcv_conditions as conditions;
pub use xcv_core as core;
pub use xcv_expr as expr;
pub use xcv_functionals as functionals;
pub use xcv_grid as grid;
pub use xcv_interval as interval;
pub use xcv_report as report;
pub use xcv_solver as solver;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use xcv_conditions::{applicable_pairs, pb_domain, Condition, C_LO};
    pub use xcv_core::{
        EncodedProblem, Encoder, Region, RegionMap, RegionStatus, TableMark, Verifier,
        VerifierConfig,
    };
    pub use xcv_expr::{constant, var, Expr, VarSet};
    pub use xcv_functionals::{Design, Dfa, Family, ALPHA, RS, S};
    pub use xcv_grid::{pb_check, GridConfig, GridResult};
    pub use xcv_interval::{interval, point, Interval};
    pub use xcv_report::{ascii_grid_map, ascii_region_map, classify, Consistency};
    pub use xcv_solver::{
        Atom, BoxDomain, DeltaSolver, Formula, Outcome, Rel, SolveBudget,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let d = pb_domain(Dfa::Pbe);
        assert_eq!(d.ndim(), 2);
        assert_eq!(applicable_pairs().len(), 31);
        let _ = constant(1.0) + var(RS);
    }
}
