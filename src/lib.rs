//! # xcverifier
//!
//! A Rust reproduction of **XCVerifier** (*Towards Verifying Exact Conditions
//! for Implementations of Density Functional Approximations*, SC 2024): a
//! toolchain that formally verifies whether a density functional
//! approximation (DFA) implementation satisfies the DFT exact conditions, or
//! finds the input regions where it does not.
//!
//! The workspace builds every substrate the system needs, from scratch:
//!
//! * [`interval`] — outward-rounded interval arithmetic with certified
//!   transcendental enclosures (including Lambert W for AM05);
//! * [`expr`] — a hash-consed symbolic expression DAG with exact
//!   differentiation, evaluation back-ends, a Python-subset DSL frontend
//!   with a symbolic executor (the XCEncoder pipeline), and the typed
//!   [`prelude::VarSpace`] axis layer: every variable index carries a name,
//!   an [`prelude::AxisKind`] (`rs`, `s`, `α`, `ζ`, per-spin `s↑`/`s↓`) and
//!   its Pederson–Burke bounds, so "arity" is a description the whole
//!   pipeline can reason about instead of an integer;
//! * [`solver`] — a δ-complete decision procedure (HC4 interval constraint
//!   propagation + branch-and-prune), the dReal substitute, organized as
//!   compile-once solve sessions: each formula is lowered to flat interval
//!   and f64 tapes a single time, and the whole box tree is solved against
//!   that shared program with per-thread scratch buffers. Two
//!   observationally identical engines run the search — the scalar DFS and
//!   a **batched frontier** (`DeltaSolver::batch_width`) that evaluates up
//!   to B boxes per structure-of-arrays tape pass and re-evaluates
//!   children dirty-slot-only from their parent's forward image;
//! * [`functionals`] — the open functional registry: a [`prelude::Functional`]
//!   trait (symbolic DAGs + scalar closed forms + metadata + a
//!   `var_space()` describing its input axes), the paper's five DFAs as
//!   built-in implementations, and runtime registration of user-defined
//!   functionals (e.g. DSL-compiled, via [`prelude::DslFunctional`]);
//! * [`conditions`] — the seven Pederson–Burke exact conditions as local
//!   conditions over enhancement factors, dispatching through the trait;
//!   the search box is the functional's `var_space()` box
//!   ([`prelude::pb_domain`]);
//! * [`core`] — the encoder, the recursive domain-splitting verifier
//!   (Algorithm 1), and the [`prelude::Campaign`] engine that schedules
//!   whole verification matrices;
//! * [`grid`] — the Pederson–Burke grid-search baseline, meshing any
//!   variable space (ζ and per-spin axes included) with per-axis violation
//!   boxes;
//! * [`report`] — region-map rendering and the paper's Tables I/II, built
//!   directly from campaign reports;
//! * [`cert`] — replayable proof certificates: a campaign can record, per
//!   verdict, the box cover it explored and every contraction outcome, and
//!   the independent `xcvcheck` replayer audits that evidence with *only*
//!   the interval kernels — no solver, no search code (see the
//!   [certificates quickstart](#replayable-proof-certificates-emit--check)
//!   below);
//! * [`serve`] — the verification daemon (`xcvserve`): a long-running
//!   TCP service over a line-JSON protocol with a three-level cache —
//!   compiled problems, memoized results (disk-backed, cost-admitted),
//!   and in-flight request coalescing — so a repeated query answers in
//!   microseconds with bit-identical marks (see the
//!   [service quickstart](#verification-as-a-service-the-xcvserve-daemon)
//!   below).
//!
//! ## Quickstart: verify a whole matrix as one campaign
//!
//! The paper's headline result is the Table I matrix — every applicable
//! (functional, condition) pair verified in one run. That matrix is a
//! first-class value here:
//!
//! ```
//! use xcverifier::prelude::*;
//!
//! // Campaign over two of the paper's DFAs × one exact condition, with a
//! // small per-box budget. Pairs are scheduled across the thread pool and
//! // every outcome lands in one structured report.
//! let report = Campaign::builder()
//!     .functionals([Dfa::VwnRpa, Dfa::Lyp])
//!     .conditions([Condition::EcNonPositivity])
//!     .config(VerifierConfig {
//!         split_threshold: 1.25,
//!         solver: DeltaSolver::new(1e-3, SolveBudget::nodes(20_000)),
//!         parallel: false,
//!         parallel_depth: 3,
//!         max_depth: 4,
//!         pair_deadline_ms: None,
//!     })
//!     .build()
//!     .unwrap()
//!     .run();
//!
//! // VWN RPA satisfies E_c non-positivity; LYP's implementation does not.
//! assert_eq!(report.mark("VWN RPA", Condition::EcNonPositivity),
//!            Some(TableMark::Verified));
//! assert_eq!(report.mark("LYP", Condition::EcNonPositivity),
//!            Some(TableMark::Counterexample));
//! let (_, _, witness) = report.counterexamples().into_iter().next().unwrap();
//! assert!(witness[1] > 1.0, "LYP violates EC1 at large s");
//!
//! // Tables I/II render directly from the report.
//! let table = Table1::from_campaign(&report);
//! assert!(table.render_markdown().contains("| VWN RPA |"));
//! ```
//!
//! Behind both paths sits the compile-once session architecture:
//! [`prelude::Encoder`] lowers each `(functional, condition)` pair's formula
//! to flat tapes exactly once (carried on the
//! [`prelude::EncodedProblem`]), and the verifier recursion solves thousands
//! of sub-boxes against that shared program with reusable per-thread
//! scratch — `xcverifier::solver::compile_count()` exposes the invariant,
//! and the `solver_bench` binary tracks the resulting throughput in
//! `BENCH_solver.json`.
//!
//! ## Batched branch-and-prune
//!
//! The solve loop itself runs in one of two engines that visit the same
//! boxes in the same order and return bit-identical outcomes and
//! statistics:
//!
//! * the **scalar DFS** (`batch_width == 1`, the default) — one full tape
//!   pass per box;
//! * the **batched frontier** (`DeltaSolver::with_batch_width(B)`, or
//!   [`prelude::CampaignBuilder::batch_width`] for a whole campaign) —
//!   speculatively evaluates up to B pending boxes per
//!   structure-of-arrays tape pass (`IntervalTape::forward_batch`, backed
//!   by the `xcv_interval::lanes` slice kernels, with instruction-outer
//!   `backward_batch`/`forward_meet_batch` HC4 sweeps), and re-evaluates
//!   each child box *dirty-slot only*: per-slot variable dependency
//!   bitsets computed at compile time (`IntervalTape::deps`) mean that
//!   after bisecting axis `k`, only the slots downstream of the axes that
//!   actually changed are recomputed from the parent's forward image.
//!
//! Bisection itself is support-aware in both engines: a cell never splits
//! (nor δ-gates on) an axis its expression does not mention, so a ζ-free
//! atom on a 4-D spin domain no longer halves ζ at every level. The
//! `batched` entry of `BENCH_solver.json` (schema v5) tracks the batched
//! engine's wall-clock against the scalar session with identity of every
//! tally asserted at generation time, and `tests/solver_batched.rs` pins
//! lane-for-lane equivalence on random tapes plus the full extended and
//! spin matrices.
//!
//! Campaigns also start *measured* when a persisted scheduler model is
//! available: `repro` and `xcverify` load the `cost_model` entry of
//! `BENCH_solver.json` at startup ([`prelude::CostModel::load_bench_json`])
//! and fall back to the hand-weighted [`prelude::pair_cost`] otherwise.
//!
//! ## Typed variable spaces and the spin-general (ζ ≠ 0) workload
//!
//! Every built-in functional lives in its own module
//! (`functionals::{pbe, scan, rscan, lyp, b88, am05, vwn, pw92}`) and
//! exports a module-level `register` entry point; the built-in registries
//! ([`prelude::Registry::builtin`], `extended`, `with_builtins`) are
//! assembled purely from those calls — no enum `match` holds a functional
//! body.
//!
//! What a functional *is a function of* is described by its typed
//! [`prelude::VarSpace`] (`Functional::var_space()`): an ordered list of
//! axes, each with a name, an [`prelude::AxisKind`] and its PB bounds. The
//! default is the positional convention derived from the family
//! (`rs` | `rs, s` | `rs, s, α`), and every consumer follows the axes:
//! [`prelude::pb_domain`] is the space's box, the encoder attaches the
//! space to the compiled formula (axis-indexed mean-value gradients,
//! axis-labeled witnesses), and the grid baseline meshes whatever axes the
//! space declares.
//!
//! That typing is what makes the spin workload expressible. The
//! scalar-factor citizens ([`prelude::SpinResolved`]: `PBE(ζ)`, `PW92(ζ)`,
//! `LSDA-X(ζ)`) live in the canonical `rs, s, α, ζ` space; the **per-spin**
//! exchange citizens ([`prelude::SpinScaledX`]: `B88(ζ)`, `PBE-X(ζ)`, built
//! by exact spin scaling `E_x[n↑,n↓] = (E_x[2n↑]+E_x[2n↓])/2`) live in
//! `(rs, s↑, s↓, ζ)` — per-spin reduced gradients that no positional arity
//! convention could name. The encoder, the compiled-tape solver, the
//! campaign scheduler and the grid baseline run all of them unchanged, and
//! the cost-aware scheduler ([`prelude::pair_cost`], or better a
//! [`prelude::CostModel`] *fit from measured wall-clocks* via
//! [`prelude::CampaignBuilder::cost_model`]) starts the biggest cells first
//! so they never straggle at the tail of the pool.
//!
//! ```
//! use xcverifier::prelude::*;
//!
//! // A per-spin citizen describes its own axes...
//! let b88 = SpinScaledX::b88();
//! assert_eq!(b88.var_space().names(), vec!["rs", "s_up", "s_dn", "zeta"]);
//! assert_eq!(pb_domain(&b88).ndim(), 4);
//!
//! // ...and registers/verifies like any other functional.
//! let mut registry = Registry::empty();
//! xcverifier::functionals::vwn::register(&mut registry).unwrap();
//! xcverifier::functionals::spin::register_pw92(&mut registry).unwrap();
//! let report = Campaign::builder()
//!     .registry(&registry)
//!     .conditions([Condition::EcNonPositivity])
//!     .config(VerifierConfig {
//!         split_threshold: 2.0,
//!         solver: DeltaSolver::new(1e-3, SolveBudget::nodes(2_000)),
//!         parallel: false,
//!         parallel_depth: 0,
//!         max_depth: 1,
//!         pair_deadline_ms: None,
//!     })
//!     .build()
//!     .unwrap()
//!     .run();
//! // The unpolarized LDA cell verifies; the spin cell ran over the 4-D
//! // domain through exactly the same pipeline (and PW92's correlation is
//! // negative at every ζ, so no counterexample can ever be valid).
//! assert_eq!(report.mark("VWN RPA", Condition::EcNonPositivity),
//!            Some(TableMark::Verified));
//! assert_ne!(report.mark("PW92(ζ)", Condition::EcNonPositivity),
//!            Some(TableMark::Counterexample));
//! ```
//!
//! ## Replayable proof certificates: emit → check
//!
//! A campaign verdict is only as trustworthy as the search that produced
//! it. With [`prelude::CampaignBuilder::emit_certificates`] every pair
//! records its evidence — the box cover explored, each box's contraction
//! trace or δ-witness — as a [`prelude::Certificate`], and
//! [`cert::check`] (the library behind the `xcvcheck` binary) replays that
//! evidence against the interval kernels alone: every Unsat leaf must
//! really contract to empty, every witness must really violate the
//! condition, and the recorded cover must really tile the domain.
//!
//! ```
//! use xcverifier::prelude::*;
//!
//! let report = Campaign::builder()
//!     .functionals([Dfa::VwnRpa])
//!     .conditions([Condition::EcNonPositivity])
//!     .config(VerifierConfig {
//!         split_threshold: 1.25,
//!         solver: DeltaSolver::new(1e-3, SolveBudget::nodes(20_000)),
//!         parallel: false,
//!         parallel_depth: 3,
//!         max_depth: 4,
//!         pair_deadline_ms: None,
//!     })
//!     .emit_certificates(true)
//!     .build()
//!     .unwrap()
//!     .run();
//!
//! // The verified pair carries a replayable certificate...
//! let cert = report.pairs[0].certificate.as_ref().expect("replayable run");
//!
//! // ...that survives the `xcvcheck` wire format round trip and replays
//! // independently: no solver, no search — just the interval kernels.
//! let back = Certificate::parse(&cert.to_json()).unwrap();
//! let audit = xcverifier::cert::check(&back).unwrap();
//! assert!(audit.replayed_leaves > 0 && audit.witnesses == 0);
//!
//! // `CampaignReport::write_certificates(dir)` persists the same JSON for
//! // the `xcvcheck` binary; `CampaignBuilder::checkpoint(path)` reuses the
//! // serialization to make an interrupted matrix resumable, and
//! // `CampaignBuilder::shard(i, n)` splits one matrix across processes
//! // (merge with `CampaignReport::merge` or `xcverify --merge`).
//! ```
//!
//! ## Verification-as-a-service: the `xcvserve` daemon
//!
//! For repeated queries — CI gates, editor integrations, a fleet of
//! clients asking about the same functionals — spinning up a process and
//! recompiling every tape per query is the dominant cost. The [`serve`]
//! crate keeps one daemon warm instead: `xcvserve` listens on localhost
//! TCP, speaks a line-JSON protocol (requests in, campaign events
//! streamed back out), and answers through three cache levels — a
//! compiled-problem cache keyed by content hash (level 1), a memoized
//! result store keyed by problem × solver-config fingerprint with
//! cost-model-driven disk admission and warm restart (level 2), and
//! in-flight coalescing so N identical concurrent queries share one
//! solve (level 3). `xcverify --server ADDR` turns the CLI gate into a
//! thin client of a running daemon with identical output and exit codes;
//! the warm repeat of the full 45-pair extended matrix answers ~2 orders
//! of magnitude faster than the cold solve, with marks asserted
//! bit-identical (the `service` entry of `BENCH_solver.json` pins it).
//!
//! ```no_run
//! use xcverifier::serve::{Client, Event, Policy, Server, ServerConfig, VerifyRequest};
//!
//! // An in-process daemon on an ephemeral port (production runs the
//! // `xcvserve` binary; the wire protocol is the same either way).
//! let mut server = Server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let req = VerifyRequest {
//!     functionals: vec!["PBE".into(), "LYP".into()],
//!     conditions: Vec::new(), // all seven
//!     policy: Policy::Gate { budget_ms: 100, threshold: 1e-5 },
//! };
//! let done = client.verify(&req, |e| {
//!     if let Event::Pair { functional, condition, mark, cached, .. } = e {
//!         println!("{functional} / {condition:?}: {mark:?} (cached: {cached})");
//!     }
//! }).unwrap();
//! // A second identical request is served entirely from the result
//! // cache: zero solves, zero tape compilations, identical marks.
//! let warm = client.verify(&req, |_| {}).unwrap();
//! assert_eq!(warm.solved, 0);
//! assert_eq!(warm.cached, done.cached + done.solved);
//! server.shutdown();
//! ```
//!
//! Single pairs still work through [`prelude::Encoder`] /
//! [`prelude::Verifier`]; campaigns are the batch path. User-defined
//! functionals join either path by registering a handle:
//!
//! ```no_run
//! use xcverifier::prelude::*;
//! use std::sync::Arc;
//!
//! let src = "def wigner_c(rs, s):\n    return -0.44 / (7.8 + rs)\n";
//! let mine = DslFunctional::new(
//!     xcverifier::functionals::functional::info(
//!         "wigner", Family::Gga, Design::Empirical, false, true),
//!     src, "wigner_c",
//! ).unwrap();
//! let mut registry = Registry::builtin();
//! registry.register(Arc::new(mine)).unwrap();
//! let report = Campaign::builder()
//!     .registry(&registry)            // six columns now, no enum touched
//!     .build().unwrap().run();
//! # let _ = report;
//! ```

pub use xcv_cert as cert;
pub use xcv_conditions as conditions;
pub use xcv_core as core;
pub use xcv_expr as expr;
pub use xcv_functionals as functionals;
pub use xcv_grid as grid;
pub use xcv_interval as interval;
pub use xcv_report as report;
pub use xcv_serve as serve;
pub use xcv_solver as solver;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use xcv_cert::{CertEvent, CertRegion, CertVerdict, Certificate, CheckReport};
    pub use xcv_conditions::{applicable_pairs, applicable_pairs_in, pb_domain, Condition, C_LO};
    pub use xcv_core::{
        build_certificate, checkpoint_marks, pair_cost, pair_features, Campaign, CampaignBuilder,
        CampaignEvent, CampaignReport, CampaignSchedule, CancelToken, CostModel, EncodedProblem,
        Encoder, PairOutcome, Region, RegionMap, RegionStatus, RunOptions, RunOutput, SkipReason,
        TableMark, Verifier, VerifierConfig,
    };
    pub use xcv_expr::{constant, var, Axis, AxisKind, Expr, VarSet, VarSpace};
    pub use xcv_functionals::{
        Design, Dfa, DfaInfo, DslFunctional, Family, FnFunctional, Functional, FunctionalHandle,
        IntoFunctional, Registry, SpinResolved, SpinScaledX, XcvError, ALPHA, RS, S, S_DOWN, S_UP,
        ZETA,
    };
    pub use xcv_grid::{pb_check, GridConfig, GridResult};
    pub use xcv_interval::{interval, point, Interval};
    pub use xcv_report::{ascii_grid_map, ascii_region_map, classify, Consistency, Table1, Table2};
    pub use xcv_solver::{Atom, BoxDomain, DeltaSolver, Formula, Outcome, Rel, SolveBudget};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let d = pb_domain(&Dfa::Pbe);
        assert_eq!(d.ndim(), 2);
        assert_eq!(applicable_pairs().len(), 31);
        let _ = constant(1.0) + var(RS);
    }

    #[test]
    fn campaign_types_in_prelude() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(Campaign::builder().build().is_err());
    }
}
