//! Replayable proof certificates for XCVerifier verdicts.
//!
//! A Table I/II mark is only as trustworthy as the solver run that produced
//! it. This crate makes each verdict an *auditable artifact*: the solver
//! records, per verified pair, the box cover its branch-and-prune search
//! explored (every prune, every split, every δ-witness), and the campaign
//! serializes it — together with the compiled interval program
//! ([`xcv_expr::IntervalTape::to_portable`]) — into a [`Certificate`]. The
//! checker here then *replays* the certificate against the interval kernels
//! alone:
//!
//! * every `verified` region's trace is re-walked: each pruned leaf is
//!   re-contracted with this crate's own HC4 loop (forward / meet /
//!   backward over the deserialized tape) and must come back **empty**;
//!   each split must be sound (our contraction lands inside the recorded
//!   contracted box, which lies inside the box being split);
//! * every `counterexample` witness is re-evaluated in interval arithmetic
//!   at the witness point — the condition expression's enclosure must be
//!   disjoint from the relation's allowed set, so the violation is real,
//!   not a rounding artifact;
//! * the recorded region cover must tile the stated domain exactly (the
//!   verifier's recursive `split_all` tree, replayed by bisection).
//!
//! Trust base: `xcv-interval` (outward-rounded arithmetic) and the tape
//! re-evaluator in `xcv-expr`. **No dependency on `xcv-solver` or
//! `xcv-core`** — the checker shares no search code with the prover whose
//! output it audits. The `xcvcheck` binary wraps [`check`] for CI and
//! third parties.

//! Solver runs that use the escalation ladder record two further step
//! kinds, both replayed here: a `Shave` step (3B slab shaving) is
//! re-established *independently* — the checker forward-evaluates the main
//! tape over the recorded slab and requires some atom's enclosure to miss
//! its allowed set — while `Newton`/`NewtonPruned` steps are re-contracted
//! through the exact shared driver
//! ([`xcv_expr::newton::newton_contract`]) over the gradient tapes the
//! certificate carries in its `newton` section. Those gradient tapes extend
//! the trust base: the checker verifies the *contraction logic* from them,
//! but their claim — root 0 is atom `i`'s expression and root `j+1` its
//! partial along `axes[j]` — is the emitter's, bound at emission time (the
//! campaign derives them symbolically from the same expressions that
//! produced the main tape, then replays the certificate once before
//! attaching it).

pub mod json;
pub mod store;

use json::{escape, fmt_f64, Json};
use xcv_expr::newton::{newton_contract, NewtonAtom, NewtonScratch};
use xcv_expr::IntervalTape;
use xcv_interval::Interval;

/// Relation of an atom `expr REL 0` — mirrors the solver's `Rel`
/// (re-declared here so the checker stays independent of `xcv-solver`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    Le,
    Lt,
    Ge,
    Gt,
}

impl Rel {
    pub fn symbol(self) -> &'static str {
        match self {
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Ge => ">=",
            Rel::Gt => ">",
        }
    }

    pub fn parse(s: &str) -> Result<Rel, String> {
        match s {
            "<=" => Ok(Rel::Le),
            "<" => Ok(Rel::Lt),
            ">=" => Ok(Rel::Ge),
            ">" => Ok(Rel::Gt),
            other => Err(format!("unknown relation {other:?}")),
        }
    }

    /// The closed set of allowed values (the closure of the relation —
    /// identical to the solver's pruning set, so replayed contractions
    /// match bit for bit).
    pub fn allowed(self) -> Interval {
        match self {
            Rel::Le | Rel::Lt => Interval::new(f64::NEG_INFINITY, 0.0),
            Rel::Ge | Rel::Gt => Interval::new(0.0, f64::INFINITY),
        }
    }
}

/// One step of a recorded branch-and-prune search, in pop (DFS) order.
#[derive(Debug, Clone, PartialEq)]
pub enum CertEvent {
    /// The box on top of the replay stack contracts to empty.
    Pruned,
    /// The box stayed undecided: it contracted to `contracted` and was
    /// bisected along `axis`; `low_first` says which half was explored
    /// first (i.e. pushed last).
    Split {
        contracted: Vec<Interval>,
        axis: usize,
        low_first: bool,
    },
    /// Rung 1 of the escalation ladder tightened the current box to
    /// `contracted` (intermediate: the node's terminal step follows).
    /// Requires the certificate's `newton` section.
    Newton { contracted: Vec<Interval> },
    /// Rung 1 proved the current box has no solution (terminal, like
    /// `Pruned`). Requires the `newton` section.
    NewtonPruned,
    /// Rung 2 shaved a slab off one face of the current box: axis `axis`'s
    /// high bound (when `high_face`, else its low bound) moved to `bound`.
    /// Intermediate, possibly repeated; verified independently of the
    /// solver by a forward evaluation over the main tape.
    Shave {
        axis: usize,
        high_face: bool,
        bound: f64,
    },
}

/// One atom's gradient program in the certificate's `newton` section: a
/// portable tape whose root 0 is the atom's expression and root `j + 1`
/// its partial derivative along variable axis `axes[j]` (axes strictly
/// ascending — the sweep order is part of the replay contract).
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonAtomCert {
    pub tape: String,
    pub axes: Vec<u32>,
}

/// Gradient data for replaying `Newton`/`NewtonPruned` steps: the sweep
/// count the solver ran with and one entry per atom (`None` when the
/// atom's gradient overflowed the solver's lowering and rung 1 skipped it).
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonSection {
    pub sweeps: usize,
    pub atoms: Vec<Option<NewtonAtomCert>>,
}

/// The verdict a certificate claims for one region of the cover.
#[derive(Debug, Clone, PartialEq)]
pub enum CertVerdict {
    /// The negation of the condition is UNSAT on this region; `trace`
    /// replays the proof.
    Verified { trace: Vec<CertEvent> },
    /// The condition is violated at `witness` (a point inside the region).
    Counterexample { witness: Vec<f64> },
    /// No claim (solver undecided) — participates in the tiling only.
    Inconclusive,
    /// No claim (budget exhausted) — participates in the tiling only.
    Timeout,
}

impl CertVerdict {
    fn status_str(&self) -> &'static str {
        match self {
            CertVerdict::Verified { .. } => "verified",
            CertVerdict::Counterexample { .. } => "counterexample",
            CertVerdict::Inconclusive => "inconclusive",
            CertVerdict::Timeout => "timeout",
        }
    }
}

/// One region of the verifier's cover.
#[derive(Debug, Clone, PartialEq)]
pub struct CertRegion {
    pub bounds: Vec<Interval>,
    pub verdict: CertVerdict,
}

/// A replayable record of one (functional, condition) verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    pub functional: String,
    pub condition: String,
    /// The solver's δ (recorded for provenance; the replay itself is
    /// δ-free — prunes must be exactly empty and witnesses exactly
    /// violating in interval arithmetic).
    pub delta: f64,
    /// HC4 forward/backward rounds per contraction call during the
    /// original solve; the replay runs the same count.
    pub max_rounds: usize,
    /// The compiled interval program, serialized with
    /// [`IntervalTape::to_portable`]. Root `i` is atom `i`'s expression.
    pub tape: String,
    /// Relation of each atom of the *negation* formula the solver decided
    /// (atom `i` constrains tape root `i`).
    pub atom_rels: Vec<Rel>,
    /// The condition ψ itself, as a tape root index plus relation — what a
    /// witness must violate.
    pub psi_atom: usize,
    pub psi_rel: Rel,
    /// The domain the cover must tile.
    pub domain: Vec<Interval>,
    pub regions: Vec<CertRegion>,
    /// Present iff any verified trace contains `Newton`/`NewtonPruned`
    /// steps (escalation-ladder runs).
    pub newton: Option<NewtonSection>,
}

/// Current schema tag written by [`Certificate::to_json`].
pub const SCHEMA: &str = "xcv-cert/v2";
/// Previous schema (no `newton` section, no ladder step kinds) — still
/// accepted by [`Certificate::parse`].
pub const SCHEMA_V1: &str = "xcv-cert/v1";

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn write_box(out: &mut String, b: &[Interval]) {
    out.push('[');
    for (i, d) in b.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        out.push_str(&fmt_f64(d.lo));
        out.push_str(", ");
        out.push_str(&fmt_f64(d.hi));
        out.push(']');
    }
    out.push(']');
}

fn write_point(out: &mut String, p: &[f64]) {
    out.push('[');
    for (i, v) in p.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&fmt_f64(*v));
    }
    out.push(']');
}

impl Certificate {
    /// Serialize to the hand-rolled JSON this crate's [`Certificate::parse`]
    /// reads back exactly (shortest-round-trip `f64` rendering throughout).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"functional\": \"{}\",\n",
            escape(&self.functional)
        ));
        out.push_str(&format!(
            "  \"condition\": \"{}\",\n",
            escape(&self.condition)
        ));
        out.push_str(&format!("  \"delta\": {},\n", fmt_f64(self.delta)));
        out.push_str(&format!("  \"max_rounds\": {},\n", self.max_rounds));
        out.push_str(&format!("  \"tape\": \"{}\",\n", escape(&self.tape)));
        out.push_str("  \"atom_rels\": [");
        for (i, r) in self.atom_rels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", r.symbol()));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"psi\": {{\"atom\": {}, \"rel\": \"{}\"}},\n",
            self.psi_atom,
            self.psi_rel.symbol()
        ));
        if let Some(n) = &self.newton {
            out.push_str(&format!(
                "  \"newton\": {{\"sweeps\": {}, \"atoms\": [",
                n.sweeps
            ));
            for (i, a) in n.atoms.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match a {
                    None => out.push_str("null"),
                    Some(a) => {
                        out.push_str(&format!("{{\"tape\": \"{}\", \"axes\": [", escape(&a.tape)));
                        for (k, ax) in a.axes.iter().enumerate() {
                            if k > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(&ax.to_string());
                        }
                        out.push_str("]}");
                    }
                }
            }
            out.push_str("]},\n");
        }
        out.push_str("  \"domain\": ");
        write_box(&mut out, &self.domain);
        out.push_str(",\n  \"regions\": [\n");
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    {\"box\": ");
            write_box(&mut out, &r.bounds);
            out.push_str(&format!(", \"status\": \"{}\"", r.verdict.status_str()));
            match &r.verdict {
                CertVerdict::Verified { trace } => {
                    out.push_str(", \"trace\": [");
                    for (k, ev) in trace.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        match ev {
                            CertEvent::Pruned => out.push_str("[\"p\"]"),
                            CertEvent::Split {
                                contracted,
                                axis,
                                low_first,
                            } => {
                                out.push_str(&format!(
                                    "[\"s\", {axis}, {}, ",
                                    u8::from(*low_first)
                                ));
                                write_box(&mut out, contracted);
                                out.push(']');
                            }
                            CertEvent::Newton { contracted } => {
                                out.push_str("[\"n\", ");
                                write_box(&mut out, contracted);
                                out.push(']');
                            }
                            CertEvent::NewtonPruned => out.push_str("[\"np\"]"),
                            CertEvent::Shave {
                                axis,
                                high_face,
                                bound,
                            } => {
                                out.push_str(&format!(
                                    "[\"3\", {axis}, {}, {}]",
                                    u8::from(*high_face),
                                    fmt_f64(*bound)
                                ));
                            }
                        }
                    }
                    out.push(']');
                }
                CertVerdict::Counterexample { witness } => {
                    out.push_str(", \"witness\": ");
                    write_point(&mut out, witness);
                }
                CertVerdict::Inconclusive | CertVerdict::Timeout => {}
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a certificate serialized by [`Certificate::to_json`].
    pub fn parse(text: &str) -> Result<Certificate, String> {
        let doc = Json::parse(text)?;
        let schema = doc.want("schema")?.as_str()?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?} or {SCHEMA_V1:?})"
            ));
        }
        let atom_rels = doc
            .want("atom_rels")?
            .as_arr()?
            .iter()
            .map(|r| Rel::parse(r.as_str()?))
            .collect::<Result<Vec<_>, _>>()?;
        let psi = doc.want("psi")?;
        let mut regions = Vec::new();
        for (i, r) in doc.want("regions")?.as_arr()?.iter().enumerate() {
            let bounds = parse_box(r.want("box")?).map_err(|e| format!("region {i}: {e}"))?;
            let verdict = match r.want("status")?.as_str()? {
                "verified" => {
                    let mut trace = Vec::new();
                    for (k, ev) in r.want("trace")?.as_arr()?.iter().enumerate() {
                        let parts = ev.as_arr()?;
                        let tag = parts
                            .first()
                            .ok_or_else(|| format!("region {i}: empty trace event {k}"))?
                            .as_str()?;
                        match tag {
                            "p" => trace.push(CertEvent::Pruned),
                            "s" => {
                                if parts.len() != 4 {
                                    return Err(format!(
                                        "region {i}: split event {k} needs 4 elements"
                                    ));
                                }
                                trace.push(CertEvent::Split {
                                    axis: parts[1].as_usize()?,
                                    low_first: parts[2].as_f64()? != 0.0,
                                    contracted: parse_box(&parts[3])
                                        .map_err(|e| format!("region {i}, event {k}: {e}"))?,
                                });
                            }
                            "n" => {
                                if parts.len() != 2 {
                                    return Err(format!(
                                        "region {i}: newton event {k} needs 2 elements"
                                    ));
                                }
                                trace.push(CertEvent::Newton {
                                    contracted: parse_box(&parts[1])
                                        .map_err(|e| format!("region {i}, event {k}: {e}"))?,
                                });
                            }
                            "np" => trace.push(CertEvent::NewtonPruned),
                            "3" => {
                                if parts.len() != 4 {
                                    return Err(format!(
                                        "region {i}: shave event {k} needs 4 elements"
                                    ));
                                }
                                trace.push(CertEvent::Shave {
                                    axis: parts[1].as_usize()?,
                                    high_face: parts[2].as_f64()? != 0.0,
                                    bound: parts[3].as_f64()?,
                                });
                            }
                            other => {
                                return Err(format!(
                                    "region {i}: unknown trace event tag {other:?}"
                                ))
                            }
                        }
                    }
                    CertVerdict::Verified { trace }
                }
                "counterexample" => CertVerdict::Counterexample {
                    witness: r
                        .want("witness")?
                        .as_arr()?
                        .iter()
                        .map(Json::as_f64)
                        .collect::<Result<Vec<_>, _>>()?,
                },
                "inconclusive" => CertVerdict::Inconclusive,
                "timeout" => CertVerdict::Timeout,
                other => return Err(format!("region {i}: unknown status {other:?}")),
            };
            regions.push(CertRegion { bounds, verdict });
        }
        let newton = match doc.get("newton") {
            None => None,
            Some(n) => {
                let mut atoms = Vec::new();
                for (i, a) in n.want("atoms")?.as_arr()?.iter().enumerate() {
                    atoms.push(match a {
                        Json::Null => None,
                        _ => Some(NewtonAtomCert {
                            tape: a.want("tape")?.as_str()?.to_string(),
                            axes: a
                                .want("axes")?
                                .as_arr()?
                                .iter()
                                .map(|x| x.as_usize().map(|v| v as u32))
                                .collect::<Result<Vec<_>, _>>()
                                .map_err(|e| format!("newton atom {i}: {e}"))?,
                        }),
                    });
                }
                Some(NewtonSection {
                    sweeps: n.want("sweeps")?.as_usize()?,
                    atoms,
                })
            }
        };
        Ok(Certificate {
            functional: doc.want("functional")?.as_str()?.to_string(),
            condition: doc.want("condition")?.as_str()?.to_string(),
            delta: doc.want("delta")?.as_f64()?,
            max_rounds: doc.want("max_rounds")?.as_usize()?,
            tape: doc.want("tape")?.as_str()?.to_string(),
            atom_rels,
            psi_atom: psi.want("atom")?.as_usize()?,
            psi_rel: Rel::parse(psi.want("rel")?.as_str()?)?,
            domain: parse_box(doc.want("domain")?)?,
            regions,
            newton,
        })
    }
}

fn parse_box(v: &Json) -> Result<Vec<Interval>, String> {
    v.as_arr()?
        .iter()
        .map(|d| {
            let pair = d.as_arr()?;
            if pair.len() != 2 {
                return Err("interval needs exactly [lo, hi]".to_string());
            }
            let (lo, hi) = (pair[0].as_f64()?, pair[1].as_f64()?);
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(format!("bad interval [{lo}, {hi}]"));
            }
            Ok(Interval::new(lo, hi))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The replay checker
// ---------------------------------------------------------------------------

/// What a successful [`check`] established.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Regions in the cover.
    pub regions: usize,
    /// Pruned leaves re-contracted (or re-Newton'd) to empty across all
    /// verified regions.
    pub replayed_leaves: usize,
    /// Witnesses re-evaluated as genuine interval violations.
    pub witnesses: usize,
    /// `Newton`/`NewtonPruned` steps replayed through the shared driver.
    pub newton_steps: usize,
    /// `Shave` slabs independently re-proven infeasible.
    pub shaved_slabs: usize,
}

/// The checker's own HC4 contraction — a from-scratch replica of the
/// solver's round loop (forward; per round: meet parents, impose atom
/// relations at the roots, backward sweep, extract variable domains, stop
/// when the largest relative width gain drops below 5%), built only on the
/// deserialized tape's public passes. Returns `None` when the box is
/// proven empty.
fn contract(
    tape: &IntervalTape,
    atoms: &[(usize, Interval)],
    max_rounds: usize,
    b: &[Interval],
    vals: &mut Vec<Interval>,
) -> Option<Vec<Interval>> {
    vals.clear();
    vals.resize(tape.len(), Interval::ENTIRE);
    tape.forward(b, vals);
    let mut current = b.to_vec();
    for round in 0..max_rounds {
        if round > 0 {
            tape.forward_meet(vals);
        }
        for &(slot, allowed) in atoms {
            let met = vals[slot].intersect(&allowed);
            if met.is_empty() {
                return None;
            }
            vals[slot] = met;
        }
        if !tape.backward(vals) {
            return None;
        }
        let mut next = current.clone();
        for &(slot, v) in tape.var_slots() {
            if (v as usize) >= current.len() {
                continue;
            }
            let met = vals[slot as usize].intersect(&current[v as usize]);
            if met.is_empty() {
                return None;
            }
            next[v as usize] = met;
        }
        let gain = improvement(&current, &next);
        current = next;
        if gain < 0.05 {
            break;
        }
    }
    Some(current)
}

/// Largest relative per-axis width reduction (the solver's round-stop
/// metric, replicated).
fn improvement(before: &[Interval], after: &[Interval]) -> f64 {
    let mut best = 0.0_f64;
    for (b, a) in before.iter().zip(after) {
        let wb = b.width();
        let wa = a.width();
        if wb > 0.0 && wb.is_finite() {
            best = best.max((wb - wa) / wb);
        } else if wb.is_infinite() && wa.is_finite() {
            best = 1.0;
        }
    }
    best
}

fn subset(inner: &[Interval], outer: &[Interval]) -> bool {
    inner
        .iter()
        .zip(outer)
        .all(|(i, o)| i.is_empty() || (o.lo <= i.lo && i.hi <= o.hi))
}

fn contains_point(b: &[Interval], p: &[f64]) -> bool {
    b.len() == p.len() && b.iter().zip(p).all(|(d, &x)| d.lo <= x && x <= d.hi)
}

/// Validated gradient programs for replaying ladder steps, built once per
/// certificate from its `newton` section.
/// One replayable rung-1 atom: gradient tape, per-axis gradient slot map,
/// and the allowed range of the mean-value enclosure.
type ReplayAtom = (IntervalTape, Vec<(u32, u32)>, Interval);

struct NewtonReplay {
    sweeps: usize,
    /// Non-`None` atoms only, in atom order — the same filtering the
    /// solver's rung 1 applies, so the shared driver sees the identical
    /// atom sequence.
    atoms: Vec<ReplayAtom>,
}

impl NewtonReplay {
    /// Run the shared Newton driver over a copy of `dims`. `None` when the
    /// driver proves the box has no solution.
    fn apply(&self, dims: &[Interval], scratch: &mut NewtonScratch) -> Option<Vec<Interval>> {
        let atoms: Vec<NewtonAtom<'_>> = self
            .atoms
            .iter()
            .map(|(tape, grads, allowed)| NewtonAtom {
                tape,
                grads,
                allowed: *allowed,
            })
            .collect();
        let mut out = dims.to_vec();
        newton_contract(&atoms, &mut out, self.sweeps, scratch).then_some(out)
    }
}

/// Replay one verified region's trace: maintain the recorded DFS stack,
/// re-contract every pruned leaf to emptiness, and validate every split's
/// soundness.
///
/// Per node the replay tracks two boxes: `cur`, the *recorded* box (what
/// the solver claims the node narrowed to so far), and `own`, the
/// checker's independent enclosure of every solution inside the node
/// (`None` once proven empty — later claims on the node are vacuously
/// sound but must still be structurally consumed). Intermediate ladder
/// steps transform the pair in place; terminal steps pop the node.
/// Soundness invariant maintained throughout: every solution of the
/// popped box lies in `own`, so a recorded narrowing to `R` is accepted
/// exactly when the checker's own (sound) machinery lands inside `R`.
#[allow(clippy::too_many_arguments)]
fn replay_verified(
    tape: &IntervalTape,
    atoms: &[(usize, Interval)],
    max_rounds: usize,
    region: &[Interval],
    trace: &[CertEvent],
    vals: &mut Vec<Interval>,
    newton: Option<&NewtonReplay>,
    nscratch: &mut NewtonScratch,
    report: &mut CheckReport,
) -> Result<(), String> {
    let mut stack: Vec<Vec<Interval>> = vec![region.to_vec()];
    // The node the intermediate events operate on; `None` between a
    // terminal event and the next pop.
    let mut active: Option<(Vec<Interval>, Option<Vec<Interval>>)> = None;
    let need_newton = |k: usize| -> Result<&NewtonReplay, String> {
        newton.ok_or_else(|| format!("event {k}: ladder step but no newton section"))
    };
    for (k, ev) in trace.iter().enumerate() {
        if active.is_none() {
            let b = stack
                .pop()
                .ok_or_else(|| format!("event {k}: trace continues past an exhausted cover"))?;
            let own = contract(tape, atoms, max_rounds, &b, vals);
            active = Some((b, own));
        }
        let (cur, own) = active.as_mut().expect("activated above");
        let done = match ev {
            CertEvent::Pruned => {
                if own.is_some() {
                    return Err(format!(
                        "event {k}: recorded prune does not contract to empty"
                    ));
                }
                report.replayed_leaves += 1;
                true
            }
            CertEvent::NewtonPruned => {
                let nr = need_newton(k)?;
                if let Some(h) = own {
                    if nr.apply(h, nscratch).is_some() {
                        return Err(format!(
                            "event {k}: recorded newton prune is not reproduced by the driver"
                        ));
                    }
                }
                report.replayed_leaves += 1;
                report.newton_steps += 1;
                true
            }
            CertEvent::Newton { contracted: r } => {
                let nr = need_newton(k)?;
                if r.len() != cur.len() {
                    return Err(format!("event {k}: malformed newton step"));
                }
                if !subset(r, cur) {
                    return Err(format!(
                        "event {k}: recorded newton result escapes the current box"
                    ));
                }
                if let Some(h) = own.take() {
                    match nr.apply(&h, nscratch) {
                        // Driver proved the node empty — stronger than the
                        // recorded narrowing; `own` stays `None`.
                        None => {}
                        Some(n) => {
                            if !subset(&n, r) {
                                return Err(format!(
                                    "event {k}: recorded newton step drops part of the \
                                     feasible set"
                                ));
                            }
                            *own = Some(n);
                        }
                    }
                }
                *cur = r.clone();
                report.newton_steps += 1;
                false
            }
            CertEvent::Shave {
                axis,
                high_face,
                bound,
            } => {
                if *axis >= cur.len() || !bound.is_finite() {
                    return Err(format!("event {k}: malformed shave step"));
                }
                let d = cur[*axis];
                if !(d.lo < *bound && *bound < d.hi) {
                    return Err(format!("event {k}: shave bound outside the axis"));
                }
                // Independent re-proof: the shaved slab, evaluated through
                // the main tape, must violate some atom outright.
                let mut slab = cur.clone();
                slab[*axis] = if *high_face {
                    Interval::new(*bound, d.hi)
                } else {
                    Interval::new(d.lo, *bound)
                };
                vals.clear();
                vals.resize(tape.len(), Interval::ENTIRE);
                tape.forward(&slab, vals);
                let infeasible = atoms
                    .iter()
                    .any(|&(slot, allowed)| vals[slot].intersect(&allowed).is_empty());
                if !infeasible {
                    return Err(format!(
                        "event {k}: recorded shave slab is not provably infeasible"
                    ));
                }
                cur[*axis] = if *high_face {
                    Interval::new(d.lo, *bound)
                } else {
                    Interval::new(*bound, d.hi)
                };
                let emptied = own.as_mut().is_some_and(|h| {
                    let met = h[*axis].intersect(&cur[*axis]);
                    h[*axis] = met;
                    met.is_empty()
                });
                if emptied {
                    *own = None;
                }
                report.shaved_slabs += 1;
                false
            }
            CertEvent::Split {
                contracted,
                axis,
                low_first,
            } => {
                if contracted.len() != cur.len() || *axis >= cur.len() {
                    return Err(format!("event {k}: malformed split"));
                }
                if !subset(contracted, cur) {
                    return Err(format!(
                        "event {k}: recorded contraction escapes the box being split"
                    ));
                }
                // Soundness of discarding box \ contracted: the checker's
                // own enclosure (sound for every solution in the box) must
                // land inside the recorded contracted box. An empty own
                // enclosure means the box holds no solutions — the
                // recorded split explores vacuously true children, which
                // is sound (they must still replay).
                if let Some(h) = own {
                    if !subset(h, contracted) {
                        return Err(format!(
                            "event {k}: recorded contraction drops part of the feasible set"
                        ));
                    }
                }
                let (lo_half, hi_half) = contracted[*axis].bisect();
                let mut lo_box = contracted.clone();
                lo_box[*axis] = lo_half;
                let mut hi_box = contracted.clone();
                hi_box[*axis] = hi_half;
                // The half explored first was pushed last.
                if *low_first {
                    stack.push(hi_box);
                    stack.push(lo_box);
                } else {
                    stack.push(lo_box);
                    stack.push(hi_box);
                }
                true
            }
        };
        if done {
            active = None;
        }
    }
    if active.is_some() {
        return Err("trace ended mid-node (ladder step without a terminal)".to_string());
    }
    if !stack.is_empty() {
        return Err(format!(
            "trace ended with {} unexplored boxes on the stack",
            stack.len()
        ));
    }
    Ok(())
}

/// Check that the region boxes `idx` tile `b` exactly, replaying the
/// verifier's recursive `2^n`-way bisection (`split_all`): a box either
/// equals one region or splits into children that each tile recursively.
fn check_tiling(
    b: &[Interval],
    idx: &[usize],
    regions: &[CertRegion],
    depth: usize,
) -> Result<(), String> {
    if idx.len() == 1 && regions[idx[0]].bounds == b {
        return Ok(());
    }
    if idx.is_empty() {
        return Err("a subdomain is not covered by any region".to_string());
    }
    if depth > 64 {
        return Err("cover nesting exceeds any plausible verifier depth".to_string());
    }
    let n = b.len();
    if n > 16 {
        return Err(format!("{n}-dimensional domain out of range"));
    }
    let halves: Vec<(Interval, Interval)> = b.iter().map(Interval::bisect).collect();
    let child = |mask: usize| -> Vec<Interval> {
        (0..n)
            .map(|i| {
                if mask & (1 << i) == 0 {
                    halves[i].0
                } else {
                    halves[i].1
                }
            })
            .collect()
    };
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 1 << n];
    'regions: for &ri in idx {
        for (mask, bucket) in buckets.iter_mut().enumerate() {
            if subset(&regions[ri].bounds, &child(mask)) {
                bucket.push(ri);
                continue 'regions;
            }
        }
        return Err(format!(
            "region box {:?} straddles the bisection of {:?}",
            regions[ri].bounds, b
        ));
    }
    for (mask, bucket) in buckets.iter().enumerate() {
        check_tiling(&child(mask), bucket, regions, depth + 1)?;
    }
    Ok(())
}

/// Replay `cert` against the interval kernels alone. `Ok` means every
/// claim in the certificate was independently re-established:
///
/// 1. the cover tiles the stated domain;
/// 2. every `verified` region's trace replays — each pruned leaf really
///    contracts to empty, each split really keeps every solution;
/// 3. every `counterexample` witness lies in its region and genuinely
///    violates ψ in outward-rounded interval arithmetic.
pub fn check(cert: &Certificate) -> Result<CheckReport, String> {
    let tape = IntervalTape::from_portable(&cert.tape)?;
    if cert.atom_rels.is_empty() {
        return Err("certificate has no atoms".to_string());
    }
    if cert.atom_rels.len() > tape.num_roots() {
        return Err(format!(
            "{} atom relations but only {} tape roots",
            cert.atom_rels.len(),
            tape.num_roots()
        ));
    }
    if cert.psi_atom >= cert.atom_rels.len() {
        return Err(format!("psi atom {} out of range", cert.psi_atom));
    }
    if !(1..=16).contains(&cert.max_rounds) {
        return Err(format!("implausible max_rounds {}", cert.max_rounds));
    }
    let ndim = cert.domain.len();
    if ndim == 0 || cert.domain.iter().any(Interval::is_empty) {
        return Err("empty or zero-dimensional domain".to_string());
    }
    let atoms: Vec<(usize, Interval)> = cert
        .atom_rels
        .iter()
        .enumerate()
        .map(|(i, r)| (tape.root_slot(i) as usize, r.allowed()))
        .collect();
    let psi_slot = tape.root_slot(cert.psi_atom) as usize;
    let psi_allowed = cert.psi_rel.allowed();

    // Validate and compile the newton section (gradient programs for the
    // ladder's rung-1 steps) once, up front.
    let newton = match &cert.newton {
        None => None,
        Some(section) => {
            if !(1..=16).contains(&section.sweeps) {
                return Err(format!("implausible newton sweeps {}", section.sweeps));
            }
            if section.atoms.len() != cert.atom_rels.len() {
                return Err(format!(
                    "newton section has {} atoms but the formula has {}",
                    section.atoms.len(),
                    cert.atom_rels.len()
                ));
            }
            let mut compiled = Vec::new();
            for (i, spec) in section.atoms.iter().enumerate() {
                let Some(spec) = spec else { continue };
                let gtape = IntervalTape::from_portable(&spec.tape)
                    .map_err(|e| format!("newton atom {i}: {e}"))?;
                if gtape.num_roots() != 1 + spec.axes.len() {
                    return Err(format!(
                        "newton atom {i}: {} roots for {} gradient axes",
                        gtape.num_roots(),
                        spec.axes.len()
                    ));
                }
                if !spec.axes.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("newton atom {i}: gradient axes not ascending"));
                }
                let grads: Vec<(u32, u32)> = spec
                    .axes
                    .iter()
                    .enumerate()
                    .map(|(j, &axis)| (axis, (j + 1) as u32))
                    .collect();
                compiled.push((gtape, grads, cert.atom_rels[i].allowed()));
            }
            Some(NewtonReplay {
                sweeps: section.sweeps,
                atoms: compiled,
            })
        }
    };
    let mut nscratch = NewtonScratch::default();

    // 1. The cover tiles the domain.
    for (i, r) in cert.regions.iter().enumerate() {
        if r.bounds.len() != ndim {
            return Err(format!("region {i}: dimension mismatch"));
        }
        if r.bounds.iter().any(Interval::is_empty) {
            return Err(format!("region {i}: empty box in the cover"));
        }
    }
    let all: Vec<usize> = (0..cert.regions.len()).collect();
    check_tiling(&cert.domain, &all, &cert.regions, 0)?;

    // 2 & 3. Per-region claims.
    let mut report = CheckReport {
        regions: cert.regions.len(),
        ..CheckReport::default()
    };
    let mut vals = tape.scratch();
    for (i, r) in cert.regions.iter().enumerate() {
        match &r.verdict {
            CertVerdict::Verified { trace } => {
                replay_verified(
                    &tape,
                    &atoms,
                    cert.max_rounds,
                    &r.bounds,
                    trace,
                    &mut vals,
                    newton.as_ref(),
                    &mut nscratch,
                    &mut report,
                )
                .map_err(|e| format!("region {i}: {e}"))?;
            }
            CertVerdict::Counterexample { witness } => {
                if witness.len() != ndim || witness.iter().any(|v| v.is_nan()) {
                    return Err(format!("region {i}: malformed witness"));
                }
                if !contains_point(&r.bounds, witness) {
                    return Err(format!("region {i}: witness lies outside its region"));
                }
                let point: Vec<Interval> = witness.iter().map(|&v| Interval::point(v)).collect();
                vals.clear();
                vals.resize(tape.len(), Interval::ENTIRE);
                tape.forward(&point, &mut vals);
                let enclosure = vals[psi_slot];
                if !enclosure.intersect(&psi_allowed).is_empty() {
                    return Err(format!(
                        "region {i}: witness does not violate ψ (enclosure [{}, {}] meets {})",
                        enclosure.lo,
                        enclosure.hi,
                        cert.psi_rel.symbol()
                    ));
                }
                report.witnesses += 1;
            }
            CertVerdict::Inconclusive | CertVerdict::Timeout => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_expr::var;

    /// Hand-build the certificate machinery around `x^2 + 1 <= 0` over
    /// [-2, 2] (the canonical unsatisfiable negation): one pruned leaf
    /// after one split proves the whole domain.
    fn tape_for(e: &xcv_expr::Expr) -> String {
        IntervalTape::compile(std::slice::from_ref(e)).to_portable()
    }

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    fn unsat_cert() -> Certificate {
        // x^2 + 1 <= 0 prunes immediately on any box.
        Certificate {
            functional: "toy".into(),
            condition: "toy-cond".into(),
            delta: 1e-3,
            max_rounds: 3,
            tape: tape_for(&(var(0).powi(2) + 1.0)),
            atom_rels: vec![Rel::Le],
            psi_atom: 0,
            psi_rel: Rel::Gt,
            domain: vec![iv(-2.0, 2.0)],
            regions: vec![CertRegion {
                bounds: vec![iv(-2.0, 2.0)],
                verdict: CertVerdict::Verified {
                    trace: vec![CertEvent::Pruned],
                },
            }],
            newton: None,
        }
    }

    #[test]
    fn honest_unsat_certificate_checks() {
        let report = check(&unsat_cert()).expect("honest certificate");
        assert_eq!(report.regions, 1);
        assert_eq!(report.replayed_leaves, 1);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let cert = unsat_cert();
        let text = cert.to_json();
        let back = Certificate::parse(&text).expect("parses");
        assert_eq!(back, cert);
        check(&back).expect("round-tripped certificate still checks");
    }

    #[test]
    fn witness_claims_are_replayed() {
        // ψ: -x >= 0 (i.e. x <= 0); witness x = 1 genuinely violates.
        let mut cert = unsat_cert();
        cert.tape = tape_for(&(-var(0)));
        cert.atom_rels = vec![Rel::Lt];
        cert.psi_rel = Rel::Ge;
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Counterexample { witness: vec![1.0] },
        }];
        assert_eq!(check(&cert).unwrap().witnesses, 1);
        // A non-violating "witness" (x = -1 satisfies -x >= 0) is rejected.
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Counterexample {
                witness: vec![-1.0],
            },
        }];
        assert!(check(&cert).is_err());
        // A witness outside its region is rejected.
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Counterexample { witness: vec![3.0] },
        }];
        assert!(check(&cert).is_err());
    }

    #[test]
    fn cover_must_tile_the_domain() {
        // Two half-regions tile; a gap or an overlap must not.
        let half = |lo: f64, hi: f64| CertRegion {
            bounds: vec![iv(lo, hi)],
            verdict: CertVerdict::Inconclusive,
        };
        let mut cert = unsat_cert();
        cert.regions = vec![half(-2.0, 0.0), half(0.0, 2.0)];
        check(&cert).expect("exact halves tile");
        cert.regions = vec![half(-2.0, 0.0), half(1.0, 2.0)];
        assert!(check(&cert).is_err(), "gapped cover accepted");
        cert.regions = vec![half(-2.0, 0.0), half(-1.0, 2.0)];
        assert!(check(&cert).is_err(), "straddling cover accepted");
        cert.regions = vec![half(-2.0, 0.0)];
        assert!(check(&cert).is_err(), "missing half accepted");
    }

    #[test]
    fn fake_prunes_are_rejected() {
        // x - 10 <= 0 is satisfiable everywhere on [-2, 2]: claiming a
        // prune there must fail the replay.
        let mut cert = unsat_cert();
        cert.tape = tape_for(&(var(0) - 10.0));
        assert!(check(&cert).is_err());
    }

    #[test]
    fn split_replay_walks_both_halves() {
        // A two-level honest trace: split [-2, 2] at 0, prune both halves.
        let mut cert = unsat_cert();
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Verified {
                trace: vec![
                    CertEvent::Split {
                        contracted: vec![iv(-2.0, 2.0)],
                        axis: 0,
                        low_first: true,
                    },
                    CertEvent::Pruned,
                    CertEvent::Pruned,
                ],
            },
        }];
        assert_eq!(check(&cert).unwrap().replayed_leaves, 2);
        // Truncating the trace (an unexplored half) must fail.
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Verified {
                trace: vec![
                    CertEvent::Split {
                        contracted: vec![iv(-2.0, 2.0)],
                        axis: 0,
                        low_first: true,
                    },
                    CertEvent::Pruned,
                ],
            },
        }];
        assert!(check(&cert).is_err(), "half-explored cover accepted");
    }

    /// A newton section for a single-atom certificate: tape `[g, dg/dx…]`
    /// over the expression's free variables, built the way the solver's
    /// mean-value lowering builds it.
    fn newton_section_for(e: &xcv_expr::Expr, sweeps: usize) -> NewtonSection {
        let mut roots = vec![e.clone()];
        let mut axes = Vec::new();
        for v in e.free_vars() {
            axes.push(v);
            roots.push(e.diff(v));
        }
        NewtonSection {
            sweeps,
            atoms: vec![Some(NewtonAtomCert {
                tape: IntervalTape::compile(&roots).to_portable(),
                axes,
            })],
        }
    }

    /// x − x² − 0.26 ≥ 0 is infeasible (max 0.25), but HC4 cannot prune
    /// [0.45, 0.55] — the mean-value enclosure of the shared Newton driver
    /// can. The certificate records that as a `NewtonPruned` leaf.
    fn ladder_cert() -> Certificate {
        let e = var(0) - var(0).powi(2) - 0.26;
        let mut cert = unsat_cert();
        cert.tape = tape_for(&e);
        cert.atom_rels = vec![Rel::Ge];
        cert.psi_rel = Rel::Lt;
        cert.domain = vec![iv(0.45, 0.55)];
        cert.regions = vec![CertRegion {
            bounds: vec![iv(0.45, 0.55)],
            verdict: CertVerdict::Verified {
                trace: vec![CertEvent::NewtonPruned],
            },
        }];
        cert.newton = Some(newton_section_for(&e, 2));
        cert
    }

    #[test]
    fn newton_pruned_leaf_replays_through_the_driver() {
        let report = check(&ladder_cert()).expect("honest newton prune");
        assert_eq!(report.replayed_leaves, 1);
        assert_eq!(report.newton_steps, 1);
        // Plain `Pruned` on the same box must fail: HC4 alone cannot
        // contract it to empty — only the Newton driver proves it.
        let mut plain = ladder_cert();
        plain.regions[0].verdict = CertVerdict::Verified {
            trace: vec![CertEvent::Pruned],
        };
        assert!(
            check(&plain).is_err(),
            "HC4 prune accepted on a stalled box"
        );
    }

    #[test]
    fn ladder_steps_require_the_newton_section() {
        let mut cert = ladder_cert();
        cert.newton = None;
        assert!(check(&cert).is_err());
    }

    #[test]
    fn fake_newton_prunes_are_rejected() {
        // x − 0.2 ≥ 0 is satisfiable on [0.45, 0.55]; claiming a Newton
        // prune there must fail the driver replay.
        let e = var(0) - 0.2;
        let mut cert = ladder_cert();
        cert.tape = tape_for(&e);
        cert.newton = Some(newton_section_for(&e, 2));
        assert!(check(&cert).is_err());
    }

    #[test]
    fn newton_step_soundness_is_subset_checked() {
        // A no-op Newton step (recorded box = current box) is vacuously
        // sound; the driver then proves the node empty, so the plain
        // terminal Pruned is accepted.
        let mut cert = ladder_cert();
        cert.regions[0].verdict = CertVerdict::Verified {
            trace: vec![
                CertEvent::Newton {
                    contracted: vec![iv(0.45, 0.55)],
                },
                CertEvent::Pruned,
            ],
        };
        check(&cert).expect("no-op newton step then driver-proved prune");
        // A Newton step whose recorded box escapes the current box is
        // structurally unsound regardless of the driver.
        cert.regions[0].verdict = CertVerdict::Verified {
            trace: vec![
                CertEvent::Newton {
                    contracted: vec![iv(0.4, 0.6)],
                },
                CertEvent::Pruned,
            ],
        };
        assert!(check(&cert).is_err(), "escaping newton step accepted");
    }

    #[test]
    fn shave_slabs_are_independently_reproven() {
        // x + 10 ≤ 0 over [0, 1]: the [0.6, 1] slab is genuinely
        // infeasible (as is the whole box — the terminal prune replays).
        let mut cert = unsat_cert();
        cert.tape = tape_for(&(var(0) + 10.0));
        cert.domain = vec![iv(0.0, 1.0)];
        cert.regions = vec![CertRegion {
            bounds: vec![iv(0.0, 1.0)],
            verdict: CertVerdict::Verified {
                trace: vec![
                    CertEvent::Shave {
                        axis: 0,
                        high_face: true,
                        bound: 0.6,
                    },
                    CertEvent::Pruned,
                ],
            },
        }];
        let report = check(&cert).expect("honest shave");
        assert_eq!(report.shaved_slabs, 1);
        // x − 10 ≤ 0 holds everywhere: the same slab is feasible, so the
        // recorded shave must be rejected.
        let mut feasible = cert.clone();
        feasible.tape = tape_for(&(var(0) - 10.0));
        assert!(check(&feasible).is_err(), "feasible slab shaved");
        // A shave bound outside the current axis range is malformed.
        let mut outside = cert.clone();
        if let CertVerdict::Verified { trace } = &mut outside.regions[0].verdict {
            trace[0] = CertEvent::Shave {
                axis: 0,
                high_face: true,
                bound: 1.5,
            };
        }
        assert!(
            check(&outside).is_err(),
            "out-of-range shave bound accepted"
        );
    }

    #[test]
    fn ladder_certificates_round_trip_and_v1_still_parses() {
        let cert = ladder_cert();
        let text = cert.to_json();
        assert!(text.contains("xcv-cert/v2"));
        let back = Certificate::parse(&text).expect("v2 parses");
        assert_eq!(back, cert);
        check(&back).expect("round-tripped ladder certificate still checks");
        // A v1 document (no newton section, no ladder steps) stays valid.
        let v1 = unsat_cert().to_json().replace("xcv-cert/v2", "xcv-cert/v1");
        let old = Certificate::parse(&v1).expect("v1 parses");
        assert_eq!(old.newton, None);
        check(&old).expect("v1 certificate still checks");
    }

    #[test]
    fn overtight_recorded_contraction_is_rejected() {
        // x <= 0 over [-2, 2] contracts to [-2, 0]; recording a tighter
        // box (dropping feasible points) must fail the soundness check.
        let mut cert = unsat_cert();
        cert.tape = tape_for(&var(0));
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Verified {
                trace: vec![
                    CertEvent::Split {
                        contracted: vec![iv(-0.5, 0.0)],
                        axis: 0,
                        low_first: true,
                    },
                    CertEvent::Pruned,
                    CertEvent::Pruned,
                ],
            },
        }];
        assert!(check(&cert).is_err());
    }
}
