//! Replayable proof certificates for XCVerifier verdicts.
//!
//! A Table I/II mark is only as trustworthy as the solver run that produced
//! it. This crate makes each verdict an *auditable artifact*: the solver
//! records, per verified pair, the box cover its branch-and-prune search
//! explored (every prune, every split, every δ-witness), and the campaign
//! serializes it — together with the compiled interval program
//! ([`xcv_expr::IntervalTape::to_portable`]) — into a [`Certificate`]. The
//! checker here then *replays* the certificate against the interval kernels
//! alone:
//!
//! * every `verified` region's trace is re-walked: each pruned leaf is
//!   re-contracted with this crate's own HC4 loop (forward / meet /
//!   backward over the deserialized tape) and must come back **empty**;
//!   each split must be sound (our contraction lands inside the recorded
//!   contracted box, which lies inside the box being split);
//! * every `counterexample` witness is re-evaluated in interval arithmetic
//!   at the witness point — the condition expression's enclosure must be
//!   disjoint from the relation's allowed set, so the violation is real,
//!   not a rounding artifact;
//! * the recorded region cover must tile the stated domain exactly (the
//!   verifier's recursive `split_all` tree, replayed by bisection).
//!
//! Trust base: `xcv-interval` (outward-rounded arithmetic) and the tape
//! re-evaluator in `xcv-expr`. **No dependency on `xcv-solver` or
//! `xcv-core`** — the checker shares no search code with the prover whose
//! output it audits. The `xcvcheck` binary wraps [`check`] for CI and
//! third parties.

pub mod json;

use json::{escape, fmt_f64, Json};
use xcv_expr::IntervalTape;
use xcv_interval::Interval;

/// Relation of an atom `expr REL 0` — mirrors the solver's `Rel`
/// (re-declared here so the checker stays independent of `xcv-solver`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    Le,
    Lt,
    Ge,
    Gt,
}

impl Rel {
    pub fn symbol(self) -> &'static str {
        match self {
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Ge => ">=",
            Rel::Gt => ">",
        }
    }

    pub fn parse(s: &str) -> Result<Rel, String> {
        match s {
            "<=" => Ok(Rel::Le),
            "<" => Ok(Rel::Lt),
            ">=" => Ok(Rel::Ge),
            ">" => Ok(Rel::Gt),
            other => Err(format!("unknown relation {other:?}")),
        }
    }

    /// The closed set of allowed values (the closure of the relation —
    /// identical to the solver's pruning set, so replayed contractions
    /// match bit for bit).
    pub fn allowed(self) -> Interval {
        match self {
            Rel::Le | Rel::Lt => Interval::new(f64::NEG_INFINITY, 0.0),
            Rel::Ge | Rel::Gt => Interval::new(0.0, f64::INFINITY),
        }
    }
}

/// One step of a recorded branch-and-prune search, in pop (DFS) order.
#[derive(Debug, Clone, PartialEq)]
pub enum CertEvent {
    /// The box on top of the replay stack contracts to empty.
    Pruned,
    /// The box stayed undecided: it contracted to `contracted` and was
    /// bisected along `axis`; `low_first` says which half was explored
    /// first (i.e. pushed last).
    Split {
        contracted: Vec<Interval>,
        axis: usize,
        low_first: bool,
    },
}

/// The verdict a certificate claims for one region of the cover.
#[derive(Debug, Clone, PartialEq)]
pub enum CertVerdict {
    /// The negation of the condition is UNSAT on this region; `trace`
    /// replays the proof.
    Verified { trace: Vec<CertEvent> },
    /// The condition is violated at `witness` (a point inside the region).
    Counterexample { witness: Vec<f64> },
    /// No claim (solver undecided) — participates in the tiling only.
    Inconclusive,
    /// No claim (budget exhausted) — participates in the tiling only.
    Timeout,
}

impl CertVerdict {
    fn status_str(&self) -> &'static str {
        match self {
            CertVerdict::Verified { .. } => "verified",
            CertVerdict::Counterexample { .. } => "counterexample",
            CertVerdict::Inconclusive => "inconclusive",
            CertVerdict::Timeout => "timeout",
        }
    }
}

/// One region of the verifier's cover.
#[derive(Debug, Clone, PartialEq)]
pub struct CertRegion {
    pub bounds: Vec<Interval>,
    pub verdict: CertVerdict,
}

/// A replayable record of one (functional, condition) verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    pub functional: String,
    pub condition: String,
    /// The solver's δ (recorded for provenance; the replay itself is
    /// δ-free — prunes must be exactly empty and witnesses exactly
    /// violating in interval arithmetic).
    pub delta: f64,
    /// HC4 forward/backward rounds per contraction call during the
    /// original solve; the replay runs the same count.
    pub max_rounds: usize,
    /// The compiled interval program, serialized with
    /// [`IntervalTape::to_portable`]. Root `i` is atom `i`'s expression.
    pub tape: String,
    /// Relation of each atom of the *negation* formula the solver decided
    /// (atom `i` constrains tape root `i`).
    pub atom_rels: Vec<Rel>,
    /// The condition ψ itself, as a tape root index plus relation — what a
    /// witness must violate.
    pub psi_atom: usize,
    pub psi_rel: Rel,
    /// The domain the cover must tile.
    pub domain: Vec<Interval>,
    pub regions: Vec<CertRegion>,
}

pub const SCHEMA: &str = "xcv-cert/v1";

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn write_box(out: &mut String, b: &[Interval]) {
    out.push('[');
    for (i, d) in b.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        out.push_str(&fmt_f64(d.lo));
        out.push_str(", ");
        out.push_str(&fmt_f64(d.hi));
        out.push(']');
    }
    out.push(']');
}

fn write_point(out: &mut String, p: &[f64]) {
    out.push('[');
    for (i, v) in p.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&fmt_f64(*v));
    }
    out.push(']');
}

impl Certificate {
    /// Serialize to the hand-rolled JSON this crate's [`Certificate::parse`]
    /// reads back exactly (shortest-round-trip `f64` rendering throughout).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"functional\": \"{}\",\n",
            escape(&self.functional)
        ));
        out.push_str(&format!(
            "  \"condition\": \"{}\",\n",
            escape(&self.condition)
        ));
        out.push_str(&format!("  \"delta\": {},\n", fmt_f64(self.delta)));
        out.push_str(&format!("  \"max_rounds\": {},\n", self.max_rounds));
        out.push_str(&format!("  \"tape\": \"{}\",\n", escape(&self.tape)));
        out.push_str("  \"atom_rels\": [");
        for (i, r) in self.atom_rels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", r.symbol()));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"psi\": {{\"atom\": {}, \"rel\": \"{}\"}},\n",
            self.psi_atom,
            self.psi_rel.symbol()
        ));
        out.push_str("  \"domain\": ");
        write_box(&mut out, &self.domain);
        out.push_str(",\n  \"regions\": [\n");
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    {\"box\": ");
            write_box(&mut out, &r.bounds);
            out.push_str(&format!(", \"status\": \"{}\"", r.verdict.status_str()));
            match &r.verdict {
                CertVerdict::Verified { trace } => {
                    out.push_str(", \"trace\": [");
                    for (k, ev) in trace.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        match ev {
                            CertEvent::Pruned => out.push_str("[\"p\"]"),
                            CertEvent::Split {
                                contracted,
                                axis,
                                low_first,
                            } => {
                                out.push_str(&format!(
                                    "[\"s\", {axis}, {}, ",
                                    u8::from(*low_first)
                                ));
                                write_box(&mut out, contracted);
                                out.push(']');
                            }
                        }
                    }
                    out.push(']');
                }
                CertVerdict::Counterexample { witness } => {
                    out.push_str(", \"witness\": ");
                    write_point(&mut out, witness);
                }
                CertVerdict::Inconclusive | CertVerdict::Timeout => {}
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a certificate serialized by [`Certificate::to_json`].
    pub fn parse(text: &str) -> Result<Certificate, String> {
        let doc = Json::parse(text)?;
        if doc.want("schema")?.as_str()? != SCHEMA {
            return Err(format!(
                "unsupported schema {:?} (expected {SCHEMA:?})",
                doc.want("schema")?.as_str()?
            ));
        }
        let atom_rels = doc
            .want("atom_rels")?
            .as_arr()?
            .iter()
            .map(|r| Rel::parse(r.as_str()?))
            .collect::<Result<Vec<_>, _>>()?;
        let psi = doc.want("psi")?;
        let mut regions = Vec::new();
        for (i, r) in doc.want("regions")?.as_arr()?.iter().enumerate() {
            let bounds = parse_box(r.want("box")?).map_err(|e| format!("region {i}: {e}"))?;
            let verdict = match r.want("status")?.as_str()? {
                "verified" => {
                    let mut trace = Vec::new();
                    for (k, ev) in r.want("trace")?.as_arr()?.iter().enumerate() {
                        let parts = ev.as_arr()?;
                        let tag = parts
                            .first()
                            .ok_or_else(|| format!("region {i}: empty trace event {k}"))?
                            .as_str()?;
                        match tag {
                            "p" => trace.push(CertEvent::Pruned),
                            "s" => {
                                if parts.len() != 4 {
                                    return Err(format!(
                                        "region {i}: split event {k} needs 4 elements"
                                    ));
                                }
                                trace.push(CertEvent::Split {
                                    axis: parts[1].as_usize()?,
                                    low_first: parts[2].as_f64()? != 0.0,
                                    contracted: parse_box(&parts[3])
                                        .map_err(|e| format!("region {i}, event {k}: {e}"))?,
                                });
                            }
                            other => {
                                return Err(format!(
                                    "region {i}: unknown trace event tag {other:?}"
                                ))
                            }
                        }
                    }
                    CertVerdict::Verified { trace }
                }
                "counterexample" => CertVerdict::Counterexample {
                    witness: r
                        .want("witness")?
                        .as_arr()?
                        .iter()
                        .map(Json::as_f64)
                        .collect::<Result<Vec<_>, _>>()?,
                },
                "inconclusive" => CertVerdict::Inconclusive,
                "timeout" => CertVerdict::Timeout,
                other => return Err(format!("region {i}: unknown status {other:?}")),
            };
            regions.push(CertRegion { bounds, verdict });
        }
        Ok(Certificate {
            functional: doc.want("functional")?.as_str()?.to_string(),
            condition: doc.want("condition")?.as_str()?.to_string(),
            delta: doc.want("delta")?.as_f64()?,
            max_rounds: doc.want("max_rounds")?.as_usize()?,
            tape: doc.want("tape")?.as_str()?.to_string(),
            atom_rels,
            psi_atom: psi.want("atom")?.as_usize()?,
            psi_rel: Rel::parse(psi.want("rel")?.as_str()?)?,
            domain: parse_box(doc.want("domain")?)?,
            regions,
        })
    }
}

fn parse_box(v: &Json) -> Result<Vec<Interval>, String> {
    v.as_arr()?
        .iter()
        .map(|d| {
            let pair = d.as_arr()?;
            if pair.len() != 2 {
                return Err("interval needs exactly [lo, hi]".to_string());
            }
            let (lo, hi) = (pair[0].as_f64()?, pair[1].as_f64()?);
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(format!("bad interval [{lo}, {hi}]"));
            }
            Ok(Interval::new(lo, hi))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The replay checker
// ---------------------------------------------------------------------------

/// What a successful [`check`] established.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Regions in the cover.
    pub regions: usize,
    /// Pruned leaves re-contracted to empty across all verified regions.
    pub replayed_leaves: usize,
    /// Witnesses re-evaluated as genuine interval violations.
    pub witnesses: usize,
}

/// The checker's own HC4 contraction — a from-scratch replica of the
/// solver's round loop (forward; per round: meet parents, impose atom
/// relations at the roots, backward sweep, extract variable domains, stop
/// when the largest relative width gain drops below 5%), built only on the
/// deserialized tape's public passes. Returns `None` when the box is
/// proven empty.
fn contract(
    tape: &IntervalTape,
    atoms: &[(usize, Interval)],
    max_rounds: usize,
    b: &[Interval],
    vals: &mut Vec<Interval>,
) -> Option<Vec<Interval>> {
    vals.clear();
    vals.resize(tape.len(), Interval::ENTIRE);
    tape.forward(b, vals);
    let mut current = b.to_vec();
    for round in 0..max_rounds {
        if round > 0 {
            tape.forward_meet(vals);
        }
        for &(slot, allowed) in atoms {
            let met = vals[slot].intersect(&allowed);
            if met.is_empty() {
                return None;
            }
            vals[slot] = met;
        }
        if !tape.backward(vals) {
            return None;
        }
        let mut next = current.clone();
        for &(slot, v) in tape.var_slots() {
            if (v as usize) >= current.len() {
                continue;
            }
            let met = vals[slot as usize].intersect(&current[v as usize]);
            if met.is_empty() {
                return None;
            }
            next[v as usize] = met;
        }
        let gain = improvement(&current, &next);
        current = next;
        if gain < 0.05 {
            break;
        }
    }
    Some(current)
}

/// Largest relative per-axis width reduction (the solver's round-stop
/// metric, replicated).
fn improvement(before: &[Interval], after: &[Interval]) -> f64 {
    let mut best = 0.0_f64;
    for (b, a) in before.iter().zip(after) {
        let wb = b.width();
        let wa = a.width();
        if wb > 0.0 && wb.is_finite() {
            best = best.max((wb - wa) / wb);
        } else if wb.is_infinite() && wa.is_finite() {
            best = 1.0;
        }
    }
    best
}

fn subset(inner: &[Interval], outer: &[Interval]) -> bool {
    inner
        .iter()
        .zip(outer)
        .all(|(i, o)| i.is_empty() || (o.lo <= i.lo && i.hi <= o.hi))
}

fn contains_point(b: &[Interval], p: &[f64]) -> bool {
    b.len() == p.len() && b.iter().zip(p).all(|(d, &x)| d.lo <= x && x <= d.hi)
}

/// Replay one verified region's trace: maintain the recorded DFS stack,
/// re-contract every pruned leaf to emptiness, and validate every split's
/// soundness. Returns the number of replayed (pruned) leaves.
fn replay_verified(
    tape: &IntervalTape,
    atoms: &[(usize, Interval)],
    max_rounds: usize,
    region: &[Interval],
    trace: &[CertEvent],
    vals: &mut Vec<Interval>,
) -> Result<usize, String> {
    let mut stack: Vec<Vec<Interval>> = vec![region.to_vec()];
    let mut leaves = 0usize;
    for (k, ev) in trace.iter().enumerate() {
        let b = stack
            .pop()
            .ok_or_else(|| format!("event {k}: trace continues past an exhausted cover"))?;
        match ev {
            CertEvent::Pruned => {
                if contract(tape, atoms, max_rounds, &b, vals).is_some() {
                    return Err(format!(
                        "event {k}: recorded prune does not contract to empty"
                    ));
                }
                leaves += 1;
            }
            CertEvent::Split {
                contracted,
                axis,
                low_first,
            } => {
                if contracted.len() != b.len() || *axis >= b.len() {
                    return Err(format!("event {k}: malformed split"));
                }
                if !subset(contracted, &b) {
                    return Err(format!(
                        "event {k}: recorded contraction escapes the box being split"
                    ));
                }
                // Soundness of discarding box \ contracted: our own
                // contraction (a sound enclosure of every solution in the
                // box) must land inside the recorded contracted box. An
                // empty own contraction means the box holds no solutions —
                // the recorded split explores vacuously true children,
                // which is sound (they must still replay).
                if let Some(own) = contract(tape, atoms, max_rounds, &b, vals) {
                    if !subset(&own, contracted) {
                        return Err(format!(
                            "event {k}: recorded contraction drops part of the feasible set"
                        ));
                    }
                }
                let (lo_half, hi_half) = contracted[*axis].bisect();
                let mut lo_box = contracted.clone();
                lo_box[*axis] = lo_half;
                let mut hi_box = contracted.clone();
                hi_box[*axis] = hi_half;
                // The half explored first was pushed last.
                if *low_first {
                    stack.push(hi_box);
                    stack.push(lo_box);
                } else {
                    stack.push(lo_box);
                    stack.push(hi_box);
                }
            }
        }
    }
    if !stack.is_empty() {
        return Err(format!(
            "trace ended with {} unexplored boxes on the stack",
            stack.len()
        ));
    }
    Ok(leaves)
}

/// Check that the region boxes `idx` tile `b` exactly, replaying the
/// verifier's recursive `2^n`-way bisection (`split_all`): a box either
/// equals one region or splits into children that each tile recursively.
fn check_tiling(
    b: &[Interval],
    idx: &[usize],
    regions: &[CertRegion],
    depth: usize,
) -> Result<(), String> {
    if idx.len() == 1 && regions[idx[0]].bounds == b {
        return Ok(());
    }
    if idx.is_empty() {
        return Err("a subdomain is not covered by any region".to_string());
    }
    if depth > 64 {
        return Err("cover nesting exceeds any plausible verifier depth".to_string());
    }
    let n = b.len();
    if n > 16 {
        return Err(format!("{n}-dimensional domain out of range"));
    }
    let halves: Vec<(Interval, Interval)> = b.iter().map(Interval::bisect).collect();
    let child = |mask: usize| -> Vec<Interval> {
        (0..n)
            .map(|i| {
                if mask & (1 << i) == 0 {
                    halves[i].0
                } else {
                    halves[i].1
                }
            })
            .collect()
    };
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); 1 << n];
    'regions: for &ri in idx {
        for (mask, bucket) in buckets.iter_mut().enumerate() {
            if subset(&regions[ri].bounds, &child(mask)) {
                bucket.push(ri);
                continue 'regions;
            }
        }
        return Err(format!(
            "region box {:?} straddles the bisection of {:?}",
            regions[ri].bounds, b
        ));
    }
    for (mask, bucket) in buckets.iter().enumerate() {
        check_tiling(&child(mask), bucket, regions, depth + 1)?;
    }
    Ok(())
}

/// Replay `cert` against the interval kernels alone. `Ok` means every
/// claim in the certificate was independently re-established:
///
/// 1. the cover tiles the stated domain;
/// 2. every `verified` region's trace replays — each pruned leaf really
///    contracts to empty, each split really keeps every solution;
/// 3. every `counterexample` witness lies in its region and genuinely
///    violates ψ in outward-rounded interval arithmetic.
pub fn check(cert: &Certificate) -> Result<CheckReport, String> {
    let tape = IntervalTape::from_portable(&cert.tape)?;
    if cert.atom_rels.is_empty() {
        return Err("certificate has no atoms".to_string());
    }
    if cert.atom_rels.len() > tape.num_roots() {
        return Err(format!(
            "{} atom relations but only {} tape roots",
            cert.atom_rels.len(),
            tape.num_roots()
        ));
    }
    if cert.psi_atom >= cert.atom_rels.len() {
        return Err(format!("psi atom {} out of range", cert.psi_atom));
    }
    if !(1..=16).contains(&cert.max_rounds) {
        return Err(format!("implausible max_rounds {}", cert.max_rounds));
    }
    let ndim = cert.domain.len();
    if ndim == 0 || cert.domain.iter().any(Interval::is_empty) {
        return Err("empty or zero-dimensional domain".to_string());
    }
    let atoms: Vec<(usize, Interval)> = cert
        .atom_rels
        .iter()
        .enumerate()
        .map(|(i, r)| (tape.root_slot(i) as usize, r.allowed()))
        .collect();
    let psi_slot = tape.root_slot(cert.psi_atom) as usize;
    let psi_allowed = cert.psi_rel.allowed();

    // 1. The cover tiles the domain.
    for (i, r) in cert.regions.iter().enumerate() {
        if r.bounds.len() != ndim {
            return Err(format!("region {i}: dimension mismatch"));
        }
        if r.bounds.iter().any(Interval::is_empty) {
            return Err(format!("region {i}: empty box in the cover"));
        }
    }
    let all: Vec<usize> = (0..cert.regions.len()).collect();
    check_tiling(&cert.domain, &all, &cert.regions, 0)?;

    // 2 & 3. Per-region claims.
    let mut report = CheckReport {
        regions: cert.regions.len(),
        ..CheckReport::default()
    };
    let mut vals = tape.scratch();
    for (i, r) in cert.regions.iter().enumerate() {
        match &r.verdict {
            CertVerdict::Verified { trace } => {
                report.replayed_leaves +=
                    replay_verified(&tape, &atoms, cert.max_rounds, &r.bounds, trace, &mut vals)
                        .map_err(|e| format!("region {i}: {e}"))?;
            }
            CertVerdict::Counterexample { witness } => {
                if witness.len() != ndim || witness.iter().any(|v| v.is_nan()) {
                    return Err(format!("region {i}: malformed witness"));
                }
                if !contains_point(&r.bounds, witness) {
                    return Err(format!("region {i}: witness lies outside its region"));
                }
                let point: Vec<Interval> = witness.iter().map(|&v| Interval::point(v)).collect();
                vals.clear();
                vals.resize(tape.len(), Interval::ENTIRE);
                tape.forward(&point, &mut vals);
                let enclosure = vals[psi_slot];
                if !enclosure.intersect(&psi_allowed).is_empty() {
                    return Err(format!(
                        "region {i}: witness does not violate ψ (enclosure [{}, {}] meets {})",
                        enclosure.lo,
                        enclosure.hi,
                        cert.psi_rel.symbol()
                    ));
                }
                report.witnesses += 1;
            }
            CertVerdict::Inconclusive | CertVerdict::Timeout => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_expr::var;

    /// Hand-build the certificate machinery around `x^2 + 1 <= 0` over
    /// [-2, 2] (the canonical unsatisfiable negation): one pruned leaf
    /// after one split proves the whole domain.
    fn tape_for(e: &xcv_expr::Expr) -> String {
        IntervalTape::compile(std::slice::from_ref(e)).to_portable()
    }

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    fn unsat_cert() -> Certificate {
        // x^2 + 1 <= 0 prunes immediately on any box.
        Certificate {
            functional: "toy".into(),
            condition: "toy-cond".into(),
            delta: 1e-3,
            max_rounds: 3,
            tape: tape_for(&(var(0).powi(2) + 1.0)),
            atom_rels: vec![Rel::Le],
            psi_atom: 0,
            psi_rel: Rel::Gt,
            domain: vec![iv(-2.0, 2.0)],
            regions: vec![CertRegion {
                bounds: vec![iv(-2.0, 2.0)],
                verdict: CertVerdict::Verified {
                    trace: vec![CertEvent::Pruned],
                },
            }],
        }
    }

    #[test]
    fn honest_unsat_certificate_checks() {
        let report = check(&unsat_cert()).expect("honest certificate");
        assert_eq!(report.regions, 1);
        assert_eq!(report.replayed_leaves, 1);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let cert = unsat_cert();
        let text = cert.to_json();
        let back = Certificate::parse(&text).expect("parses");
        assert_eq!(back, cert);
        check(&back).expect("round-tripped certificate still checks");
    }

    #[test]
    fn witness_claims_are_replayed() {
        // ψ: -x >= 0 (i.e. x <= 0); witness x = 1 genuinely violates.
        let mut cert = unsat_cert();
        cert.tape = tape_for(&(-var(0)));
        cert.atom_rels = vec![Rel::Lt];
        cert.psi_rel = Rel::Ge;
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Counterexample { witness: vec![1.0] },
        }];
        assert_eq!(check(&cert).unwrap().witnesses, 1);
        // A non-violating "witness" (x = -1 satisfies -x >= 0) is rejected.
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Counterexample {
                witness: vec![-1.0],
            },
        }];
        assert!(check(&cert).is_err());
        // A witness outside its region is rejected.
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Counterexample { witness: vec![3.0] },
        }];
        assert!(check(&cert).is_err());
    }

    #[test]
    fn cover_must_tile_the_domain() {
        // Two half-regions tile; a gap or an overlap must not.
        let half = |lo: f64, hi: f64| CertRegion {
            bounds: vec![iv(lo, hi)],
            verdict: CertVerdict::Inconclusive,
        };
        let mut cert = unsat_cert();
        cert.regions = vec![half(-2.0, 0.0), half(0.0, 2.0)];
        check(&cert).expect("exact halves tile");
        cert.regions = vec![half(-2.0, 0.0), half(1.0, 2.0)];
        assert!(check(&cert).is_err(), "gapped cover accepted");
        cert.regions = vec![half(-2.0, 0.0), half(-1.0, 2.0)];
        assert!(check(&cert).is_err(), "straddling cover accepted");
        cert.regions = vec![half(-2.0, 0.0)];
        assert!(check(&cert).is_err(), "missing half accepted");
    }

    #[test]
    fn fake_prunes_are_rejected() {
        // x - 10 <= 0 is satisfiable everywhere on [-2, 2]: claiming a
        // prune there must fail the replay.
        let mut cert = unsat_cert();
        cert.tape = tape_for(&(var(0) - 10.0));
        assert!(check(&cert).is_err());
    }

    #[test]
    fn split_replay_walks_both_halves() {
        // A two-level honest trace: split [-2, 2] at 0, prune both halves.
        let mut cert = unsat_cert();
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Verified {
                trace: vec![
                    CertEvent::Split {
                        contracted: vec![iv(-2.0, 2.0)],
                        axis: 0,
                        low_first: true,
                    },
                    CertEvent::Pruned,
                    CertEvent::Pruned,
                ],
            },
        }];
        assert_eq!(check(&cert).unwrap().replayed_leaves, 2);
        // Truncating the trace (an unexplored half) must fail.
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Verified {
                trace: vec![
                    CertEvent::Split {
                        contracted: vec![iv(-2.0, 2.0)],
                        axis: 0,
                        low_first: true,
                    },
                    CertEvent::Pruned,
                ],
            },
        }];
        assert!(check(&cert).is_err(), "half-explored cover accepted");
    }

    #[test]
    fn overtight_recorded_contraction_is_rejected() {
        // x <= 0 over [-2, 2] contracts to [-2, 0]; recording a tighter
        // box (dropping feasible points) must fail the soundness check.
        let mut cert = unsat_cert();
        cert.tape = tape_for(&var(0));
        cert.regions = vec![CertRegion {
            bounds: vec![iv(-2.0, 2.0)],
            verdict: CertVerdict::Verified {
                trace: vec![
                    CertEvent::Split {
                        contracted: vec![iv(-0.5, 0.0)],
                        axis: 0,
                        low_first: true,
                    },
                    CertEvent::Pruned,
                    CertEvent::Pruned,
                ],
            },
        }];
        assert!(check(&cert).is_err());
    }
}
