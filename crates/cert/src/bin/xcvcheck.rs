//! `xcvcheck` — replay XCVerifier proof certificates independently of the
//! solver that produced them.
//!
//! ```text
//! xcvcheck CERT.json [CERT2.json ...]   # or a directory of *.json certs
//!     -q / --quiet                      # only print failures
//! ```
//!
//! Exit status: 0 when every certificate replays, 1 when any fails to
//! parse or check, 2 on usage errors. The checker links only the interval
//! kernels (`xcv-interval` + the `xcv-expr` tape re-evaluator) — see the
//! `xcv-cert` crate docs for exactly what a successful replay establishes.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xcv_cert::{check, Certificate};

fn usage() -> ExitCode {
    eprintln!("usage: xcvcheck [-q|--quiet] CERT.json|CERT_DIR ...");
    ExitCode::from(2)
}

fn collect(path: &Path, into: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        entries.sort();
        if entries.is_empty() {
            return Err(format!("{}: no .json certificates found", path.display()));
        }
        into.extend(entries);
        Ok(())
    } else if path.is_file() {
        into.push(path.to_path_buf());
        Ok(())
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

fn main() -> ExitCode {
    let mut quiet = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => return usage(),
            _ => {
                if let Err(e) = collect(Path::new(&arg), &mut paths) {
                    eprintln!("xcvcheck: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let mut failures = 0usize;
    for path in &paths {
        let verdict: Result<_, String> = std::fs::read_to_string(path)
            .map_err(|e| format!("read failed: {e}"))
            .and_then(|text| Certificate::parse(&text))
            .and_then(|cert| {
                let report = check(&cert)?;
                Ok((cert, report))
            });
        match verdict {
            Ok((cert, report)) => {
                if !quiet {
                    println!(
                        "OK   {}  [{} / {}]  regions={} replayed_leaves={} witnesses={}",
                        path.display(),
                        cert.functional,
                        cert.condition,
                        report.regions,
                        report.replayed_leaves,
                        report.witnesses,
                    );
                }
            }
            Err(e) => {
                failures += 1;
                println!("FAIL {}  {e}", path.display());
            }
        }
    }
    if failures > 0 {
        println!("xcvcheck: {failures}/{} certificate(s) FAILED", paths.len());
        ExitCode::FAILURE
    } else {
        if !quiet {
            println!("xcvcheck: all {} certificate(s) replay", paths.len());
        }
        ExitCode::SUCCESS
    }
}
