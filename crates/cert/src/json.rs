//! A minimal hand-rolled JSON reader/writer — the offline workspace vendors
//! no serde, so certificates and campaign checkpoints share this instead
//! (the same spirit as the `BENCH_solver.json` field scanner, but a real
//! recursive-descent parser: certificates nest boxes inside traces inside
//! regions, which a flat scanner cannot address).
//!
//! Two deliberate deviations from strict JSON, both needed to round-trip
//! `f64` exactly:
//!
//! * numbers are written with Rust's shortest-round-trip `Display`, and the
//!   bare tokens `inf` / `-inf` / `nan` are accepted (and written) for the
//!   non-finite values JSON cannot express;
//! * everything else — objects, arrays, strings with escapes, booleans,
//!   null — is standard, so ordinary JSON tooling reads the files whenever
//!   no non-finite number appears.

/// A parsed JSON value. Object keys keep insertion order (a `Vec`, not a
/// map): files stay diffable and key lookup is linear over a handful of
/// keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup that reports which key was missing.
    pub fn want(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            other => Err(format!("expected a number, found {other:?}")),
        }
    }

    pub fn as_usize(&self) -> Result<usize, String> {
        let v = self.as_f64()?;
        if v.fract() != 0.0 || !(0.0..=9.007_199_254_740_992e15).contains(&v) {
            return Err(format!("expected a non-negative integer, found {v}"));
        }
        Ok(v as usize)
    }

    pub fn as_u64(&self) -> Result<u64, String> {
        Ok(self.as_usize()? as u64)
    }

    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected a string, found {other:?}")),
        }
    }

    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected a bool, found {other:?}")),
        }
    }

    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected an array, found {other:?}")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                expect(bytes, pos, b'"')?;
                let key = parse_string_body(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let v = parse_value(bytes, pos)?;
                members.push((key, v));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            Ok(Json::Str(parse_string_body(bytes, pos)?))
        }
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'i') => parse_keyword(bytes, pos, "inf", Json::Num(f64::INFINITY)),
        Some(b'N') => parse_keyword(bytes, pos, "NaN", Json::Num(f64::NAN)),
        Some(b'n') => {
            if bytes[*pos..].starts_with(b"nan") {
                parse_keyword(bytes, pos, "nan", Json::Num(f64::NAN))
            } else {
                parse_keyword(bytes, pos, "null", Json::Null)
            }
        }
        Some(b'-') if bytes.get(*pos + 1) == Some(&b'i') => {
            parse_keyword(bytes, pos, "-inf", Json::Num(f64::NEG_INFINITY))
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            tok.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {tok:?} at byte {start}: {e}"))
        }
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word:?} at byte {}", *pos))
    }
}

/// Parse the body of a string whose opening quote is already consumed.
fn parse_string_body(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unescaped).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by the match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Render an `f64` so that parsing it back is bit-exact: Rust's shortest
/// round-trip `Display` for finite values, the bare tokens this module's
/// parser accepts for the rest.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escape a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\"y", "d": true}, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\"y"
        );
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Ok(true));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn non_finite_numbers_round_trip() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, 1.5e308, -0.0, 1e-320] {
            let text = format!("[{}]", fmt_f64(v));
            let back = Json::parse(&text).unwrap();
            let got = back.as_arr().unwrap()[0].as_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits(), "{v}");
        }
        let nan = Json::parse("[nan]").unwrap().as_arr().unwrap()[0]
            .as_f64()
            .unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn shortest_display_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 2.0_f64.sqrt(), 6.62607015e-34, 12345.6789] {
            let got: f64 = fmt_f64(v).parse().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "[] []", "tru"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\nwith \"quotes\" \\ and\ttabs";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), s);
    }
}
