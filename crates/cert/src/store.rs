//! Durable-store primitives: atomic finalize of JSON documents into a
//! store directory.
//!
//! The WDL-orchestration idiom the campaign tooling borrows — budgeted,
//! retryable shards whose results are *finalized* into a durable store —
//! needs exactly two filesystem guarantees, and every store in the
//! workspace (campaign checkpoints, certificate directories, the `xcvserve`
//! memoized result store) shares this one implementation of them:
//!
//! * **atomicity** — a document is written to a temp file in the target
//!   directory and `rename`d over the destination, so a kill at any instant
//!   leaves either the old document or the new one, never a torn write;
//! * **retry with backoff** — transient I/O failures (a store directory on
//!   contended network storage, an EMFILE blip) are retried a bounded
//!   number of times with exponential backoff before the error surfaces.
//!
//! This lives in `xcv-cert` because the certificate store was the first
//! durable artifact directory and the checker crate is the dependency
//! floor of the workspace — everything that persists results already links
//! it. Nothing here reads certificates; the module is plain-file I/O.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Write `contents` to `path` atomically: temp file in the same directory
/// (so the rename never crosses filesystems), fsync, then rename over the
/// target. A kill mid-write never corrupts an existing document. On any
/// failure the temp file is removed — an error path never litters the
/// store directory with `.tmp` orphans.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let write = |tmp: &Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(tmp, path)
    };
    write(&tmp).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Move a corrupt document out of the store's way by appending `.bad` to
/// its file name (`result.json` → `result.json.bad`), so warm-start scans
/// (which only read `*.json`) stop seeing it while the bytes stay on disk
/// for postmortem. Returns the quarantine path.
pub fn quarantine(path: &Path) -> std::io::Result<PathBuf> {
    let mut name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("quarantine: path has no file name"))?
        .to_os_string();
    name.push(".bad");
    let dest = path.with_file_name(name);
    std::fs::rename(path, &dest)?;
    Ok(dest)
}

/// [`write_atomic`] with a retry ladder: up to `attempts` tries, sleeping
/// `backoff` then doubling after each failure (a finalize path must survive
/// transient store hiccups without dropping a computed result). Returns the
/// last error when every attempt fails; `attempts == 0` is treated as 1.
pub fn write_atomic_retry(
    path: &Path,
    contents: &str,
    attempts: u32,
    backoff: Duration,
) -> std::io::Result<()> {
    let mut delay = backoff;
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
        match write_atomic(path, contents) {
            Ok(()) => return Ok(()),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// Every `.json` document in `dir`, as `(path, contents)`, in sorted path
/// order (deterministic warm-start). Unreadable files are skipped — a
/// half-finalized `.tmp` or a permission-denied entry must not prevent the
/// rest of the store from loading. A missing directory is an empty store.
pub fn read_dir_json(dir: &Path) -> Vec<(PathBuf, String)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .filter_map(|p| std::fs::read_to_string(&p).ok().map(|s| (p, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xcv_store_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_never_leaves_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("doc.json");
        write_atomic(&path, "{\"v\": 1}").unwrap();
        write_atomic(&path, "{\"v\": 2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 2}");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_surfaces_the_last_error() {
        // A directory that does not exist: every attempt fails, and the
        // error comes back instead of panicking or spinning forever.
        let path = PathBuf::from("/nonexistent_xcv_store/doc.json");
        let err = write_atomic_retry(&path, "{}", 3, Duration::from_millis(1));
        assert!(err.is_err());
    }

    #[test]
    fn failed_writes_leave_no_tmp_orphans() {
        // Force the *rename* to fail after the temp file was created: the
        // destination is an existing non-empty directory, which rename(2)
        // cannot replace with a file. Every retry creates the temp file —
        // the error path must clean it up each time.
        let dir = tmp_dir("orphan");
        let target = dir.join("doc.json");
        std::fs::create_dir_all(target.join("occupied")).unwrap();
        let err = write_atomic_retry(&target, "{}", 3, Duration::from_millis(1));
        assert!(err.is_err(), "rename over a non-empty directory fails");
        let orphans: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(orphans.is_empty(), "no *.tmp left behind: {orphans:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_renames_out_of_the_json_namespace() {
        let dir = tmp_dir("quarantine");
        let path = dir.join("doc.json");
        std::fs::write(&path, "garbage").unwrap();
        let dest = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(dest.ends_with("doc.json.bad"));
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "garbage");
        // The store scan no longer sees it.
        assert!(read_dir_json(&dir).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_dir_json_is_sorted_and_skips_non_json() {
        let dir = tmp_dir("readdir");
        std::fs::write(dir.join("b.json"), "2").unwrap();
        std::fs::write(dir.join("a.json"), "1").unwrap();
        std::fs::write(dir.join("c.tmp"), "x").unwrap();
        let docs = read_dir_json(&dir);
        assert_eq!(docs.len(), 2);
        assert!(docs[0].0.ends_with("a.json") && docs[0].1 == "1");
        assert!(docs[1].0.ends_with("b.json") && docs[1].1 == "2");
        assert!(read_dir_json(Path::new("/nonexistent_xcv_store")).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
