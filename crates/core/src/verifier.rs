//! Algorithm 1: the recursive domain-splitting verifier.
//!
//! The recursion solves `φ_D ∧ ¬ψ` on every sub-box, but never compiles
//! anything: the [`EncodedProblem`] carries the formula pre-compiled (one
//! [`xcv_solver::CompiledFormula`] per problem, built at encode time) and
//! each worker thread keeps one lazily-grown [`xcv_solver::SolveScratch`] in
//! a `thread_local`, reused across every box — and every problem — that
//! thread ever touches.

use crate::campaign::CancelToken;
use crate::encoder::EncodedProblem;
use crate::region::{Region, RegionMap, RegionStatus};
use rayon::prelude::*;
use std::cell::RefCell;
use std::time::Instant;
use xcv_solver::{BoxDomain, DeltaSolver, Outcome, SolveScratch, SolveStats, SolveTrace};

thread_local! {
    /// Per-worker solver scratch. Buffers grow to the largest problem the
    /// thread has seen and are reused verbatim afterwards.
    static SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

/// Configuration of the verifier.
#[derive(Clone, Debug)]
pub struct VerifierConfig {
    /// The recursion floor `t` on sub-domain width (the paper used 0.05).
    pub split_threshold: f64,
    /// The δ-complete solver (δ and per-box budget).
    pub solver: DeltaSolver,
    /// Fan the recursion out over rayon's thread pool.
    pub parallel: bool,
    /// How deep into the recursion new rayon tasks are spawned (when
    /// `parallel` is set): levels with `depth <= parallel_depth` fan out
    /// across the pool, deeper sub-boxes run sequentially on the worker
    /// that produced them. With `split_all` producing 2^ndim children per
    /// level, the first few levels already saturate the machine, and
    /// deeper spawning only adds scheduling overhead.
    pub parallel_depth: u32,
    /// Cap on the recursion depth (safety net; the width floor normally
    /// terminates first).
    pub max_depth: u32,
    /// Total wall-clock deadline for one `verify` call, in milliseconds.
    /// Boxes reached after the deadline are recorded as `Timeout` without
    /// solving (the whole-run analogue of the paper's per-call dReal limit).
    pub pair_deadline_ms: Option<u64>,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            split_threshold: 0.05,
            solver: DeltaSolver::default(),
            parallel: true,
            parallel_depth: 3,
            max_depth: 12,
            pair_deadline_ms: None,
        }
    }
}

impl VerifierConfig {
    /// A stable 64-bit fingerprint of every field that can change a run's
    /// *verdict or coverage*: the recursion floor, depth cap, pair
    /// deadline, and the full [`DeltaSolver::fingerprint`]. `parallel` /
    /// `parallel_depth` are deliberately excluded — they re-order work
    /// without changing any region or mark, and a memoized result must
    /// stay valid across machines with different core counts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::cache::fnv1a_str("xcv-verifier-config/v1");
        let mut eat = |v: u64| h = crate::cache::fnv1a(h, &v.to_le_bytes());
        eat(self.split_threshold.to_bits());
        eat(self.max_depth.into());
        match self.pair_deadline_ms {
            None => eat(u64::MAX),
            Some(ms) => {
                eat(0);
                eat(ms);
            }
        }
        eat(self.solver.fingerprint());
        h
    }
}

/// Per-call options for [`Verifier::verify_run`] — everything about *one*
/// run that is not verifier configuration: cooperative cancellation,
/// certificate trace recording, and the depth offset used when a
/// checkpointed campaign resumes a subtree in place.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Checked at every recursion step: once cancelled, unexamined boxes
    /// are recorded as [`RegionStatus::Cancelled`] leaves (resumable later)
    /// instead of being solved.
    pub cancel: Option<CancelToken>,
    /// Record a [`SolveTrace`] for every `Verified` leaf (forces the
    /// scalar solve path for traced boxes) — the raw material for
    /// `xcv-cert` proof certificates.
    pub record_traces: bool,
    /// Recursion depth the root box is considered to be at. A resumed
    /// `Cancelled` leaf re-verified with its recorded depth sees the exact
    /// `max_depth`/`split_threshold` horizon of the uninterrupted run.
    pub base_depth: u32,
}

/// Extra per-region data from [`Verifier::verify_run`], index-aligned with
/// [`RegionMap::regions`].
#[derive(Clone, Debug)]
pub struct RegionDetail {
    /// Recursion depth at which the region became a leaf.
    pub depth: u32,
    /// The solver trace (only on `Verified` leaves, only when
    /// [`RunOptions::record_traces`] was set).
    pub trace: Option<SolveTrace>,
}

/// The result of [`Verifier::verify_run`].
#[derive(Clone, Debug)]
pub struct RunOutput {
    pub map: RegionMap,
    pub stats: SolveStats,
    /// One entry per region of `map`, same order.
    pub details: Vec<RegionDetail>,
}

/// The VERIFIER component of XCVerifier (Algorithm 1).
#[derive(Clone, Debug, Default)]
pub struct Verifier {
    pub config: VerifierConfig,
}

impl Verifier {
    pub fn new(config: VerifierConfig) -> Self {
        Verifier { config }
    }

    /// Verify an encoded problem over its own PB domain.
    pub fn verify(&self, problem: &EncodedProblem) -> RegionMap {
        self.verify_on(&problem.domain, problem)
    }

    /// Verify an encoded problem over a caller-supplied domain.
    pub fn verify_on(&self, domain: &BoxDomain, problem: &EncodedProblem) -> RegionMap {
        self.verify_on_with_stats(domain, problem).0
    }

    /// [`Verifier::verify`] returning the solver statistics aggregated over
    /// the whole box tree (nodes explored, prunes, branches, max depth) —
    /// the raw material for throughput reporting.
    pub fn verify_with_stats(&self, problem: &EncodedProblem) -> (RegionMap, SolveStats) {
        self.verify_on_with_stats(&problem.domain, problem)
    }

    /// [`Verifier::verify_on`] with aggregated solver statistics.
    pub fn verify_on_with_stats(
        &self,
        domain: &BoxDomain,
        problem: &EncodedProblem,
    ) -> (RegionMap, SolveStats) {
        let out = self.verify_run(domain, problem, &RunOptions::default());
        (out.map, out.stats)
    }

    /// The fully-general entry point: verify `problem` over `domain` with
    /// cancellation, trace recording, and a depth offset (see
    /// [`RunOptions`]). All other `verify*` methods are sugar over this.
    pub fn verify_run(
        &self,
        domain: &BoxDomain,
        problem: &EncodedProblem,
        opts: &RunOptions,
    ) -> RunOutput {
        let start = Instant::now();
        let (leaves, stats) = self.go(domain, problem, opts.base_depth, start, opts);
        let (regions, details) = leaves.into_iter().unzip();
        RunOutput {
            map: RegionMap::new(domain.clone(), regions),
            stats,
            details,
        }
    }

    fn past_deadline(&self, start: Instant) -> bool {
        // Compare in u128: `as_millis() as u64` would wrap after ~585 My of
        // elapsed time, but more importantly truncating the comparison width
        // invites silent bugs if the deadline type ever widens.
        self.config
            .pair_deadline_ms
            .is_some_and(|ms| start.elapsed().as_millis() > u128::from(ms))
    }

    /// One step of Algorithm 1 on box `d`:
    ///
    /// * solve `φ_D ∧ ¬ψ` — `Unsat` verifies the box outright;
    /// * `δ-SAT` with a model that exactly violates `ψ` is a counterexample,
    ///   an invalid model is inconclusive; a timeout is recorded;
    /// * on everything but `Unsat`, split every dimension (`split(D)`) and
    ///   recurse until the width floor `t`, isolating the violating regions.
    fn go(
        &self,
        d: &BoxDomain,
        problem: &EncodedProblem,
        depth: u32,
        start: Instant,
        opts: &RunOptions,
    ) -> (Vec<(Region, RegionDetail)>, SolveStats) {
        let mut stats = SolveStats::default();
        let leaf = |status: RegionStatus, trace: Option<SolveTrace>| {
            vec![(
                Region {
                    domain: d.clone(),
                    status,
                },
                RegionDetail { depth, trace },
            )]
        };
        if opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return (leaf(RegionStatus::Cancelled, None), stats);
        }
        if self.past_deadline(start) {
            return (leaf(RegionStatus::Timeout, None), stats);
        }
        // Solve against the pre-compiled problem with this worker's scratch.
        // The borrow is scoped: it ends before the recursion below fans out
        // (children solved on this thread reuse the same scratch).
        let (status, trace) = SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let run = |solver: &DeltaSolver,
                       scratch: &mut SolveScratch|
             -> (Outcome, SolveStats, Option<SolveTrace>) {
                if opts.record_traces {
                    let (o, bs, t) = solver.solve_compiled_traced(d, problem.compiled(), scratch);
                    (o, bs, Some(t))
                } else {
                    let (o, bs) = solver.solve_compiled_with_stats(d, problem.compiled(), scratch);
                    (o, bs, None)
                }
            };
            // The escalation ladder runs as a *retry*: the primary solve is
            // always the plain rung-0 engine, and only a box that exhausts
            // its budget is re-solved with the contractors armed. Decided
            // boxes keep their rung-0 outcome bit for bit, so arming the
            // ladder can only turn timeouts into decisions — a pair's table
            // mark never regresses.
            let esc = self.config.solver.escalation;
            let mut solver = self.config.solver.clone();
            solver.escalation = xcv_solver::Escalation::off();
            let (mut outcome, box_stats, mut trace) = run(&solver, &mut scratch);
            stats.absorb(box_stats);
            if esc.max_rung > 0 && matches!(outcome, Outcome::Timeout) && !self.past_deadline(start)
            {
                solver.escalation = esc;
                let (o, bs, t) = run(&solver, &mut scratch);
                stats.absorb(bs);
                outcome = o;
                trace = t;
            }
            match outcome {
                // The trace only certifies Unsat leaves; drop it elsewhere.
                Outcome::Unsat => (RegionStatus::Verified, trace),
                Outcome::DeltaSat(model) => {
                    // valid(x): does the model *exactly* violate ψ?
                    if !problem
                        .psi_compiled()
                        .holds_at_with(&model, scratch.f64_buf())
                    {
                        (RegionStatus::Counterexample(model), None)
                    } else {
                        (RegionStatus::Inconclusive, None)
                    }
                }
                Outcome::Timeout => (RegionStatus::Timeout, None),
            }
        });
        // Verified boxes are final; others split until the width floor.
        let can_split =
            d.max_width() / 2.0 >= self.config.split_threshold && depth < self.config.max_depth;
        if matches!(status, RegionStatus::Verified) || !can_split {
            return (leaf(status, trace), stats);
        }
        let children = d.split_all();
        let (regions, child_stats) = if self.config.parallel && depth <= self.config.parallel_depth
        {
            children
                .par_iter()
                .map(|c| self.go(c, problem, depth + 1, start, opts))
                .reduce(
                    || (Vec::new(), SolveStats::default()),
                    |(mut a, mut sa), (mut b, sb)| {
                        a.append(&mut b);
                        sa.absorb(sb);
                        (a, sa)
                    },
                )
        } else {
            let mut out = Vec::new();
            let mut acc = SolveStats::default();
            for c in &children {
                let (r, s) = self.go(c, problem, depth + 1, start, opts);
                out.extend(r);
                acc.absorb(s);
            }
            (out, acc)
        };
        stats.absorb(child_stats);
        (regions, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::region::TableMark;
    use xcv_conditions::Condition;
    use xcv_functionals::Dfa;
    use xcv_solver::SolveBudget;

    fn quick_verifier(budget_nodes: u64) -> Verifier {
        Verifier::new(VerifierConfig {
            split_threshold: 0.6, // coarse for test speed
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(budget_nodes)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 6,
            pair_deadline_ms: None,
        })
    }

    #[test]
    fn vwn_ec1_fully_verified() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcNonPositivity).unwrap();
        let map = quick_verifier(50_000).verify(&p);
        assert_eq!(map.table_mark(), TableMark::Verified);
    }

    #[test]
    fn lyp_ec1_counterexample_found() {
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        let map = quick_verifier(50_000).verify(&p);
        assert_eq!(map.table_mark(), TableMark::Counterexample);
        // Every witness must exactly violate ψ and lie at large s.
        for ce in map.counterexamples() {
            assert!(!p.psi().holds_at(ce), "witness must violate the condition");
            assert!(ce[1] > 1.0, "LYP EC1 violations live at large s: {ce:?}");
        }
    }

    #[test]
    fn zero_budget_times_out_everywhere() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcNonPositivity).unwrap();
        let v = Verifier::new(VerifierConfig {
            split_threshold: 2.0,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(0)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 3,
            pair_deadline_ms: None,
        });
        let map = v.verify(&p);
        assert_eq!(map.table_mark(), TableMark::Unknown);
        assert!(map
            .regions
            .iter()
            .all(|r| matches!(r.status, RegionStatus::Timeout)));
    }

    #[test]
    fn region_map_partitions_domain() {
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        let map = quick_verifier(20_000).verify(&p);
        assert!(map.covers_probe_grid(6), "region map must cover the domain");
    }

    #[test]
    fn parallel_and_sequential_agree_on_mark() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcScaling).unwrap();
        let seq = quick_verifier(50_000).verify(&p);
        let mut cfg = quick_verifier(50_000).config;
        cfg.parallel = true;
        let par = Verifier::new(cfg).verify(&p);
        assert_eq!(seq.table_mark(), par.table_mark());
    }

    #[test]
    fn pair_deadline_caps_work() {
        // A 1 ms pair deadline must leave most of a hard problem undecided,
        // quickly, while keeping the region map a partition.
        let p = Encoder::encode(Dfa::Scan, Condition::UcMonotonicity).unwrap();
        let v = Verifier::new(VerifierConfig {
            split_threshold: 0.3,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(1_000)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 8,
            pair_deadline_ms: Some(1),
        });
        let t0 = std::time::Instant::now();
        let map = v.verify(&p);
        assert!(t0.elapsed().as_secs() < 30);
        assert!(map.covers_probe_grid(4));
    }

    #[test]
    fn stats_aggregate_across_the_tree() {
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        let (map, stats) = quick_verifier(20_000).verify_with_stats(&p);
        assert!(map.regions.len() > 1, "recursion must have split");
        assert!(
            stats.nodes >= map.regions.len() as u64,
            "every region solved at least one box: {stats:?}"
        );
        // The compile-once invariant itself (counter flat across verify) is
        // asserted in the dedicated `tests/compile_once.rs` binary, where no
        // concurrent test compiles formulas under our feet.
    }

    #[test]
    fn pbe_ec7_finds_upper_left_counterexample() {
        let p = Encoder::encode(Dfa::Pbe, Condition::ConjTcUpperBound).unwrap();
        let map = quick_verifier(30_000).verify(&p);
        assert_eq!(map.table_mark(), TableMark::Counterexample);
        let ces = map.counterexamples();
        assert!(!ces.is_empty());
        // Fig. 1f: violations in the small-rs / large-s corner.
        assert!(ces.iter().any(|c| c[0] < 2.5 && c[1] > 1.0), "{ces:?}");
    }
}
