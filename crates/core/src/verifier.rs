//! Algorithm 1: the recursive domain-splitting verifier.

use crate::encoder::EncodedProblem;
use crate::region::{Region, RegionMap, RegionStatus};
use rayon::prelude::*;
use std::time::Instant;
use xcv_solver::{BoxDomain, DeltaSolver, Formula, Outcome};

/// Configuration of the verifier.
#[derive(Clone, Debug)]
pub struct VerifierConfig {
    /// The recursion floor `t` on sub-domain width (the paper used 0.05).
    pub split_threshold: f64,
    /// The δ-complete solver (δ and per-box budget).
    pub solver: DeltaSolver,
    /// Fan the recursion out over rayon's thread pool.
    pub parallel: bool,
    /// How deep into the recursion new rayon tasks are spawned (when
    /// `parallel` is set): levels with `depth <= parallel_depth` fan out
    /// across the pool, deeper sub-boxes run sequentially on the worker
    /// that produced them. With `split_all` producing 2^ndim children per
    /// level, the first few levels already saturate the machine, and
    /// deeper spawning only adds scheduling overhead.
    pub parallel_depth: u32,
    /// Cap on the recursion depth (safety net; the width floor normally
    /// terminates first).
    pub max_depth: u32,
    /// Total wall-clock deadline for one `verify` call, in milliseconds.
    /// Boxes reached after the deadline are recorded as `Timeout` without
    /// solving (the whole-run analogue of the paper's per-call dReal limit).
    pub pair_deadline_ms: Option<u64>,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            split_threshold: 0.05,
            solver: DeltaSolver::default(),
            parallel: true,
            parallel_depth: 3,
            max_depth: 12,
            pair_deadline_ms: None,
        }
    }
}

/// The VERIFIER component of XCVerifier (Algorithm 1).
#[derive(Clone, Debug, Default)]
pub struct Verifier {
    pub config: VerifierConfig,
}

impl Verifier {
    pub fn new(config: VerifierConfig) -> Self {
        Verifier { config }
    }

    /// Verify an encoded problem over its own PB domain.
    pub fn verify(&self, problem: &EncodedProblem) -> RegionMap {
        self.verify_on(&problem.domain, problem)
    }

    /// Verify an encoded problem over a caller-supplied domain.
    pub fn verify_on(&self, domain: &BoxDomain, problem: &EncodedProblem) -> RegionMap {
        let start = Instant::now();
        let regions = self.go(domain, &problem.negation, &problem.psi, 0, start);
        RegionMap::new(domain.clone(), regions)
    }

    fn past_deadline(&self, start: Instant) -> bool {
        // Compare in u128: `as_millis() as u64` would wrap after ~585 My of
        // elapsed time, but more importantly truncating the comparison width
        // invites silent bugs if the deadline type ever widens.
        self.config
            .pair_deadline_ms
            .is_some_and(|ms| start.elapsed().as_millis() > u128::from(ms))
    }

    /// One step of Algorithm 1 on box `d`:
    ///
    /// * solve `φ_D ∧ ¬ψ` — `Unsat` verifies the box outright;
    /// * `δ-SAT` with a model that exactly violates `ψ` is a counterexample,
    ///   an invalid model is inconclusive; a timeout is recorded;
    /// * on everything but `Unsat`, split every dimension (`split(D)`) and
    ///   recurse until the width floor `t`, isolating the violating regions.
    fn go(
        &self,
        d: &BoxDomain,
        negation: &Formula,
        psi: &xcv_solver::Atom,
        depth: u32,
        start: Instant,
    ) -> Vec<Region> {
        if self.past_deadline(start) {
            return vec![Region {
                domain: d.clone(),
                status: RegionStatus::Timeout,
            }];
        }
        let outcome = self.config.solver.solve(d, negation);
        let status = match outcome {
            Outcome::Unsat => RegionStatus::Verified,
            Outcome::DeltaSat(model) => {
                // valid(x): does the model *exactly* violate ψ?
                if !psi.holds_at(&model) {
                    RegionStatus::Counterexample(model)
                } else {
                    RegionStatus::Inconclusive
                }
            }
            Outcome::Timeout => RegionStatus::Timeout,
        };
        // Verified boxes are final; others split until the width floor.
        let can_split =
            d.max_width() / 2.0 >= self.config.split_threshold && depth < self.config.max_depth;
        if matches!(status, RegionStatus::Verified) || !can_split {
            return vec![Region {
                domain: d.clone(),
                status,
            }];
        }
        let children = d.split_all();
        if self.config.parallel && depth <= self.config.parallel_depth {
            children
                .par_iter()
                .map(|c| self.go(c, negation, psi, depth + 1, start))
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        } else {
            let mut out = Vec::new();
            for c in &children {
                out.extend(self.go(c, negation, psi, depth + 1, start));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::region::TableMark;
    use xcv_conditions::Condition;
    use xcv_functionals::Dfa;
    use xcv_solver::SolveBudget;

    fn quick_verifier(budget_nodes: u64) -> Verifier {
        Verifier::new(VerifierConfig {
            split_threshold: 0.6, // coarse for test speed
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(budget_nodes)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 6,
            pair_deadline_ms: None,
        })
    }

    #[test]
    fn vwn_ec1_fully_verified() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcNonPositivity).unwrap();
        let map = quick_verifier(50_000).verify(&p);
        assert_eq!(map.table_mark(), TableMark::Verified);
    }

    #[test]
    fn lyp_ec1_counterexample_found() {
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        let map = quick_verifier(50_000).verify(&p);
        assert_eq!(map.table_mark(), TableMark::Counterexample);
        // Every witness must exactly violate ψ and lie at large s.
        for ce in map.counterexamples() {
            assert!(!p.psi.holds_at(ce), "witness must violate the condition");
            assert!(ce[1] > 1.0, "LYP EC1 violations live at large s: {ce:?}");
        }
    }

    #[test]
    fn zero_budget_times_out_everywhere() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcNonPositivity).unwrap();
        let v = Verifier::new(VerifierConfig {
            split_threshold: 2.0,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(0)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 3,
            pair_deadline_ms: None,
        });
        let map = v.verify(&p);
        assert_eq!(map.table_mark(), TableMark::Unknown);
        assert!(map
            .regions
            .iter()
            .all(|r| matches!(r.status, RegionStatus::Timeout)));
    }

    #[test]
    fn region_map_partitions_domain() {
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        let map = quick_verifier(20_000).verify(&p);
        assert!(map.covers_probe_grid(6), "region map must cover the domain");
    }

    #[test]
    fn parallel_and_sequential_agree_on_mark() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcScaling).unwrap();
        let seq = quick_verifier(50_000).verify(&p);
        let mut cfg = quick_verifier(50_000).config;
        cfg.parallel = true;
        let par = Verifier::new(cfg).verify(&p);
        assert_eq!(seq.table_mark(), par.table_mark());
    }

    #[test]
    fn pair_deadline_caps_work() {
        // A 1 ms pair deadline must leave most of a hard problem undecided,
        // quickly, while keeping the region map a partition.
        let p = Encoder::encode(Dfa::Scan, Condition::UcMonotonicity).unwrap();
        let v = Verifier::new(VerifierConfig {
            split_threshold: 0.3,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(1_000)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 8,
            pair_deadline_ms: Some(1),
        });
        let t0 = std::time::Instant::now();
        let map = v.verify(&p);
        assert!(t0.elapsed().as_secs() < 30);
        assert!(map.covers_probe_grid(4));
    }

    #[test]
    fn pbe_ec7_finds_upper_left_counterexample() {
        let p = Encoder::encode(Dfa::Pbe, Condition::ConjTcUpperBound).unwrap();
        let map = quick_verifier(30_000).verify(&p);
        assert_eq!(map.table_mark(), TableMark::Counterexample);
        let ces = map.counterexamples();
        assert!(!ces.is_empty());
        // Fig. 1f: violations in the small-rs / large-s corner.
        assert!(ces.iter().any(|c| c[0] < 2.5 && c[1] > 1.0), "{ces:?}");
    }
}
