//! Campaign checkpoints: everything needed to resume an interrupted matrix
//! with *identical* marks and aggregate solver statistics.
//!
//! A checkpoint file (schema `xcv-checkpoint/v1`, same hand-rolled JSON as
//! `xcv-cert`) records one entry per matrix cell that actually ran: the
//! full region list — box, status, witness, and the recursion depth each
//! leaf was reached at. Completed cells are restored verbatim on resume;
//! interrupted cells (those containing `Cancelled` leaves, the verifier's
//! marker for "the token fired before this box was examined") are resumed
//! by re-verifying exactly those leaves at their recorded depth and
//! splicing the results in place — the deterministic node-budgeted solver
//! then reproduces the uninterrupted run's marks bit for bit.
//!
//! The file is rewritten atomically (temp file + rename) after every pair,
//! so a kill at any instant leaves a loadable checkpoint.

use crate::region::{Region, RegionMap, RegionStatus, TableMark};
use std::path::Path;
use xcv_cert::json::{escape, fmt_f64, Json};
use xcv_conditions::Condition;
use xcv_interval::Interval;
use xcv_solver::{BoxDomain, SolveStats};

pub(crate) const SCHEMA: &str = "xcv-checkpoint/v1";

/// One persisted leaf of a cell's region map.
#[derive(Clone, Debug)]
pub(crate) struct CheckpointRegion {
    pub domain: BoxDomain,
    pub status: RegionStatus,
    pub depth: u32,
}

/// One persisted matrix cell (only cells that ran are persisted; skip
/// outcomes are recomputed identically on resume).
#[derive(Clone, Debug)]
pub(crate) struct CheckpointCell {
    pub functional: String,
    pub condition: Condition,
    pub wall_ms: u128,
    pub stats: SolveStats,
    pub regions: Vec<CheckpointRegion>,
}

impl CheckpointCell {
    /// A cell is complete when no leaf is still waiting on a resume.
    pub fn complete(&self) -> bool {
        !self
            .regions
            .iter()
            .any(|r| matches!(r.status, RegionStatus::Cancelled))
    }

    /// The persisted regions as verifier regions plus their depths.
    pub fn to_regions(&self) -> Vec<(Region, u32)> {
        self.regions
            .iter()
            .map(|r| {
                (
                    Region {
                        domain: r.domain.clone(),
                        status: r.status.clone(),
                    },
                    r.depth,
                )
            })
            .collect()
    }
}

fn status_tag(status: &RegionStatus) -> &'static str {
    match status {
        RegionStatus::Verified => "verified",
        RegionStatus::Counterexample(_) => "counterexample",
        RegionStatus::Inconclusive => "inconclusive",
        RegionStatus::Timeout => "timeout",
        RegionStatus::Cancelled => "cancelled",
    }
}

fn push_box(out: &mut String, b: &BoxDomain) {
    out.push('[');
    for (i, d) in b.dims().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        out.push_str(&fmt_f64(d.lo));
        out.push_str(", ");
        out.push_str(&fmt_f64(d.hi));
        out.push(']');
    }
    out.push(']');
}

/// Serialize a checkpoint document.
pub(crate) fn render(cells: &[&CheckpointCell]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"functional\": \"{}\", \"condition\": \"{:?}\", \"wall_ms\": {},\n",
            escape(&cell.functional),
            cell.condition,
            cell.wall_ms
        ));
        out.push_str(&format!(
            "     \"stats\": {{\"nodes\": {}, \"pruned\": {}, \"branched\": {}, \"max_depth\": {}}},\n",
            cell.stats.nodes, cell.stats.pruned, cell.stats.branched, cell.stats.max_depth
        ));
        out.push_str("     \"regions\": [\n");
        for (k, r) in cell.regions.iter().enumerate() {
            if k > 0 {
                out.push_str(",\n");
            }
            out.push_str("      {\"box\": ");
            push_box(&mut out, &r.domain);
            out.push_str(&format!(
                ", \"status\": \"{}\", \"depth\": {}",
                status_tag(&r.status),
                r.depth
            ));
            if let RegionStatus::Counterexample(w) = &r.status {
                out.push_str(", \"witness\": [");
                for (j, v) in w.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&fmt_f64(*v));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("\n     ]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Write a checkpoint atomically (temp file + rename via the shared
/// [`xcv_cert::store`] primitive), so a kill mid-write never corrupts an
/// existing checkpoint.
pub(crate) fn write_atomic(path: &Path, cells: &[&CheckpointCell]) -> std::io::Result<()> {
    xcv_cert::store::write_atomic(path, &render(cells))
}

fn parse_condition(s: &str) -> Result<Condition, String> {
    Condition::all()
        .iter()
        .copied()
        .find(|c| format!("{c:?}") == s)
        .ok_or_else(|| format!("unknown condition {s:?}"))
}

fn parse_box(v: &Json) -> Result<BoxDomain, String> {
    let dims = v
        .as_arr()?
        .iter()
        .map(|d| {
            let pair = d.as_arr()?;
            if pair.len() != 2 {
                return Err("interval needs exactly [lo, hi]".to_string());
            }
            let (lo, hi) = (pair[0].as_f64()?, pair[1].as_f64()?);
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(format!("bad interval [{lo}, {hi}]"));
            }
            Ok(Interval::new(lo, hi))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BoxDomain::new(dims))
}

/// Load a checkpoint document.
pub(crate) fn load(path: &Path) -> Result<Vec<CheckpointCell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text)?;
    if doc.want("schema")?.as_str()? != SCHEMA {
        return Err(format!(
            "unsupported checkpoint schema {:?}",
            doc.want("schema")?.as_str()?
        ));
    }
    let mut cells = Vec::new();
    for (i, c) in doc.want("cells")?.as_arr()?.iter().enumerate() {
        let err = |e: String| format!("cell {i}: {e}");
        let stats = c.want("stats").map_err(err)?;
        let mut regions = Vec::new();
        for r in c.want("regions").map_err(err)?.as_arr().map_err(err)? {
            let status = match r.want("status")?.as_str()? {
                "verified" => RegionStatus::Verified,
                "counterexample" => RegionStatus::Counterexample(
                    r.want("witness")?
                        .as_arr()?
                        .iter()
                        .map(Json::as_f64)
                        .collect::<Result<Vec<_>, _>>()?,
                ),
                "inconclusive" => RegionStatus::Inconclusive,
                "timeout" => RegionStatus::Timeout,
                "cancelled" => RegionStatus::Cancelled,
                other => return Err(format!("cell {i}: unknown status {other:?}")),
            };
            regions.push(CheckpointRegion {
                domain: parse_box(r.want("box")?).map_err(|e| format!("cell {i}: {e}"))?,
                status,
                depth: u32::try_from(r.want("depth")?.as_u64()?)
                    .map_err(|e| format!("cell {i}: {e}"))?,
            });
        }
        cells.push(CheckpointCell {
            functional: c.want("functional").map_err(err)?.as_str()?.to_string(),
            condition: parse_condition(c.want("condition").map_err(err)?.as_str()?).map_err(err)?,
            wall_ms: u128::from(c.want("wall_ms").map_err(err)?.as_u64()?),
            stats: SolveStats {
                nodes: stats.want("nodes")?.as_u64()?,
                pruned: stats.want("pruned")?.as_u64()?,
                branched: stats.want("branched")?.as_u64()?,
                max_depth: stats.want("max_depth")?.as_u64()? as u32,
            },
            regions,
        });
    }
    Ok(cells)
}

/// Inspect a checkpoint file without re-running anything: the Table I mark
/// of every persisted cell, in file order — the surface behind
/// `xcverify --merge`, which unions the checkpoints of a sharded campaign
/// and prints the combined matrix.
pub fn checkpoint_marks(
    path: impl AsRef<Path>,
) -> Result<Vec<(String, Condition, TableMark)>, String> {
    Ok(load(path.as_ref())?
        .into_iter()
        .map(|c| {
            let regions: Vec<Region> = c.to_regions().into_iter().map(|(r, _)| r).collect();
            let domain = regions
                .first()
                .map(|r| r.domain.clone())
                .unwrap_or_else(|| BoxDomain::new(Vec::new()));
            let mark = RegionMap::new(domain, regions).table_mark();
            (c.functional, c.condition, mark)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CheckpointCell {
        CheckpointCell {
            functional: "VWN RPA".into(),
            condition: Condition::EcNonPositivity,
            wall_ms: 42,
            stats: SolveStats {
                nodes: 10,
                pruned: 4,
                branched: 3,
                max_depth: 5,
            },
            regions: vec![
                CheckpointRegion {
                    domain: BoxDomain::from_bounds(&[(0.1, 10.0)]),
                    status: RegionStatus::Verified,
                    depth: 0,
                },
                CheckpointRegion {
                    domain: BoxDomain::from_bounds(&[(10.0, 20.0)]),
                    status: RegionStatus::Counterexample(vec![12.5]),
                    depth: 1,
                },
                CheckpointRegion {
                    domain: BoxDomain::from_bounds(&[(20.0, 30.0)]),
                    status: RegionStatus::Cancelled,
                    depth: 1,
                },
            ],
        }
    }

    #[test]
    fn checkpoint_round_trips() {
        let c = cell();
        let path = std::env::temp_dir().join(format!("xcv_ckpt_{}.json", std::process::id()));
        write_atomic(&path, &[&c]).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 1);
        let b = &back[0];
        assert_eq!(b.functional, c.functional);
        assert_eq!(b.condition, c.condition);
        assert_eq!(b.wall_ms, c.wall_ms);
        assert_eq!(b.stats.nodes, c.stats.nodes);
        assert_eq!(b.stats.max_depth, c.stats.max_depth);
        assert_eq!(b.regions.len(), 3);
        assert_eq!(b.regions[0].status, RegionStatus::Verified);
        assert_eq!(
            b.regions[1].status,
            RegionStatus::Counterexample(vec![12.5])
        );
        assert_eq!(b.regions[2].status, RegionStatus::Cancelled);
        assert_eq!(b.regions[2].domain, c.regions[2].domain);
        assert!(!b.complete());
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        let path = std::env::temp_dir().join(format!("xcv_ckpt_bad_{}.json", std::process::id()));
        for bad in [
            "{\"schema\": \"other/v9\", \"cells\": []}",
            "{\"cells\": []}",
            "not json",
        ] {
            std::fs::write(&path, bad).unwrap();
            assert!(load(&path).is_err(), "accepted {bad:?}");
        }
        std::fs::remove_file(&path).ok();
    }
}
