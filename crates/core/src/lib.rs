//! XCVerifier core: the encoder and the domain-splitting verifier
//! (Algorithm 1 of the paper).
//!
//! * [`Encoder`] — pairs a DFA with an exact condition, producing the local
//!   condition `ψ` (a sign atom over `rs, s, α`), its negation `¬ψ` (the
//!   formula the δ-complete solver refutes), and the Pederson–Burke domain.
//! * [`Verifier`] — Algorithm 1: call the solver on `φ_D ∧ ¬ψ`; `UNSAT`
//!   verifies the box; a δ-SAT model that exactly violates `ψ` is a
//!   counterexample; an invalid model is inconclusive; a timeout is recorded
//!   as such. On anything but `UNSAT` the box is split in every dimension
//!   (`split(D)`) and the verifier recurses, down to the width floor
//!   `t = 0.05`, isolating the regions where the implementation violates the
//!   condition. The recursion parallelizes across sub-boxes with rayon.
//! * [`RegionMap`] — the resulting partition of the domain into
//!   verified / counterexample / inconclusive / timeout regions, with the
//!   aggregation rules that produce the paper's Table I marks.

mod encoder;
mod region;
mod verifier;

pub use encoder::{EncodedProblem, Encoder};
pub use region::{Region, RegionMap, RegionStatus, TableMark};
pub use verifier::{Verifier, VerifierConfig};
