//! XCVerifier core: the encoder, the domain-splitting verifier
//! (Algorithm 1 of the paper), and the campaign engine.
//!
//! * [`Encoder`] — pairs a functional (any registry handle) with an exact
//!   condition, producing the local condition `ψ` (a sign atom over
//!   `rs, s, α`), its negation `¬ψ` (the formula the δ-complete solver
//!   refutes), and the Pederson–Burke domain. Encoding is also where
//!   **compilation** happens: the [`EncodedProblem`] carries `¬ψ` and `ψ`
//!   pre-lowered to flat solver tapes
//!   ([`xcv_solver::CompiledFormula`]/[`xcv_solver::CompiledAtom`]), built
//!   once and shared across everything downstream.
//! * [`Verifier`] — Algorithm 1: call the solver on `φ_D ∧ ¬ψ`; `UNSAT`
//!   verifies the box; a δ-SAT model that exactly violates `ψ` is a
//!   counterexample; an invalid model is inconclusive; a timeout is recorded
//!   as such. On anything but `UNSAT` the box is split in every dimension
//!   (`split(D)`) and the verifier recurses, down to the width floor
//!   `t = 0.05`, isolating the regions where the implementation violates the
//!   condition. The recursion parallelizes across sub-boxes with rayon;
//!   every box is solved against the problem's shared compiled formula with
//!   a per-worker-thread scratch buffer — no compilation, topo sorting, or
//!   differentiation ever happens per box.
//! * [`RegionMap`] — the resulting partition of the domain into
//!   verified / counterexample / inconclusive / timeout regions, with the
//!   aggregation rules that produce the paper's Table I marks.
//! * [`Campaign`] — whole verification matrices (functionals × conditions)
//!   scheduled across rayon with per-pair deadlines, a global budget,
//!   streamed [`CampaignEvent`]s, cancellation, and a structured
//!   [`CampaignReport`] the report crate renders into Tables I/II.

pub mod cache;
mod campaign;
mod certify;
mod checkpoint;
mod encoder;
pub mod fault;
pub mod presets;
mod region;
mod verifier;

pub use cache::{space_fingerprint, ProblemCache, ProblemKey};
pub use campaign::{
    pair_cost, pair_features, Campaign, CampaignBuilder, CampaignEvent, CampaignReport,
    CampaignSchedule, CancelToken, CostModel, PairOutcome, SkipReason,
};
pub use certify::build_certificate;
pub use checkpoint::checkpoint_marks;
pub use encoder::{EncodedProblem, Encoder};
pub use fault::{FaultPlan, FaultRule, FaultSite};
pub use region::{Region, RegionMap, RegionStatus, TableMark};
pub use verifier::{RegionDetail, RunOptions, RunOutput, Verifier, VerifierConfig};
pub use xcv_functionals::XcvError;
