//! The compiled-problem cache (level 1 of the verification service).
//!
//! Encoding a (functional, condition) pair is the expensive front half of
//! every verification: build ψ, lower ¬ψ to flat interval/f64 tapes, fold
//! constants, topo-sort — all pure functions of the *expression text* and
//! the variable space, not of the handle identity. A long-running daemon
//! answering the same queries repeatedly should pay that cost once, so this
//! module content-addresses encoded problems:
//!
//! * [`ProblemKey`] — `(source hash, condition, VarSpace fingerprint)`.
//!   The source hash is FNV-1a over ψ's deterministic [`Display`] rendering
//!   plus its relation symbol, so two handles computing the same expression
//!   share a cache line and a *changed* DSL definition changes the key.
//!   The space fingerprint covers every axis's name, index, kind, and
//!   exact bound bits — a re-bounded domain is a different problem.
//! * [`ProblemCache`] — a concurrent map from key to `Arc<EncodedProblem>`.
//!   [`ProblemCache::encode`] builds ψ (cheap: no tape work), looks the key
//!   up, and only on a miss runs the full [`Encoder::encode`] pipeline.
//!   Hits return the shared `Arc` without touching the tape compiler, which
//!   is observable as a flat [`xcv_solver::compile_count`] across a warm
//!   pass.
//!
//! [`Display`]: std::fmt::Display

use crate::encoder::{EncodedProblem, Encoder};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xcv_conditions::Condition;
use xcv_expr::VarSpace;
use xcv_functionals::{FunctionalHandle, XcvError};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `h` (chain calls to hash a
/// composite; start from [`fnv1a(FNV_OFFSET, ..)`](fnv1a)).
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a of one byte string from the standard offset basis.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(FNV_OFFSET, s.as_bytes())
}

/// A stable fingerprint of a [`VarSpace`]: every axis's name, index, kind,
/// and exact bound bit patterns. Axis order is part of the identity (axis
/// `i` is box dimension `i`).
pub fn space_fingerprint(space: &VarSpace) -> u64 {
    let mut h = FNV_OFFSET;
    for axis in space.axes() {
        h = fnv1a(h, axis.name.as_bytes());
        h = fnv1a(h, &axis.index.to_le_bytes());
        h = fnv1a(h, format!("{:?}", axis.kind).as_bytes());
        h = fnv1a(h, &axis.bounds.0.to_bits().to_le_bytes());
        h = fnv1a(h, &axis.bounds.1.to_bits().to_le_bytes());
    }
    h
}

/// The content address of one encoded problem. Two pairs with equal keys
/// encode to interchangeable [`EncodedProblem`]s: same ψ text and relation,
/// same condition, same typed domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemKey {
    /// FNV-1a over ψ's `Display` text and relation symbol.
    pub source_hash: u64,
    pub condition: Condition,
    /// [`space_fingerprint`] of the functional's `var_space()`.
    pub space_fp: u64,
}

impl ProblemKey {
    /// The key of `(f, condition)` — builds ψ (no tape compilation) and
    /// hashes its rendering. Fails exactly where encoding would:
    /// inapplicable pairs have no ψ and therefore no key.
    pub fn of(f: &FunctionalHandle, condition: Condition) -> Result<ProblemKey, XcvError> {
        let psi = condition.encode(f.as_ref())?;
        let mut h = fnv1a_str(&psi.expr.to_string());
        h = fnv1a(h, format!("{:?}", psi.rel).as_bytes());
        Ok(ProblemKey {
            source_hash: h,
            condition,
            space_fp: space_fingerprint(&f.var_space()),
        })
    }
}

impl std::fmt::Display for ProblemKey {
    /// Filesystem-safe rendering (store file names embed it).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x}-{}-{:016x}",
            self.source_hash,
            self.condition.id(),
            self.space_fp
        )
    }
}

/// A concurrent content-addressed cache of encoded problems (level 1 of
/// the service cache hierarchy). Cheap to share: clone the `Arc` holding
/// it. Hit/miss counters are exposed for the service's statistics stream.
#[derive(Debug, Default)]
pub struct ProblemCache {
    map: Mutex<HashMap<ProblemKey, Arc<EncodedProblem>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProblemCache {
    pub fn new() -> ProblemCache {
        ProblemCache::default()
    }

    /// The cache map, recovering from mutex poisoning: a panic in a thread
    /// that held the lock (e.g. an isolated solver panic in a serving
    /// daemon) must not take the shared cache down with it — the map's
    /// invariants hold at every await-free lock region, so the poisoned
    /// state is simply the last consistent one.
    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<ProblemKey, Arc<EncodedProblem>>> {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Encode `(f, condition)` through the cache: key it by content, return
    /// the shared problem on a hit, run the full encode pipeline (tape
    /// compilation included) only on a miss. Inapplicable pairs error
    /// without touching the cache, exactly like [`Encoder::encode`].
    pub fn encode(
        &self,
        f: &FunctionalHandle,
        condition: Condition,
    ) -> Result<Arc<EncodedProblem>, XcvError> {
        let key = ProblemKey::of(f, condition)?;
        if let Some(hit) = self.map().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // Encode outside the lock: compilation is the expensive part, and
        // distinct keys must not serialize on it. A racing double-encode of
        // the same key is benign (last insert wins, both Arcs are valid).
        let problem = Arc::new(Encoder::encode(f.clone(), condition)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map().insert(key, Arc::clone(&problem));
        Ok(problem)
    }

    /// Cache lines currently held.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_functionals::{IntoFunctional, Registry};

    #[test]
    fn keys_are_stable_and_content_addressed() {
        let reg = Registry::builtin();
        let f = reg.get("LYP").unwrap();
        let k1 = ProblemKey::of(&f, Condition::EcNonPositivity).unwrap();
        let k2 = ProblemKey::of(&f, Condition::EcNonPositivity).unwrap();
        assert_eq!(k1, k2);
        // A different condition or functional changes the key.
        let k3 = ProblemKey::of(&f, Condition::EcScaling).unwrap();
        assert_ne!(k1, k3);
        let g = reg.get("PBE").unwrap();
        let k4 = ProblemKey::of(&g, Condition::EcNonPositivity).unwrap();
        assert_ne!(k1, k4);
        // The rendering is filesystem-safe.
        let name = k1.to_string();
        assert!(name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
    }

    #[test]
    fn inapplicable_pairs_error_without_caching() {
        let reg = Registry::builtin();
        let f = reg.get("LYP").unwrap();
        let cache = ProblemCache::new();
        assert!(cache.encode(&f, Condition::LiebOxford).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn second_encode_hits_without_compiling() {
        let reg = Registry::builtin();
        let f = reg.get("VWN RPA").unwrap();
        let cache = ProblemCache::new();
        let a = cache.encode(&f, Condition::EcNonPositivity).unwrap();
        let before = xcv_solver::compile_count();
        let b = cache.encode(&f, Condition::EcNonPositivity).unwrap();
        // Same Arc, and the warm call compiled nothing. (compile_count is
        // process-global; the parallel test runner could bump it from a
        // sibling test, so only assert when it stayed put — the Arc
        // identity is the strict assertion.)
        assert!(Arc::ptr_eq(&a, &b));
        let after = xcv_solver::compile_count();
        if after == before {
            assert_eq!(cache.stats(), (1, 1));
        }
        // The warm problem is usable as-is.
        assert_eq!(b.functional_name(), "VWN RPA");
    }

    #[test]
    fn equivalent_handles_share_a_cache_line() {
        // The same DFA reached through two registry instances hashes to the
        // same content key: the cache is keyed by what the pair *computes*.
        let f1 = Registry::builtin().get("PBE").unwrap();
        let f2 = Registry::extended().get("PBE").unwrap();
        let cache = ProblemCache::new();
        let a = cache.encode(&f1, Condition::EcNonPositivity).unwrap();
        let b = cache.encode(&f2, Condition::EcNonPositivity).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let _ = xcv_functionals::Dfa::Pbe.into_handle();
    }
}
