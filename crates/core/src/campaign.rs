//! The campaign engine: whole verification matrices as one scheduled,
//! budgeted, observable unit.
//!
//! The paper's headline artifact is not a single verdict but the Table I/II
//! *matrix* — every applicable (functional, condition) pair verified in one
//! run. [`Campaign`] makes that matrix a first-class value:
//!
//! * **building** — [`Campaign::builder`] takes any mix of registry handles
//!   (built-in `Dfa` variants, runtime-registered DSL functionals), a
//!   condition subset (default: all seven), and a [`VerifierConfig`];
//! * **scheduling** — applicable pairs are encoded up front, ranked
//!   costliest-first (by the hand-weighted [`pair_cost`] or, better, a
//!   [`CostModel`] *fit from measured wall-clocks* via
//!   [`CampaignBuilder::cost_model`]) and fanned out across rayon. Each pair
//!   keeps the per-pair deadline from the verifier config; a global
//!   wall-clock budget bounds the whole campaign, and pairs reached after it
//!   expires are recorded as skipped rather than run;
//! * **observing** — [`CampaignEvent`]s stream through a callback (or the
//!   [`CampaignBuilder::event_channel`] convenience) as pairs start, finish,
//!   and produce counterexamples; a [`CancelToken`] stops the campaign at
//!   pair granularity from any thread;
//! * **reporting** — the result is a structured [`CampaignReport`] that
//!   `xcv_report` renders directly into the paper's Tables I/II.

use crate::cache::ProblemCache;
use crate::certify::build_certificate;
use crate::checkpoint::{self, CheckpointCell, CheckpointRegion};
use crate::encoder::{EncodedProblem, Encoder};
use crate::region::{RegionMap, RegionStatus, TableMark};
use crate::verifier::{RegionDetail, RunOptions, RunOutput, Verifier, VerifierConfig};
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xcv_cert::Certificate;
use xcv_conditions::Condition;
use xcv_functionals::{FunctionalHandle, IntoFunctional, Registry, XcvError};
use xcv_solver::SolveStats;

/// Cooperative cancellation for a running campaign. Clone it, hand the clone
/// to another thread (or a ctrl-c handler), and call [`CancelToken::cancel`];
/// pairs that have not started yet are skipped.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// How a campaign orders its cells across the thread pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CampaignSchedule {
    /// Cells run in matrix (functional-major) order — the pre-cost-model
    /// behaviour, kept so the scheduler itself can be benchmarked against
    /// (`solver_bench` records both wall-clocks in `BENCH_solver.json`).
    MatrixOrder,
    /// Cells are ranked by the [`pair_cost`] model and laid out so worker
    /// chunks carry near-equal total cost, costliest cells first — large
    /// meta-GGA/spin pairs no longer straggle at the tail of the pool.
    #[default]
    CostAware,
}

/// Family size class of a cell's expression DAG (the static cost feature).
fn family_class(f: &dyn xcv_functionals::Functional) -> u64 {
    match f.info().family {
        xcv_functionals::Family::Lda => 1,
        xcv_functionals::Family::Gga => 4,
        xcv_functionals::Family::MetaGga => 16,
    }
}

/// Differentiation-depth class of the condition's encoded atom.
fn condition_class(condition: Condition) -> u64 {
    match condition {
        // F_c alone.
        Condition::EcNonPositivity => 1,
        // F_xc, no derivative.
        Condition::LiebOxfordExt => 2,
        // One rs-derivative.
        Condition::EcScaling | Condition::ConjTcUpperBound => 3,
        // One derivative plus the rs → ∞ substitution copy of F_c.
        Condition::TcUpperBound => 4,
        // F_xc plus a derivative.
        Condition::LiebOxford => 5,
        // Second derivative.
        Condition::UcMonotonicity => 6,
    }
}

/// The hand-weighted scheduler cost for one (functional, condition) cell:
/// split fan-out (`2^ndim` children per recursion level) × family
/// (expression size class) × condition class (differentiation depth of the
/// encoded atom). The absolute scale is meaningless — only ratios matter,
/// and only for ordering; the model never gates work. A [`CostModel`] *fit
/// from measured wall-clocks* over the same features replaces these
/// hand weights when attached via [`CampaignBuilder::cost_model`].
pub fn pair_cost(f: &dyn xcv_functionals::Functional, condition: Condition) -> u64 {
    let fanout = 1u64 << f.var_space().ndim().min(8);
    family_class(f) * fanout * condition_class(condition)
}

/// Raw feature vector of one matrix cell, in the order the cost model is
/// fit over: `(family class, 2^ndim split fan-out, condition class)`.
pub fn pair_features(f: &dyn xcv_functionals::Functional, condition: Condition) -> [f64; 3] {
    [
        family_class(f) as f64,
        (1u64 << f.var_space().ndim().min(8)) as f64,
        condition_class(condition) as f64,
    ]
}

/// A scheduling cost model **fit from measurement** instead of
/// hand-weighted: ordinary least squares (lightly ridge-regularized, so
/// degenerate sample sets — e.g. a single family — stay solvable) of
/// `ln(1 + wall_ms)` over `[1, ln family, ln 2^ndim, ln class]`, the
/// logged [`pair_features`]. The exponent form keeps predictions positive
/// and makes the fit multiplicative, matching the hand model's shape while
/// letting the data choose the weights.
///
/// Fit one from the `PairOutcome::{wall_ms}` samples a campaign already
/// records ([`CampaignReport::fit_cost_model`]), persist it (the
/// `solver_bench` binary writes a `cost_model` entry into
/// `BENCH_solver.json`), and attach it to the next campaign with
/// [`CampaignBuilder::cost_model`].
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// `[w0, w_family, w_fanout, w_class]` of the log-linear predictor.
    pub weights: [f64; 4],
    /// Number of measured cells behind the fit.
    pub samples: usize,
    /// In-sample coefficient of determination on `ln(1 + wall_ms)`.
    pub r2: f64,
}

impl CostModel {
    /// Least-squares fit over `(features, wall_ms)` samples. `None` when no
    /// samples were provided.
    pub fn fit(samples: &[([f64; 3], f64)]) -> Option<CostModel> {
        if samples.is_empty() {
            return None;
        }
        let mut xtx = [[0.0f64; 4]; 4];
        let mut xty = [0.0f64; 4];
        let mut mean_y = 0.0;
        let rows: Vec<([f64; 4], f64)> = samples
            .iter()
            .map(|(feat, ms)| {
                let x = [1.0, feat[0].ln(), feat[1].ln(), feat[2].ln()];
                let y = (1.0 + ms.max(0.0)).ln();
                (x, y)
            })
            .collect();
        for (x, y) in &rows {
            for i in 0..4 {
                for j in 0..4 {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
            mean_y += y;
        }
        mean_y /= rows.len() as f64;
        // Tiny ridge: collinear feature columns (every cell one family, say)
        // must not make the normal equations singular.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-6;
        }
        let weights = solve4(xtx, xty)?;
        let (mut ss_res, mut ss_tot) = (0.0, 0.0);
        for (x, y) in &rows {
            let pred: f64 = weights.iter().zip(x).map(|(w, xi)| w * xi).sum();
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - mean_y) * (y - mean_y);
        }
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Some(CostModel {
            weights,
            samples: rows.len(),
            r2,
        })
    }

    /// Load the `cost_model` entry persisted in a `BENCH_solver.json`
    /// written by the `solver_bench` binary, so long campaigns start from
    /// *measured* scheduling weights instead of the hand-tuned
    /// [`pair_cost`]. Returns `None` — callers fall back to `pair_cost` —
    /// when the file is missing, unreadable, or carries no well-formed
    /// entry (absent weights, non-finite values); a stale-but-valid model
    /// still only affects ordering, never results.
    pub fn load_bench_json(path: impl AsRef<std::path::Path>) -> Option<CostModel> {
        let json = std::fs::read_to_string(path).ok()?;
        let entry = &json[json.find("\"cost_model\"")?..];
        let field = |key: &str| -> Option<&str> {
            let rest = &entry[entry.find(&format!("\"{key}\":"))? + key.len() + 3..];
            let rest = rest.trim_start();
            if let Some(stripped) = rest.strip_prefix('[') {
                return Some(stripped[..stripped.find(']')?].trim());
            }
            Some(rest[..rest.find([',', '}', ']'])?].trim())
        };
        let weights: Vec<f64> = field("weights")?
            .split(',')
            .map(|w| w.trim().parse().ok())
            .collect::<Option<_>>()?;
        let weights: [f64; 4] = weights.try_into().ok()?;
        if weights.iter().any(|w| !w.is_finite()) {
            return None;
        }
        let samples: usize = field("samples")?.parse().ok()?;
        let r2: f64 = field("r2")?.parse().ok()?;
        (samples > 0 && (0.0..=1.0).contains(&r2)).then_some(CostModel {
            weights,
            samples,
            r2,
        })
    }

    /// Predicted relative cost of one cell: `exp` of the fitted log-cost
    /// (`≈ 1 + wall_ms` in the fit's units). Only ratios matter for the
    /// schedule.
    pub fn predict(&self, f: &dyn xcv_functionals::Functional, condition: Condition) -> f64 {
        let feat = pair_features(f, condition);
        let x = [1.0, feat[0].ln(), feat[1].ln(), feat[2].ln()];
        let log = self
            .weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f64>();
        let v = log.exp();
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }
}

/// Solve a 4×4 linear system by Gaussian elimination with partial pivoting.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        let pivot = (col..4).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pivot_row = a[col];
        for row in col + 1..4 {
            let factor = a[row][col] / pivot_row[col];
            for (k, p) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 4];
    for row in (0..4).rev() {
        let mut v = b[row];
        for k in row + 1..4 {
            v -= a[row][k] * x[k];
        }
        x[row] = v / a[row][row];
    }
    x.iter().all(|v| v.is_finite()).then_some(x)
}

/// Lay cells out for the chunked thread pool: indices sorted costliest
/// first, then dealt LPT-style (longest-processing-time) into `workers`
/// equal-size buckets whose concatenation becomes the execution order —
/// each contiguous worker chunk then carries a near-equal share of the
/// modeled cost instead of, say, every SCAN cell landing in one chunk.
fn cost_aware_order(costs: &[f64], workers: usize) -> Vec<usize> {
    let n = costs.len();
    let k = workers.clamp(1, n.max(1));
    let cap = n.div_ceil(k);
    let mut ranked: Vec<usize> = (0..n).collect();
    // Ties keep matrix order, making the schedule deterministic; NaN never
    // occurs (predictions are finiteness-guarded) but would sort last.
    ranked.sort_by(|&i, &j| {
        costs[j]
            .partial_cmp(&costs[i])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut loads = vec![0.0f64; k];
    for i in ranked {
        let b = (0..k)
            .filter(|&b| buckets[b].len() < cap)
            .min_by(|&x, &y| {
                loads[x]
                    .partial_cmp(&loads[y])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.cmp(&y))
            })
            .expect("cap * k >= n");
        buckets[b].push(i);
        loads[b] += costs[i];
    }
    buckets.concat()
}

/// A cell that never encoded, with the reason it was skipped.
type SkippedCell = (FunctionalHandle, Condition, SkipReason);

/// One scheduled matrix cell: modeled cost plus the encoded problem (or its
/// skip outcome). Problems sit behind `Arc` so an attached
/// [`ProblemCache`] can share one compiled instance across campaigns.
type CampaignCell = (u64, Result<Arc<EncodedProblem>, SkippedCell>);

/// Why a pair was not verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The condition does not apply to the functional (Table I's `−`).
    NotApplicable,
    /// Encoding failed for a reason *other* than inapplicability — e.g. a
    /// functional whose metadata claims an exchange part its
    /// implementation does not provide. The cell is undecided, and the
    /// defect is surfaced rather than rendered as a legitimate `−`.
    EncodeFailed,
    /// The campaign's global wall-clock budget expired first.
    BudgetExhausted,
    /// The campaign was cancelled first (or mid-pair: the outcome's map
    /// then contains the [`RegionStatus::Cancelled`] leaves a checkpointed
    /// resume picks up from).
    Cancelled,
    /// A `--shard i/n` run assigned this cell to a different shard; merge
    /// the shard reports with [`CampaignReport::merge`].
    OtherShard,
}

/// Progress notifications streamed while a campaign runs. Delivered from
/// worker threads in completion order, not matrix order.
#[derive(Clone, Debug)]
pub enum CampaignEvent {
    PairStarted {
        functional: String,
        condition: Condition,
    },
    /// A δ-SAT model that exactly violates ψ was found for this pair. One
    /// event per (deduplicated) witness, emitted after the pair's
    /// verification completes and before its `PairFinished` — witnesses are
    /// not streamed mid-verify, so cancellation reacts at pair granularity.
    CounterexampleFound {
        functional: String,
        condition: Condition,
        witness: Vec<f64>,
    },
    PairFinished {
        functional: String,
        condition: Condition,
        mark: TableMark,
        wall_ms: u128,
    },
    PairSkipped {
        functional: String,
        condition: Condition,
        reason: SkipReason,
    },
}

/// Everything the campaign produced for one matrix cell.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    pub functional: FunctionalHandle,
    pub condition: Condition,
    /// The Table I mark ([`TableMark::NotApplicable`] for `−` cells,
    /// [`TableMark::Unknown`] for budget/cancel skips).
    pub mark: TableMark,
    /// The verifier's region map (absent for inapplicable or skipped pairs).
    pub map: Option<RegionMap>,
    pub wall_ms: u128,
    /// Set when the pair never ran — or, for [`SkipReason::Cancelled`]
    /// with a map present, ran partially (resumable from a checkpoint).
    pub skipped: Option<SkipReason>,
    /// The scheduler's modeled cost for this cell (see [`pair_cost`]).
    pub cost: u64,
    /// Aggregated solver statistics over the pair's whole box tree (absent
    /// when the pair never ran).
    pub stats: Option<SolveStats>,
    /// Recursion depth of each region of `map`, index-aligned with
    /// `map.regions` (absent when the pair never ran). Persisted in
    /// checkpoints so resumed leaves re-verify at their original depth.
    pub region_depths: Option<Vec<u32>>,
    /// The replayable proof certificate, when
    /// [`CampaignBuilder::emit_certificates`] was set and the run was
    /// replayable (complete scalar HC4 traces, no cancellation).
    pub certificate: Option<Certificate>,
}

impl PairOutcome {
    pub fn functional_name(&self) -> String {
        self.functional.name()
    }
}

/// The structured result of a campaign run: one [`PairOutcome`] per matrix
/// cell, in functional-major (column-major) matrix order.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The functionals of the campaign, in builder order.
    pub functionals: Vec<FunctionalHandle>,
    /// The conditions of the campaign, in builder order.
    pub conditions: Vec<Condition>,
    pub pairs: Vec<PairOutcome>,
    /// Total campaign wall time.
    pub wall_ms: u128,
}

impl CampaignReport {
    /// The outcome for a cell, by functional name (case-insensitive).
    pub fn outcome(&self, functional: &str, condition: Condition) -> Option<&PairOutcome> {
        self.pairs.iter().find(|p| {
            p.condition == condition && p.functional.name().eq_ignore_ascii_case(functional)
        })
    }

    /// The Table I mark for a cell.
    pub fn mark(&self, functional: &str, condition: Condition) -> Option<TableMark> {
        self.outcome(functional, condition).map(|p| p.mark)
    }

    /// Pairs that actually encoded (inapplicable and encode-failed cells
    /// excluded).
    pub fn encoded_pairs(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| {
                !matches!(
                    p.skipped,
                    Some(SkipReason::NotApplicable | SkipReason::EncodeFailed)
                )
            })
            .count()
    }

    /// Count cells by mark predicate (for the paper's summary lines).
    pub fn count(&self, pred: impl Fn(TableMark) -> bool) -> usize {
        self.pairs.iter().filter(|p| pred(p.mark)).count()
    }

    /// Fit a [`CostModel`] from this report's measured `wall_ms` samples
    /// (cells that actually ran). `None` when nothing ran.
    pub fn fit_cost_model(&self) -> Option<CostModel> {
        let samples: Vec<([f64; 3], f64)> = self
            .pairs
            .iter()
            .filter(|p| p.skipped.is_none())
            .map(|p| {
                (
                    pair_features(p.functional.as_ref(), p.condition),
                    p.wall_ms as f64,
                )
            })
            .collect();
        CostModel::fit(&samples)
    }

    /// All counterexample witnesses, as (functional name, condition, point).
    pub fn counterexamples(&self) -> Vec<(String, Condition, Vec<f64>)> {
        let mut out = Vec::new();
        for p in &self.pairs {
            if let Some(map) = &p.map {
                for ce in map.counterexamples() {
                    out.push((p.functional.name(), p.condition, ce.to_vec()));
                }
            }
        }
        out
    }

    /// The certificate file name for a cell (deterministic slug, shared by
    /// [`CampaignReport::write_certificates`] and the `xcverify` gate).
    pub fn certificate_file_name(functional: &str, condition: Condition) -> String {
        let slug = |s: &str| -> String {
            s.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect()
        };
        format!(
            "{}__{}.json",
            slug(functional),
            slug(&format!("{condition:?}"))
        )
    }

    /// Write every attached certificate (see
    /// [`CampaignBuilder::emit_certificates`]) into `dir`, one JSON file
    /// per certified pair, creating the directory. Returns the written
    /// paths in matrix order; each file replays standalone under
    /// `xcvcheck`.
    pub fn write_certificates(&self, dir: impl AsRef<Path>) -> std::io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut out = Vec::new();
        for p in &self.pairs {
            if let Some(cert) = &p.certificate {
                let path = dir.join(Self::certificate_file_name(
                    &p.functional_name(),
                    p.condition,
                ));
                std::fs::write(&path, cert.to_json())?;
                out.push(path);
            }
        }
        Ok(out)
    }

    /// Merge the reports of a sharded campaign (each produced with
    /// [`CampaignBuilder::shard`] over the same matrix): for every cell the
    /// shard that *owned* it contributes its outcome, the
    /// [`SkipReason::OtherShard`] placeholders of the rest are discarded.
    /// Errors when the reports cover different matrices.
    pub fn merge(
        reports: impl IntoIterator<Item = CampaignReport>,
    ) -> Result<CampaignReport, String> {
        let mut iter = reports.into_iter();
        let mut base = iter.next().ok_or("no reports to merge")?;
        for other in iter {
            if other.pairs.len() != base.pairs.len() {
                return Err(format!(
                    "cannot merge: {} cells vs {}",
                    other.pairs.len(),
                    base.pairs.len()
                ));
            }
            for (a, b) in base.pairs.iter_mut().zip(other.pairs) {
                if a.functional.name() != b.functional.name() || a.condition != b.condition {
                    return Err(format!(
                        "cannot merge: cell {} / {:?} vs {} / {:?}",
                        a.functional.name(),
                        a.condition,
                        b.functional.name(),
                        b.condition
                    ));
                }
                if a.skipped == Some(SkipReason::OtherShard)
                    && b.skipped != Some(SkipReason::OtherShard)
                {
                    *a = b;
                }
            }
            base.wall_ms = base.wall_ms.max(other.wall_ms);
        }
        Ok(base)
    }
}

/// The engine width a cell actually runs at under a campaign-wide
/// [`CampaignBuilder::batch_width`] override: cells the measured model
/// predicts as sub-millisecond (`predict` ≈ 1 + wall_ms, so `< 2.0`) are
/// demoted to the scalar path — the batched frontier only adds dispatch
/// overhead there. Marks are width-invariant either way
/// (`tests/solver_batched.rs` pins bit-identity at every width).
fn effective_batch_width(
    requested: usize,
    model: Option<&CostModel>,
    functional: &dyn xcv_functionals::Functional,
    condition: Condition,
) -> usize {
    match model {
        Some(m) if m.predict(functional, condition) < 2.0 => 1,
        _ => requested,
    }
}

/// The escalation ladder a cell actually runs with under a campaign-wide
/// [`CampaignBuilder::escalation`] override: the same sub-millisecond
/// demotion as [`effective_batch_width`] — cells the measured model says
/// never stall gain nothing from rung 1/2 machinery, so they keep the plain
/// HC4 path. Ladder rungs only ever tighten or prune, so marks stay
/// unchanged-or-better either way (pinned by the ladder bench suites).
fn effective_escalation(
    requested: xcv_solver::Escalation,
    model: Option<&CostModel>,
    functional: &dyn xcv_functionals::Functional,
    condition: Condition,
) -> xcv_solver::Escalation {
    match model {
        Some(m) if m.predict(functional, condition) < 2.0 => xcv_solver::Escalation::off(),
        _ => requested,
    }
}

/// Decision rank of a mark for the budget-escalation retry pass: a retry
/// is accepted only when it climbs this ladder (or ties it with strictly
/// fewer undecided regions). `Verified` and `Counterexample` are both
/// fully decided — a retry can never trade one for the other, because the
/// solver is sound (a counterexample is an exact witness, a verification
/// an exhaustive cover; more budget cannot contradict either).
fn mark_rank(mark: TableMark) -> u8 {
    match mark {
        TableMark::Unknown | TableMark::NotApplicable => 0,
        TableMark::PartiallyVerified => 1,
        TableMark::Verified | TableMark::Counterexample => 2,
    }
}

/// Regions of a pair's map still undecided (timeout/inconclusive/cancelled).
fn undecided_regions(p: &PairOutcome) -> usize {
    p.map.as_ref().map_or(usize::MAX, |m| {
        m.regions
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    RegionStatus::Timeout | RegionStatus::Inconclusive | RegionStatus::Cancelled
                )
            })
            .count()
    })
}

/// "Marks may only improve": accept the retried outcome over the recorded
/// one only on a strict improvement — higher mark rank, or the same rank
/// with strictly fewer undecided regions. Retries that were skipped
/// (budget/cancel gate) never replace a recorded outcome.
fn improves(old: &PairOutcome, new: &PairOutcome) -> bool {
    if new.skipped.is_some() {
        return false;
    }
    let (or, nr) = (mark_rank(old.mark), mark_rank(new.mark));
    nr > or || (nr == or && undecided_regions(new) < undecided_regions(old))
}

/// Deterministic LPT assignment of cells to `of` shards: cells ranked by
/// modeled cost (descending; matrix index breaks ties), each assigned to
/// the least-loaded shard so far (ties to the lowest shard index). Every
/// process computing this over the same matrix and cost model produces the
/// same assignment — the whole point: shards coordinate by construction,
/// not by communication. `None` costs (cells that never encoded) stay
/// unassigned; every shard reports those identically.
fn shard_assignment(costs: &[Option<f64>], of: usize) -> Vec<Option<usize>> {
    let mut ranked: Vec<usize> = (0..costs.len()).filter(|&i| costs[i].is_some()).collect();
    ranked.sort_by(|&i, &j| {
        costs[j]
            .partial_cmp(&costs[i])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    let mut loads = vec![0.0f64; of.max(1)];
    let mut owner = vec![None; costs.len()];
    for i in ranked {
        let s = (0..loads.len())
            .min_by(|&x, &y| {
                loads[x]
                    .partial_cmp(&loads[y])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.cmp(&y))
            })
            .expect("at least one shard");
        owner[i] = Some(s);
        loads[s] += costs[i].unwrap_or(0.0);
    }
    owner
}

type EventCallback = Arc<dyn Fn(&CampaignEvent) + Send + Sync>;
type ConfigPolicy =
    Arc<dyn Fn(&dyn xcv_functionals::Functional, Condition) -> VerifierConfig + Send + Sync>;

/// Builder for [`Campaign`]; see the [module documentation](self).
pub struct CampaignBuilder {
    functionals: Vec<FunctionalHandle>,
    conditions: Vec<Condition>,
    config: VerifierConfig,
    config_policy: Option<ConfigPolicy>,
    global_budget_ms: Option<u64>,
    schedule: CampaignSchedule,
    cost_model: Option<CostModel>,
    batch_width: Option<usize>,
    escalation: Option<xcv_solver::Escalation>,
    budget_escalation: Option<(f64, u32)>,
    problem_cache: Option<Arc<ProblemCache>>,
    emit_certificates: bool,
    checkpoint: Option<PathBuf>,
    shard: Option<(usize, usize)>,
    on_event: Vec<EventCallback>,
    cancel: CancelToken,
    fault_plan: Option<Arc<crate::fault::FaultPlan>>,
}

impl CampaignBuilder {
    /// Add functionals (any `impl IntoFunctional`: `Dfa` variants, handles).
    pub fn functionals<I, F>(mut self, fs: I) -> Self
    where
        I: IntoIterator<Item = F>,
        F: IntoFunctional,
    {
        self.functionals
            .extend(fs.into_iter().map(IntoFunctional::into_handle));
        self
    }

    /// Add one functional.
    pub fn functional(mut self, f: impl IntoFunctional) -> Self {
        self.functionals.push(f.into_handle());
        self
    }

    /// Add every functional of a registry, in registration order.
    pub fn registry(mut self, registry: &Registry) -> Self {
        self.functionals.extend(registry.iter().cloned());
        self
    }

    /// Restrict the conditions (default: all seven, Table I row order).
    pub fn conditions(mut self, cs: impl IntoIterator<Item = Condition>) -> Self {
        self.conditions = cs.into_iter().collect();
        self
    }

    /// The verifier configuration every pair runs with (per-pair deadline
    /// included, via [`VerifierConfig::pair_deadline_ms`]).
    pub fn config(mut self, config: VerifierConfig) -> Self {
        self.config = config;
        self
    }

    /// Derive the verifier configuration per pair instead of using one base
    /// config — e.g. coarser recursion floors for 3-D meta-GGA domains, the
    /// way the reproduction binary tunes per family.
    pub fn config_policy(
        mut self,
        policy: impl Fn(&dyn xcv_functionals::Functional, Condition) -> VerifierConfig
            + Send
            + Sync
            + 'static,
    ) -> Self {
        self.config_policy = Some(Arc::new(policy));
        self
    }

    /// Global wall-clock budget for the whole campaign. Pairs reached after
    /// it expires are skipped ([`SkipReason::BudgetExhausted`]); a running
    /// pair additionally has its own deadline clamped to the remaining
    /// budget.
    pub fn global_budget_ms(mut self, ms: u64) -> Self {
        self.global_budget_ms = Some(ms);
        self
    }

    /// How cells are ordered across the pool (default:
    /// [`CampaignSchedule::CostAware`], costliest-first with balanced worker
    /// chunks). The report is always in matrix order regardless.
    pub fn schedule(mut self, schedule: CampaignSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Rank cells with a measured [`CostModel`] instead of the hand-weighted
    /// [`pair_cost`] (only affects [`CampaignSchedule::CostAware`]). Fit one
    /// from a previous run's report ([`CampaignReport::fit_cost_model`]) or
    /// load the persisted `cost_model` entry of `BENCH_solver.json`
    /// ([`CostModel::load_bench_json`]).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Solver frontier batch width for every pair (overrides whatever the
    /// base config or the config policy set): how many boxes each
    /// branch-and-prune tape pass evaluates at once. Outcomes and marks are
    /// identical at any width — this knob only trades per-box overhead for
    /// batched instruction dispatch and dirty-slot child re-evaluation.
    pub fn batch_width(mut self, width: usize) -> Self {
        self.batch_width = Some(width.max(1));
        self
    }

    /// Contractor escalation ladder for every pair (overrides whatever the
    /// base config or the config policy set): boxes whose HC4 contraction
    /// stalls escalate to interval-Newton (rung 1) and 3B slab shaving
    /// (rung 2) instead of burning budget on bisection — the knob that
    /// turns timeout cells into decisions. Under a measured [`CostModel`],
    /// cells predicted sub-millisecond keep the plain HC4 path (the ladder
    /// cannot help where nothing stalls). Composes with certificate
    /// emission: ladder steps are recorded and replayed by `xcvcheck`.
    pub fn escalation(mut self, esc: xcv_solver::Escalation) -> Self {
        self.escalation = Some(esc);
        self
    }

    /// Budget-escalation retry pass: after the first full pass, re-solve
    /// the still-undecided cells (mark [`TableMark::Unknown`] or
    /// [`TableMark::PartiallyVerified`]) with node/time budgets multiplied
    /// by `factor`, up to `max_rounds` times, compounding per round. Marks
    /// may only improve — a retry whose outcome ranks below (or ties
    /// without reducing undecided regions) the recorded one is discarded,
    /// the same retry-on-timeout semantics the contractor ladder uses.
    /// The global budget and cancellation still gate every retry.
    ///
    /// # Panics
    /// When `factor <= 1.0` (a retry at the same budget can only re-derive
    /// the same undecided mark — a caller bug).
    pub fn budget_escalation(mut self, factor: f64, max_rounds: u32) -> Self {
        assert!(factor > 1.0, "budget escalation factor must exceed 1");
        self.budget_escalation = Some((factor, max_rounds));
        self
    }

    /// Encode cells through a shared [`ProblemCache`] (level 1 of the
    /// verification service): pairs whose content key is already cached
    /// reuse the compiled problem instead of re-running encode + tape
    /// compilation. Attach the same `Arc` to successive campaigns to make
    /// repeat matrices encode-free (observable as a flat
    /// [`xcv_solver::compile_count`]).
    pub fn problem_cache(mut self, cache: Arc<ProblemCache>) -> Self {
        self.problem_cache = Some(cache);
        self
    }

    /// Record a solver trace for every verified leaf and attach a
    /// replayable [`Certificate`] to each completed pair (write them out
    /// with [`CampaignReport::write_certificates`]; audit with the
    /// standalone `xcvcheck` binary). Traced pairs solve on the scalar
    /// path — frontier batching is disabled for them — and every
    /// certificate is replayed through `xcv_cert::check` before being
    /// attached.
    pub fn emit_certificates(mut self, on: bool) -> Self {
        self.emit_certificates = on;
        self
    }

    /// Persist a checkpoint at `path`, atomically rewritten after every
    /// pair. If the file already exists when the campaign runs, completed
    /// cells are restored without re-solving and interrupted cells (the
    /// `Cancelled` leaves a [`CancelToken`] left behind) are resumed in
    /// place — with a deterministic node-budgeted config, the resumed
    /// matrix reproduces the uninterrupted run's marks and aggregate
    /// statistics exactly.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Run only shard `index` of `of` (deterministic LPT over the modeled
    /// cell costs — attach the same [`CostModel`] in every process for a
    /// balanced split). Cells owned by other shards are reported as
    /// [`SkipReason::OtherShard`]; combine the per-shard reports with
    /// [`CampaignReport::merge`].
    ///
    /// # Panics
    /// When `index >= of` or `of == 0` (a caller bug, not a data error).
    pub fn shard(mut self, index: usize, of: usize) -> Self {
        assert!(of >= 1 && index < of, "shard {index}/{of} out of range");
        self.shard = Some((index, of));
        self
    }

    /// Stream events to a callback (may be called from worker threads;
    /// multiple callbacks compose).
    pub fn on_event(mut self, f: impl Fn(&CampaignEvent) + Send + Sync + 'static) -> Self {
        self.on_event.push(Arc::new(f));
        self
    }

    /// Convenience: stream events into an `mpsc` channel instead of (or in
    /// addition to) callbacks. Returns the receiving end.
    pub fn event_channel(self) -> (Self, mpsc::Receiver<CampaignEvent>) {
        let (tx, rx) = mpsc::channel();
        let tx = Mutex::new(tx);
        let b = self.on_event(move |e| {
            if let Ok(tx) = tx.lock() {
                let _ = tx.send(e.clone());
            }
        });
        (b, rx)
    }

    /// Attach a cancellation token (see [`CancelToken`]).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attach a deterministic [`crate::fault::FaultPlan`] (test harness
    /// hook): a plan arming [`crate::fault::FaultSite::SolverPanic`] makes
    /// scheduled solves panic on the plan's schedule, exercising the
    /// serving layer's panic isolation. Without a plan (the default, and
    /// the only production configuration) nothing is injected.
    pub fn fault_plan(mut self, plan: Arc<crate::fault::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Finish building. Fails with [`XcvError::UnknownFunctional`] when no
    /// functionals were supplied (an empty campaign is always a caller bug)
    /// and with [`XcvError::DuplicateFunctional`] on duplicate names —
    /// reports key cells by name, so aliased columns would be ambiguous.
    pub fn build(self) -> Result<Campaign, XcvError> {
        if self.functionals.is_empty() {
            return Err(XcvError::UnknownFunctional(
                "(campaign has no functionals)".into(),
            ));
        }
        let mut names: Vec<String> = self
            .functionals
            .iter()
            .map(|f| f.name().to_ascii_lowercase())
            .collect();
        names.sort();
        if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(XcvError::DuplicateFunctional(dup[0].clone()));
        }
        Ok(Campaign {
            functionals: self.functionals,
            conditions: self.conditions,
            config: self.config,
            config_policy: self.config_policy,
            global_budget_ms: self.global_budget_ms,
            schedule: self.schedule,
            cost_model: self.cost_model,
            batch_width: self.batch_width,
            escalation: self.escalation,
            budget_escalation: self.budget_escalation,
            problem_cache: self.problem_cache,
            emit_certificates: self.emit_certificates,
            checkpoint: self.checkpoint,
            shard: self.shard,
            on_event: self.on_event,
            cancel: self.cancel,
            fault_plan: self.fault_plan,
        })
    }
}

/// A verification campaign over a (functionals × conditions) matrix.
pub struct Campaign {
    functionals: Vec<FunctionalHandle>,
    conditions: Vec<Condition>,
    config: VerifierConfig,
    config_policy: Option<ConfigPolicy>,
    global_budget_ms: Option<u64>,
    schedule: CampaignSchedule,
    cost_model: Option<CostModel>,
    batch_width: Option<usize>,
    escalation: Option<xcv_solver::Escalation>,
    budget_escalation: Option<(f64, u32)>,
    problem_cache: Option<Arc<ProblemCache>>,
    emit_certificates: bool,
    checkpoint: Option<PathBuf>,
    shard: Option<(usize, usize)>,
    on_event: Vec<EventCallback>,
    cancel: CancelToken,
    fault_plan: Option<Arc<crate::fault::FaultPlan>>,
}

impl Campaign {
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder {
            functionals: Vec::new(),
            conditions: Condition::all().to_vec(),
            config: VerifierConfig::default(),
            config_policy: None,
            global_budget_ms: None,
            schedule: CampaignSchedule::default(),
            cost_model: None,
            batch_width: None,
            escalation: None,
            budget_escalation: None,
            problem_cache: None,
            emit_certificates: false,
            checkpoint: None,
            shard: None,
            on_event: Vec::new(),
            cancel: CancelToken::new(),
            fault_plan: None,
        }
    }

    fn emit(&self, event: CampaignEvent) {
        for cb in &self.on_event {
            cb(&event);
        }
    }

    /// Milliseconds left in the global budget (`None` = unbounded).
    fn remaining_ms(&self, start: Instant) -> Option<u64> {
        self.global_budget_ms.map(|ms| {
            u64::try_from(u128::from(ms).saturating_sub(start.elapsed().as_millis())).unwrap_or(0)
        })
    }

    /// Run the campaign: encode every cell, order the applicable pairs by
    /// the configured [`CampaignSchedule`], fan them out across rayon, and
    /// collect a [`CampaignReport`] — always in matrix order, whatever the
    /// execution order was.
    pub fn run(&self) -> CampaignReport {
        let start = Instant::now();
        // Encode the full matrix up front (cheap relative to solving): cells
        // are either an EncodedProblem or a skip outcome, each tagged with
        // its modeled scheduling cost.
        let cells: Vec<CampaignCell> = self
            .functionals
            .iter()
            .flat_map(|f| {
                self.conditions.iter().map(move |&cond| {
                    let cost = pair_cost(f.as_ref(), cond);
                    // An attached problem cache short-circuits encode + tape
                    // compilation for content-identical pairs; without one,
                    // encode fresh as before.
                    let cell = match &self.problem_cache {
                        Some(cache) => cache.encode(f, cond),
                        None => Encoder::encode(f, cond).map(Arc::new),
                    }
                    .map_err(|e| {
                        // A genuine `−` cell vs. a defective functional
                        // (e.g. metadata promises an exchange part the
                        // implementation lacks): the latter must not render
                        // as a legitimate "not applicable".
                        let reason = match e {
                            XcvError::NotApplicable { .. } => SkipReason::NotApplicable,
                            _ => SkipReason::EncodeFailed,
                        };
                        (Arc::clone(f), cond, reason)
                    });
                    (cost, cell)
                })
            })
            .collect();
        // Shard ownership: deterministic, communication-free (see
        // `shard_assignment`). `None` = single-process campaign.
        let owner: Option<Vec<Option<usize>>> = self.shard.map(|(_, of)| {
            let costs: Vec<Option<f64>> = cells
                .iter()
                .map(|(cost, cell)| match (cell, &self.cost_model) {
                    (Err(_), _) => None,
                    (Ok(p), Some(m)) => Some(m.predict(p.functional.as_ref(), p.condition)),
                    (Ok(_), None) => Some(*cost as f64),
                })
                .collect();
            shard_assignment(&costs, of)
        });
        // Checkpoint: restore what a previous (interrupted) run persisted,
        // and keep a live store rewritten after every pair. A truncated or
        // unparseable checkpoint is quarantined (renamed `*.bad`) and the
        // campaign recomputes from scratch — corruption may cost work,
        // never correctness and never a crash.
        let restored: HashMap<(String, Condition), CheckpointCell> = self
            .checkpoint
            .as_deref()
            .filter(|p| p.exists())
            .and_then(|p| match checkpoint::load(p) {
                Ok(cs) => Some(cs),
                Err(e) => {
                    match xcv_cert::store::quarantine(p) {
                        Ok(dest) => eprintln!(
                            "xcv: corrupt checkpoint {} ({e}); quarantined to {} and recomputing",
                            p.display(),
                            dest.display()
                        ),
                        Err(io) => eprintln!(
                            "xcv: corrupt checkpoint {} ({e}); quarantine failed ({io}), recomputing",
                            p.display()
                        ),
                    }
                    None
                }
            })
            .map(|cs| {
                cs.into_iter()
                    .map(|c| ((c.functional.to_ascii_lowercase(), c.condition), c))
                    .collect()
            })
            .unwrap_or_default();
        let store: Option<Mutex<HashMap<(String, Condition), CheckpointCell>>> = self
            .checkpoint
            .as_ref()
            .map(|_| Mutex::new(restored.clone()));
        // Schedule: one rayon task per cell, in cost-aware or matrix order.
        // The verifier's own recursion fans out further below
        // parallel_depth, so the pool stays busy even for campaigns smaller
        // than the machine.
        let order: Vec<usize> = match self.schedule {
            CampaignSchedule::MatrixOrder => (0..cells.len()).collect(),
            CampaignSchedule::CostAware => {
                let costs: Vec<f64> = cells
                    .iter()
                    // Skip cells solve nothing; keep them out of the load
                    // balance. A measured model, when attached, replaces the
                    // hand-weighted ranking.
                    .map(|(cost, cell)| match (cell, &self.cost_model) {
                        (Err(_), _) => 0.0,
                        (Ok(p), Some(m)) => m.predict(p.functional.as_ref(), p.condition),
                        (Ok(_), None) => *cost as f64,
                    })
                    .collect();
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4);
                cost_aware_order(&costs, workers)
            }
        };
        let scheduled: Vec<(usize, &CampaignCell)> =
            order.iter().map(|&i| (i, &cells[i])).collect();
        let mut indexed: Vec<(usize, PairOutcome)> = scheduled
            .par_iter()
            .map(|&(i, (cost, cell))| {
                let outcome = match cell {
                    Err((f, cond, reason)) => {
                        self.emit(CampaignEvent::PairSkipped {
                            functional: f.name(),
                            condition: *cond,
                            reason: *reason,
                        });
                        PairOutcome {
                            functional: Arc::clone(f),
                            condition: *cond,
                            mark: match reason {
                                SkipReason::NotApplicable => TableMark::NotApplicable,
                                _ => TableMark::Unknown,
                            },
                            map: None,
                            wall_ms: 0,
                            skipped: Some(*reason),
                            cost: *cost,
                            stats: None,
                            region_depths: None,
                            certificate: None,
                        }
                    }
                    Ok(problem) => {
                        let not_mine = match (self.shard, owner.as_ref()) {
                            (Some((mine, _)), Some(own)) => own[i] != Some(mine),
                            _ => false,
                        };
                        if not_mine {
                            self.emit(CampaignEvent::PairSkipped {
                                functional: problem.functional.name(),
                                condition: problem.condition,
                                reason: SkipReason::OtherShard,
                            });
                            PairOutcome {
                                functional: Arc::clone(&problem.functional),
                                condition: problem.condition,
                                mark: TableMark::Unknown,
                                map: None,
                                wall_ms: 0,
                                skipped: Some(SkipReason::OtherShard),
                                cost: *cost,
                                stats: None,
                                region_depths: None,
                                certificate: None,
                            }
                        } else {
                            let key = (
                                problem.functional.name().to_ascii_lowercase(),
                                problem.condition,
                            );
                            let out = PairOutcome {
                                cost: *cost,
                                ..self.run_pair(problem.as_ref(), start, restored.get(&key), 1.0)
                            };
                            self.persist(&out, store.as_ref(), key);
                            out
                        }
                    }
                };
                (i, outcome)
            })
            .collect();
        indexed.sort_by_key(|&(i, _)| i);
        let mut pairs: Vec<PairOutcome> = indexed.into_iter().map(|(_, p)| p).collect();
        // Budget-escalation retry rounds: re-solve still-undecided cells
        // with compounded budgets; accept a retry only when it strictly
        // improves (see `CampaignBuilder::budget_escalation`).
        if let Some((factor, max_rounds)) = self.budget_escalation {
            for round in 1..=max_rounds {
                let scale = factor.powi(round as i32);
                let retriable: Vec<usize> = pairs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        p.skipped.is_none()
                            && matches!(p.mark, TableMark::Unknown | TableMark::PartiallyVerified)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if retriable.is_empty() || self.cancel.is_cancelled() {
                    break;
                }
                if self.remaining_ms(start) == Some(0) {
                    break;
                }
                let retried: Vec<(usize, PairOutcome)> = retriable
                    .par_iter()
                    .map(|&i| {
                        let p = &pairs[i];
                        let problem = match &cells[i].1 {
                            Ok(problem) => problem,
                            Err(_) => unreachable!("retriable cells ran, so they encoded"),
                        };
                        let out = PairOutcome {
                            cost: p.cost,
                            ..self.run_pair(problem.as_ref(), start, None, scale)
                        };
                        (i, out)
                    })
                    .collect();
                for (i, out) in retried {
                    if improves(&pairs[i], &out) {
                        let key = (out.functional.name().to_ascii_lowercase(), out.condition);
                        self.persist(&out, store.as_ref(), key);
                        pairs[i] = out;
                    }
                }
            }
        }
        CampaignReport {
            functionals: self.functionals.clone(),
            conditions: self.conditions.clone(),
            pairs,
            wall_ms: start.elapsed().as_millis(),
        }
    }

    /// One pair's verification; `budget_scale` multiplies the per-box
    /// node/time budgets and the pair deadline (1.0 on the primary pass;
    /// `factor^round` on budget-escalation retries).
    fn run_pair(
        &self,
        problem: &EncodedProblem,
        start: Instant,
        prior: Option<&CheckpointCell>,
        budget_scale: f64,
    ) -> PairOutcome {
        let name = problem.functional.name();
        let cond = problem.condition;
        let skip = |reason| {
            self.emit(CampaignEvent::PairSkipped {
                functional: name.clone(),
                condition: cond,
                reason,
            });
            PairOutcome {
                functional: Arc::clone(&problem.functional),
                condition: cond,
                mark: TableMark::Unknown,
                map: None,
                wall_ms: 0,
                skipped: Some(reason),
                cost: 0,
                stats: None,
                region_depths: None,
                certificate: None,
            }
        };
        // A completed checkpointed cell is restored verbatim — no events,
        // no re-solving, identical mark and statistics.
        if let Some(rec) = prior.filter(|r| r.complete()) {
            let (regions, depths): (Vec<_>, Vec<_>) = rec.to_regions().into_iter().unzip();
            let map = RegionMap::new(problem.domain.clone(), regions);
            return PairOutcome {
                functional: Arc::clone(&problem.functional),
                condition: cond,
                mark: map.table_mark(),
                map: Some(map),
                wall_ms: rec.wall_ms,
                skipped: None,
                cost: 0,
                stats: Some(rec.stats),
                region_depths: Some(depths),
                certificate: None,
            };
        }
        if self.cancel.is_cancelled() {
            return skip(SkipReason::Cancelled);
        }
        let remaining = self.remaining_ms(start);
        if remaining == Some(0) {
            return skip(SkipReason::BudgetExhausted);
        }
        self.emit(CampaignEvent::PairStarted {
            functional: name.clone(),
            condition: cond,
        });
        // Fault-injection hook (test harness only): a plan arming
        // SolverPanic takes down this solve the way a solver bug would —
        // after the start event, before any result lands.
        if let Some(plan) = &self.fault_plan {
            if plan.should_fire(crate::fault::FaultSite::SolverPanic) {
                panic!("injected fault: solver panic for {name}/{cond:?}");
            }
        }
        // Per-pair deadline, clamped to what is left of the global budget.
        let mut config = match &self.config_policy {
            Some(policy) => policy(problem.functional.as_ref(), cond),
            None => self.config.clone(),
        };
        if budget_scale != 1.0 {
            let scale = |v: u64| -> u64 {
                if v == u64::MAX {
                    v
                } else {
                    (v as f64 * budget_scale).round().min(u64::MAX as f64 / 2.0) as u64
                }
            };
            config.solver.budget.max_nodes = scale(config.solver.budget.max_nodes);
            config.solver.budget.max_millis = scale(config.solver.budget.max_millis);
            config.pair_deadline_ms = config.pair_deadline_ms.map(scale);
        }
        config.pair_deadline_ms = match (config.pair_deadline_ms, remaining) {
            (Some(p), Some(r)) => Some(p.min(r)),
            (p, r) => p.or(r),
        };
        if let Some(w) = self.batch_width {
            config.solver.batch_width = effective_batch_width(
                w,
                self.cost_model.as_ref(),
                problem.functional.as_ref(),
                cond,
            );
        }
        if let Some(esc) = self.escalation {
            config.solver.escalation = effective_escalation(
                esc,
                self.cost_model.as_ref(),
                problem.functional.as_ref(),
                cond,
            );
        }
        if self.emit_certificates {
            // Traced solves run the scalar engine (the escalation ladder,
            // when enabled, stays on — its steps are replayable); keep the
            // recorded config truthful about what actually executed.
            config.solver.batch_width = 1;
        }
        let opts = RunOptions {
            cancel: Some(self.cancel.clone()),
            record_traces: self.emit_certificates,
            base_depth: 0,
        };
        let verifier = Verifier::new(config.clone());
        let t0 = Instant::now();
        let (out, resumed) = match prior {
            // Resume an interrupted cell: re-verify exactly the Cancelled
            // leaves, each at its recorded depth, and splice the results in
            // place. Everything already solved is kept verbatim, so a
            // deterministic config reproduces the uninterrupted run.
            Some(rec) => {
                let mut regions = Vec::new();
                let mut details = Vec::new();
                let mut stats = rec.stats;
                for (region, depth) in rec.to_regions() {
                    if matches!(region.status, RegionStatus::Cancelled) {
                        let sub = verifier.verify_run(
                            &region.domain,
                            problem,
                            &RunOptions {
                                base_depth: depth,
                                ..opts.clone()
                            },
                        );
                        stats.absorb(sub.stats);
                        regions.extend(sub.map.regions);
                        details.extend(sub.details);
                    } else {
                        regions.push(region);
                        details.push(RegionDetail { depth, trace: None });
                    }
                }
                let out = RunOutput {
                    map: RegionMap::new(problem.domain.clone(), regions),
                    stats,
                    details,
                };
                (out, true)
            }
            None => (verifier.verify_run(&problem.domain, problem, &opts), false),
        };
        let wall_ms = t0.elapsed().as_millis()
            + if resumed {
                prior.map_or(0, |r| r.wall_ms)
            } else {
                0
            };
        // Restored traces are not persisted, so resumed cells cannot carry
        // a certificate; uninterrupted traced runs build (and pre-replay)
        // one.
        let certificate = if self.emit_certificates && !resumed {
            build_certificate(problem, &config, &out)
        } else {
            None
        };
        let RunOutput {
            map,
            stats,
            details,
        } = out;
        let interrupted = map
            .regions
            .iter()
            .any(|r| matches!(r.status, RegionStatus::Cancelled));
        for ce in map.counterexamples() {
            self.emit(CampaignEvent::CounterexampleFound {
                functional: name.clone(),
                condition: cond,
                witness: ce.to_vec(),
            });
        }
        let mark = map.table_mark();
        if interrupted {
            self.emit(CampaignEvent::PairSkipped {
                functional: name.clone(),
                condition: cond,
                reason: SkipReason::Cancelled,
            });
        } else {
            self.emit(CampaignEvent::PairFinished {
                functional: name.clone(),
                condition: cond,
                mark,
                wall_ms,
            });
        }
        PairOutcome {
            functional: Arc::clone(&problem.functional),
            condition: cond,
            mark,
            map: Some(map),
            wall_ms,
            skipped: interrupted.then_some(SkipReason::Cancelled),
            cost: 0,
            stats: Some(stats),
            region_depths: Some(details.iter().map(|d| d.depth).collect()),
            certificate,
        }
    }

    /// Record a finished (or partially-finished) pair in the live
    /// checkpoint store and atomically rewrite the checkpoint file. A no-op
    /// without [`CampaignBuilder::checkpoint`] or for pairs that never ran.
    fn persist(
        &self,
        out: &PairOutcome,
        store: Option<&Mutex<HashMap<(String, Condition), CheckpointCell>>>,
        key: (String, Condition),
    ) {
        let (Some(path), Some(store)) = (self.checkpoint.as_deref(), store) else {
            return;
        };
        let (Some(map), Some(depths), Some(stats)) = (&out.map, &out.region_depths, out.stats)
        else {
            return;
        };
        let rec = CheckpointCell {
            functional: out.functional.name(),
            condition: out.condition,
            wall_ms: out.wall_ms,
            stats,
            regions: map
                .regions
                .iter()
                .zip(depths)
                .map(|(r, &d)| CheckpointRegion {
                    domain: r.domain.clone(),
                    status: r.status.clone(),
                    depth: d,
                })
                .collect(),
        };
        if let Ok(mut s) = store.lock() {
            s.insert(key, rec);
            let mut refs: Vec<&CheckpointCell> = s.values().collect();
            refs.sort_by(|a, b| {
                (a.functional.as_str(), format!("{:?}", a.condition))
                    .cmp(&(b.functional.as_str(), format!("{:?}", b.condition)))
            });
            // Best-effort: an unwritable checkpoint must not fail the
            // campaign itself (the report is still returned to the caller).
            let _ = checkpoint::write_atomic(path, &refs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use xcv_functionals::Dfa;
    use xcv_solver::{DeltaSolver, SolveBudget};

    fn quick_config(nodes: u64) -> VerifierConfig {
        VerifierConfig {
            split_threshold: 1.25,
            solver: DeltaSolver::new(1e-3, SolveBudget::nodes(nodes)),
            parallel: false,
            parallel_depth: 3,
            max_depth: 3,
            pair_deadline_ms: None,
        }
    }

    #[test]
    fn empty_campaign_is_an_error() {
        assert!(Campaign::builder().build().is_err());
    }

    #[test]
    fn cost_aware_order_is_a_balanced_permutation() {
        let costs = vec![100.0, 1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 40.0];
        let order = cost_aware_order(&costs, 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        // The costliest cell leads, and the three heavy cells land in three
        // different worker chunks (chunk size = 8 / 4 workers = 2).
        assert_eq!(order[0], 0);
        let chunk_of = |cell: usize| order.iter().position(|&i| i == cell).unwrap() / 2;
        let chunks = [chunk_of(0), chunk_of(4), chunk_of(7)];
        assert_eq!(
            chunks
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3,
            "{order:?}"
        );
        // Degenerate worker counts stay permutations.
        assert_eq!(cost_aware_order(&costs, 1).len(), 8);
        assert_eq!(cost_aware_order(&[], 4), Vec::<usize>::new());
    }

    #[test]
    fn fitted_model_recovers_multiplicative_costs() {
        // Synthetic wall-clocks drawn from an exact multiplicative law:
        // the log-linear least squares must recover it (r² ≈ 1) and the
        // predictions must reproduce the ratios.
        let mut samples = Vec::new();
        for fam in [1.0f64, 4.0, 16.0] {
            for fan in [2.0f64, 4.0, 8.0, 16.0] {
                for class in [1.0f64, 2.0, 3.0, 6.0] {
                    let ms = 0.5 * fam.powf(1.3) * fan.powf(0.7) * class.powf(1.1);
                    samples.push(([fam, fan, class], ms));
                }
            }
        }
        let m = CostModel::fit(&samples).unwrap();
        assert_eq!(m.samples, samples.len());
        assert!(m.r2 > 0.99, "r² = {}", m.r2);
        // Ratio check through the public predictor: SCAN/EC3 features vs
        // VWN/EC1 features differ by a large factor in the law above.
        use xcv_functionals::Functional;
        let heavy = m.predict(&Dfa::Scan, Condition::UcMonotonicity);
        let light = m.predict(&Dfa::VwnRpa, Condition::EcNonPositivity);
        assert!(heavy > 10.0 * light, "{heavy} vs {light}");
        let _ = Dfa::Scan.info();
    }

    #[test]
    fn degenerate_samples_still_fit() {
        // One family, one condition class: two feature columns are constant
        // (collinear with the intercept); the ridge keeps the system
        // solvable and predictions finite and positive.
        let samples = vec![
            ([4.0, 4.0, 3.0], 10.0),
            ([4.0, 4.0, 3.0], 12.0),
            ([4.0, 4.0, 3.0], 11.0),
        ];
        let m = CostModel::fit(&samples).unwrap();
        let p = m.predict(&Dfa::Pbe, Condition::EcScaling);
        assert!(p.is_finite() && p > 0.0);
        assert!(CostModel::fit(&[]).is_none());
    }

    #[test]
    fn campaign_fits_model_from_recorded_walls_and_reschedules() {
        // A campaign's own report carries enough to fit a model, and a
        // campaign run under that model produces identical marks.
        let base = Campaign::builder()
            .functionals([Dfa::VwnRpa, Dfa::Lyp])
            .conditions([Condition::EcNonPositivity, Condition::EcScaling])
            .config(quick_config(3_000))
            .schedule(CampaignSchedule::MatrixOrder)
            .build()
            .unwrap()
            .run();
        let model = base.fit_cost_model().expect("cells ran");
        assert_eq!(model.samples, 4);
        let refit = Campaign::builder()
            .functionals([Dfa::VwnRpa, Dfa::Lyp])
            .conditions([Condition::EcNonPositivity, Condition::EcScaling])
            .config(quick_config(3_000))
            .cost_model(model)
            .build()
            .unwrap()
            .run();
        for (a, b) in base.pairs.iter().zip(&refit.pairs) {
            assert_eq!(a.mark, b.mark, "{} / {}", a.functional_name(), a.condition);
        }
    }

    #[test]
    fn batched_campaign_marks_match_scalar() {
        // The batch-width knob must be pure perf: identical marks cell by
        // cell, at any width.
        let run = |width: Option<usize>| {
            let mut b = Campaign::builder()
                .functionals([Dfa::VwnRpa, Dfa::Lyp])
                .conditions([Condition::EcNonPositivity, Condition::EcScaling])
                .config(quick_config(5_000));
            if let Some(w) = width {
                b = b.batch_width(w);
            }
            b.build().unwrap().run()
        };
        let scalar = run(None);
        for width in [2, 8] {
            let batched = run(Some(width));
            for (a, b) in scalar.pairs.iter().zip(&batched.pairs) {
                assert_eq!(
                    a.mark,
                    b.mark,
                    "width {width}: {} / {}",
                    a.functional_name(),
                    a.condition
                );
            }
        }
    }

    #[test]
    fn persisted_cost_model_round_trips() {
        let m = CostModel {
            weights: [-2.337412, 2.58292, -0.328711, 1.590768],
            samples: 45,
            r2: 0.7678,
        };
        let path = std::env::temp_dir().join(format!("xcv_cost_model_{}.json", std::process::id()));
        let json = format!(
            "{{\n  \"schema\": \"xcv-bench-solver/v5\",\n  \"cost_model\": {{\"kind\": \
             \"log-linear\", \"features\": [\"family\", \"2^ndim\", \"condition_class\"], \
             \"weights\": [{}, {}, {}, {}], \"samples\": {}, \"r2\": {}}}\n}}\n",
            m.weights[0], m.weights[1], m.weights[2], m.weights[3], m.samples, m.r2
        );
        std::fs::write(&path, json).unwrap();
        let got = CostModel::load_bench_json(&path).expect("well-formed entry");
        std::fs::remove_file(&path).ok();
        // f64 Display round-trips exactly, so the loaded model is the model.
        assert_eq!(got, m);
        // Missing file or entry degrade to None (callers fall back).
        assert!(CostModel::load_bench_json("/nonexistent/bench.json").is_none());
        let bad = std::env::temp_dir().join(format!("xcv_no_model_{}.json", std::process::id()));
        std::fs::write(&bad, "{\"schema\": \"xcv-bench-solver/v5\"}").unwrap();
        assert!(CostModel::load_bench_json(&bad).is_none());
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn sub_millisecond_cells_run_the_scalar_engine() {
        let flat = |c: f64| CostModel {
            weights: [c, 0.0, 0.0, 0.0],
            samples: 45,
            r2: 0.9,
        };
        // No model attached: the campaign-wide width stands.
        assert_eq!(
            effective_batch_width(8, None, &Dfa::VwnRpa, Condition::EcNonPositivity),
            8
        );
        // The model predicts sub-millisecond (e^0 = 1 < 2): scalar path.
        let cheap = flat(0.0);
        assert_eq!(
            effective_batch_width(8, Some(&cheap), &Dfa::VwnRpa, Condition::EcNonPositivity),
            1
        );
        // The model predicts an expensive cell: the batched width stands.
        let heavy = flat(5.0);
        assert_eq!(
            effective_batch_width(8, Some(&heavy), &Dfa::Scan, Condition::UcMonotonicity),
            8
        );
    }

    #[test]
    fn cost_model_ranks_families_and_conditions() {
        use xcv_functionals::Functional;
        // Rung and arity dominate: SCAN EC1 above VWN EC3; within one
        // functional, the second-derivative condition is the costliest.
        assert!(
            pair_cost(&Dfa::Scan, Condition::EcNonPositivity)
                > pair_cost(&Dfa::VwnRpa, Condition::UcMonotonicity)
        );
        for dfa in Dfa::all() {
            let ec3 = pair_cost(&dfa, Condition::UcMonotonicity);
            for cond in Condition::all() {
                assert!(pair_cost(&dfa, cond) <= ec3, "{} {cond:?}", dfa.info().name);
            }
        }
    }

    #[test]
    fn schedules_agree_and_report_stays_matrix_ordered() {
        let run = |schedule| {
            Campaign::builder()
                .functionals([Dfa::VwnRpa, Dfa::Lyp])
                .conditions([Condition::EcNonPositivity, Condition::EcScaling])
                .config(quick_config(5_000))
                .schedule(schedule)
                .build()
                .unwrap()
                .run()
        };
        let cost = run(CampaignSchedule::CostAware);
        let matrix = run(CampaignSchedule::MatrixOrder);
        // Whatever order cells executed in, the report is functional-major.
        let names: Vec<String> = cost.pairs.iter().map(|p| p.functional_name()).collect();
        assert_eq!(names, vec!["VWN RPA", "VWN RPA", "LYP", "LYP"]);
        for (a, b) in cost.pairs.iter().zip(&matrix.pairs) {
            assert_eq!(a.condition, b.condition);
            assert_eq!(a.mark, b.mark, "{} / {}", a.functional_name(), a.condition);
            assert_eq!(a.cost, b.cost);
            assert!(a.cost > 0);
        }
    }

    #[test]
    fn duplicate_functional_names_rejected() {
        // Reports key cells by name: two columns named PBE would alias.
        match Campaign::builder()
            .functionals([Dfa::Pbe, Dfa::Pbe])
            .build()
        {
            Err(e) => assert!(
                matches!(e, xcv_functionals::XcvError::DuplicateFunctional(_)),
                "{e}"
            ),
            Ok(_) => panic!("duplicate names must be rejected"),
        }
    }

    #[test]
    fn single_pair_campaign_matches_direct_verify() {
        let campaign = Campaign::builder()
            .functional(Dfa::Lyp)
            .conditions([Condition::EcNonPositivity])
            .config(quick_config(20_000))
            .build()
            .unwrap();
        let report = campaign.run();
        assert_eq!(report.pairs.len(), 1);
        assert_eq!(
            report.mark("LYP", Condition::EcNonPositivity),
            Some(TableMark::Counterexample)
        );
        // Same mark as the old per-pair path with the same config.
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        let direct = Verifier::new(quick_config(20_000)).verify(&p);
        assert_eq!(report.pairs[0].mark, direct.table_mark());
    }

    #[test]
    fn inapplicable_cells_marked_not_applicable() {
        let report = Campaign::builder()
            .functionals([Dfa::Lyp, Dfa::VwnRpa])
            .conditions([Condition::LiebOxford, Condition::EcNonPositivity])
            .config(quick_config(2_000))
            .build()
            .unwrap()
            .run();
        assert_eq!(report.pairs.len(), 4);
        assert_eq!(
            report.mark("LYP", Condition::LiebOxford),
            Some(TableMark::NotApplicable)
        );
        assert_eq!(report.encoded_pairs(), 2);
    }

    #[test]
    fn events_stream_in_order_per_pair() {
        let started = Arc::new(AtomicUsize::new(0));
        let finished = Arc::new(AtomicUsize::new(0));
        let (s2, f2) = (Arc::clone(&started), Arc::clone(&finished));
        let report = Campaign::builder()
            .functional(Dfa::VwnRpa)
            .conditions([Condition::EcNonPositivity, Condition::EcScaling])
            .config(quick_config(5_000))
            .on_event(move |e| match e {
                CampaignEvent::PairStarted { .. } => {
                    s2.fetch_add(1, Ordering::SeqCst);
                }
                CampaignEvent::PairFinished { .. } => {
                    f2.fetch_add(1, Ordering::SeqCst);
                }
                _ => {}
            })
            .build()
            .unwrap();
        report.run();
        assert_eq!(started.load(Ordering::SeqCst), 2);
        assert_eq!(finished.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn event_channel_receives_counterexamples() {
        let (builder, rx) = Campaign::builder()
            .functional(Dfa::Lyp)
            .conditions([Condition::EcNonPositivity])
            .config(quick_config(20_000))
            .event_channel();
        builder.build().unwrap().run();
        let events: Vec<CampaignEvent> = rx.try_iter().collect();
        assert!(events
            .iter()
            .any(|e| matches!(e, CampaignEvent::CounterexampleFound { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, CampaignEvent::PairFinished { .. })));
    }

    #[test]
    fn cancellation_skips_all_pairs() {
        let token = CancelToken::new();
        token.cancel();
        let report = Campaign::builder()
            .registry(&Registry::builtin())
            .config(quick_config(50_000))
            .cancel_token(token)
            .build()
            .unwrap()
            .run();
        // 31 applicable pairs all skipped, 4 inapplicable.
        assert_eq!(
            report
                .pairs
                .iter()
                .filter(|p| p.skipped == Some(SkipReason::Cancelled))
                .count(),
            31
        );
        assert!(report.pairs.iter().all(|p| p.map.is_none()));
    }

    #[test]
    fn defective_functional_surfaces_as_encode_failure_not_dash() {
        // Metadata promises an exchange part the implementation lacks: the
        // Lieb–Oxford cells must come out Unknown/EncodeFailed, not `−`.
        use xcv_functionals::{functional, Design, Family, FnFunctional};
        let liar: FunctionalHandle = Arc::new(FnFunctional {
            info: functional::info("liar", Family::Lda, Design::Empirical, true, true),
            eps_c_expr: -xcv_expr::constant(0.1),
            f_x_expr: None,
            eps_c: |_, _, _| -0.1,
            f_x: None::<fn(f64, f64) -> f64>,
        });
        let report = Campaign::builder()
            .functional(liar)
            .conditions([Condition::LiebOxford, Condition::EcNonPositivity])
            .config(quick_config(500))
            .build()
            .unwrap()
            .run();
        let lo = report.outcome("liar", Condition::LiebOxford).unwrap();
        assert_eq!(lo.skipped, Some(SkipReason::EncodeFailed));
        assert_eq!(lo.mark, TableMark::Unknown);
        // The honest cell still runs.
        assert!(report
            .outcome("liar", Condition::EcNonPositivity)
            .unwrap()
            .skipped
            .is_none());
    }

    #[test]
    fn zero_budget_skips_everything() {
        let report = Campaign::builder()
            .functionals([Dfa::VwnRpa, Dfa::Lyp])
            .config(quick_config(50_000))
            .global_budget_ms(0)
            .build()
            .unwrap()
            .run();
        assert!(report
            .pairs
            .iter()
            .filter(|p| p.skipped != Some(SkipReason::NotApplicable))
            .all(|p| p.skipped == Some(SkipReason::BudgetExhausted)));
    }
}
