//! Deterministic fault injection for the serving and campaign layers.
//!
//! A [`FaultPlan`] is the single hook the fault-tolerance tests drive:
//! production code threads an optional plan through the campaign runner
//! and the daemon, and asks [`FaultPlan::should_fire`] at each injection
//! site (solver entry, store finalize, event write). A site with no armed
//! rule never fires, so an absent or empty plan is exactly the
//! fault-free system.
//!
//! Decisions are **deterministic**: each site keeps an arrival ordinal,
//! and the armed [`FaultRule`] is a pure function of `(seed, site,
//! ordinal)` — no wall-clock, no global RNG. Under concurrency the
//! *assignment* of ordinals to threads depends on arrival order, but the
//! number of injected faults per site is exact (e.g. [`FaultRule::First`]
//! fires precisely `n` times however the arrivals interleave), which is
//! what the fault suite asserts on.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::{fnv1a, fnv1a_str};

/// Where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic at the start of a pair's solve (inside the campaign runner) —
    /// models a solver bug taking down a coalescing leader.
    SolverPanic = 0,
    /// Synthetic I/O error on the result store's finalize-to-disk path —
    /// models a full or failing store volume.
    FinalizeIo = 1,
    /// Write a torn (truncated) result file instead of the real document —
    /// models bit rot / a non-atomic filesystem under a kill.
    StoreCorrupt = 2,
    /// Stall before writing an event to the client — models a slow
    /// consumer backing up the wire.
    ClientStall = 3,
}

const SITES: usize = 4;

/// When an armed site fires, as a pure function of the arrival ordinal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultRule {
    /// Fire on the first `n` arrivals at the site, then never again.
    First(u64),
    /// Fire whenever `FNV(seed, site, ordinal) % den < num` — a seeded
    /// deterministic "probability" of `num/den` per arrival.
    Ratio { num: u32, den: u32 },
    /// Fire on every arrival.
    Always,
}

/// A deterministic fault schedule shared (via `Arc`) by every layer under
/// test. Construction arms rules per site; all methods take `&self`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: [Option<FaultRule>; SITES],
    attempts: [AtomicU64; SITES],
    fired: [AtomicU64; SITES],
}

impl FaultPlan {
    /// An empty plan (no site armed) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Arm `site` with `rule` (builder style).
    #[must_use]
    pub fn arm(mut self, site: FaultSite, rule: FaultRule) -> Self {
        self.rules[site as usize] = Some(rule);
        self
    }

    /// Record one arrival at `site` and decide whether the fault fires.
    /// Unarmed sites still count arrivals (visible via
    /// [`FaultPlan::attempts`]) but never fire.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        let i = site as usize;
        let ordinal = self.attempts[i].fetch_add(1, Ordering::SeqCst);
        let Some(rule) = self.rules[i] else {
            return false;
        };
        let fire = match rule {
            FaultRule::First(n) => ordinal < n,
            FaultRule::Always => true,
            FaultRule::Ratio { num, den } => {
                let mut h = fnv1a_str("xcv-fault/v1");
                h = fnv1a(h, &self.seed.to_le_bytes());
                h = fnv1a(h, &[i as u8]);
                h = fnv1a(h, &ordinal.to_le_bytes());
                den != 0 && (h % u64::from(den)) < u64::from(num)
            }
        };
        if fire {
            self.fired[i].fetch_add(1, Ordering::SeqCst);
        }
        fire
    }

    /// Arrivals recorded at `site` so far.
    pub fn attempts(&self, site: FaultSite) -> u64 {
        self.attempts[site as usize].load(Ordering::SeqCst)
    }

    /// Faults actually injected at `site` so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site as usize].load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire_but_count_arrivals() {
        let plan = FaultPlan::new(7);
        for _ in 0..5 {
            assert!(!plan.should_fire(FaultSite::SolverPanic));
        }
        assert_eq!(plan.attempts(FaultSite::SolverPanic), 5);
        assert_eq!(plan.fired(FaultSite::SolverPanic), 0);
    }

    #[test]
    fn first_n_fires_exactly_n_times() {
        let plan = FaultPlan::new(0).arm(FaultSite::FinalizeIo, FaultRule::First(3));
        let fired: Vec<bool> = (0..6)
            .map(|_| plan.should_fire(FaultSite::FinalizeIo))
            .collect();
        assert_eq!(fired, [true, true, true, false, false, false]);
        assert_eq!(plan.fired(FaultSite::FinalizeIo), 3);
    }

    #[test]
    fn ratio_is_deterministic_in_the_seed_and_ordinal() {
        let a =
            FaultPlan::new(42).arm(FaultSite::StoreCorrupt, FaultRule::Ratio { num: 1, den: 3 });
        let b =
            FaultPlan::new(42).arm(FaultSite::StoreCorrupt, FaultRule::Ratio { num: 1, den: 3 });
        let fa: Vec<bool> = (0..64)
            .map(|_| a.should_fire(FaultSite::StoreCorrupt))
            .collect();
        let fb: Vec<bool> = (0..64)
            .map(|_| b.should_fire(FaultSite::StoreCorrupt))
            .collect();
        assert_eq!(fa, fb, "same seed, same schedule");
        assert!(
            fa.iter().any(|&f| f),
            "1/3 over 64 arrivals fires at least once"
        );
        assert!(fa.iter().any(|&f| !f), "and skips at least once");
        // A different seed reshuffles the schedule (with overwhelming
        // likelihood over 64 draws).
        let c =
            FaultPlan::new(43).arm(FaultSite::StoreCorrupt, FaultRule::Ratio { num: 1, den: 3 });
        let fc: Vec<bool> = (0..64)
            .map(|_| c.should_fire(FaultSite::StoreCorrupt))
            .collect();
        assert_ne!(fa, fc, "different seed, different schedule");
    }

    #[test]
    fn first_n_is_exact_under_concurrency() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::new(1).arm(FaultSite::SolverPanic, FaultRule::First(4)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let plan = Arc::clone(&plan);
                std::thread::spawn(move || {
                    (0..16)
                        .filter(|_| plan.should_fire(FaultSite::SolverPanic))
                        .count()
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 4, "exactly First(4) injections across all threads");
        assert_eq!(plan.attempts(FaultSite::SolverPanic), 128);
    }
}
