//! Reproduction presets: the verifier configurations behind the `repro`,
//! `xcverify`, and `xcvserve` binaries.
//!
//! These lived in `xcv-bench` while only the CLI tools consumed them; the
//! verification daemon moved them here so that a server answering a
//! "gate-policy" query derives the *same* per-functional configuration the
//! in-process CLI path derives — parity by construction, not by keeping
//! two copies in sync. `xcv-bench` re-exports every function, so existing
//! `xcv_bench::repro_config(...)` call sites are unaffected.

use crate::{Verifier, VerifierConfig};
use xcv_functionals::{Family, Functional};
use xcv_solver::{DeltaSolver, SolveBudget};

/// Verifier preset for reproduction runs: per-box wall-clock budget in
/// milliseconds, recursion floor `t`, and a depth cap.
pub fn repro_verifier(budget_ms: u64, threshold: f64, max_depth: u32) -> Verifier {
    Verifier::new(repro_config(budget_ms, threshold, max_depth))
}

/// The [`VerifierConfig`] behind [`repro_verifier`], for campaign builders.
pub fn repro_config(budget_ms: u64, threshold: f64, max_depth: u32) -> VerifierConfig {
    VerifierConfig {
        split_threshold: threshold,
        solver: DeltaSolver::new(
            1e-3,
            SolveBudget {
                max_nodes: 60_000,
                max_millis: budget_ms,
            },
        ),
        parallel: true,
        parallel_depth: 3,
        max_depth,
        // Bound each pair's total run at 400x the per-box budget: enough for
        // several recursion levels, small enough that broad-timeout cells
        // (the paper's "?" columns) finish in interactive time.
        pair_deadline_ms: Some(budget_ms.saturating_mul(400)),
    }
}

/// Per-family verifier settings for full-table runs, as a campaign config
/// policy. 3-D (meta-GGA) domains split into 8 children per level, so their
/// recursion is capped earlier — the paper's SCAN rows time out at every
/// size anyway.
pub fn config_for(f: &dyn Functional, budget_ms: u64) -> VerifierConfig {
    // Spin-resolved (arity-4) citizens split into 16 children per level —
    // cap their recursion earliest, whatever the family label says.
    if f.arity() >= 4 {
        return repro_config(budget_ms, 1.25, 2);
    }
    match f.info().family {
        Family::Lda => repro_config(budget_ms, 0.05, 8),
        Family::Gga => repro_config(budget_ms, 0.15, 6),
        Family::MetaGga => repro_config(budget_ms, 0.625, 3),
    }
}

/// Per-family verifier for single-pair runs (the pre-campaign API).
pub fn verifier_for(f: &dyn Functional, budget_ms: u64) -> Verifier {
    Verifier::new(config_for(f, budget_ms))
}

/// The measured scheduler cost model persisted by `solver_bench` — the
/// `cost_model` entry of `BENCH_solver.json` (`XCV_COST_MODEL` overrides the
/// path). The `repro`, `xcverify`, and `xcvserve` binaries attach it at
/// startup so long campaigns start from *measured* weights; `None` (no
/// file, no entry, or a malformed one) falls back to the hand-weighted
/// `pair_cost` ranking.
pub fn load_cost_model() -> Option<crate::CostModel> {
    let path = std::env::var("XCV_COST_MODEL").unwrap_or_else(|_| "BENCH_solver.json".to_string());
    crate::CostModel::load_bench_json(path)
}
