//! XCEncoder: from (DFA, exact condition) to a solver problem.

use xcv_conditions::{pb_domain, Condition};
use xcv_functionals::Dfa;
use xcv_solver::{Atom, BoxDomain, Formula};

/// An encoded verification problem: the local condition `ψ`, the negated
/// formula handed to the δ-complete solver, and the input domain.
#[derive(Clone, Debug)]
pub struct EncodedProblem {
    pub dfa: Dfa,
    pub condition: Condition,
    /// The local condition `ψ` (a single sign atom).
    pub psi: Atom,
    /// `¬ψ` as a conjunction for the solver (Equation 12 of the paper: the
    /// domain constraints are carried separately as the search box).
    pub negation: Formula,
    /// The Pederson–Burke domain for this DFA's family.
    pub domain: BoxDomain,
}

/// The encoder. Stateless; methods are associated functions grouped for
/// fidelity to the paper's architecture (XCEncoder + Verifier).
pub struct Encoder;

impl Encoder {
    /// Encode one DFA-condition pair; `None` when the condition does not
    /// apply to the DFA (the `−` entries of Table I).
    pub fn encode(dfa: Dfa, condition: Condition) -> Option<EncodedProblem> {
        let psi = condition.encode(dfa)?;
        let negation = Formula::single(psi.negate());
        Some(EncodedProblem {
            dfa,
            condition,
            psi,
            negation,
            domain: pb_domain(dfa),
        })
    }

    /// Encode every applicable pair (31 in the paper's evaluation).
    pub fn encode_all() -> Vec<EncodedProblem> {
        let mut out = Vec::new();
        for dfa in Dfa::all() {
            for cond in Condition::all() {
                if let Some(p) = Self::encode(dfa, cond) {
                    out.push(p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_all_yields_31() {
        assert_eq!(Encoder::encode_all().len(), 31);
    }

    #[test]
    fn negation_flips_relation() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcNonPositivity).unwrap();
        // ψ: F_c >= 0; ¬ψ: F_c < 0.
        assert_eq!(p.psi.rel, xcv_solver::Rel::Ge);
        assert_eq!(p.negation.atoms[0].rel, xcv_solver::Rel::Lt);
        assert!(p.psi.expr.same(&p.negation.atoms[0].expr));
    }

    #[test]
    fn domain_matches_family() {
        assert_eq!(
            Encoder::encode(Dfa::Scan, Condition::EcScaling)
                .unwrap()
                .domain
                .ndim(),
            3
        );
        assert_eq!(
            Encoder::encode(Dfa::VwnRpa, Condition::EcScaling)
                .unwrap()
                .domain
                .ndim(),
            1
        );
    }

    #[test]
    fn inapplicable_pair_is_none() {
        assert!(Encoder::encode(Dfa::Lyp, Condition::LiebOxford).is_none());
    }

    #[test]
    fn psi_and_negation_disagree_pointwise() {
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        // At a violating point, ψ fails and ¬ψ holds.
        let pt = [2.0, 2.5, 0.0];
        assert!(!p.psi.holds_at(&pt));
        assert!(p.negation.holds_at(&pt));
        // At a satisfying point, the reverse.
        let pt = [2.0, 0.5, 0.0];
        assert!(p.psi.holds_at(&pt));
        assert!(!p.negation.holds_at(&pt));
    }
}
