//! XCEncoder: from (functional, exact condition) to a solver problem.

use std::sync::Arc;
use xcv_conditions::Condition;
use xcv_expr::VarSpace;
use xcv_functionals::{FunctionalHandle, IntoFunctional, Registry, XcvError};
use xcv_solver::{Atom, BoxDomain, CompiledAtom, CompiledFormula, Formula};

/// An encoded verification problem: the local condition `ψ`, the negated
/// formula handed to the δ-complete solver, and the input domain — plus the
/// *compiled* forms of both, built once here and shared (behind `Arc`s)
/// across every sub-box the verifier recursion and campaign scheduling
/// visit.
#[derive(Clone, Debug)]
pub struct EncodedProblem {
    /// The functional under verification (any registry citizen — built-in
    /// `Dfa` variant or runtime-registered implementation).
    pub functional: FunctionalHandle,
    pub condition: Condition,
    /// The local condition `ψ` (a single sign atom). Private — the verifier
    /// validates witnesses against the compiled form built from this at
    /// encode time, so a mutable field could silently drift from it.
    psi: Atom,
    /// `¬ψ` as a conjunction for the solver (Equation 12 of the paper: the
    /// domain constraints are carried separately as the search box). Private
    /// for the same reason as `psi`.
    negation: Formula,
    /// The typed variable space of the problem (the functional's
    /// `var_space()` at encode time): what each box dimension and witness
    /// coordinate *means*.
    pub space: VarSpace,
    /// The Pederson–Burke domain: the box of `space`.
    pub domain: BoxDomain,
    /// `¬ψ` lowered to flat tapes, once per problem. Private so it cannot
    /// drift from `negation`: [`Encoder::encode`] is the only place both
    /// are produced, together.
    compiled: Arc<CompiledFormula>,
    /// `ψ` as a compiled atom, for exact model validation without the
    /// allocating recursive evaluator (kept consistent with `psi` the same
    /// way).
    psi_compiled: Arc<CompiledAtom>,
}

impl EncodedProblem {
    /// The functional's display name (column label in reports).
    pub fn functional_name(&self) -> String {
        self.functional.name()
    }

    /// The local condition `ψ` (a single sign atom).
    pub fn psi(&self) -> &Atom {
        &self.psi
    }

    /// `¬ψ` as a conjunction for the solver.
    pub fn negation(&self) -> &Formula {
        &self.negation
    }

    /// `¬ψ` lowered to flat tapes (compiled once at encode time); solve
    /// every box against this.
    pub fn compiled(&self) -> &CompiledFormula {
        &self.compiled
    }

    /// `ψ` as a compiled atom, for exact witness validation.
    pub fn psi_compiled(&self) -> &CompiledAtom {
        &self.psi_compiled
    }
}

/// The encoder. Stateless; methods are associated functions grouped for
/// fidelity to the paper's architecture (XCEncoder + Verifier).
pub struct Encoder;

impl Encoder {
    /// Encode one (functional, condition) pair;
    /// [`XcvError::NotApplicable`] for the `−` entries of Table I. Accepts
    /// a `Dfa` variant or any handle.
    pub fn encode(
        f: impl IntoFunctional,
        condition: Condition,
    ) -> Result<EncodedProblem, XcvError> {
        let functional = f.into_handle();
        let psi = condition.encode(functional.as_ref())?;
        let negation = Formula::single(psi.negate());
        let space = functional.var_space();
        let domain = BoxDomain::from_var_space(&space);
        let compiled = Arc::new(CompiledFormula::compile_in(&negation, space.clone()));
        // ψ and ¬ψ share one expression and differ only in relation, so the
        // ψ checker reuses the formula's already-lowered f64 tape instead of
        // lowering the same DAG a second time.
        let psi_compiled = Arc::new(compiled.atom_tape(0, psi.rel));
        Ok(EncodedProblem {
            functional,
            condition,
            psi,
            negation,
            space,
            domain,
            compiled,
            psi_compiled,
        })
    }

    /// Encode every applicable pair of a registry, in registry × row order.
    pub fn encode_registry(registry: &Registry) -> Vec<EncodedProblem> {
        let mut out = Vec::new();
        for f in registry.iter() {
            for cond in Condition::all() {
                if let Ok(p) = Self::encode(f, cond) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Encode every applicable pair of the paper's five DFAs (31 in the
    /// paper's evaluation).
    pub fn encode_all() -> Vec<EncodedProblem> {
        Self::encode_registry(&Registry::builtin())
    }

    /// Encode every applicable pair of the extended set — the paper's five
    /// plus BLYP and regularized SCAN from `Dfa::extended()` (45 pairs:
    /// both extensions carry exchange and correlation, so all seven
    /// conditions apply to each).
    pub fn encode_all_extended() -> Vec<EncodedProblem> {
        Self::encode_registry(&Registry::extended())
    }

    /// Encode the spin-general matrix: every built-in module entry (the
    /// extended set plus PW92) and the ζ-resolved citizens — the
    /// scalar-factor three (`PBE(ζ)`, `PW92(ζ)`, `LSDA-X(ζ)` over
    /// `rs, s, α, ζ`) and the per-spin exchange two (`B88(ζ)`, `PBE-X(ζ)`
    /// over `rs, s↑, s↓, ζ`). 66 pairs: the 45 extended, 5 for PW92,
    /// 5 + 5 correlation pairs for the spin correlations, and 2 Lieb–Oxford
    /// pairs for each of the three spin-scaled exchange citizens.
    pub fn encode_all_spin() -> Vec<EncodedProblem> {
        Self::encode_registry(&Registry::spin_general())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_functionals::Dfa;

    #[test]
    fn encode_all_yields_31() {
        assert_eq!(Encoder::encode_all().len(), 31);
    }

    #[test]
    fn encode_all_extended_yields_45() {
        // 31 paper pairs + 7 (BLYP) + 7 (rSCAN): the extensions are full
        // exchange-correlation functionals, so every condition applies.
        let all = Encoder::encode_all_extended();
        assert_eq!(all.len(), 45);
        assert_eq!(
            all.iter().filter(|p| p.functional_name() == "BLYP").count(),
            7
        );
        assert_eq!(
            all.iter()
                .filter(|p| p.functional_name() == "rSCAN(reg)")
                .count(),
            7
        );
    }

    #[test]
    fn encode_all_spin_yields_66() {
        // 45 extended + 5 (PW92) + 5 (PBE(ζ)) + 5 (PW92(ζ)) + 2 (LSDA-X(ζ))
        // + 2 (B88(ζ)) + 2 (PBE-X(ζ)).
        let all = Encoder::encode_all_spin();
        assert_eq!(all.len(), 66);
        let spin: Vec<_> = all
            .iter()
            .filter(|p| p.functional_name().contains("(ζ)"))
            .collect();
        assert_eq!(spin.len(), 16);
        // Spin citizens are 4-D problems whose ζ axis is always index 3.
        assert!(spin.iter().all(|p| p.domain.ndim() == 4));
        assert!(spin
            .iter()
            .all(|p| p.space.find(xcv_expr::AxisKind::Zeta).unwrap().index == 3));
        // The per-spin exchange citizens carry s↑/s↓ axes; the scalar-factor
        // citizens the canonical s/α.
        let b88 = all
            .iter()
            .find(|p| p.functional_name() == "B88(ζ)")
            .unwrap();
        assert_eq!(b88.space.names(), vec!["rs", "s_up", "s_dn", "zeta"]);
        assert!(b88.compiled().var_space().is_some());
    }

    #[test]
    fn negation_flips_relation() {
        let p = Encoder::encode(Dfa::VwnRpa, Condition::EcNonPositivity).unwrap();
        // ψ: F_c >= 0; ¬ψ: F_c < 0.
        assert_eq!(p.psi.rel, xcv_solver::Rel::Ge);
        assert_eq!(p.negation.atoms[0].rel, xcv_solver::Rel::Lt);
        assert!(p.psi.expr.same(&p.negation.atoms[0].expr));
    }

    #[test]
    fn domain_matches_family() {
        assert_eq!(
            Encoder::encode(Dfa::Scan, Condition::EcScaling)
                .unwrap()
                .domain
                .ndim(),
            3
        );
        assert_eq!(
            Encoder::encode(Dfa::VwnRpa, Condition::EcScaling)
                .unwrap()
                .domain
                .ndim(),
            1
        );
    }

    #[test]
    fn inapplicable_pair_is_error() {
        let err = Encoder::encode(Dfa::Lyp, Condition::LiebOxford).unwrap_err();
        assert_eq!(
            err,
            XcvError::NotApplicable {
                functional: "LYP".into(),
                condition: "LO bound".into(),
            }
        );
    }

    #[test]
    fn psi_and_negation_disagree_pointwise() {
        let p = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        // At a violating point, ψ fails and ¬ψ holds.
        let pt = [2.0, 2.5, 0.0];
        assert!(!p.psi.holds_at(&pt));
        assert!(p.negation.holds_at(&pt));
        // At a satisfying point, the reverse.
        let pt = [2.0, 0.5, 0.0];
        assert!(p.psi.holds_at(&pt));
        assert!(!p.negation.holds_at(&pt));
    }

    #[test]
    fn handle_and_enum_encode_identically() {
        let reg = Registry::builtin();
        let via_handle =
            Encoder::encode(reg.get("LYP").unwrap(), Condition::EcNonPositivity).unwrap();
        let via_enum = Encoder::encode(Dfa::Lyp, Condition::EcNonPositivity).unwrap();
        assert!(via_handle.psi.expr.same(&via_enum.psi.expr));
        assert_eq!(via_handle.domain.ndim(), via_enum.domain.ndim());
    }
}
