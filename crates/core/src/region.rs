//! Region bookkeeping: the verifier's output is a partition of the input
//! domain into labeled boxes.

use xcv_solver::BoxDomain;

/// The verdict for one box of the domain.
#[derive(Clone, Debug, PartialEq)]
pub enum RegionStatus {
    /// The solver proved `¬ψ` unsatisfiable on the box: the DFA satisfies
    /// the condition everywhere in it.
    Verified,
    /// A point in the box at which the implementation *exactly* violates the
    /// condition.
    Counterexample(Vec<f64>),
    /// The solver returned a δ-SAT model that failed the exact re-check
    /// (`valid(x)` false — the paper's "inconclusive").
    Inconclusive,
    /// Solver budget exhausted on this box.
    Timeout,
    /// The campaign was cancelled before the solver examined this box
    /// (checkpoint/resume: these leaves are re-verified on resume).
    Cancelled,
}

impl RegionStatus {
    /// Single-character glyph used by the ASCII region maps.
    pub fn glyph(&self) -> char {
        match self {
            RegionStatus::Verified => '+',
            RegionStatus::Counterexample(_) => 'x',
            RegionStatus::Inconclusive => '?',
            RegionStatus::Timeout => 'T',
            RegionStatus::Cancelled => 'C',
        }
    }
}

/// One labeled box.
#[derive(Clone, Debug)]
pub struct Region {
    pub domain: BoxDomain,
    pub status: RegionStatus,
}

/// Aggregate Table I mark for a DFA-condition pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableMark {
    /// ✓ — verified on the entire domain.
    Verified,
    /// ✓* — verified on part of the domain, rest timed out / inconclusive.
    PartiallyVerified,
    /// ✗ — counterexample found.
    Counterexample,
    /// ? — timeout/inconclusive everywhere.
    Unknown,
    /// − — condition does not apply.
    NotApplicable,
}

impl TableMark {
    pub fn symbol(&self) -> &'static str {
        match self {
            TableMark::Verified => "OK",
            TableMark::PartiallyVerified => "OK*",
            TableMark::Counterexample => "CE",
            TableMark::Unknown => "?",
            TableMark::NotApplicable => "-",
        }
    }
}

impl std::fmt::Display for TableMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// The verifier's output: a disjoint cover of the original domain.
#[derive(Clone, Debug)]
pub struct RegionMap {
    pub domain: BoxDomain,
    pub regions: Vec<Region>,
}

impl RegionMap {
    pub fn new(domain: BoxDomain, regions: Vec<Region>) -> Self {
        RegionMap { domain, regions }
    }

    /// The paper's Table I aggregation: any counterexample ⇒ ✗; everything
    /// verified ⇒ ✓; some verified ⇒ ✓*; nothing verified ⇒ ?.
    pub fn table_mark(&self) -> TableMark {
        let mut any_ce = false;
        let mut any_verified = false;
        let mut any_undecided = false;
        for r in &self.regions {
            match &r.status {
                RegionStatus::Counterexample(_) => any_ce = true,
                RegionStatus::Verified => any_verified = true,
                RegionStatus::Inconclusive | RegionStatus::Timeout | RegionStatus::Cancelled => {
                    any_undecided = true
                }
            }
        }
        if any_ce {
            TableMark::Counterexample
        } else if any_verified && !any_undecided {
            TableMark::Verified
        } else if any_verified {
            TableMark::PartiallyVerified
        } else {
            TableMark::Unknown
        }
    }

    /// The status of the region containing a point (first match).
    pub fn status_at(&self, point: &[f64]) -> Option<&RegionStatus> {
        self.regions
            .iter()
            .find(|r| r.domain.contains_point(point))
            .map(|r| &r.status)
    }

    /// Fraction of the domain volume with a given predicate on the status
    /// (dimensions with infinite width are ignored in the volume).
    pub fn volume_fraction(&self, pred: impl Fn(&RegionStatus) -> bool) -> f64 {
        let vol = |b: &BoxDomain| -> f64 {
            (0..b.ndim())
                .map(|i| b.dim(i).width())
                .filter(|w| w.is_finite())
                .product()
        };
        let total = vol(&self.domain);
        if total == 0.0 {
            return 0.0;
        }
        let matched: f64 = self
            .regions
            .iter()
            .filter(|r| pred(&r.status))
            .map(|r| vol(&r.domain))
            .sum();
        matched / total
    }

    /// All counterexample witness points, deduplicated.
    ///
    /// Adjacent split boxes share faces, and the solver can report the same
    /// boundary point as the witness for both; each distinct point is
    /// reported once, in region order (bitwise coordinate identity — two
    /// witnesses differing by any rounding are both kept).
    pub fn counterexamples(&self) -> Vec<&[f64]> {
        let mut seen = std::collections::HashSet::new();
        self.regions
            .iter()
            .filter_map(|r| match &r.status {
                RegionStatus::Counterexample(x) => Some(x.as_slice()),
                _ => None,
            })
            .filter(|x| seen.insert(x.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()))
            .collect()
    }

    /// Check the partition invariant: every probe point of the domain is
    /// covered by at least one region (used by integration tests).
    pub fn covers_probe_grid(&self, per_dim: usize) -> bool {
        let n = self.domain.ndim();
        let mut idx = vec![0usize; n];
        loop {
            let point: Vec<f64> = (0..n)
                .map(|i| {
                    let d = self.domain.dim(i);
                    let frac = (idx[i] as f64 + 0.5) / per_dim as f64;
                    d.lo + frac * (d.hi - d.lo)
                })
                .collect();
            if self.status_at(&point).is_none() {
                return false;
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == n {
                    return true;
                }
                idx[i] += 1;
                if idx[i] < per_dim {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom1() -> BoxDomain {
        BoxDomain::from_bounds(&[(0.0, 1.0)])
    }

    fn region(lo: f64, hi: f64, status: RegionStatus) -> Region {
        Region {
            domain: BoxDomain::from_bounds(&[(lo, hi)]),
            status,
        }
    }

    #[test]
    fn mark_verified() {
        let m = RegionMap::new(dom1(), vec![region(0.0, 1.0, RegionStatus::Verified)]);
        assert_eq!(m.table_mark(), TableMark::Verified);
    }

    #[test]
    fn mark_partial() {
        let m = RegionMap::new(
            dom1(),
            vec![
                region(0.0, 0.5, RegionStatus::Verified),
                region(0.5, 1.0, RegionStatus::Timeout),
            ],
        );
        assert_eq!(m.table_mark(), TableMark::PartiallyVerified);
    }

    #[test]
    fn mark_ce_wins() {
        let m = RegionMap::new(
            dom1(),
            vec![
                region(0.0, 0.5, RegionStatus::Verified),
                region(0.5, 1.0, RegionStatus::Counterexample(vec![0.75])),
            ],
        );
        assert_eq!(m.table_mark(), TableMark::Counterexample);
    }

    #[test]
    fn mark_unknown() {
        let m = RegionMap::new(
            dom1(),
            vec![
                region(0.0, 0.5, RegionStatus::Timeout),
                region(0.5, 1.0, RegionStatus::Inconclusive),
            ],
        );
        assert_eq!(m.table_mark(), TableMark::Unknown);
    }

    #[test]
    fn volume_fraction_and_lookup() {
        let m = RegionMap::new(
            dom1(),
            vec![
                region(0.0, 0.25, RegionStatus::Verified),
                region(0.25, 1.0, RegionStatus::Timeout),
            ],
        );
        let f = m.volume_fraction(|s| matches!(s, RegionStatus::Verified));
        assert!((f - 0.25).abs() < 1e-12);
        assert_eq!(m.status_at(&[0.1]), Some(&RegionStatus::Verified));
        assert_eq!(m.status_at(&[0.9]), Some(&RegionStatus::Timeout));
        assert_eq!(m.status_at(&[2.0]), None);
    }

    #[test]
    fn counterexample_collection() {
        let m = RegionMap::new(
            dom1(),
            vec![region(0.0, 1.0, RegionStatus::Counterexample(vec![0.3]))],
        );
        assert_eq!(m.counterexamples(), vec![&[0.3][..]]);
    }

    #[test]
    fn counterexamples_deduplicated() {
        // Two adjacent boxes reporting the same face witness collapse to
        // one; a genuinely different witness survives, order preserved.
        let m = RegionMap::new(
            dom1(),
            vec![
                region(0.0, 0.5, RegionStatus::Counterexample(vec![0.5])),
                region(0.5, 1.0, RegionStatus::Counterexample(vec![0.5])),
                region(0.5, 1.0, RegionStatus::Counterexample(vec![0.75])),
            ],
        );
        assert_eq!(m.counterexamples(), vec![&[0.5][..], &[0.75][..]]);
        // -0.0 and 0.0 are bitwise distinct: both kept (no value merging).
        let m2 = RegionMap::new(
            dom1(),
            vec![
                region(0.0, 0.5, RegionStatus::Counterexample(vec![0.0])),
                region(0.0, 0.5, RegionStatus::Counterexample(vec![-0.0])),
            ],
        );
        assert_eq!(m2.counterexamples().len(), 2);
    }

    #[test]
    fn probe_grid_coverage() {
        let m = RegionMap::new(
            dom1(),
            vec![
                region(0.0, 0.5, RegionStatus::Verified),
                region(0.5, 1.0, RegionStatus::Verified),
            ],
        );
        assert!(m.covers_probe_grid(8));
        let gap = RegionMap::new(dom1(), vec![region(0.0, 0.5, RegionStatus::Verified)]);
        assert!(!gap.covers_probe_grid(8));
    }

    #[test]
    fn glyphs_distinct() {
        let gs = [
            RegionStatus::Verified.glyph(),
            RegionStatus::Counterexample(vec![]).glyph(),
            RegionStatus::Inconclusive.glyph(),
            RegionStatus::Timeout.glyph(),
            RegionStatus::Cancelled.glyph(),
        ];
        let set: std::collections::HashSet<_> = gs.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
