//! Certificate *emission*: turn a traced verifier run into an
//! [`xcv_cert::Certificate`] that the independent `xcvcheck` replayer can
//! audit without any of this crate's (or the solver's) search code.
//!
//! Emission is conservative: a certificate is attached only when the run is
//! actually replayable — scalar HC4 contraction, optionally with the
//! escalation ladder (Newton steps replay through the shared driver over
//! gradient programs the certificate carries; 3B shaves are re-proven from
//! the main tape), but never the mean-value contractor, whose pruning is
//! not re-derivable from the tape alone — complete traces on every
//! verified leaf, no cancelled regions — and only after this module has
//! *already replayed it once* through [`xcv_cert::check`]. A pair that cannot be
//! certified simply carries `None`; it never blocks the campaign.

use crate::encoder::EncodedProblem;
use crate::region::RegionStatus;
use crate::verifier::{RunOutput, VerifierConfig};
use xcv_cert::{CertEvent, CertRegion, CertVerdict, Certificate};
use xcv_solver::{Rel, TraceEvent};

fn cert_rel(rel: Rel) -> xcv_cert::Rel {
    match rel {
        Rel::Le => xcv_cert::Rel::Le,
        Rel::Lt => xcv_cert::Rel::Lt,
        Rel::Ge => xcv_cert::Rel::Ge,
        Rel::Gt => xcv_cert::Rel::Gt,
    }
}

/// Build (and pre-validate) a certificate for one verified pair. `None`
/// when the run is not replayable; see the module docs.
pub fn build_certificate(
    problem: &EncodedProblem,
    config: &VerifierConfig,
    out: &RunOutput,
) -> Option<Certificate> {
    // Mean-value contraction consults derivative tapes the certificate does
    // not carry; such traces cannot be replayed by the tape-only checker.
    if config.solver.mean_value {
        return None;
    }
    if out.map.regions.len() != out.details.len() {
        return None;
    }
    // Set when any trace contains escalation-ladder steps: the certificate
    // then carries the gradient programs the checker replays them with.
    let mut ladder = false;
    let mut regions = Vec::with_capacity(out.map.regions.len());
    for (region, detail) in out.map.regions.iter().zip(&out.details) {
        let verdict = match &region.status {
            RegionStatus::Verified => {
                let trace = detail.trace.as_ref()?;
                if !trace.complete || trace.used_mean_value {
                    return None;
                }
                let mut events = Vec::with_capacity(trace.events.len());
                for ev in &trace.events {
                    match ev {
                        TraceEvent::Pruned => events.push(CertEvent::Pruned),
                        TraceEvent::Split {
                            contracted,
                            axis,
                            low_first,
                        } => events.push(CertEvent::Split {
                            contracted: contracted.dims().to_vec(),
                            axis: *axis as usize,
                            low_first: *low_first,
                        }),
                        TraceEvent::Newton { contracted } => {
                            ladder = true;
                            events.push(CertEvent::Newton {
                                contracted: contracted.dims().to_vec(),
                            });
                        }
                        TraceEvent::NewtonPruned => {
                            ladder = true;
                            events.push(CertEvent::NewtonPruned);
                        }
                        TraceEvent::Shave {
                            axis,
                            high_face,
                            bound,
                        } => {
                            ladder = true;
                            events.push(CertEvent::Shave {
                                axis: *axis as usize,
                                high_face: *high_face,
                                bound: *bound,
                            });
                        }
                        // An Unsat run never records a Sat event; seeing one
                        // means the trace does not certify this region.
                        TraceEvent::Sat { .. } => return None,
                    }
                }
                CertVerdict::Verified { trace: events }
            }
            RegionStatus::Counterexample(witness) => CertVerdict::Counterexample {
                witness: witness.clone(),
            },
            RegionStatus::Inconclusive => CertVerdict::Inconclusive,
            RegionStatus::Timeout => CertVerdict::Timeout,
            // A partially-run (resumable) map makes no whole-domain claim.
            RegionStatus::Cancelled => return None,
        };
        regions.push(CertRegion {
            bounds: region.domain.dims().to_vec(),
            verdict,
        });
    }
    let compiled = problem.compiled();
    // Ladder traces carry the gradient programs (built by the same
    // mean-value lowering the solver's rung 1 ran on) so the checker can
    // replay Newton steps through the shared driver.
    let newton = ladder.then(|| xcv_cert::NewtonSection {
        sweeps: config.solver.escalation.newton_sweeps,
        atoms: compiled
            .newton_portable()
            .into_iter()
            .map(|a| a.map(|(tape, axes)| xcv_cert::NewtonAtomCert { tape, axes }))
            .collect(),
    });
    let cert = Certificate {
        functional: problem.functional_name(),
        condition: format!("{:?}", problem.condition),
        delta: config.solver.delta,
        max_rounds: compiled.max_rounds(),
        tape: compiled.interval_tape().to_portable(),
        atom_rels: compiled.atom_rels().into_iter().map(cert_rel).collect(),
        // ψ and ¬ψ share atom 0's expression and differ only in relation
        // (`Atom::negate` flips `rel`, keeps `expr`), so ψ is tape root 0
        // under the original relation.
        psi_atom: 0,
        psi_rel: cert_rel(problem.psi().rel),
        domain: problem.domain.dims().to_vec(),
        regions,
        newton,
    };
    // Never attach a certificate this build cannot itself replay: marginal
    // cases (e.g. an f64-exact witness whose outward-rounded enclosure
    // still touches the allowed set) degrade to "no certificate", not to a
    // certificate that fails downstream.
    xcv_cert::check(&cert).ok()?;
    Some(cert)
}
