//! Interval Gauss–Seidel building blocks for interval-Newton contraction.
//!
//! An interval-Newton step for one constraint `g(x) ∈ A` over a box `X`
//! linearizes around the midpoint `m`:
//!
//! ```text
//! g(x) ∈ g(m) + Σⱼ ∂g/∂xⱼ(X) · (Xⱼ − mⱼ)
//! ```
//!
//! and solves the enclosure row-by-row for each axis `k` whose gradient range
//! does not straddle zero (interval Gauss–Seidel). These helpers are the
//! *shared arithmetic* of that solve: both the solver's rung-1 contractor
//! (`xcv-solver`) and the independent certificate replayer (`xcv-cert`) call
//! exactly these functions, so the two sides compute bit-identical boxes and
//! a recorded Newton step can be checked by subset tests alone.

use crate::Interval;

/// Is a gradient range usable as a Gauss–Seidel pivot? Ranges that straddle
/// zero (other than the exact point `[0, 0]`… which is also unusable, but is
/// excluded by the `contains` check below yielding `true`) cannot bound the
/// row solve. Mirrors the mean-value contractor's skip rule: a non-point
/// interval containing zero is rejected; a *point* gradient is handed to the
/// extended division, which returns the whole line (harmless) or empty.
#[inline]
pub fn grad_usable(grad: &Interval) -> bool {
    !grad.contains(0.0) || grad.is_point()
}

/// The axis offset term `∂g/∂xₖ(X) · (Xₖ − mₖ)` of the mean-value form.
#[inline]
pub fn axis_offset(grad: &Interval, dim: &Interval, mid: f64) -> Interval {
    grad.mul(&dim.sub(&Interval::point(mid)))
}

/// One interval Gauss–Seidel row solve for axis `k`.
///
/// `rest` must enclose `g(m) + Σ_{j≠k} offsetⱼ`; the row solve encloses every
/// `xₖ ∈ dom` that can satisfy `g(x) ∈ allowed`:
///
/// ```text
/// xₖ ∈ mₖ + (allowed − rest) / gradₖ
/// ```
///
/// intersected with the incoming domain. An empty result proves the box has
/// no solution of this constraint.
#[inline]
pub fn gauss_seidel_axis(
    dom: &Interval,
    mid: f64,
    grad: &Interval,
    rest: &Interval,
    allowed: &Interval,
) -> Interval {
    let rhs = allowed.sub(rest).div(grad);
    dom.intersect(&rhs.add(&Interval::point(mid)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval;

    #[test]
    fn usable_rejects_straddling_ranges() {
        assert!(grad_usable(&interval(1.0, 2.0)));
        assert!(grad_usable(&interval(-2.0, -1.0)));
        assert!(!grad_usable(&interval(-1.0, 1.0)));
        assert!(!grad_usable(&interval(0.0, 1.0)));
        // Point gradients pass through to the extended division.
        assert!(grad_usable(&interval(0.0, 0.0)));
    }

    #[test]
    fn row_solve_contracts_linear_constraint() {
        // g(x) = 2x − 1 ∈ [0, 0] over x ∈ [0, 10]: solution x = 0.5.
        let dom = interval(0.0, 10.0);
        let mid = 5.0;
        let grad = interval(2.0, 2.0);
        // rest = g(m) = 9 (no other axes).
        let rest = interval(9.0, 9.0);
        let allowed = interval(0.0, 0.0);
        let r = gauss_seidel_axis(&dom, mid, &grad, &rest, &allowed);
        assert!(r.contains(0.5));
        assert!(r.width() < 1e-9);
    }

    #[test]
    fn row_solve_proves_infeasible() {
        // g(x) = x + 100 ≤ 0 over x ∈ [0, 1]: impossible.
        let dom = interval(0.0, 1.0);
        let r = gauss_seidel_axis(
            &dom,
            0.5,
            &interval(1.0, 1.0),
            &interval(100.5, 100.5),
            &interval(f64::NEG_INFINITY, 0.0),
        );
        assert!(r.is_empty());
    }

    #[test]
    fn row_solve_never_discards_solutions() {
        // Soundness spot check: for g(x,y) = x·y − 1 = 0 over [0.5, 2]²,
        // every sampled solution point's x-coordinate survives the row solve
        // on the x axis (mean-value form linearized at the box midpoint).
        let dom = interval(0.5, 2.0);
        let mid = dom.midpoint();
        let grad = dom; // ∂(xy−1)/∂x = y ∈ [0.5, 2]
        let g_mid = Interval::point(mid)
            .mul(&Interval::point(mid))
            .sub(&Interval::point(1.0));
        let rest = g_mid.add(&axis_offset(&dom, &dom, mid)); // gy·(Y − my)
        assert!(grad_usable(&grad));
        let r = gauss_seidel_axis(&dom, mid, &grad, &rest, &interval(0.0, 0.0));
        for i in 0..32 {
            let x: f64 = 0.5 + 1.5 * (i as f64) / 31.0;
            let y = 1.0 / x;
            if !(0.5..=2.0).contains(&y) {
                continue;
            }
            assert!(r.contains(x), "x = {x}");
        }
    }
}
