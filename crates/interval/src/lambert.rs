//! Certified enclosure of the Lambert W function (principal branch) on
//! non-negative arguments.
//!
//! The AM05 exchange functional evaluates `W(s^{3/2} / √24)` with `s >= 0`,
//! so only `W0` on `[0, ∞)` is needed. `W0` is strictly increasing there,
//! which makes a certified enclosure straightforward: an approximation `w` of
//! `W0(x)` is correct to within a bracket `[w_lo, w_hi]` exactly when
//! `w_lo e^{w_lo} <= x <= w_hi e^{w_hi}`, and both products can be bounded
//! rigorously with interval arithmetic. The bracket is expanded ULP by ULP
//! until the defining inequality is *proved*, so the enclosure does not trust
//! the floating-point iteration.

use crate::interval::Interval;
use crate::round::{next_n, prev_n};

/// Approximate `W0(x)` for `x >= 0` by Halley's method.
///
/// Returns NaN for negative or NaN input (principal-branch arguments below
/// `-1/e` are outside this crate's scope).
pub fn lambert_w0_f64(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    // Initial guess: series near 0, a log-based bridge in the middle, and the
    // asymptotic log form for large x (where ln ln x is well defined).
    let mut w = if x < 0.5 {
        // W(x) ≈ x - x^2 + 3/2 x^3 for small x.
        x * (1.0 - x * (1.0 - 1.5 * x))
    } else if x < 10.0 {
        let l = (1.0 + x).ln();
        l * (1.0 - (1.0 + l).ln() / (2.0 + l))
    } else {
        let l1 = x.ln();
        let l2 = l1.ln();
        l1 - l2 + l2 / l1
    };
    // Halley iteration: w <- w - f/(f' - f f''/(2 f')), f(w) = w e^w - x.
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        if f == 0.0 {
            break;
        }
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let step = f / denom;
        let w_next = w - step;
        if !w_next.is_finite() {
            break;
        }
        if (w_next - w).abs() <= 2.0 * f64::EPSILON * w_next.abs().max(1e-300) {
            w = w_next;
            break;
        }
        w = w_next;
    }
    w
}

/// Check (rigorously) that `w e^w <= x`.
fn we_w_certainly_le(w: f64, x: f64) -> bool {
    if w < 0.0 {
        // For x >= 0 any negative w is a valid lower bound of W0(x).
        return true;
    }
    let p = Interval::point(w);
    let val = p.mul(&p.exp());
    val.hi <= x
}

/// Check (rigorously) that `w e^w >= x`.
fn we_w_certainly_ge(w: f64, x: f64) -> bool {
    if w == f64::INFINITY {
        return true;
    }
    let p = Interval::point(w);
    let val = p.mul(&p.exp());
    val.lo >= x
}

/// A certified bracket of `W0(x)` for a single `x >= 0`.
fn certified_w0(x: f64) -> (f64, f64) {
    if x == 0.0 {
        return (0.0, 0.0);
    }
    if x == f64::INFINITY {
        return (f64::INFINITY, f64::INFINITY);
    }
    let w = lambert_w0_f64(x);
    let mut lo = prev_n(w, 2);
    let mut hi = next_n(w, 2);
    let mut ulps = 2u32;
    while !we_w_certainly_le(lo, x) {
        ulps = ulps.saturating_mul(2).min(1 << 20);
        lo = prev_n(lo, ulps);
        if ulps >= 1 << 20 {
            lo = 0.0_f64.min(lo - lo.abs() * 1e-9 - 1e-300);
            break;
        }
    }
    let mut ulps = 2u32;
    while !we_w_certainly_ge(hi, x) {
        ulps = ulps.saturating_mul(2).min(1 << 20);
        hi = next_n(hi, ulps);
        if ulps >= 1 << 20 {
            hi += hi.abs() * 1e-9 + 1e-300;
            break;
        }
    }
    (lo.max(0.0).min(w), hi)
}

impl Interval {
    /// Certified enclosure of the principal Lambert W on the non-negative
    /// part of the interval. Negative parts are discarded (natural-domain
    /// semantics, consistent with [`Interval::ln`]).
    pub fn lambert_w0(&self) -> Interval {
        if self.is_empty() || self.hi < 0.0 {
            return Interval::EMPTY;
        }
        let dom = self.intersect(&Interval::new(0.0, f64::INFINITY));
        let (lo, _) = certified_w0(dom.lo);
        let (_, hi) = certified_w0(dom.hi);
        Interval::checked(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_known_values() {
        // W(0) = 0, W(e) = 1, W(1) = Ω ≈ 0.5671432904097838.
        assert_eq!(lambert_w0_f64(0.0), 0.0);
        assert!((lambert_w0_f64(std::f64::consts::E) - 1.0).abs() < 1e-14);
        assert!((lambert_w0_f64(1.0) - 0.567_143_290_409_783_8).abs() < 1e-14);
    }

    #[test]
    fn scalar_defining_equation() {
        for &x in &[1e-8, 1e-3, 0.1, 0.5, 1.0, 2.0, 10.0, 1e3, 1e8, 1e150] {
            let w = lambert_w0_f64(x);
            let resid = (w * w.exp() - x).abs() / x;
            assert!(resid < 1e-12, "x={x}, w={w}, resid={resid}");
        }
    }

    #[test]
    fn scalar_negative_is_nan() {
        assert!(lambert_w0_f64(-0.1).is_nan());
    }

    #[test]
    fn enclosure_contains_truth() {
        for &x in &[0.0, 1e-10, 0.25, 1.0, 2.282, 10.0, 1e5] {
            let enc = Interval::point(x).lambert_w0();
            let w = lambert_w0_f64(x);
            assert!(enc.lo <= w && w <= enc.hi, "x={x}: {w} not in {enc:?}");
            // And the bracket is certified: endpoints straddle x under w e^w.
            if x > 0.0 {
                assert!(enc.lo * enc.lo.exp() <= x * (1.0 + 1e-12));
                assert!(enc.hi * enc.hi.exp() >= x * (1.0 - 1e-12));
            }
        }
    }

    #[test]
    fn enclosure_monotone_interval() {
        let e = Interval::new(1.0, std::f64::consts::E).lambert_w0();
        assert!(e.contains(0.567_143_290_409_783_8));
        assert!(e.contains(1.0));
        assert!(e.lo > 0.5 && e.hi < 1.01);
    }

    #[test]
    fn enclosure_negative_clipped() {
        assert!(Interval::new(-2.0, -1.0).lambert_w0().is_empty());
        let e = Interval::new(-1.0, 1.0).lambert_w0();
        assert_eq!(e.lo, 0.0);
        assert!(e.contains(0.567_143_290_409_783_8));
    }

    #[test]
    fn enclosure_unbounded() {
        let e = Interval::new(1.0, f64::INFINITY).lambert_w0();
        assert_eq!(e.hi, f64::INFINITY);
        assert!(e.lo > 0.5);
    }

    #[test]
    fn enclosure_tightness() {
        // The certified bracket should be within a few ULPs for ordinary x.
        let x = 2.282;
        let e = Interval::point(x).lambert_w0();
        assert!(e.width() < 1e-12);
    }
}
