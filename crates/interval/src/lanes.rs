//! Slice ("lane") kernels over `&[Interval]` for batched tape execution.
//!
//! The batched solver runs one interval-tape instruction over B boxes at a
//! time (a structure-of-arrays slot file, see `xcv_expr::IntervalTape::
//! forward_batch`). These kernels are the per-instruction inner loops: one
//! call applies a single operation across all lanes, so the interpreter's
//! instruction decode, operand-slot arithmetic, and branch prediction are
//! amortized over the whole batch instead of paid per box, and the lane data
//! streams through cache linearly.
//!
//! Semantics are *exactly* the scalar [`Interval`] operations, lane by lane
//! — the scalar methods are `#[inline]` and the rounding steps
//! ([`crate::round::prev`]/[`next`](crate::round::next)) are branch-light
//! ULP arithmetic, so the compiler keeps the loop bodies tight without any
//! second implementation of the arithmetic. Batched and scalar execution are
//! therefore bit-identical by construction; the equivalence suite
//! (`tests/solver_batched.rs` at the workspace root) pins it end to end.
//!
//! All kernels require equal-length slices (`debug_assert`ed) and write
//! every element of `out`.

use crate::round::{next, prev};
use crate::Interval;

/// Branch-free lower endpoint of a sum: select-based rewrite of the scalar
/// `sum_lo` (NaN from crossed infinities → `-inf`, infinities exact, finite
/// sums stepped one ULP down).
#[inline]
fn bf_sum_lo(a: f64, b: f64) -> f64 {
    let s = a + b;
    let r = if s.is_infinite() { s } else { prev(s) };
    if s.is_nan() {
        f64::NEG_INFINITY
    } else {
        r
    }
}

/// Branch-free upper endpoint of a sum (mirror of [`bf_sum_lo`]).
#[inline]
fn bf_sum_hi(a: f64, b: f64) -> f64 {
    let s = a + b;
    let r = if s.is_infinite() { s } else { next(s) };
    if s.is_nan() {
        f64::INFINITY
    } else {
        r
    }
}

/// Endpoint product with the `0 * inf = 0` convention, as a select.
#[inline]
fn bf_prod(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        0.0
    } else {
        p
    }
}

macro_rules! unary_kernel {
    ($(#[$doc:meta])* $name:ident, $method:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(a: &[Interval], out: &mut [Interval]) {
            debug_assert_eq!(a.len(), out.len());
            for (o, x) in out.iter_mut().zip(a) {
                *o = x.$method();
            }
        }
    };
}

macro_rules! binary_kernel {
    ($(#[$doc:meta])* $name:ident, $method:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(a: &[Interval], b: &[Interval], out: &mut [Interval]) {
            debug_assert_eq!(a.len(), out.len());
            debug_assert_eq!(b.len(), out.len());
            for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
                *o = x.$method(y);
            }
        }
    };
}

/// `out[j] = a[j] + b[j]` (outward rounded). Dedicated branch-free body: the
/// empty-input early return of the scalar path becomes a final select, so the
/// loop has no data-dependent control flow and vectorizes.
#[inline]
pub fn add(a: &[Interval], b: &[Interval], out: &mut [Interval]) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(b.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        let r = Interval {
            lo: bf_sum_lo(x.lo, y.lo),
            hi: bf_sum_hi(x.hi, y.hi),
        };
        *o = if x.is_empty() | y.is_empty() {
            Interval::EMPTY
        } else {
            r
        };
    }
}

/// `out[j] = a[j] - b[j]` (outward rounded), branch-free. Matches the scalar
/// `a.add(&b.neg())` bit-for-bit: negation is exact, and an empty `b` maps to
/// the empty select either way.
#[inline]
pub fn sub(a: &[Interval], b: &[Interval], out: &mut [Interval]) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(b.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        let r = Interval {
            lo: bf_sum_lo(x.lo, -y.hi),
            hi: bf_sum_hi(x.hi, -y.lo),
        };
        *o = if x.is_empty() | y.is_empty() {
            Interval::EMPTY
        } else {
            r
        };
    }
}

/// `out[j] = a[j] * b[j]` (outward rounded), branch-free. Reproduces the
/// scalar four-candidate fold exactly — same candidate order, same
/// `f64::min`/`max` chain — with the empty check as a final select.
#[inline]
pub fn mul(a: &[Interval], b: &[Interval], out: &mut [Interval]) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(b.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        let cands = [
            bf_prod(x.lo, y.lo),
            bf_prod(x.lo, y.hi),
            bf_prod(x.hi, y.lo),
            bf_prod(x.hi, y.hi),
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cands {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        let r = Interval {
            lo: prev(lo),
            hi: next(hi),
        };
        *o = if x.is_empty() | y.is_empty() {
            Interval::EMPTY
        } else {
            r
        };
    }
}

binary_kernel!(
    /// `out[j] = a[j] / b[j]` (hull of the extended division).
    div, div
);
binary_kernel!(
    /// `out[j] = a[j] ^ b[j]` (real power, base `>= 0`).
    pow, powf
);
binary_kernel!(
    /// Elementwise-minimum lanes.
    min_i, min_i
);
binary_kernel!(
    /// Elementwise-maximum lanes.
    max_i, max_i
);

unary_kernel!(
    /// `out[j] = -a[j]`.
    neg, neg
);
unary_kernel!(
    /// `out[j] = |a[j]|`.
    abs, abs
);
unary_kernel!(
    /// `out[j] = exp(a[j])`.
    exp, exp
);
unary_kernel!(
    /// `out[j] = ln(a[j])` (empty where `a[j] <= 0` throughout).
    ln, ln
);
unary_kernel!(
    /// `out[j] = sqrt(a[j])`.
    sqrt, sqrt
);
unary_kernel!(
    /// `out[j] = cbrt(a[j])`.
    cbrt, cbrt
);
unary_kernel!(
    /// `out[j] = atan(a[j])`.
    atan, atan
);
unary_kernel!(
    /// `out[j] = sin(a[j])`.
    sin, sin
);
unary_kernel!(
    /// `out[j] = cos(a[j])`.
    cos, cos
);
unary_kernel!(
    /// `out[j] = tanh(a[j])`.
    tanh, tanh
);
unary_kernel!(
    /// `out[j] = W₀(a[j])` (principal Lambert W).
    lambert_w0, lambert_w0
);

/// `out[j] = a[j]^n` (one exponent across the batch — the tape instruction
/// carries a single `n`).
#[inline]
pub fn powi(a: &[Interval], n: i32, out: &mut [Interval]) {
    debug_assert_eq!(a.len(), out.len());
    for (o, x) in out.iter_mut().zip(a) {
        *o = x.powi(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval;

    type BinKernel = fn(&[Interval], &[Interval], &mut [Interval]);
    type BinScalar = fn(&Interval, &Interval) -> Interval;
    type UnKernel = fn(&[Interval], &mut [Interval]);
    type UnScalar = fn(&Interval) -> Interval;

    fn lanes_a() -> Vec<Interval> {
        vec![
            interval(0.1, 0.9),
            interval(-2.0, 3.0),
            interval(1.0, 1.0),
            Interval::EMPTY,
            interval(-5.0, -0.5),
            Interval::ENTIRE,
        ]
    }

    fn lanes_b() -> Vec<Interval> {
        vec![
            interval(0.5, 2.0),
            interval(-1.0, 1.0),
            interval(3.0, 4.0),
            interval(0.0, 1.0),
            interval(2.0, 2.0),
            interval(-0.5, 0.5),
        ]
    }

    #[test]
    fn binary_kernels_match_scalar_lanewise() {
        let a = lanes_a();
        let b = lanes_b();
        let mut out = vec![Interval::ZERO; a.len()];
        let cases: [(BinKernel, BinScalar); 7] = [
            (add, Interval::add),
            (sub, Interval::sub),
            (mul, Interval::mul),
            (div, Interval::div),
            (pow, Interval::powf),
            (min_i, Interval::min_i),
            (max_i, Interval::max_i),
        ];
        for (kernel, scalar) in cases {
            kernel(&a, &b, &mut out);
            for j in 0..a.len() {
                assert_eq!(out[j], scalar(&a[j], &b[j]), "lane {j}");
            }
        }
    }

    #[test]
    fn unary_kernels_match_scalar_lanewise() {
        let a = lanes_a();
        let mut out = vec![Interval::ZERO; a.len()];
        let cases: [(UnKernel, UnScalar); 11] = [
            (neg, Interval::neg),
            (abs, Interval::abs),
            (exp, Interval::exp),
            (ln, Interval::ln),
            (sqrt, Interval::sqrt),
            (cbrt, Interval::cbrt),
            (atan, Interval::atan),
            (sin, Interval::sin),
            (cos, Interval::cos),
            (tanh, Interval::tanh),
            (lambert_w0, Interval::lambert_w0),
        ];
        for (kernel, scalar) in cases {
            kernel(&a, &mut out);
            for j in 0..a.len() {
                assert_eq!(out[j], scalar(&a[j]), "lane {j}");
            }
        }
    }

    #[test]
    fn powi_kernel_matches_scalar() {
        let a = lanes_a();
        let mut out = vec![Interval::ZERO; a.len()];
        for n in [-3, -1, 0, 1, 2, 3, 4] {
            powi(&a, n, &mut out);
            for j in 0..a.len() {
                assert_eq!(out[j], a[j].powi(n), "lane {j}, n = {n}");
            }
        }
    }

    /// The dedicated branch-free add/sub/mul bodies must agree with the
    /// scalar ops *bitwise* (not just `PartialEq`, which identifies ±0.0) on
    /// every edge lane: signed zeros, infinities, empty, entire, points.
    #[test]
    fn branch_free_kernels_match_scalar_bitwise() {
        let edge: Vec<Interval> = vec![
            interval(0.1, 0.9),
            interval(-2.0, 3.0),
            interval(1.0, 1.0),
            Interval::EMPTY,
            interval(-5.0, -0.5),
            Interval::ENTIRE,
            interval(0.0, 0.0),
            Interval { lo: -0.0, hi: 0.0 },
            interval(0.0, f64::INFINITY),
            interval(f64::NEG_INFINITY, 0.0),
            interval(-1e308, 1e308),
            interval(5e-324, 5e-324),
        ];
        let n = edge.len();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..n {
            for j in 0..n {
                a.push(edge[i]);
                b.push(edge[j]);
            }
        }
        let mut out = vec![Interval::ZERO; a.len()];
        let cases: [(BinKernel, BinScalar, &str); 3] = [
            (add, Interval::add, "add"),
            (sub, Interval::sub, "sub"),
            (mul, Interval::mul, "mul"),
        ];
        for (kernel, scalar, name) in cases {
            kernel(&a, &b, &mut out);
            for j in 0..a.len() {
                let want = scalar(&a[j], &b[j]);
                assert_eq!(
                    (out[j].lo.to_bits(), out[j].hi.to_bits()),
                    (want.lo.to_bits(), want.hi.to_bits()),
                    "{name} lane {j}: {:?} op {:?}",
                    a[j],
                    b[j]
                );
            }
        }
    }

    #[test]
    fn empty_lanes_stay_empty() {
        let a = lanes_a();
        let b = lanes_b();
        let mut out = vec![Interval::ZERO; a.len()];
        mul(&a, &b, &mut out);
        assert!(out[3].is_empty());
        exp(&a, &mut out);
        assert!(out[3].is_empty());
    }
}
