//! Slice ("lane") kernels over `&[Interval]` for batched tape execution.
//!
//! The batched solver runs one interval-tape instruction over B boxes at a
//! time (a structure-of-arrays slot file, see `xcv_expr::IntervalTape::
//! forward_batch`). These kernels are the per-instruction inner loops: one
//! call applies a single operation across all lanes, so the interpreter's
//! instruction decode, operand-slot arithmetic, and branch prediction are
//! amortized over the whole batch instead of paid per box, and the lane data
//! streams through cache linearly.
//!
//! Semantics are *exactly* the scalar [`Interval`] operations, lane by lane
//! — the scalar methods are `#[inline]` and the rounding steps
//! ([`crate::round::prev`]/[`next`](crate::round::next)) are branch-light
//! ULP arithmetic, so the compiler keeps the loop bodies tight without any
//! second implementation of the arithmetic. Batched and scalar execution are
//! therefore bit-identical by construction; the equivalence suite
//! (`tests/solver_batched.rs` at the workspace root) pins it end to end.
//!
//! All kernels require equal-length slices (`debug_assert`ed) and write
//! every element of `out`.

use crate::Interval;

macro_rules! unary_kernel {
    ($(#[$doc:meta])* $name:ident, $method:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(a: &[Interval], out: &mut [Interval]) {
            debug_assert_eq!(a.len(), out.len());
            for (o, x) in out.iter_mut().zip(a) {
                *o = x.$method();
            }
        }
    };
}

macro_rules! binary_kernel {
    ($(#[$doc:meta])* $name:ident, $method:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(a: &[Interval], b: &[Interval], out: &mut [Interval]) {
            debug_assert_eq!(a.len(), out.len());
            debug_assert_eq!(b.len(), out.len());
            for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
                *o = x.$method(y);
            }
        }
    };
}

binary_kernel!(
    /// `out[j] = a[j] + b[j]` (outward rounded).
    add, add
);
binary_kernel!(
    /// `out[j] = a[j] - b[j]` (outward rounded).
    sub, sub
);
binary_kernel!(
    /// `out[j] = a[j] * b[j]` (outward rounded).
    mul, mul
);
binary_kernel!(
    /// `out[j] = a[j] / b[j]` (hull of the extended division).
    div, div
);
binary_kernel!(
    /// `out[j] = a[j] ^ b[j]` (real power, base `>= 0`).
    pow, powf
);
binary_kernel!(
    /// Elementwise-minimum lanes.
    min_i, min_i
);
binary_kernel!(
    /// Elementwise-maximum lanes.
    max_i, max_i
);

unary_kernel!(
    /// `out[j] = -a[j]`.
    neg, neg
);
unary_kernel!(
    /// `out[j] = |a[j]|`.
    abs, abs
);
unary_kernel!(
    /// `out[j] = exp(a[j])`.
    exp, exp
);
unary_kernel!(
    /// `out[j] = ln(a[j])` (empty where `a[j] <= 0` throughout).
    ln, ln
);
unary_kernel!(
    /// `out[j] = sqrt(a[j])`.
    sqrt, sqrt
);
unary_kernel!(
    /// `out[j] = cbrt(a[j])`.
    cbrt, cbrt
);
unary_kernel!(
    /// `out[j] = atan(a[j])`.
    atan, atan
);
unary_kernel!(
    /// `out[j] = sin(a[j])`.
    sin, sin
);
unary_kernel!(
    /// `out[j] = cos(a[j])`.
    cos, cos
);
unary_kernel!(
    /// `out[j] = tanh(a[j])`.
    tanh, tanh
);
unary_kernel!(
    /// `out[j] = W₀(a[j])` (principal Lambert W).
    lambert_w0, lambert_w0
);

/// `out[j] = a[j]^n` (one exponent across the batch — the tape instruction
/// carries a single `n`).
#[inline]
pub fn powi(a: &[Interval], n: i32, out: &mut [Interval]) {
    debug_assert_eq!(a.len(), out.len());
    for (o, x) in out.iter_mut().zip(a) {
        *o = x.powi(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval;

    type BinKernel = fn(&[Interval], &[Interval], &mut [Interval]);
    type BinScalar = fn(&Interval, &Interval) -> Interval;
    type UnKernel = fn(&[Interval], &mut [Interval]);
    type UnScalar = fn(&Interval) -> Interval;

    fn lanes_a() -> Vec<Interval> {
        vec![
            interval(0.1, 0.9),
            interval(-2.0, 3.0),
            interval(1.0, 1.0),
            Interval::EMPTY,
            interval(-5.0, -0.5),
            Interval::ENTIRE,
        ]
    }

    fn lanes_b() -> Vec<Interval> {
        vec![
            interval(0.5, 2.0),
            interval(-1.0, 1.0),
            interval(3.0, 4.0),
            interval(0.0, 1.0),
            interval(2.0, 2.0),
            interval(-0.5, 0.5),
        ]
    }

    #[test]
    fn binary_kernels_match_scalar_lanewise() {
        let a = lanes_a();
        let b = lanes_b();
        let mut out = vec![Interval::ZERO; a.len()];
        let cases: [(BinKernel, BinScalar); 7] = [
            (add, Interval::add),
            (sub, Interval::sub),
            (mul, Interval::mul),
            (div, Interval::div),
            (pow, Interval::powf),
            (min_i, Interval::min_i),
            (max_i, Interval::max_i),
        ];
        for (kernel, scalar) in cases {
            kernel(&a, &b, &mut out);
            for j in 0..a.len() {
                assert_eq!(out[j], scalar(&a[j], &b[j]), "lane {j}");
            }
        }
    }

    #[test]
    fn unary_kernels_match_scalar_lanewise() {
        let a = lanes_a();
        let mut out = vec![Interval::ZERO; a.len()];
        let cases: [(UnKernel, UnScalar); 11] = [
            (neg, Interval::neg),
            (abs, Interval::abs),
            (exp, Interval::exp),
            (ln, Interval::ln),
            (sqrt, Interval::sqrt),
            (cbrt, Interval::cbrt),
            (atan, Interval::atan),
            (sin, Interval::sin),
            (cos, Interval::cos),
            (tanh, Interval::tanh),
            (lambert_w0, Interval::lambert_w0),
        ];
        for (kernel, scalar) in cases {
            kernel(&a, &mut out);
            for j in 0..a.len() {
                assert_eq!(out[j], scalar(&a[j]), "lane {j}");
            }
        }
    }

    #[test]
    fn powi_kernel_matches_scalar() {
        let a = lanes_a();
        let mut out = vec![Interval::ZERO; a.len()];
        for n in [-3, -1, 0, 1, 2, 3, 4] {
            powi(&a, n, &mut out);
            for j in 0..a.len() {
                assert_eq!(out[j], a[j].powi(n), "lane {j}, n = {n}");
            }
        }
    }

    #[test]
    fn empty_lanes_stay_empty() {
        let a = lanes_a();
        let b = lanes_b();
        let mut out = vec![Interval::ZERO; a.len()];
        mul(&a, &b, &mut out);
        assert!(out[3].is_empty());
        exp(&a, &mut out);
        assert!(out[3].is_empty());
    }
}
