//! Transcendental function enclosures.
//!
//! Monotone functions (`exp`, `ln`, `sqrt`, `cbrt`, `atan`, `tanh`) are
//! evaluated at the endpoints and widened by [`round::LIBM_SLOP_ULPS`] to
//! absorb libm inaccuracy. `sin`/`cos` do a quadrant analysis. `powf` is
//! defined for non-negative bases via `exp(y ln x)` with exact handling of the
//! `x = 0` boundary (as in LIBXC functional forms, `0^y = 0` for `y > 0`).

use crate::interval::Interval;
use crate::round::{libm_hi, libm_lo, next, prev};

impl Interval {
    /// Enclosure of `e^x`.
    pub fn exp(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let lo = if self.lo == f64::NEG_INFINITY {
            0.0
        } else {
            libm_lo(self.lo.exp()).max(0.0)
        };
        let hi = if self.hi == f64::INFINITY {
            f64::INFINITY
        } else {
            libm_hi(self.hi.exp())
        };
        Interval::checked(lo, hi)
    }

    /// Enclosure of `ln x` on the domain restriction `x > 0`.
    ///
    /// Parts of the interval at or below zero are discarded (the natural
    /// domain semantics used by dReal); an interval entirely `<= 0` yields
    /// the empty interval.
    pub fn ln(&self) -> Interval {
        if self.is_empty() || self.hi <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.lo <= 0.0 {
            f64::NEG_INFINITY
        } else {
            libm_lo(self.lo.ln())
        };
        let hi = if self.hi == f64::INFINITY {
            f64::INFINITY
        } else {
            libm_hi(self.hi.ln())
        };
        Interval::checked(lo, hi)
    }

    /// Enclosure of `sqrt x` on the domain restriction `x >= 0`.
    pub fn sqrt(&self) -> Interval {
        if self.is_empty() || self.hi < 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.lo <= 0.0 {
            0.0
        } else {
            // sqrt is correctly rounded by IEEE-754; 1 ULP is still applied
            // for uniformity and costs nothing.
            prev(self.lo.sqrt()).max(0.0)
        };
        let hi = if self.hi == f64::INFINITY {
            f64::INFINITY
        } else {
            next(self.hi.sqrt())
        };
        Interval::checked(lo, hi)
    }

    /// Enclosure of the real cube root (odd, increasing, total).
    pub fn cbrt(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let lo = if self.lo == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            libm_lo(self.lo.cbrt())
        };
        let hi = if self.hi == f64::INFINITY {
            f64::INFINITY
        } else {
            libm_hi(self.hi.cbrt())
        };
        Interval::checked(lo, hi)
    }

    /// Enclosure of `atan x`.
    pub fn atan(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let half_pi_hi = next(std::f64::consts::FRAC_PI_2);
        let lo = libm_lo(self.lo.atan()).max(-half_pi_hi);
        let hi = libm_hi(self.hi.atan()).min(half_pi_hi);
        Interval::checked(lo, hi)
    }

    /// Enclosure of `tanh x`.
    pub fn tanh(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let lo = libm_lo(self.lo.tanh()).max(-1.0);
        let hi = libm_hi(self.hi.tanh()).min(1.0);
        Interval::checked(lo, hi)
    }

    /// Enclosure of `sin x` with quadrant analysis.
    pub fn sin(&self) -> Interval {
        trig(self, f64::sin, -std::f64::consts::FRAC_PI_2)
    }

    /// Enclosure of `cos x` with quadrant analysis.
    pub fn cos(&self) -> Interval {
        trig(self, f64::cos, 0.0)
    }

    /// Enclosure of `x^y` for non-negative bases.
    ///
    /// Defined as `exp(y ln x)` for `x > 0`, with `0^y = 0` for `y > 0`,
    /// `0^0 = 1`, and `0^y = +inf` for `y < 0`. Negative parts of the base are
    /// discarded (natural-domain semantics).
    pub fn powf(&self, y: &Interval) -> Interval {
        if self.is_empty() || y.is_empty() {
            return Interval::EMPTY;
        }
        let base = self.intersect(&Interval::new(0.0, f64::INFINITY));
        if base.is_empty() {
            return Interval::EMPTY;
        }
        // Positive-base core via exp(y ln x).
        let strictly_pos = base.intersect(&Interval::checked(f64::MIN_POSITIVE, f64::INFINITY));
        let mut out = if strictly_pos.is_empty() {
            Interval::EMPTY
        } else {
            (y.mul(&strictly_pos.ln())).exp()
        };
        if base.contains(0.0) {
            if y.certainly_gt(0.0) {
                out = out.hull(&Interval::ZERO);
            } else if y.certainly_lt(0.0) {
                out = out.hull(&Interval::new(f64::INFINITY, f64::INFINITY));
            } else {
                // Exponent interval contains 0: 0^0 = 1 convention plus both
                // limits — the hull is [0, inf) joined with the core.
                out = out
                    .hull(&Interval::ZERO)
                    .hull(&Interval::ONE)
                    .hull(&Interval::new(f64::INFINITY, f64::INFINITY));
            }
        }
        out
    }

    /// Enclosure of `x^(1/n)` for positive integer `n` on `x >= 0` (used in
    /// backward contraction of `powi`). For odd `n` the domain extends to
    /// negatives via odd symmetry.
    pub fn nth_root(&self, n: i32) -> Interval {
        assert!(n > 0);
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if n == 1 {
            return *self;
        }
        let odd = n % 2 == 1;
        let root = |x: f64| -> f64 {
            if x == f64::INFINITY {
                f64::INFINITY
            } else if x == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else if x >= 0.0 {
                x.powf(1.0 / n as f64)
            } else {
                -(-x).powf(1.0 / n as f64)
            }
        };
        if odd {
            Interval::checked(libm_lo(root(self.lo)), libm_hi(root(self.hi)))
        } else {
            let dom = self.intersect(&Interval::new(0.0, f64::INFINITY));
            if dom.is_empty() {
                return Interval::EMPTY;
            }
            Interval::checked(libm_lo(root(dom.lo)).max(0.0), libm_hi(root(dom.hi)))
        }
    }
}

/// Shared quadrant analysis for sin/cos. `phase` shifts the function's maxima
/// onto multiples of 2π: maxima of `sin` sit at π/2 + 2kπ (phase −π/2), maxima
/// of `cos` at 2kπ (phase 0).
fn trig(x: &Interval, f: fn(f64) -> f64, phase: f64) -> Interval {
    if x.is_empty() {
        return Interval::EMPTY;
    }
    let two_pi = 2.0 * std::f64::consts::PI;
    if x.width() >= two_pi || !x.is_bounded() {
        return Interval::new(-1.0, 1.0);
    }
    let flo = f(x.lo);
    let fhi = f(x.hi);
    let mut lo = flo.min(fhi);
    let mut hi = flo.max(fhi);
    // Does the interval contain a maximum (at phase + 2kπ shifted by π/2 for
    // sin) or a minimum?
    // Maxima of f at m_k = -phase + 2kπ ... for sin: maxima at π/2 + 2kπ,
    // phase = -π/2 so m_k = π/2 + 2kπ. For cos: maxima at 2kπ.
    let contains_extremum = |offset: f64| -> bool {
        // Is there an integer k with x.lo <= offset + 2kπ <= x.hi?
        let k_min = ((x.lo - offset) / two_pi).ceil();
        offset + k_min * two_pi <= x.hi + 1e-12
    };
    let max_at = -phase;
    let min_at = -phase + std::f64::consts::PI;
    if contains_extremum(max_at) {
        hi = 1.0;
    }
    if contains_extremum(min_at) {
        lo = -1.0;
    }
    Interval::checked(libm_lo(lo).max(-1.0), libm_hi(hi).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{E, FRAC_PI_2, PI};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn exp_contains() {
        let r = iv(0.0, 1.0).exp();
        assert!(r.contains(1.0) && r.contains(E));
        assert!(r.lo <= 1.0 && r.hi >= E);
    }

    #[test]
    fn exp_unbounded() {
        let r = Interval::new(f64::NEG_INFINITY, 0.0).exp();
        assert_eq!(r.lo, 0.0);
        assert!(r.contains(1.0));
        let r = Interval::new(0.0, f64::INFINITY).exp();
        assert_eq!(r.hi, f64::INFINITY);
    }

    #[test]
    fn ln_domain_restriction() {
        assert!(iv(-2.0, -1.0).ln().is_empty());
        let r = iv(-1.0, E).ln();
        assert_eq!(r.lo, f64::NEG_INFINITY);
        assert!(r.contains(1.0));
        let r = iv(1.0, E).ln();
        assert!(r.contains(0.0) && r.contains(1.0));
    }

    #[test]
    fn sqrt_domain() {
        assert!(iv(-2.0, -1.0).sqrt().is_empty());
        let r = iv(-1.0, 4.0).sqrt();
        assert_eq!(r.lo, 0.0);
        assert!(r.contains(2.0));
    }

    #[test]
    fn cbrt_odd() {
        let r = iv(-8.0, 27.0).cbrt();
        assert!(r.contains(-2.0) && r.contains(3.0));
    }

    #[test]
    fn atan_bounded() {
        let r = Interval::ENTIRE.atan();
        assert!(r.lo >= -FRAC_PI_2 - 1e-10 && r.hi <= FRAC_PI_2 + 1e-10);
        let r = iv(0.0, 1.0).atan();
        assert!(r.contains(0.0) && r.contains(std::f64::consts::FRAC_PI_4));
    }

    #[test]
    fn tanh_bounded() {
        let r = Interval::ENTIRE.tanh();
        assert!(r.lo >= -1.0 && r.hi <= 1.0);
        assert!(iv(0.0, 1.0).tanh().contains(0.5_f64.tanh() + 0.2));
    }

    #[test]
    fn sin_quadrants() {
        let r = iv(0.0, PI).sin();
        assert!(r.hi >= 1.0 - 1e-12); // contains max at π/2
        assert!(r.lo <= 1e-12);
        let r = iv(PI, 2.0 * PI).sin();
        assert!(r.lo <= -1.0 + 1e-12); // contains min at 3π/2
    }

    #[test]
    fn cos_quadrants() {
        let r = iv(-0.1, 0.1).cos();
        assert!(r.hi >= 1.0 - 1e-12); // max at 0
        let r = iv(PI - 0.1, PI + 0.1).cos();
        assert!(r.lo <= -1.0 + 1e-12);
    }

    #[test]
    fn sin_wide_interval_is_unit() {
        let r = iv(0.0, 100.0).sin();
        assert_eq!(r, Interval::new(-1.0, 1.0));
    }

    #[test]
    fn powf_positive_base() {
        let r = iv(2.0, 3.0).powf(&iv(2.0, 2.0));
        assert!(r.contains(4.0) && r.contains(9.0));
        let r = iv(4.0, 4.0).powf(&iv(0.5, 0.5));
        assert!(r.contains(2.0));
    }

    #[test]
    fn powf_zero_base() {
        let r = iv(0.0, 1.0).powf(&iv(2.0, 2.0));
        assert!(r.contains(0.0) && r.contains(1.0));
        let r = iv(0.0, 1.0).powf(&iv(-0.5, -0.5));
        assert_eq!(r.hi, f64::INFINITY);
    }

    #[test]
    fn powf_negative_base_discarded() {
        let r = iv(-2.0, -1.0).powf(&iv(2.0, 2.0));
        assert!(r.is_empty());
    }

    #[test]
    fn nth_root_round_trip() {
        let x = iv(8.0, 27.0);
        let r = x.nth_root(3);
        assert!(r.contains(2.0) && r.contains(3.0));
        let x = iv(-27.0, -8.0);
        let r = x.nth_root(3);
        assert!(r.contains(-3.0) && r.contains(-2.0));
        let x = iv(4.0, 9.0);
        let r = x.nth_root(2);
        assert!(r.contains(2.0) && r.contains(3.0));
        assert!(iv(-4.0, -1.0).nth_root(2).is_empty());
    }
}
