//! Directed-rounding helpers.
//!
//! IEEE-754 arithmetic in Rust rounds to nearest-even; interval arithmetic
//! needs outward rounding. Rather than toggling the FPU rounding mode (which
//! is not portable and interacts badly with the optimizer), we compute in
//! round-to-nearest and then step the result outward by one ULP. That yields
//! slightly wider intervals than true directed rounding, but containment — the
//! only property soundness needs — is preserved.

/// Number of ULPs by which transcendental results from the platform libm are
/// widened. glibc documents worst-case errors below 2 ULP for the functions we
/// use (`exp`, `ln`, `atan`, `sin`, `cos`, `tanh`, `powf`, `cbrt`); 4 leaves a
/// generous margin for other libms.
pub const LIBM_SLOP_ULPS: u32 = 4;

/// The largest float strictly less than `x` (identity on infinities of the
/// matching sign, NaN-propagating).
#[inline]
pub fn prev(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        x
    } else {
        x.next_down()
    }
}

/// The smallest float strictly greater than `x`.
#[inline]
pub fn next(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        x
    } else {
        x.next_up()
    }
}

/// Step `x` down by `n` ULPs.
#[inline]
pub fn prev_n(mut x: f64, n: u32) -> f64 {
    for _ in 0..n {
        x = prev(x);
    }
    x
}

/// Step `x` up by `n` ULPs.
#[inline]
pub fn next_n(mut x: f64, n: u32) -> f64 {
    for _ in 0..n {
        x = next(x);
    }
    x
}

/// Lower bound for a libm-computed value: step down by [`LIBM_SLOP_ULPS`].
#[inline]
pub fn libm_lo(x: f64) -> f64 {
    prev_n(x, LIBM_SLOP_ULPS)
}

/// Upper bound for a libm-computed value: step up by [`LIBM_SLOP_ULPS`].
#[inline]
pub fn libm_hi(x: f64) -> f64 {
    next_n(x, LIBM_SLOP_ULPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_next_are_adjacent() {
        let x = 1.0_f64;
        assert!(prev(x) < x);
        assert!(next(x) > x);
        assert_eq!(next(prev(x)), x);
        assert_eq!(prev(next(x)), x);
    }

    #[test]
    fn prev_next_at_zero() {
        assert!(prev(0.0) < 0.0);
        assert!(next(0.0) > 0.0);
        assert_eq!(next(prev(0.0)), 0.0);
    }

    #[test]
    fn infinities_are_fixed_points() {
        assert_eq!(next(f64::INFINITY), f64::INFINITY);
        assert_eq!(prev(f64::NEG_INFINITY), f64::NEG_INFINITY);
        // But stepping *inward* from infinity works.
        assert!(prev(f64::INFINITY).is_finite());
        assert!(next(f64::NEG_INFINITY).is_finite());
    }

    #[test]
    fn nan_propagates() {
        assert!(prev(f64::NAN).is_nan());
        assert!(next(f64::NAN).is_nan());
    }

    #[test]
    fn n_step_monotone() {
        let x = 2.5_f64;
        assert!(prev_n(x, 3) < prev_n(x, 2));
        assert!(next_n(x, 3) > next_n(x, 2));
        assert_eq!(prev_n(x, 0), x);
        assert_eq!(next_n(x, 0), x);
    }

    #[test]
    fn libm_slop_brackets() {
        let x = std::f64::consts::E;
        assert!(libm_lo(x) < x && x < libm_hi(x));
    }
}
