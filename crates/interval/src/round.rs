//! Directed-rounding helpers.
//!
//! IEEE-754 arithmetic in Rust rounds to nearest-even; interval arithmetic
//! needs outward rounding. Rather than toggling the FPU rounding mode (which
//! is not portable and interacts badly with the optimizer), we compute in
//! round-to-nearest and then step the result outward by one ULP. That yields
//! slightly wider intervals than true directed rounding, but containment — the
//! only property soundness needs — is preserved.
//!
//! The ULP step is implemented branch-free: a float's bit pattern is mapped
//! through an order-preserving integer transform ([`to_ordered`]), stepped by
//! integer add/sub, and mapped back. The only data-dependent constructs left
//! are boolean selects (NaN / directed-infinity fixed points and the ±0.0
//! skip), which LLVM lowers to `cmov`/blend — so the slice kernels in
//! [`crate::lanes`] vectorize instead of serializing on per-element branches.
//! The semantics are *exactly* those of `f64::next_down`/`next_up` (verified
//! bit-for-bit by the tests below), so scalar and batched execution agree.

/// Number of ULPs by which transcendental results from the platform libm are
/// widened. glibc documents worst-case errors below 2 ULP for the functions we
/// use (`exp`, `ln`, `atan`, `sin`, `cos`, `tanh`, `powf`, `cbrt`); 4 leaves a
/// generous margin for other libms.
pub const LIBM_SLOP_ULPS: u32 = 4;

/// Sign bit of an `f64`'s representation.
const SIGN: u64 = 0x8000_0000_0000_0000;

/// Map a float's bits into a totally ordered unsigned space: positives (and
/// `+0.0`) get the sign bit set, negatives are bitwise complemented. The map
/// is strictly monotone over all non-NaN floats, so stepping one ULP in
/// either direction is a plain integer increment/decrement.
#[inline]
fn to_ordered(b: u64) -> u64 {
    b ^ ((((b as i64) >> 63) as u64) | SIGN)
}

/// Inverse of [`to_ordered`].
#[inline]
fn from_ordered(t: u64) -> u64 {
    t ^ (((!t as i64 >> 63) as u64) | SIGN)
}

/// The largest float strictly less than `x` (identity on `-inf`,
/// NaN-propagating). Bit-identical to `f64::next_down` away from the fixed
/// points: in particular `prev(+0.0)` and `prev(-0.0)` both skip past the
/// other zero straight to `-5e-324`.
#[inline]
pub fn prev(x: f64) -> f64 {
    let t = to_ordered(x.to_bits());
    // `+0.0` sits one ordered step above `-0.0`; next_down skips the pair.
    let dec = 1 + u64::from(t == SIGN);
    let stepped = f64::from_bits(from_ordered(t.wrapping_sub(dec)));
    if x.is_nan() || x == f64::NEG_INFINITY {
        x
    } else {
        stepped
    }
}

/// The smallest float strictly greater than `x` (identity on `+inf`,
/// NaN-propagating). Bit-identical to `f64::next_up` away from the fixed
/// points.
#[inline]
pub fn next(x: f64) -> f64 {
    let t = to_ordered(x.to_bits());
    let inc = 1 + u64::from(t == SIGN - 1);
    let stepped = f64::from_bits(from_ordered(t.wrapping_add(inc)));
    if x.is_nan() || x == f64::INFINITY {
        x
    } else {
        stepped
    }
}

/// Step `x` down by `n` ULPs.
#[inline]
pub fn prev_n(mut x: f64, n: u32) -> f64 {
    for _ in 0..n {
        x = prev(x);
    }
    x
}

/// Step `x` up by `n` ULPs.
#[inline]
pub fn next_n(mut x: f64, n: u32) -> f64 {
    for _ in 0..n {
        x = next(x);
    }
    x
}

/// Lower bound for a libm-computed value: step down by [`LIBM_SLOP_ULPS`].
#[inline]
pub fn libm_lo(x: f64) -> f64 {
    prev_n(x, LIBM_SLOP_ULPS)
}

/// Upper bound for a libm-computed value: step up by [`LIBM_SLOP_ULPS`].
#[inline]
pub fn libm_hi(x: f64) -> f64 {
    next_n(x, LIBM_SLOP_ULPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prev_next_are_adjacent() {
        let x = 1.0_f64;
        assert!(prev(x) < x);
        assert!(next(x) > x);
        assert_eq!(next(prev(x)), x);
        assert_eq!(prev(next(x)), x);
    }

    #[test]
    fn prev_next_at_zero() {
        assert!(prev(0.0) < 0.0);
        assert!(next(0.0) > 0.0);
        assert_eq!(next(prev(0.0)), 0.0);
    }

    #[test]
    fn infinities_are_fixed_points() {
        assert_eq!(next(f64::INFINITY), f64::INFINITY);
        assert_eq!(prev(f64::NEG_INFINITY), f64::NEG_INFINITY);
        // But stepping *inward* from infinity works.
        assert!(prev(f64::INFINITY).is_finite());
        assert!(next(f64::NEG_INFINITY).is_finite());
    }

    #[test]
    fn nan_propagates() {
        assert!(prev(f64::NAN).is_nan());
        assert!(next(f64::NAN).is_nan());
    }

    #[test]
    fn n_step_monotone() {
        let x = 2.5_f64;
        assert!(prev_n(x, 3) < prev_n(x, 2));
        assert!(next_n(x, 3) > next_n(x, 2));
        assert_eq!(prev_n(x, 0), x);
        assert_eq!(next_n(x, 0), x);
    }

    #[test]
    fn libm_slop_brackets() {
        let x = std::f64::consts::E;
        assert!(libm_lo(x) < x && x < libm_hi(x));
    }

    #[test]
    fn ordered_transform_round_trips() {
        for b in [
            0u64,
            1,
            SIGN,
            SIGN | 1,
            SIGN - 1,
            u64::MAX,
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            1.0f64.to_bits(),
            (-1.0f64).to_bits(),
        ] {
            assert_eq!(from_ordered(to_ordered(b)), b, "bits {b:#x}");
        }
        // Monotone across the sign boundary.
        assert!(to_ordered((-1.0f64).to_bits()) < to_ordered((-0.0f64).to_bits()));
        assert!(to_ordered((-0.0f64).to_bits()) < to_ordered(0.0f64.to_bits()));
        assert!(to_ordered(0.0f64.to_bits()) < to_ordered(1.0f64.to_bits()));
    }

    #[test]
    fn branchless_step_matches_std_bitwise() {
        let cases = [
            0.0,
            -0.0,
            5e-324,
            -5e-324,
            1.0,
            -1.0,
            1.5,
            -2.5,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e308,
            -1e308,
            std::f64::consts::PI,
        ];
        for x in cases {
            let want_prev = if x.is_nan() || x == f64::NEG_INFINITY {
                x
            } else {
                x.next_down()
            };
            let want_next = if x.is_nan() || x == f64::INFINITY {
                x
            } else {
                x.next_up()
            };
            assert_eq!(prev(x).to_bits(), want_prev.to_bits(), "prev({x:e})");
            assert_eq!(next(x).to_bits(), want_next.to_bits(), "next({x:e})");
        }
        assert!(prev(f64::NAN).is_nan());
        assert!(next(f64::NAN).is_nan());
    }
}
