//! The core [`Interval`] type and its ring operations.

use crate::round::{next, prev};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` of extended reals, or the empty set.
///
/// Invariants:
/// * non-empty intervals satisfy `lo <= hi` and neither bound is NaN;
/// * the empty interval is canonically `[+inf, -inf]`;
/// * bounds may be infinite (`[-inf, +inf]` is [`Interval::ENTIRE`]).
///
/// All arithmetic is *outward rounded*: the result interval contains the exact
/// real-arithmetic image of the operands.
#[derive(Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{:e}, {:e}]", self.lo, self.hi)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Interval {
    /// The empty interval.
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The whole extended real line `[-inf, +inf]`.
    pub const ENTIRE: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// `[1, 1]`.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };

    /// Construct `[lo, hi]`. Panics on NaN bounds or `lo > hi`.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval bound");
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Construct `[lo, hi]`, returning [`Interval::EMPTY`] when `lo > hi` or a
    /// bound is NaN, instead of panicking.
    #[inline]
    pub fn checked(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// The point interval `[x, x]`. Panics if `x` is NaN.
    #[inline]
    pub fn point(x: f64) -> Interval {
        assert!(!x.is_nan(), "NaN point interval");
        Interval { lo: x, hi: x }
    }

    /// An interval containing `x` widened by one ULP on each side; used to
    /// represent decimal constants whose exact value may not be an `f64`.
    #[inline]
    pub fn widened_point(x: f64) -> Interval {
        Interval {
            lo: prev(x),
            hi: next(x),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// True when both bounds are finite.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        !self.is_empty() && self.lo.is_finite() && self.hi.is_finite()
    }

    /// Width `hi - lo` (outward rounded up); 0 for empty, may be `inf`.
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            next(self.hi - self.lo).max(0.0)
        }
    }

    /// A finite midpoint; for half-infinite intervals returns a large finite
    /// proxy so that bisection still makes progress.
    pub fn midpoint(&self) -> f64 {
        debug_assert!(!self.is_empty());
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => {
                let m = 0.5 * (self.lo + self.hi);
                if m.is_finite() {
                    m
                } else {
                    // Overflow: average of huge bounds.
                    0.5 * self.lo + 0.5 * self.hi
                }
            }
            (true, false) => (self.lo.abs().max(1.0)) * 2.0_f64.min(f64::MAX),
            (false, true) => -(self.hi.abs().max(1.0)) * 2.0,
            (false, false) => 0.0,
        }
    }

    /// Magnitude: `max(|lo|, |hi|)`.
    #[inline]
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Mignitude: the smallest absolute value attained in the interval.
    #[inline]
    pub fn mig(&self) -> f64 {
        if self.contains(0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        !self.is_empty() && self.lo <= x && x <= self.hi
    }

    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (!self.is_empty() && self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::checked(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Convex hull of the union.
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            Interval {
                lo: self.lo.min(other.lo),
                hi: self.hi.max(other.hi),
            }
        }
    }

    /// Split at the midpoint into two halves (for branch-and-prune).
    pub fn bisect(&self) -> (Interval, Interval) {
        let m = self.midpoint();
        (Interval::checked(self.lo, m), Interval::checked(m, self.hi))
    }

    /// True when every element is `<= x`.
    #[inline]
    pub fn certainly_le(&self, x: f64) -> bool {
        !self.is_empty() && self.hi <= x
    }

    /// True when every element is `>= x`.
    #[inline]
    pub fn certainly_ge(&self, x: f64) -> bool {
        !self.is_empty() && self.lo >= x
    }

    /// True when every element is `< x`.
    #[inline]
    pub fn certainly_lt(&self, x: f64) -> bool {
        !self.is_empty() && self.hi < x
    }

    /// True when every element is `> x`.
    #[inline]
    pub fn certainly_gt(&self, x: f64) -> bool {
        !self.is_empty() && self.lo > x
    }

    /// Elementwise negation.
    #[inline]
    pub fn neg(&self) -> Interval {
        if self.is_empty() {
            Interval::EMPTY
        } else {
            Interval {
                lo: -self.hi,
                hi: -self.lo,
            }
        }
    }

    /// Outward-rounded addition.
    pub fn add(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: sum_lo(self.lo, rhs.lo),
            hi: sum_hi(self.hi, rhs.hi),
        }
    }

    /// Outward-rounded subtraction.
    pub fn sub(&self, rhs: &Interval) -> Interval {
        self.add(&rhs.neg())
    }

    /// Outward-rounded multiplication (with the `0 * inf = 0` endpoint
    /// convention, which is the correct image convention for closed sets of
    /// reals).
    pub fn mul(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        let cands = [
            prod(self.lo, rhs.lo),
            prod(self.lo, rhs.hi),
            prod(self.hi, rhs.lo),
            prod(self.hi, rhs.hi),
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in cands {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval {
            lo: prev(lo),
            hi: next(hi),
        }
    }

    /// Outward-rounded division. When the divisor contains zero in its
    /// interior the true preimage is a union of two rays; this returns the
    /// hull (possibly [`Interval::ENTIRE`]). Use [`Interval::div_parts`] when
    /// the two branches must be kept separate (backward contraction).
    pub fn div(&self, rhs: &Interval) -> Interval {
        match self.div_parts(rhs) {
            (None, None) => Interval::EMPTY,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.hull(&b),
        }
    }

    /// Extended division returning up to two disjoint pieces.
    pub fn div_parts(&self, rhs: &Interval) -> (Option<Interval>, Option<Interval>) {
        if self.is_empty() || rhs.is_empty() {
            return (None, None);
        }
        // Divisor does not straddle zero: single piece.
        if rhs.lo > 0.0 || rhs.hi < 0.0 {
            return (Some(div_simple(self, rhs)), None);
        }
        // rhs contains 0.
        if rhs.lo == 0.0 && rhs.hi == 0.0 {
            // Division by exactly zero: empty unless numerator contains 0, in
            // which case 0/0 is undefined over the reals — conventionally the
            // whole line for contractor purposes.
            return if self.contains(0.0) {
                (Some(Interval::ENTIRE), None)
            } else {
                (None, None)
            };
        }
        if self.contains(0.0) {
            return (Some(Interval::ENTIRE), None);
        }
        // Numerator strictly positive or strictly negative, divisor straddles 0:
        // result is two rays.
        let pos_part = Interval::checked(next(0.0_f64.max(rhs.lo)), rhs.hi); // (0, hi]
        let neg_part = Interval::checked(rhs.lo, prev(0.0_f64.min(rhs.hi))); // [lo, 0)
        let mut first = None;
        let mut second = None;
        if !neg_part.is_empty() && neg_part.lo < 0.0 {
            let piece = div_simple(self, &Interval::new(rhs.lo, prev(0.0)));
            first = Some(piece);
        }
        if !pos_part.is_empty() && pos_part.hi > 0.0 {
            let piece = div_simple(self, &Interval::new(next(0.0), rhs.hi));
            if first.is_none() {
                first = Some(piece);
            } else {
                second = Some(piece);
            }
        }
        // Extend the rays to include the infinite limit.
        let fix = |iv: Interval| -> Interval {
            let mut iv = iv;
            if self.lo > 0.0 {
                // numerator > 0
                if rhs.hi > 0.0 && iv.lo > 0.0 {
                    iv.hi = f64::INFINITY;
                }
                if rhs.lo < 0.0 && iv.hi < 0.0 {
                    iv.lo = f64::NEG_INFINITY;
                }
            } else {
                if rhs.hi > 0.0 && iv.hi < 0.0 {
                    iv.lo = f64::NEG_INFINITY;
                }
                if rhs.lo < 0.0 && iv.lo > 0.0 {
                    iv.hi = f64::INFINITY;
                }
            }
            iv
        };
        (first.map(fix), second.map(fix))
    }

    /// Multiplicative inverse `1 / self`.
    pub fn recip(&self) -> Interval {
        Interval::div(&Interval::ONE, self)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval {
                lo: 0.0,
                hi: self.mag(),
            }
        }
    }

    /// Elementwise minimum with another interval.
    pub fn min_i(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.min(rhs.hi),
        }
    }

    /// Elementwise maximum with another interval.
    pub fn max_i(&self, rhs: &Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }

    /// Integer power with the exact even/odd case analysis.
    pub fn powi(&self, n: i32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        match n {
            0 => Interval::ONE,
            1 => *self,
            _ if n < 0 => self.powi(-n).recip(),
            _ => {
                let even = n % 2 == 0;
                if even {
                    let lo_p = pow_mag(self.lo.abs(), n);
                    let hi_p = pow_mag(self.hi.abs(), n);
                    if self.contains(0.0) {
                        Interval {
                            lo: 0.0,
                            hi: next(lo_p.max(hi_p)),
                        }
                    } else {
                        let a = lo_p.min(hi_p);
                        let b = lo_p.max(hi_p);
                        Interval {
                            lo: prev(a),
                            hi: next(b),
                        }
                    }
                } else {
                    let a = pow_signed(self.lo, n);
                    let b = pow_signed(self.hi, n);
                    Interval {
                        lo: prev(a),
                        hi: next(b),
                    }
                }
            }
        }
    }
}

#[inline]
fn sum_lo(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        // (+inf) + (-inf): only possible for crossed infinite bounds; the
        // sound lower bound is -inf.
        f64::NEG_INFINITY
    } else if s.is_infinite() {
        s
    } else {
        prev(s)
    }
}

#[inline]
fn sum_hi(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        f64::INFINITY
    } else if s.is_infinite() {
        s
    } else {
        next(s)
    }
}

/// Endpoint product with the `0 * inf = 0` convention.
#[inline]
fn prod(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        0.0
    } else {
        p
    }
}

#[inline]
fn pow_mag(x: f64, n: i32) -> f64 {
    x.powi(n)
}

#[inline]
fn pow_signed(x: f64, n: i32) -> f64 {
    x.powi(n)
}

/// Division when the divisor does not contain zero.
fn div_simple(num: &Interval, den: &Interval) -> Interval {
    debug_assert!(den.lo > 0.0 || den.hi < 0.0);
    let cands = [
        quot(num.lo, den.lo),
        quot(num.lo, den.hi),
        quot(num.hi, den.lo),
        quot(num.hi, den.hi),
    ];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for c in cands {
        lo = lo.min(c);
        hi = hi.max(c);
    }
    Interval {
        lo: prev(lo),
        hi: next(hi),
    }
}

#[inline]
fn quot(a: f64, b: f64) -> f64 {
    let q = a / b;
    if q.is_nan() {
        // inf/inf: the candidate set convention treats it as 0 (the limit of
        // finite/inf); sound because other candidates bound the range.
        0.0
    } else {
        q
    }
}

// Operator sugar so expression-heavy code reads naturally.
impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval::add(&self, &rhs)
    }
}
impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval::sub(&self, &rhs)
    }
}
impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        Interval::mul(&self, &rhs)
    }
}
impl Div for Interval {
    type Output = Interval;
    fn div(self, rhs: Interval) -> Interval {
        Interval::div(&self, &rhs)
    }
}
impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval::neg(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn construction_and_predicates() {
        let a = iv(1.0, 2.0);
        assert!(!a.is_empty());
        assert!(a.contains(1.5));
        assert!(!a.contains(2.5));
        assert!(Interval::EMPTY.is_empty());
        assert!(Interval::ENTIRE.contains(0.0));
        assert!(Interval::ENTIRE.contains(f64::MAX));
    }

    #[test]
    #[should_panic]
    fn inverted_bounds_panic() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn checked_inverted_is_empty() {
        assert!(Interval::checked(2.0, 1.0).is_empty());
        assert!(Interval::checked(f64::NAN, 1.0).is_empty());
    }

    #[test]
    fn add_contains_exact() {
        let a = iv(0.1, 0.2);
        let b = iv(0.3, 0.4);
        let c = a + b;
        assert!(c.lo <= 0.1 + 0.3 && 0.2 + 0.4 <= c.hi);
        assert!(c.lo < c.hi); // strictly widened
    }

    #[test]
    fn sub_anti_symmetric() {
        let a = iv(1.0, 2.0);
        let b = iv(0.5, 0.75);
        let c = a - b;
        assert!(c.contains(1.0 - 0.75));
        assert!(c.contains(2.0 - 0.5));
    }

    #[test]
    fn mul_sign_cases() {
        assert!((iv(2.0, 3.0) * iv(4.0, 5.0)).contains(10.0));
        assert!((iv(-3.0, -2.0) * iv(4.0, 5.0)).contains(-12.0));
        assert!((iv(-2.0, 3.0) * iv(-5.0, 4.0)).contains(-15.0));
        assert!((iv(-2.0, 3.0) * iv(-5.0, 4.0)).contains(12.0));
    }

    #[test]
    fn mul_zero_times_unbounded() {
        let z = Interval::ZERO;
        let u = iv(0.0, f64::INFINITY);
        let p = z * u;
        assert!(p.contains(0.0));
        assert!(p.hi.is_finite() || p.hi == 0.0 || p.hi.is_infinite());
        // The canonical convention gives exactly [0,0] up to rounding slop.
        assert!(p.lo <= 0.0 && p.hi >= 0.0);
    }

    #[test]
    fn div_no_zero() {
        let q = iv(1.0, 2.0) / iv(4.0, 8.0);
        assert!(q.contains(0.125) && q.contains(0.5));
        assert!(!q.contains(1.0));
    }

    #[test]
    fn div_straddling_zero_gives_two_parts() {
        let (a, b) = iv(1.0, 2.0).div_parts(&iv(-1.0, 1.0));
        let a = a.unwrap();
        let b = b.unwrap();
        // One ray is (-inf, -1], the other [1, +inf).
        assert!(a.lo == f64::NEG_INFINITY || b.hi == f64::INFINITY);
        let hull = a.hull(&b);
        assert!(hull.contains(100.0) && hull.contains(-100.0));
    }

    #[test]
    fn div_by_zero_point() {
        let (a, b) = iv(1.0, 2.0).div_parts(&Interval::ZERO);
        assert!(a.is_none() && b.is_none());
        let (a, _) = iv(-1.0, 2.0).div_parts(&Interval::ZERO);
        assert_eq!(a.unwrap(), Interval::ENTIRE);
    }

    #[test]
    fn recip_basic() {
        let r = iv(2.0, 4.0).recip();
        assert!(r.contains(0.25) && r.contains(0.5));
    }

    #[test]
    fn abs_cases() {
        assert_eq!(iv(1.0, 2.0).abs(), iv(1.0, 2.0));
        assert_eq!(iv(-2.0, -1.0).abs(), iv(1.0, 2.0));
        let a = iv(-2.0, 1.0).abs();
        assert_eq!(a.lo, 0.0);
        assert_eq!(a.hi, 2.0);
    }

    #[test]
    fn powi_even_through_zero() {
        let p = iv(-2.0, 3.0).powi(2);
        assert_eq!(p.lo, 0.0);
        assert!(p.contains(9.0));
        assert!(p.contains(4.0));
    }

    #[test]
    fn powi_odd_monotone() {
        let p = iv(-2.0, 3.0).powi(3);
        assert!(p.contains(-8.0) && p.contains(27.0));
    }

    #[test]
    fn powi_negative_exponent() {
        let p = iv(2.0, 4.0).powi(-2);
        assert!(p.contains(1.0 / 16.0) && p.contains(0.25));
    }

    #[test]
    fn intersect_and_hull() {
        let a = iv(0.0, 2.0);
        let b = iv(1.0, 3.0);
        assert_eq!(a.intersect(&b), iv(1.0, 2.0));
        assert_eq!(a.hull(&b), iv(0.0, 3.0));
        assert!(a.intersect(&iv(5.0, 6.0)).is_empty());
        assert_eq!(a.hull(&Interval::EMPTY), a);
    }

    #[test]
    fn bisect_covers() {
        let a = iv(0.0, 1.0);
        let (l, r) = a.bisect();
        assert_eq!(l.hi, r.lo);
        assert!(l.hull(&r) == a);
    }

    #[test]
    fn midpoint_half_infinite() {
        let a = Interval::new(3.0, f64::INFINITY);
        let m = a.midpoint();
        assert!(m.is_finite() && m > 3.0);
        let b = Interval::new(f64::NEG_INFINITY, -3.0);
        let m = b.midpoint();
        assert!(m.is_finite() && m < -3.0);
    }

    #[test]
    fn certainty_predicates() {
        let a = iv(1.0, 2.0);
        assert!(a.certainly_le(2.0));
        assert!(!a.certainly_lt(2.0));
        assert!(a.certainly_ge(1.0));
        assert!(a.certainly_gt(0.5));
        assert!(!Interval::EMPTY.certainly_le(10.0));
    }

    #[test]
    fn mig_mag() {
        assert_eq!(iv(-3.0, 2.0).mag(), 3.0);
        assert_eq!(iv(-3.0, 2.0).mig(), 0.0);
        assert_eq!(iv(2.0, 5.0).mig(), 2.0);
        assert_eq!(iv(-5.0, -2.0).mig(), 2.0);
    }

    #[test]
    fn min_max_elementwise() {
        let a = iv(0.0, 3.0);
        let b = iv(1.0, 2.0);
        assert_eq!(a.min_i(&b), iv(0.0, 2.0));
        assert_eq!(a.max_i(&b), iv(1.0, 3.0));
    }

    #[test]
    fn widened_point_strictly_contains() {
        let w = Interval::widened_point(0.1);
        assert!(w.lo < 0.1 && 0.1 < w.hi);
    }
}
