//! Outward-rounded interval arithmetic over `f64`.
//!
//! This crate is the numeric substrate of the δ-complete solver used by the
//! XCVerifier reproduction. Every operation on [`Interval`] returns an
//! interval that is guaranteed to *contain* the exact real image of the
//! operation on the inputs (the fundamental theorem of interval arithmetic),
//! so that `Unsat` answers produced by interval reasoning are sound.
//!
//! Rounding model: Rust/IEEE-754 arithmetic rounds to nearest, so after each
//! primitive floating-point operation we widen the endpoints outward by one
//! ULP ([`round::prev`] / [`round::next`]). For transcendental functions the
//! platform libm is faithful but not correctly rounded; we widen those results
//! by a few ULPs ([`round::LIBM_SLOP_ULPS`]), which covers the documented
//! worst-case errors of glibc/musl implementations with a comfortable margin.
//!
//! The crate also provides a certified enclosure of the principal branch of
//! the Lambert W function ([`Interval::lambert_w0`]), which the AM05 exchange
//! functional requires; the enclosure is *verified* against the defining
//! equation `w e^w = x` using interval arithmetic rather than trusted from the
//! floating-point iteration.

mod interval;
mod lambert;
pub mod lanes;
pub mod newton;
pub mod round;
mod transcendental;

pub use interval::Interval;
pub use lambert::lambert_w0_f64;

/// Convenience constructor: the point interval `[x, x]`.
///
/// Panics if `x` is NaN.
pub fn point(x: f64) -> Interval {
    Interval::point(x)
}

/// Convenience constructor: the interval `[lo, hi]`.
///
/// Panics if `lo > hi` or either bound is NaN.
pub fn interval(lo: f64, hi: f64) -> Interval {
    Interval::new(lo, hi)
}
