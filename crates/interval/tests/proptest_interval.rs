//! Property tests of the interval kernel: containment (the fundamental
//! theorem) per operation, algebraic relations, and edge-direction checks.

use proptest::prelude::*;
use xcv_interval::{lambert_w0_f64, Interval};

/// Strategy: an interval with finite bounds in a moderate range plus the
/// point inside it (as a fraction).
fn iv_and_point() -> impl Strategy<Value = (Interval, f64)> {
    (-50.0f64..50.0, 0.0f64..20.0, 0.0f64..1.0).prop_map(|(lo, w, frac)| {
        let hi = lo + w;
        (Interval::new(lo, hi), lo + frac * w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_contains((a, x) in iv_and_point(), (b, y) in iv_and_point()) {
        let r = a.add(&b);
        prop_assert!(r.contains(x + y));
    }

    #[test]
    fn sub_contains((a, x) in iv_and_point(), (b, y) in iv_and_point()) {
        prop_assert!(a.sub(&b).contains(x - y));
    }

    #[test]
    fn mul_contains((a, x) in iv_and_point(), (b, y) in iv_and_point()) {
        prop_assert!(a.mul(&b).contains(x * y));
    }

    #[test]
    fn div_contains((a, x) in iv_and_point(), (b, y) in iv_and_point()) {
        if y != 0.0 {
            let q = x / y;
            if q.is_finite() {
                prop_assert!(a.div(&b).contains(q), "{a:?}/{b:?} ∌ {q}");
            }
        }
    }

    #[test]
    fn neg_abs_contains((a, x) in iv_and_point()) {
        prop_assert!(a.neg().contains(-x));
        prop_assert!(a.abs().contains(x.abs()));
    }

    #[test]
    fn powi_contains((a, x) in iv_and_point(), n in 1i32..6) {
        let p = x.powi(n);
        if p.is_finite() {
            prop_assert!(a.powi(n).contains(p));
        }
    }

    #[test]
    fn exp_ln_contains((a, x) in iv_and_point()) {
        let e = x.exp();
        if e.is_finite() {
            prop_assert!(a.exp().contains(e));
        }
        if x > 0.0 {
            prop_assert!(a.ln().contains(x.ln()));
        }
    }

    #[test]
    fn sqrt_cbrt_contains((a, x) in iv_and_point()) {
        if x >= 0.0 {
            prop_assert!(a.sqrt().contains(x.sqrt()));
        }
        prop_assert!(a.cbrt().contains(x.cbrt()));
    }

    #[test]
    fn atan_tanh_contains((a, x) in iv_and_point()) {
        prop_assert!(a.atan().contains(x.atan()));
        prop_assert!(a.tanh().contains(x.tanh()));
    }

    #[test]
    fn sin_cos_contains((a, x) in iv_and_point()) {
        prop_assert!(a.sin().contains(x.sin()));
        prop_assert!(a.cos().contains(x.cos()));
    }

    #[test]
    fn lambert_contains((a, x) in iv_and_point()) {
        if x >= 0.0 {
            let w = lambert_w0_f64(x);
            prop_assert!(a.lambert_w0().contains(w), "{a:?} W ∌ {w}");
        }
    }

    #[test]
    fn powf_contains((a, x) in iv_and_point(), e in -3.0f64..3.0) {
        if x > 0.0 {
            let p = x.powf(e);
            if p.is_finite() {
                let ei = Interval::point(e);
                prop_assert!(a.powf(&ei).contains(p), "{a:?}^{e} ∌ {p}");
            }
        }
    }

    #[test]
    fn nth_root_inverts_powi((a, x) in iv_and_point(), n in 2i32..5) {
        // For x in a, x is in nth_root(a.powi(n)) when signs permit.
        let p = a.powi(n);
        let r = p.nth_root(n);
        if n % 2 == 1 || x >= 0.0 {
            prop_assert!(r.contains(x) || r.contains(-x), "{r:?} ∌ ±{x}");
        }
    }

    #[test]
    fn intersect_hull_laws((a, _x) in iv_and_point(), (b, _y) in iv_and_point()) {
        let i = a.intersect(&b);
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a) && h.contains_interval(&b));
        prop_assert!(a.contains_interval(&i) && b.contains_interval(&i));
    }

    #[test]
    fn bisect_partitions((a, x) in iv_and_point()) {
        if a.width() > 0.0 {
            let (l, r) = a.bisect();
            prop_assert!(l.contains(x) || r.contains(x));
            prop_assert!(l.hull(&r) == a);
        }
    }

    #[test]
    fn width_nonneg_and_monotone((a, _x) in iv_and_point()) {
        prop_assert!(a.width() >= 0.0);
        let wider = a.hull(&Interval::new(a.lo - 1.0, a.lo));
        prop_assert!(wider.width() >= a.width());
    }

    #[test]
    fn mul_zero_annihilates_up_to_rounding((a, _x) in iv_and_point()) {
        let z = a.mul(&Interval::ZERO);
        prop_assert!(z.contains(0.0));
        prop_assert!(z.mag() < 1e-300 || z.mag() == 0.0);
    }
}
