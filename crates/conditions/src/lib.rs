//! The seven DFT exact conditions of Pederson–Burke, as *local conditions*
//! over enhancement factors (Section II of the paper).
//!
//! Each exact condition on the global functional `E_xc[n]` has a local
//! sufficient condition on the DFA `ε̃_xc`: if the local condition holds
//! pointwise on the reduced-variable domain, the exact condition holds for
//! the functional (the converse is not true). The local conditions are
//! expressed in the exchange/correlation enhancement factors
//! `F_c = ε_c/ε_x^unif`, `F_xc = F_x + F_c`, and their `rs`-derivatives —
//! which this crate computes **symbolically** via `xcv_expr::Expr::diff`,
//! exactly as XCEncoder does with SymPy (no numerical differentiation).
//!
//! Conditions dispatch through the open [`Functional`] trait: any registry
//! citizen — built-in `Dfa` variant or runtime-registered DSL functional —
//! can be encoded. A `&Dfa` coerces to `&dyn Functional` at every call site.
//!
//! | id | exact condition | local condition |
//! |----|-----------------|-----------------|
//! | EC1 | `E_c[n] <= 0` | `F_c >= 0` (Eq. 4) |
//! | EC2 | `E_c` scaling inequality | `∂F_c/∂rs >= 0` (Eq. 5) |
//! | EC3 | `U_c(λ)` monotonicity | `∂²F_c/∂rs² >= -(2/rs)·∂F_c/∂rs` (Eq. 6) |
//! | EC4 | Lieb–Oxford bound on `U_xc` | `F_xc + rs·∂F_c/∂rs <= C_LO` (Eq. 7) |
//! | EC5 | Lieb–Oxford extension to `E_xc` | `F_xc <= C_LO` (Eq. 8) |
//! | EC6 | `T_c` upper bound | `∂F_c/∂rs <= (F_c(∞) - F_c)/rs` (Eq. 9) |
//! | EC7 | conjectured `T_c` bound | `∂F_c/∂rs <= F_c/rs` (Eq. 10) |
//!
//! `F_c(∞)` is approximated by `F_c|rs=100`, following Section III-A of the
//! paper. Conditions EC3, EC6, EC7 are encoded multiplied through by the
//! positive quantities `rs` (and `rs²` for EC3), which is equivalent on the
//! domain `rs > 0` and keeps the solver's expressions division-free.

use xcv_expr::{constant, AxisKind};
use xcv_functionals::{Functional, FunctionalHandle, Registry, XcvError, RS};
use xcv_solver::{Atom, BoxDomain, Rel};

/// The Lieb–Oxford constant used by Pederson–Burke.
pub const C_LO: f64 = 2.27;

/// The `rs` value substituted for the `rs → ∞` limit (paper, Section III-A).
pub const RS_INF: f64 = 100.0;

/// Lower edge of the `rs` domain (single source: [`AxisKind::pb_bounds`]).
pub const RS_MIN: f64 = AxisKind::Rs.pb_bounds().0;
/// Upper edge of the `rs` domain.
pub const RS_MAX: f64 = AxisKind::Rs.pb_bounds().1;
/// `s` domain is `[0, S_MAX]` (total and per-spin reduced gradients alike).
pub const S_MAX: f64 = AxisKind::S.pb_bounds().1;
/// `α` domain is `[0, ALPHA_MAX]` (meta-GGA only).
pub const ALPHA_MAX: f64 = AxisKind::Alpha.pb_bounds().1;
/// `ζ` domain is `[ZETA_MIN, ZETA_MAX]` (spin-resolved functionals only).
pub const ZETA_MIN: f64 = AxisKind::Zeta.pb_bounds().0;
/// Upper edge of the `ζ` domain.
pub const ZETA_MAX: f64 = AxisKind::Zeta.pb_bounds().1;

/// The seven exact conditions, in the paper's row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Condition {
    /// EC1 — `E_c` non-positivity.
    EcNonPositivity,
    /// EC2 — `E_c` scaling inequality.
    EcScaling,
    /// EC3 — `U_c(λ)` monotonicity.
    UcMonotonicity,
    /// EC6 — `T_c` upper bound.
    TcUpperBound,
    /// EC7 — conjectured `T_c` upper bound.
    ConjTcUpperBound,
    /// EC4 — Lieb–Oxford bound (on `U_xc`).
    LiebOxford,
    /// EC5 — Lieb–Oxford extension to `E_xc`.
    LiebOxfordExt,
}

impl Condition {
    /// All seven, in the paper's Table I row order.
    pub fn all() -> [Condition; 7] {
        [
            Condition::EcNonPositivity,
            Condition::EcScaling,
            Condition::UcMonotonicity,
            Condition::TcUpperBound,
            Condition::ConjTcUpperBound,
            Condition::LiebOxford,
            Condition::LiebOxfordExt,
        ]
    }

    /// Short stable identifier (`ec1`..`ec7`, the CLI spelling) — used in
    /// wire protocols, cache-key renderings, and store file names.
    pub fn id(&self) -> &'static str {
        match self {
            Condition::EcNonPositivity => "ec1",
            Condition::EcScaling => "ec2",
            Condition::UcMonotonicity => "ec3",
            Condition::LiebOxford => "ec4",
            Condition::LiebOxfordExt => "ec5",
            Condition::TcUpperBound => "ec6",
            Condition::ConjTcUpperBound => "ec7",
        }
    }

    /// The condition with the given [`Condition::id`] (case-insensitive).
    pub fn from_id(id: &str) -> Option<Condition> {
        Condition::all()
            .into_iter()
            .find(|c| c.id().eq_ignore_ascii_case(id))
    }

    pub fn name(&self) -> &'static str {
        match self {
            Condition::EcNonPositivity => "Ec non-positivity",
            Condition::EcScaling => "Ec scaling inequality",
            Condition::UcMonotonicity => "Uc monotonicity",
            Condition::TcUpperBound => "Tc upper bound",
            Condition::ConjTcUpperBound => "Conjectured Tc upper bound",
            Condition::LiebOxford => "LO bound",
            Condition::LiebOxfordExt => "LO extension to Exc",
        }
    }

    /// The equation number of the local condition in the paper.
    pub fn equation(&self) -> &'static str {
        match self {
            Condition::EcNonPositivity => "Equation 4",
            Condition::EcScaling => "Equation 5",
            Condition::UcMonotonicity => "Equation 6",
            Condition::TcUpperBound => "Equation 9",
            Condition::ConjTcUpperBound => "Equation 10",
            Condition::LiebOxford => "Equation 7",
            Condition::LiebOxfordExt => "Equation 8",
        }
    }

    /// The Lieb–Oxford conditions require both exchange and correlation
    /// parts; every other condition applies to any DFA with correlation.
    pub fn applies_to(&self, f: &dyn Functional) -> bool {
        let info = f.info();
        match self {
            Condition::LiebOxford | Condition::LiebOxfordExt => info.has_exchange,
            _ => info.has_correlation,
        }
    }

    /// Encode the local condition `ψ` for a functional as a sign atom over
    /// the canonical variables; [`XcvError::NotApplicable`] when the
    /// condition does not apply (the `−` cells of Table I).
    ///
    /// The verifier refutes `¬ψ` ([`Atom::negate`]) over the PB domain.
    pub fn encode(&self, f: &dyn Functional) -> Result<Atom, XcvError> {
        if !self.applies_to(f) {
            return Err(XcvError::NotApplicable {
                functional: f.name(),
                condition: self.name().to_string(),
            });
        }
        let fc = f.f_c_expr();
        // applies_to guarantees an exchange part for the LO conditions; the
        // error is kept for defensive trait implementations that disagree
        // with their own metadata.
        let fxc = || {
            f.f_xc_expr().ok_or_else(|| XcvError::MissingExchange {
                functional: f.name(),
            })
        };
        Ok(match self {
            // F_c >= 0
            Condition::EcNonPositivity => Atom::new(fc, Rel::Ge),
            // ∂F_c/∂rs >= 0
            Condition::EcScaling => Atom::new(fc.diff(RS), Rel::Ge),
            // rs²·∂²F_c/∂rs² + 2 rs·∂F_c/∂rs >= 0
            Condition::UcMonotonicity => {
                let d1 = fc.diff(RS);
                let d2 = d1.diff(RS);
                let rs = xcv_expr::var(RS);
                Atom::new(rs.powi(2) * d2 + constant(2.0) * rs * d1, Rel::Ge)
            }
            // rs·∂F_c/∂rs - (F_c(∞) - F_c) <= 0
            Condition::TcUpperBound => {
                let d1 = fc.diff(RS);
                let fc_inf = fc.subst_var(RS, &constant(RS_INF));
                let rs = xcv_expr::var(RS);
                Atom::new(rs * d1 - (fc_inf - fc), Rel::Le)
            }
            // rs·∂F_c/∂rs - F_c <= 0
            Condition::ConjTcUpperBound => {
                let d1 = fc.diff(RS);
                let rs = xcv_expr::var(RS);
                Atom::new(rs * d1 - fc, Rel::Le)
            }
            // F_xc + rs·∂F_c/∂rs <= C_LO
            Condition::LiebOxford => {
                let d1 = fc.diff(RS);
                let rs = xcv_expr::var(RS);
                Atom::new(fxc()? + rs * d1 - constant(C_LO), Rel::Le)
            }
            // F_xc <= C_LO
            Condition::LiebOxfordExt => Atom::new(fxc()? - constant(C_LO), Rel::Le),
        })
    }

    /// Scalar check of the local condition at a point, using the symbolic
    /// encoding (exact semantics; the PB baseline has its own grid-gradient
    /// version in `xcv-grid`).
    pub fn holds_at(&self, f: &dyn Functional, point: &[f64]) -> Result<bool, XcvError> {
        self.encode(f).map(|a| a.holds_at(point))
    }
}

impl std::fmt::Display for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name(), self.equation())
    }
}

/// The Pederson–Burke input domain for a functional: the box of its typed
/// [`Functional::var_space`] — one interval per axis, each carrying that
/// axis's PB bounds (`rs ∈ [1e-4, 5]`, `s`/`s↑`/`s↓` ∈ `[0, 5]`,
/// `α ∈ [0, 5]`, `ζ ∈ [−1, 1]`). The old positional `arity() >= k`
/// bound-pushing is gone: the space *is* the domain description.
pub fn pb_domain(f: &dyn Functional) -> BoxDomain {
    BoxDomain::from_var_space(&f.var_space())
}

/// Every applicable (functional, condition) pair of a registry, in
/// registry × Table-I-row order.
pub fn applicable_pairs_in(registry: &Registry) -> Vec<(FunctionalHandle, Condition)> {
    let mut out = Vec::new();
    for f in registry.iter() {
        for cond in Condition::all() {
            if cond.applies_to(f.as_ref()) {
                out.push((f.clone(), cond));
            }
        }
    }
    out
}

/// Every applicable pair of the paper's five built-in DFAs — its 31 rows.
pub fn applicable_pairs() -> Vec<(FunctionalHandle, Condition)> {
    applicable_pairs_in(&Registry::builtin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcv_functionals::Dfa;

    #[test]
    fn thirty_one_applicable_pairs() {
        // 5 correlation conditions × 5 DFAs + 2 LO conditions × 3 DFAs = 31.
        assert_eq!(applicable_pairs().len(), 31);
    }

    #[test]
    fn registry_pairs_follow_registration_order() {
        let pairs = applicable_pairs_in(&Registry::extended());
        // 7 functionals; BLYP and rSCAN have both parts → all 7 conditions.
        assert_eq!(pairs.len(), 45);
        assert_eq!(pairs[0].0.name(), "PBE");
    }

    #[test]
    fn lo_only_for_xc_functionals() {
        assert!(Condition::LiebOxford.applies_to(&Dfa::Pbe));
        assert!(Condition::LiebOxford.applies_to(&Dfa::Am05));
        assert!(Condition::LiebOxford.applies_to(&Dfa::Scan));
        assert!(!Condition::LiebOxford.applies_to(&Dfa::Lyp));
        assert!(!Condition::LiebOxfordExt.applies_to(&Dfa::VwnRpa));
        assert_eq!(
            Condition::LiebOxford.encode(&Dfa::Lyp).unwrap_err(),
            XcvError::NotApplicable {
                functional: "LYP".into(),
                condition: "LO bound".into(),
            }
        );
    }

    #[test]
    fn pb_domain_by_family() {
        assert_eq!(pb_domain(&Dfa::VwnRpa).ndim(), 1);
        assert_eq!(pb_domain(&Dfa::Pbe).ndim(), 2);
        assert_eq!(pb_domain(&Dfa::Scan).ndim(), 3);
        let d = pb_domain(&Dfa::Pbe);
        assert_eq!(d.dim(0).lo, RS_MIN);
        assert_eq!(d.dim(0).hi, RS_MAX);
        assert_eq!(d.dim(1).lo, 0.0);
    }

    #[test]
    fn pb_domain_follows_the_typed_space() {
        // A per-spin exchange citizen: the box comes from its
        // (rs, s↑, s↓, ζ) space, not from positional arity thresholds.
        use xcv_functionals::SpinScaledX;
        let d = pb_domain(&SpinScaledX::b88());
        assert_eq!(d.ndim(), 4);
        assert_eq!(d.dim(1).hi, S_MAX);
        assert_eq!(d.dim(2).hi, S_MAX);
        assert_eq!(d.dim(3).lo, ZETA_MIN);
        assert_eq!(d.dim(3).hi, ZETA_MAX);
        // The module constants and the axis bounds are one source.
        assert_eq!(AxisKind::Rs.pb_bounds(), (RS_MIN, RS_MAX));
        assert_eq!(AxisKind::SUp.pb_bounds(), (0.0, S_MAX));
        assert_eq!(AxisKind::Alpha.pb_bounds(), (0.0, ALPHA_MAX));
    }

    #[test]
    fn ec1_vwn_holds_lyp_fails() {
        // VWN RPA: ε_c < 0 everywhere ⇒ F_c >= 0 holds.
        assert!(Condition::EcNonPositivity
            .holds_at(&Dfa::VwnRpa, &[1.0])
            .unwrap());
        // LYP violates at large s (paper Fig. 2d).
        assert!(!Condition::EcNonPositivity
            .holds_at(&Dfa::Lyp, &[2.0, 2.5])
            .unwrap());
        assert!(Condition::EcNonPositivity
            .holds_at(&Dfa::Lyp, &[2.0, 0.5])
            .unwrap());
    }

    #[test]
    fn ec2_holds_for_pbe_sampled() {
        // PBE satisfies the scaling inequality (Table I shows ✓* — verified
        // where decided); sample points must satisfy it.
        for &(rs, s) in &[(0.5, 0.5), (1.0, 2.0), (3.0, 1.0), (4.9, 4.9)] {
            assert!(
                Condition::EcScaling.holds_at(&Dfa::Pbe, &[rs, s]).unwrap(),
                "({rs}, {s})"
            );
        }
    }

    #[test]
    fn ec7_pbe_violated_in_upper_left() {
        // Fig. 1f: the conjectured Tc bound fails for PBE at small rs /
        // large s and holds at large rs / small s.
        assert!(!Condition::ConjTcUpperBound
            .holds_at(&Dfa::Pbe, &[0.1, 4.0])
            .unwrap());
        assert!(Condition::ConjTcUpperBound
            .holds_at(&Dfa::Pbe, &[4.0, 0.5])
            .unwrap());
    }

    #[test]
    fn ec5_pbe_holds_everywhere_sampled() {
        // F_xc^{PBE} <= 2.27: PBE exchange is bounded by 1.804 and F_c is
        // small — the paper verifies this condition fully (Fig. 1e).
        for &(rs, s) in &[(0.001, 0.0), (0.5, 2.0), (5.0, 5.0), (1.0, 1.0)] {
            assert!(
                Condition::LiebOxfordExt
                    .holds_at(&Dfa::Pbe, &[rs, s])
                    .unwrap(),
                "({rs}, {s})"
            );
        }
    }

    #[test]
    fn ec1_scan_holds_sampled() {
        for &(rs, s, a) in &[(0.5, 1.0, 0.5), (2.0, 3.0, 2.0), (1.0, 0.0, 1.0)] {
            assert!(Condition::EcNonPositivity
                .holds_at(&Dfa::Scan, &[rs, s, a])
                .unwrap());
        }
    }

    #[test]
    fn ec6_uses_rs_inf_substitution() {
        let atom = Condition::TcUpperBound.encode(&Dfa::VwnRpa).unwrap();
        let v = atom.expr.eval(&[1.0]).unwrap();
        assert!(v.is_finite());
        // For VWN RPA the condition holds on the domain (Table I ✓).
        for &rs in &[0.001, 0.1, 1.0, 4.9] {
            assert!(atom.rel.holds(atom.expr.eval(&[rs]).unwrap()), "rs={rs}");
        }
    }

    #[test]
    fn ec3_lda_condition_holds_for_vwn() {
        // Uc monotonicity for VWN RPA: ✓ in Table I.
        let atom = Condition::UcMonotonicity.encode(&Dfa::VwnRpa).unwrap();
        for &rs in &[0.01, 0.5, 1.0, 3.0, 5.0] {
            let v = atom.expr.eval(&[rs]).unwrap();
            assert!(atom.rel.holds(v), "rs={rs}: {v}");
        }
    }

    #[test]
    fn lyp_violates_all_five_applicable_sampled() {
        // The paper's headline: LYP has counterexamples for every applicable
        // condition. Check a known-violating point for each.
        let pts: &[(Condition, [f64; 2])] = &[
            (Condition::EcNonPositivity, [2.0, 2.5]),
            (Condition::EcScaling, [1.0, 2.0]),
            (Condition::UcMonotonicity, [0.5, 2.5]),
            (Condition::TcUpperBound, [4.95, 3.0]),
            (Condition::ConjTcUpperBound, [2.0, 2.0]),
        ];
        for (cond, p) in pts {
            assert!(
                !cond.holds_at(&Dfa::Lyp, p).unwrap(),
                "{cond} should fail at {p:?}"
            );
        }
    }

    #[test]
    fn dsl_functional_encodes_through_trait() {
        // A runtime-registered DSL functional flows through the same encode
        // path as the builtins — the open-registry tentpole, end to end.
        use xcv_functionals::{functional, Design, DslFunctional, Family};
        let src = "\
def wigner_c(rs, s):
    return -0.44 / (7.8 + rs) / (1 + 0.5 * s ** 2)
";
        let f = DslFunctional::new(
            functional::info("wigner", Family::Gga, Design::Empirical, false, true),
            src,
            "wigner_c",
        )
        .unwrap();
        let atom = Condition::EcNonPositivity.encode(&f).unwrap();
        // ε_c < 0 everywhere ⇒ ψ: F_c >= 0 holds at sample points.
        assert!(atom.holds_at(&[1.0, 1.0]));
        assert!(Condition::LiebOxford.encode(&f).is_err());
        assert_eq!(pb_domain(&f).ndim(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", Condition::EcNonPositivity),
            "Ec non-positivity (Equation 4)"
        );
    }
}
