//! Smart constructors with local algebraic simplification.
//!
//! Simplifications are restricted to rules that are *value-preserving over
//! the extended reals on the natural domain* (constant folding, neutral and
//! absorbing elements, double negation, power fusion). Nothing here changes
//! where an expression is defined — e.g. `0 * ln(x)` is **not** rewritten to
//! `0`, because the two differ at `x <= 0` and the solver's natural-domain
//! semantics must be preserved.

use crate::node::{intern, Expr, Kind};

/// A literal constant.
pub fn constant(c: f64) -> Expr {
    assert!(!c.is_nan(), "NaN constant");
    intern(Kind::Const(c))
}

/// The variable with the given index (see [`crate::VarSet`] for naming).
pub fn var(index: u32) -> Expr {
    intern(Kind::Var(index))
}

impl Expr {
    pub fn add(&self, rhs: &Expr) -> Expr {
        match (self.as_const(), rhs.as_const()) {
            (Some(a), Some(b)) if (a + b).is_finite() => return constant(a + b),
            (Some(0.0), _) => return rhs.clone(),
            (_, Some(0.0)) => return self.clone(),
            _ => {}
        }
        // x + (-y) is kept as-is; display handles it. Canonicalize constant to
        // the right so `c + x` and `x + c` intern identically.
        if self.as_const().is_some() && rhs.as_const().is_none() {
            return intern(Kind::Add(rhs.clone(), self.clone()));
        }
        intern(Kind::Add(self.clone(), rhs.clone()))
    }

    pub fn sub(&self, rhs: &Expr) -> Expr {
        if self.same(rhs) {
            // x - x = 0 is safe: both sides share the identical domain.
            return constant(0.0);
        }
        self.add(&rhs.neg())
    }

    pub fn neg(&self) -> Expr {
        if let Some(c) = self.as_const() {
            return constant(-c);
        }
        if let Kind::Neg(inner) = self.kind() {
            return inner.clone();
        }
        intern(Kind::Neg(self.clone()))
    }

    pub fn mul(&self, rhs: &Expr) -> Expr {
        match (self.as_const(), rhs.as_const()) {
            (Some(a), Some(b)) if (a * b).is_finite() => return constant(a * b),
            (Some(1.0), _) => return rhs.clone(),
            (_, Some(1.0)) => return self.clone(),
            (Some(-1.0), _) => return rhs.neg(),
            (_, Some(-1.0)) => return self.neg(),
            _ => {}
        }
        // x * x -> x^2 keeps derivative DAGs compact.
        if self.same(rhs) {
            return self.powi(2);
        }
        if self.as_const().is_some() && rhs.as_const().is_none() {
            return intern(Kind::Mul(rhs.clone(), self.clone()));
        }
        intern(Kind::Mul(self.clone(), rhs.clone()))
    }

    pub fn div(&self, rhs: &Expr) -> Expr {
        if let Some(1.0) = rhs.as_const() {
            return self.clone();
        }
        if let (Some(a), Some(b)) = (self.as_const(), rhs.as_const()) {
            if b != 0.0 && (a / b).is_finite() {
                return constant(a / b);
            }
        }
        intern(Kind::Div(self.clone(), rhs.clone()))
    }

    /// Integer power.
    pub fn powi(&self, n: i32) -> Expr {
        match n {
            0 => return constant(1.0),
            1 => return self.clone(),
            _ => {}
        }
        if let Some(c) = self.as_const() {
            let v = c.powi(n);
            if v.is_finite() {
                return constant(v);
            }
        }
        // (x^a)^b -> x^(a*b) for integer powers (value-preserving on the
        // extended reals, including sign bookkeeping).
        if let Kind::PowI(base, m) = self.kind() {
            if let Some(nm) = m.checked_mul(n) {
                return base.powi(nm);
            }
        }
        intern(Kind::PowI(self.clone(), n))
    }

    /// Real power `self^rhs` (natural-domain: base must be non-negative
    /// unless the exponent is a literal integer, which callers should express
    /// with [`Expr::powi`]).
    pub fn pow(&self, rhs: &Expr) -> Expr {
        if let Some(e) = rhs.as_const() {
            if e == 0.0 {
                return constant(1.0);
            }
            if e == 1.0 {
                return self.clone();
            }
            if e == 0.5 {
                return self.sqrt();
            }
            // Exact small integers route to powi only when the base is known
            // non-negative is NOT required for odd/even powi — powi is total.
            if e.fract() == 0.0 && e.abs() <= 64.0 {
                return self.powi(e as i32);
            }
            if let Some(b) = self.as_const() {
                let v = b.powf(e);
                if v.is_finite() && b >= 0.0 {
                    return constant(v);
                }
            }
        }
        intern(Kind::Pow(self.clone(), rhs.clone()))
    }

    pub fn exp(&self) -> Expr {
        if let Some(0.0) = self.as_const() {
            return constant(1.0);
        }
        intern(Kind::Exp(self.clone()))
    }

    pub fn ln(&self) -> Expr {
        if let Some(1.0) = self.as_const() {
            return constant(0.0);
        }
        intern(Kind::Ln(self.clone()))
    }

    pub fn sqrt(&self) -> Expr {
        if let Some(c) = self.as_const() {
            if c >= 0.0 {
                let r = c.sqrt();
                if r * r == c {
                    return constant(r);
                }
            }
        }
        intern(Kind::Sqrt(self.clone()))
    }

    pub fn cbrt(&self) -> Expr {
        intern(Kind::Cbrt(self.clone()))
    }

    pub fn atan(&self) -> Expr {
        if let Some(0.0) = self.as_const() {
            return constant(0.0);
        }
        intern(Kind::Atan(self.clone()))
    }

    pub fn sin(&self) -> Expr {
        if let Some(0.0) = self.as_const() {
            return constant(0.0);
        }
        intern(Kind::Sin(self.clone()))
    }

    pub fn cos(&self) -> Expr {
        if let Some(0.0) = self.as_const() {
            return constant(1.0);
        }
        intern(Kind::Cos(self.clone()))
    }

    pub fn tanh(&self) -> Expr {
        if let Some(0.0) = self.as_const() {
            return constant(0.0);
        }
        intern(Kind::Tanh(self.clone()))
    }

    pub fn abs(&self) -> Expr {
        if let Some(c) = self.as_const() {
            return constant(c.abs());
        }
        if let Kind::Abs(_) = self.kind() {
            return self.clone();
        }
        intern(Kind::Abs(self.clone()))
    }

    pub fn min(&self, rhs: &Expr) -> Expr {
        if self.same(rhs) {
            return self.clone();
        }
        intern(Kind::Min(self.clone(), rhs.clone()))
    }

    pub fn max(&self, rhs: &Expr) -> Expr {
        if self.same(rhs) {
            return self.clone();
        }
        intern(Kind::Max(self.clone(), rhs.clone()))
    }

    pub fn lambert_w(&self) -> Expr {
        if let Some(0.0) = self.as_const() {
            return constant(0.0);
        }
        intern(Kind::LambertW(self.clone()))
    }

    /// `if cond >= 0 { then } else { otherwise }`.
    pub fn ite(cond: &Expr, then: &Expr, otherwise: &Expr) -> Expr {
        if let Some(c) = cond.as_const() {
            return if c >= 0.0 {
                then.clone()
            } else {
                otherwise.clone()
            };
        }
        if then.same(otherwise) {
            return then.clone();
        }
        intern(Kind::Ite {
            cond: cond.clone(),
            then: then.clone(),
            otherwise: otherwise.clone(),
        })
    }

    /// Reciprocal `1 / self`.
    pub fn recip(&self) -> Expr {
        constant(1.0).div(self)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $builder:ident) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$builder(&self, &rhs)
            }
        }
        impl std::ops::$trait<&Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                Expr::$builder(&self, rhs)
            }
        }
        impl std::ops::$trait<Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$builder(self, &rhs)
            }
        }
        impl std::ops::$trait<&Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                Expr::$builder(self, rhs)
            }
        }
        impl std::ops::$trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::$builder(&self, &constant(rhs))
            }
        }
        impl std::ops::$trait<f64> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::$builder(self, &constant(rhs))
            }
        }
        impl std::ops::$trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$builder(&constant(self), &rhs)
            }
        }
        impl std::ops::$trait<&Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                Expr::$builder(&constant(self), rhs)
            }
        }
    };
}

impl_binop!(Add, add, add);
impl_binop!(Sub, sub, sub);
impl_binop!(Mul, mul, mul);
impl_binop!(Div, div, div);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::neg(&self)
    }
}
impl std::ops::Neg for &Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let e = constant(2.0) + constant(3.0);
        assert_eq!(e.as_const(), Some(5.0));
        let e = constant(2.0) * constant(3.0);
        assert_eq!(e.as_const(), Some(6.0));
        let e = constant(6.0) / constant(3.0);
        assert_eq!(e.as_const(), Some(2.0));
    }

    #[test]
    fn neutral_elements() {
        let x = var(0);
        assert!((x.clone() + 0.0).same(&x));
        assert!((0.0 + x.clone()).same(&x));
        assert!((x.clone() * 1.0).same(&x));
        assert!((x.clone() / 1.0).same(&x));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = constant(1.0) / constant(0.0);
        assert!(e.as_const().is_none(), "1/0 must remain symbolic");
    }

    #[test]
    fn double_negation() {
        let x = var(0);
        assert!((-(-x.clone())).same(&x));
    }

    #[test]
    fn x_minus_x_is_zero() {
        let x = var(0);
        let e = x.clone() - x;
        assert_eq!(e.as_const(), Some(0.0));
    }

    #[test]
    fn zero_times_symbolic_not_folded() {
        // 0 * ln(x) must not fold to 0 (domain differs at x <= 0).
        let e = constant(0.0) * var(0).ln();
        assert!(e.as_const().is_none());
    }

    #[test]
    fn square_via_mul() {
        let x = var(0);
        let e = x.clone() * x.clone();
        assert!(matches!(e.kind(), Kind::PowI(_, 2)));
    }

    #[test]
    fn powi_fusion() {
        let x = var(0);
        let e = x.powi(2).powi(3);
        assert!(matches!(e.kind(), Kind::PowI(_, 6)));
    }

    #[test]
    fn pow_const_exponent_rewrites() {
        let x = var(0);
        assert!(matches!(x.pow(&constant(2.0)).kind(), Kind::PowI(_, 2)));
        assert!(matches!(x.pow(&constant(0.5)).kind(), Kind::Sqrt(_)));
        assert_eq!(x.pow(&constant(0.0)).as_const(), Some(1.0));
        assert!(x.pow(&constant(1.0)).same(&x));
    }

    #[test]
    fn ite_const_cond() {
        let t = var(0);
        let e = var(1);
        assert!(Expr::ite(&constant(1.0), &t, &e).same(&t));
        assert!(Expr::ite(&constant(-1.0), &t, &e).same(&e));
        assert!(Expr::ite(&constant(0.0), &t, &e).same(&t)); // >= 0 branch
        assert!(Expr::ite(&var(2), &t, &t).same(&t));
    }

    #[test]
    fn abs_idempotent() {
        let x = var(0);
        let a = x.abs();
        assert!(a.abs().same(&a));
    }

    #[test]
    fn scalar_op_overloads() {
        let x = var(0);
        let e = 2.0 * x.clone() + 1.0;
        assert!(e.as_const().is_none());
        let e = x / 2.0;
        assert!(matches!(e.kind(), Kind::Div(_, _)));
    }

    #[test]
    fn exp_ln_special_values() {
        assert_eq!(constant(0.0).exp().as_const(), Some(1.0));
        assert_eq!(constant(1.0).ln().as_const(), Some(0.0));
    }
}
