//! Evaluation of expression DAGs over `f64` and over intervals.
//!
//! Three evaluators, by use case:
//!
//! * [`Expr::eval`] — memoized recursive `f64` evaluation; domain violations
//!   (`ln` of a negative, `0/0`, …) produce NaN, mirroring what a C
//!   implementation of the functional would compute.
//! * [`Tape`] — a flattened instruction tape for high-throughput repeated
//!   `f64` evaluation (the Pederson–Burke grid sweep evaluates the same
//!   functional at 10⁴–10¹⁰ points; pointer-chasing the DAG each time would
//!   dominate the run time).
//! * [`IntervalEnv`] — a reusable forward interval evaluator exposing
//!   per-node enclosures; the δ-complete solver's HC4 contractor runs its
//!   backward pass over the same storage.

use crate::node::{Expr, Kind, NodeId};
use std::collections::HashMap;
use xcv_interval::Interval;

/// Errors surfaced by the evaluators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable index exceeded the supplied environment.
    UnboundVar(u32),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable x{v}"),
        }
    }
}
impl std::error::Error for EvalError {}

impl Expr {
    /// Memoized `f64` evaluation. Variables are read from `env` by index.
    ///
    /// Out-of-domain operations yield NaN (and NaN propagates), matching the
    /// behaviour of a straight C translation of the functional.
    pub fn eval(&self, env: &[f64]) -> Result<f64, EvalError> {
        let mut memo: HashMap<NodeId, f64> = HashMap::new();
        self.eval_memo(env, &mut memo)
    }

    fn eval_memo(&self, env: &[f64], memo: &mut HashMap<NodeId, f64>) -> Result<f64, EvalError> {
        if let Some(&v) = memo.get(&self.id()) {
            return Ok(v);
        }
        let v = match self.kind() {
            Kind::Const(c) => *c,
            Kind::Var(i) => *env.get(*i as usize).ok_or(EvalError::UnboundVar(*i))?,
            Kind::Add(a, b) => a.eval_memo(env, memo)? + b.eval_memo(env, memo)?,
            Kind::Mul(a, b) => a.eval_memo(env, memo)? * b.eval_memo(env, memo)?,
            Kind::Div(a, b) => a.eval_memo(env, memo)? / b.eval_memo(env, memo)?,
            Kind::Neg(a) => -a.eval_memo(env, memo)?,
            Kind::PowI(a, n) => a.eval_memo(env, memo)?.powi(*n),
            Kind::Pow(a, b) => {
                let base = a.eval_memo(env, memo)?;
                let e = b.eval_memo(env, memo)?;
                if base < 0.0 {
                    f64::NAN
                } else {
                    base.powf(e)
                }
            }
            Kind::Exp(a) => a.eval_memo(env, memo)?.exp(),
            Kind::Ln(a) => {
                let x = a.eval_memo(env, memo)?;
                if x <= 0.0 {
                    f64::NAN
                } else {
                    x.ln()
                }
            }
            Kind::Sqrt(a) => a.eval_memo(env, memo)?.sqrt(),
            Kind::Cbrt(a) => a.eval_memo(env, memo)?.cbrt(),
            Kind::Atan(a) => a.eval_memo(env, memo)?.atan(),
            Kind::Sin(a) => a.eval_memo(env, memo)?.sin(),
            Kind::Cos(a) => a.eval_memo(env, memo)?.cos(),
            Kind::Tanh(a) => a.eval_memo(env, memo)?.tanh(),
            Kind::Abs(a) => a.eval_memo(env, memo)?.abs(),
            Kind::Min(a, b) => a.eval_memo(env, memo)?.min(b.eval_memo(env, memo)?),
            Kind::Max(a, b) => a.eval_memo(env, memo)?.max(b.eval_memo(env, memo)?),
            Kind::LambertW(a) => xcv_interval::lambert_w0_f64(a.eval_memo(env, memo)?),
            Kind::Ite {
                cond,
                then,
                otherwise,
            } => {
                let c = cond.eval_memo(env, memo)?;
                if c.is_nan() {
                    f64::NAN
                } else if c >= 0.0 {
                    then.eval_memo(env, memo)?
                } else {
                    otherwise.eval_memo(env, memo)?
                }
            }
        };
        memo.insert(self.id(), v);
        Ok(v)
    }

    /// Forward interval evaluation (one-shot). For repeated evaluation over
    /// many boxes, use [`IntervalEnv`].
    pub fn eval_interval(&self, domains: &[Interval]) -> Interval {
        let mut env = IntervalEnv::new(std::slice::from_ref(self));
        env.forward(domains);
        env.value(self)
    }
}

// ---------------------------------------------------------------------------
// Instruction tape
// ---------------------------------------------------------------------------

/// One flattened instruction; operands are slot indices into the tape's
/// register file. Shared by the f64 [`Tape`] and the interval
/// [`crate::IntervalTape`] — one lowering ([`lower_dag`]), two interpreters.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    Const(f64),
    /// A constant-only subtree folded at compile time by
    /// [`fold_constants_interval`]: the stored enclosure is exactly what the
    /// forward pass would have computed for the subtree, kept as an interval
    /// (not a point) so outward rounding survives the fold. Never emitted
    /// into f64 tapes.
    IConst(Interval),
    Var(u32),
    Add(u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Neg(u32),
    PowI(u32, i32),
    Pow(u32, u32),
    Exp(u32),
    Ln(u32),
    Sqrt(u32),
    Cbrt(u32),
    Atan(u32),
    Sin(u32),
    Cos(u32),
    Tanh(u32),
    Abs(u32),
    Min(u32, u32),
    Max(u32, u32),
    LambertW(u32),
    Ite(u32, u32, u32),
}

/// A compiled, allocation-free evaluator for one expression.
///
/// ```
/// use xcv_expr::{var, Tape};
/// let e = var(0) * var(0) + 1.0;
/// let tape = Tape::compile(&e);
/// let mut scratch = tape.scratch();
/// assert_eq!(tape.eval(&[3.0], &mut scratch), 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct Tape {
    code: Vec<Instr>,
    /// Per-slot transitive variable-dependency bitsets (see
    /// [`crate::IntervalTape::deps`] — same construction), powering
    /// [`Tape::run_masked`].
    deps: Vec<u64>,
}

/// Per-slot transitive variable-dependency bitsets of a lowered program:
/// bit `v` set when the slot depends on variable `v` (variables `>= 64`
/// saturate to all-ones — sound, only ever over-recomputing). Shared by the
/// f64 [`Tape`] and [`crate::IntervalTape`].
pub(crate) fn compute_deps(code: &[Instr]) -> Vec<u64> {
    let mut deps = vec![0u64; code.len()];
    for i in 0..code.len() {
        deps[i] = match code[i] {
            Instr::Const(_) | Instr::IConst(_) => 0,
            Instr::Var(v) if v < 64 => 1 << v,
            Instr::Var(_) => u64::MAX,
            op => {
                let mut m = 0u64;
                for_each_operand(op, |a| m |= deps[a as usize]);
                m
            }
        };
    }
    deps
}

/// A DAG (one or more roots, shared nodes lowered once) flattened into a
/// topologically ordered instruction list, with the bookkeeping both tape
/// interpreters need.
pub(crate) struct Lowered {
    pub(crate) code: Vec<Instr>,
    /// Slot of each root, in input order.
    pub(crate) roots: Vec<u32>,
    /// `(slot, variable id)` for every variable node, in program order.
    pub(crate) var_slots: Vec<(u32, u32)>,
}

/// The single Kind-to-instruction lowering behind [`Tape`] and
/// [`crate::IntervalTape`]: merged topological order across `roots`
/// (children before parents; nodes shared between roots appear once).
pub(crate) fn lower_dag(roots: &[Expr]) -> Lowered {
    let mut order: Vec<Expr> = Vec::new();
    let mut slot: HashMap<NodeId, u32> = HashMap::new();
    for r in roots {
        for e in r.topo_order() {
            if let std::collections::hash_map::Entry::Vacant(v) = slot.entry(e.id()) {
                v.insert(order.len() as u32);
                order.push(e);
            }
        }
    }
    let s = |x: &Expr| slot[&x.id()];
    let mut code = Vec::with_capacity(order.len());
    let mut var_slots = Vec::new();
    for (i, e) in order.iter().enumerate() {
        let instr = match e.kind() {
            Kind::Const(c) => Instr::Const(*c),
            Kind::Var(v) => {
                var_slots.push((i as u32, *v));
                Instr::Var(*v)
            }
            Kind::Add(a, b) => Instr::Add(s(a), s(b)),
            Kind::Mul(a, b) => Instr::Mul(s(a), s(b)),
            Kind::Div(a, b) => Instr::Div(s(a), s(b)),
            Kind::Neg(a) => Instr::Neg(s(a)),
            Kind::PowI(a, n) => Instr::PowI(s(a), *n),
            Kind::Pow(a, b) => Instr::Pow(s(a), s(b)),
            Kind::Exp(a) => Instr::Exp(s(a)),
            Kind::Ln(a) => Instr::Ln(s(a)),
            Kind::Sqrt(a) => Instr::Sqrt(s(a)),
            Kind::Cbrt(a) => Instr::Cbrt(s(a)),
            Kind::Atan(a) => Instr::Atan(s(a)),
            Kind::Sin(a) => Instr::Sin(s(a)),
            Kind::Cos(a) => Instr::Cos(s(a)),
            Kind::Tanh(a) => Instr::Tanh(s(a)),
            Kind::Abs(a) => Instr::Abs(s(a)),
            Kind::Min(a, b) => Instr::Min(s(a), s(b)),
            Kind::Max(a, b) => Instr::Max(s(a), s(b)),
            Kind::LambertW(a) => Instr::LambertW(s(a)),
            Kind::Ite {
                cond,
                then,
                otherwise,
            } => Instr::Ite(s(cond), s(then), s(otherwise)),
        };
        code.push(instr);
    }
    Lowered {
        code,
        roots: roots.iter().map(s).collect(),
        var_slots,
    }
}

/// Rebuild one instruction with every operand slot passed through `f` —
/// the single enumeration of `Instr`'s operand shape, behind both operand
/// visiting ([`for_each_operand`]) and slot remapping ([`compact`]).
fn map_operands(instr: Instr, mut f: impl FnMut(u32) -> u32) -> Instr {
    match instr {
        Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => instr,
        Instr::Neg(a) => Instr::Neg(f(a)),
        Instr::PowI(a, n) => Instr::PowI(f(a), n),
        Instr::Exp(a) => Instr::Exp(f(a)),
        Instr::Ln(a) => Instr::Ln(f(a)),
        Instr::Sqrt(a) => Instr::Sqrt(f(a)),
        Instr::Cbrt(a) => Instr::Cbrt(f(a)),
        Instr::Atan(a) => Instr::Atan(f(a)),
        Instr::Sin(a) => Instr::Sin(f(a)),
        Instr::Cos(a) => Instr::Cos(f(a)),
        Instr::Tanh(a) => Instr::Tanh(f(a)),
        Instr::Abs(a) => Instr::Abs(f(a)),
        Instr::LambertW(a) => Instr::LambertW(f(a)),
        Instr::Add(a, b) => Instr::Add(f(a), f(b)),
        Instr::Mul(a, b) => Instr::Mul(f(a), f(b)),
        Instr::Div(a, b) => Instr::Div(f(a), f(b)),
        Instr::Pow(a, b) => Instr::Pow(f(a), f(b)),
        Instr::Min(a, b) => Instr::Min(f(a), f(b)),
        Instr::Max(a, b) => Instr::Max(f(a), f(b)),
        Instr::Ite(c, t, e) => {
            let c = f(c);
            let t = f(t);
            Instr::Ite(c, t, f(e))
        }
    }
}

/// Visit the operand slots of one instruction.
pub(crate) fn for_each_operand(instr: Instr, mut f: impl FnMut(u32)) {
    map_operands(instr, |a| {
        f(a);
        a
    });
}

/// Fold constant-only subtrees of an f64 program: any instruction whose
/// operands are all literal constants is replaced by the constant it computes
/// — with exactly the f64 semantics of [`Tape::run`], so folding is
/// result-identical by construction (NaN included). The smart constructors
/// ([`crate::build`]) already fold binary arithmetic on constants; this pass
/// catches what they leave symbolic (`exp`/`ln`/`sqrt`/`pow` of constants and
/// chains thereof), which differentiation produces in quantity. Follow with
/// [`compact`] to drop the dead operand slots.
pub(crate) fn fold_constants_f64(lowered: &mut Lowered) {
    let n = lowered.code.len();
    let mut vals: Vec<f64> = vec![0.0; n];
    let mut is_const: Vec<bool> = vec![false; n];
    for i in 0..n {
        let instr = lowered.code[i];
        if let Instr::Const(c) = instr {
            vals[i] = c;
            is_const[i] = true;
            continue;
        }
        let mut all_const = !matches!(instr, Instr::Var(_) | Instr::IConst(_));
        for_each_operand(instr, |a| all_const &= is_const[a as usize]);
        if !all_const {
            continue;
        }
        // Run the single instruction over the already-folded register file —
        // the same interpreter step Tape::run would execute.
        let v = run_one_f64(instr, &vals);
        vals[i] = v;
        is_const[i] = true;
        lowered.code[i] = Instr::Const(v);
    }
}

/// The single-instruction step of the f64 interpreter, reading operands
/// from `vals`. [`Tape::run`] executes exactly this per slot (variables
/// aside, which need the input environment), and [`fold_constants_f64`]
/// folds with it — so folded and unfolded tapes are result-identical by
/// construction, not by parallel maintenance of two interpreters.
fn run_one_f64(instr: Instr, vals: &[f64]) -> f64 {
    run_one_f64_with(instr, |j| vals[j as usize])
}

/// One f64 instruction with operand reads abstracted — the same arithmetic
/// serves the scalar register file ([`run_one_f64`]) and the slot-major SoA
/// file of [`Tape::run_batch`], so the two are bit-identical per lane.
#[inline]
fn run_one_f64_with(instr: Instr, g: impl Fn(u32) -> f64) -> f64 {
    match instr {
        Instr::Const(c) => c,
        Instr::IConst(_) | Instr::Var(_) => f64::NAN,
        Instr::Add(a, b) => g(a) + g(b),
        Instr::Mul(a, b) => g(a) * g(b),
        Instr::Div(a, b) => g(a) / g(b),
        Instr::Neg(a) => -g(a),
        Instr::PowI(a, n) => g(a).powi(n),
        Instr::Pow(a, b) => {
            let base = g(a);
            if base < 0.0 {
                f64::NAN
            } else {
                base.powf(g(b))
            }
        }
        Instr::Exp(a) => g(a).exp(),
        Instr::Ln(a) => {
            let x = g(a);
            if x <= 0.0 {
                f64::NAN
            } else {
                x.ln()
            }
        }
        Instr::Sqrt(a) => g(a).sqrt(),
        Instr::Cbrt(a) => g(a).cbrt(),
        Instr::Atan(a) => g(a).atan(),
        Instr::Sin(a) => g(a).sin(),
        Instr::Cos(a) => g(a).cos(),
        Instr::Tanh(a) => g(a).tanh(),
        Instr::Abs(a) => g(a).abs(),
        Instr::Min(a, b) => g(a).min(g(b)),
        Instr::Max(a, b) => g(a).max(g(b)),
        Instr::LambertW(a) => xcv_interval::lambert_w0_f64(g(a)),
        Instr::Ite(c, t, e) => {
            let cv = g(c);
            if cv.is_nan() {
                f64::NAN
            } else if cv >= 0.0 {
                g(t)
            } else {
                g(e)
            }
        }
    }
}

/// Fold constant-only subtrees of an interval program. The folded value is
/// the *interval* the forward pass would have computed (outward rounding and
/// all), stored as [`Instr::IConst`] — folding to an f64 point would drop
/// the enclosure of irrational constants and be unsound for verification.
/// Follow with [`compact`].
pub(crate) fn fold_constants_interval(lowered: &mut Lowered) {
    let n = lowered.code.len();
    let mut vals: Vec<Interval> = vec![Interval::ENTIRE; n];
    let mut is_const: Vec<bool> = vec![false; n];
    for i in 0..n {
        let instr = lowered.code[i];
        match instr {
            Instr::Const(c) => {
                vals[i] = Interval::point(c);
                is_const[i] = true;
                continue;
            }
            Instr::IConst(v) => {
                vals[i] = v;
                is_const[i] = true;
                continue;
            }
            Instr::Var(_) => continue,
            _ => {}
        }
        let mut all_const = true;
        for_each_operand(instr, |a| all_const &= is_const[a as usize]);
        if !all_const {
            continue;
        }
        let v = crate::itape::eval_op(instr, &vals);
        vals[i] = v;
        is_const[i] = true;
        // A point that survived exactly stays a plain Const (cheaper and
        // shared with the f64 interpretation); anything widened by rounding
        // keeps its enclosure.
        lowered.code[i] = if v.is_point() {
            Instr::Const(v.lo)
        } else {
            Instr::IConst(v)
        };
    }
}

/// Drop instructions no root (transitively) uses and renumber the survivors.
/// Run after a folding pass: folded parents no longer reference the constant
/// subtrees they absorbed, so those slots — and the per-box work of
/// re-evaluating them — disappear from the program.
pub(crate) fn compact(lowered: &mut Lowered) {
    let n = lowered.code.len();
    let mut live = vec![false; n];
    for &r in &lowered.roots {
        live[r as usize] = true;
    }
    // Children precede parents, so one reverse sweep settles liveness.
    for i in (0..n).rev() {
        if live[i] {
            for_each_operand(lowered.code[i], |a| live[a as usize] = true);
        }
    }
    if live.iter().all(|&l| l) {
        return;
    }
    let mut remap = vec![u32::MAX; n];
    let mut code = Vec::with_capacity(n);
    for i in 0..n {
        if !live[i] {
            continue;
        }
        remap[i] = code.len() as u32;
        code.push(map_operands(lowered.code[i], |a| remap[a as usize]));
    }
    lowered.code = code;
    for r in &mut lowered.roots {
        *r = remap[*r as usize];
    }
    lowered.var_slots.retain(|&(slot, _)| live[slot as usize]);
    for (slot, _) in &mut lowered.var_slots {
        *slot = remap[*slot as usize];
    }
}

impl Tape {
    /// Flatten the DAG into a topologically ordered tape (constant-only
    /// subtrees folded, dead slots dropped).
    pub fn compile(root: &Expr) -> Tape {
        Tape::compile_multi(std::slice::from_ref(root)).0
    }

    /// Lower several roots into one tape with shared nodes evaluated once;
    /// returns the tape and the slot of each root (read results out of the
    /// scratch buffer after [`Tape::run`]).
    pub fn compile_multi(roots: &[Expr]) -> (Tape, Vec<u32>) {
        let mut lowered = lower_dag(roots);
        fold_constants_f64(&mut lowered);
        compact(&mut lowered);
        let deps = compute_deps(&lowered.code);
        (
            Tape {
                code: lowered.code,
                deps,
            },
            lowered.roots,
        )
    }

    /// The per-slot variable-dependency bitsets (see
    /// [`crate::IntervalTape::deps`]).
    pub fn deps(&self) -> &[u64] {
        &self.deps
    }

    /// A scratch register file sized for this tape (reuse across calls).
    pub fn scratch(&self) -> Vec<f64> {
        vec![0.0; self.code.len()]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Evaluate a single-root tape; unbound variables read as NaN.
    pub fn eval(&self, vars: &[f64], scratch: &mut [f64]) -> f64 {
        self.run(vars, scratch);
        *scratch.last().unwrap_or(&f64::NAN)
    }

    /// Run the whole program, filling `scratch`; callers holding root slots
    /// from [`Tape::compile_multi`] read each root's value out of `scratch`.
    /// Unbound variables read as NaN.
    pub fn run(&self, vars: &[f64], scratch: &mut [f64]) {
        debug_assert_eq!(scratch.len(), self.code.len());
        for (i, instr) in self.code.iter().enumerate() {
            scratch[i] = match *instr {
                Instr::Var(v) => vars.get(v as usize).copied().unwrap_or(f64::NAN),
                // Interval constants never appear in f64 tapes (see
                // `fold_constants_interval`).
                Instr::IConst(_) => unreachable!("IConst in an f64 tape"),
                op => run_one_f64(op, scratch),
            };
        }
    }

    /// Dirty-slot re-run: recompute only the slots whose dependency set
    /// intersects `mask`, leaving every other register untouched — the f64
    /// analogue of `IntervalTape::forward_masked`. Precondition: `scratch`
    /// holds [`Tape::run`]'s image of a point that is *bitwise* identical
    /// to `vars` on every variable outside `mask` (bitwise, because `-0.0`
    /// and `0.0` compare equal but divide differently). Under it, the
    /// result equals a full re-run bit for bit: skipped slots have
    /// unchanged inputs, recomputed slots read unchanged or recomputed
    /// operands in program order.
    pub fn run_masked(&self, vars: &[f64], mask: u64, scratch: &mut [f64]) {
        debug_assert_eq!(scratch.len(), self.code.len());
        for (i, instr) in self.code.iter().enumerate() {
            if self.deps[i] & mask == 0 {
                continue;
            }
            scratch[i] = match *instr {
                Instr::Var(v) => vars.get(v as usize).copied().unwrap_or(f64::NAN),
                Instr::IConst(_) => unreachable!("IConst in an f64 tape"),
                op => run_one_f64(op, scratch),
            };
        }
    }

    /// Instruction-outer batched run: evaluate the program at `width` points
    /// in a single pass over the code stream, amortizing instruction decode
    /// across lanes. `points[j]` is lane `j`'s variable vector; `scratch` is
    /// a slot-major SoA register file of `len() * width` values
    /// (`scratch[i * width + j]` holds slot `i`, lane `j`). Each lane's
    /// registers end bit-identical to a scalar `run(points[j], …)` — same
    /// instructions, same per-lane arithmetic, only loop order differs.
    pub fn run_batch(&self, width: usize, points: &[&[f64]], scratch: &mut [f64]) {
        debug_assert_eq!(points.len(), width);
        debug_assert_eq!(scratch.len(), self.code.len() * width);
        for (i, instr) in self.code.iter().enumerate() {
            let base = i * width;
            match *instr {
                Instr::Var(v) => {
                    for j in 0..width {
                        scratch[base + j] = points[j].get(v as usize).copied().unwrap_or(f64::NAN);
                    }
                }
                Instr::IConst(_) => unreachable!("IConst in an f64 tape"),
                op => {
                    for j in 0..width {
                        // Split at `base` so the read closure borrows the
                        // already-computed prefix while we write slot `i`.
                        let (lo, hi) = scratch.split_at_mut(base);
                        hi[j] = run_one_f64_with(op, |s| lo[s as usize * width + j]);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Interval evaluation environment
// ---------------------------------------------------------------------------

/// Reusable forward interval evaluator over one or more rooted DAGs, with
/// per-node storage the HC4 backward pass can refine in place.
pub struct IntervalEnv {
    order: Vec<Expr>,
    pos: HashMap<NodeId, usize>,
    vals: Vec<Interval>,
}

impl IntervalEnv {
    /// Build the shared topological order for a set of roots.
    pub fn new(roots: &[Expr]) -> IntervalEnv {
        // Merge topo orders; nodes shared between roots appear once.
        let mut order: Vec<Expr> = Vec::new();
        let mut seen: HashMap<NodeId, usize> = HashMap::new();
        for r in roots {
            for e in r.topo_order() {
                if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(e.id()) {
                    slot.insert(order.len());
                    order.push(e);
                }
            }
        }
        let vals = vec![Interval::ENTIRE; order.len()];
        IntervalEnv {
            order,
            pos: seen,
            vals,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Topological order (children before parents).
    pub fn order(&self) -> &[Expr] {
        &self.order
    }

    /// Index of a node in the shared order.
    pub fn index_of(&self, e: &Expr) -> Option<usize> {
        self.pos.get(&e.id()).copied()
    }

    /// Current enclosure for a node.
    pub fn value(&self, e: &Expr) -> Interval {
        self.vals[self.pos[&e.id()]]
    }

    /// Current enclosure by index.
    pub fn value_at(&self, idx: usize) -> Interval {
        self.vals[idx]
    }

    /// Overwrite the enclosure at an index (backward pass refinement).
    pub fn set_value_at(&mut self, idx: usize, v: Interval) {
        self.vals[idx] = v;
    }

    /// Intersect the stored enclosure at `idx`; returns the result.
    pub fn meet_at(&mut self, idx: usize, v: Interval) -> Interval {
        let m = self.vals[idx].intersect(&v);
        self.vals[idx] = m;
        m
    }

    /// Run the forward pass: compute the natural interval extension of every
    /// node given per-variable `domains` (indexed by variable id).
    pub fn forward(&mut self, domains: &[Interval]) {
        // Index-based iteration: cloning the `Arc<Node>` per node per pass
        // just to appease the borrow checker was measurable refcount churn
        // on SCAN-sized DAGs.
        for i in 0..self.order.len() {
            let v = self.forward_node(&self.order[i], domains);
            self.vals[i] = v;
        }
    }

    /// Re-run the forward pass but *intersect* with existing enclosures
    /// rather than overwriting (used between HC4 sweeps).
    pub fn forward_meet(&mut self) {
        for i in 0..self.order.len() {
            let fresh = self.forward_node_from_children(&self.order[i], i);
            if let Some(fresh) = fresh {
                self.vals[i] = self.vals[i].intersect(&fresh);
            }
        }
    }

    fn child_val(&self, e: &Expr) -> Interval {
        self.vals[self.pos[&e.id()]]
    }

    fn forward_node(&self, e: &Expr, domains: &[Interval]) -> Interval {
        match e.kind() {
            Kind::Const(c) => Interval::point(*c),
            Kind::Var(i) => domains
                .get(*i as usize)
                .copied()
                .unwrap_or(Interval::ENTIRE),
            _ => self
                .forward_node_from_children(e, usize::MAX)
                .expect("non-leaf"),
        }
    }

    /// Forward value from children only; `None` for leaves (constants keep
    /// their point value, variables keep their current — possibly contracted
    /// — domain).
    fn forward_node_from_children(&self, e: &Expr, _idx: usize) -> Option<Interval> {
        let v = match e.kind() {
            Kind::Const(_) | Kind::Var(_) => return None,
            Kind::Add(a, b) => self.child_val(a).add(&self.child_val(b)),
            Kind::Mul(a, b) => self.child_val(a).mul(&self.child_val(b)),
            Kind::Div(a, b) => self.child_val(a).div(&self.child_val(b)),
            Kind::Neg(a) => self.child_val(a).neg(),
            Kind::PowI(a, n) => self.child_val(a).powi(*n),
            Kind::Pow(a, b) => self.child_val(a).powf(&self.child_val(b)),
            Kind::Exp(a) => self.child_val(a).exp(),
            Kind::Ln(a) => self.child_val(a).ln(),
            Kind::Sqrt(a) => self.child_val(a).sqrt(),
            Kind::Cbrt(a) => self.child_val(a).cbrt(),
            Kind::Atan(a) => self.child_val(a).atan(),
            Kind::Sin(a) => self.child_val(a).sin(),
            Kind::Cos(a) => self.child_val(a).cos(),
            Kind::Tanh(a) => self.child_val(a).tanh(),
            Kind::Abs(a) => self.child_val(a).abs(),
            Kind::Min(a, b) => self.child_val(a).min_i(&self.child_val(b)),
            Kind::Max(a, b) => self.child_val(a).max_i(&self.child_val(b)),
            Kind::LambertW(a) => self.child_val(a).lambert_w0(),
            Kind::Ite {
                cond,
                then,
                otherwise,
            } => {
                let c = self.child_val(cond);
                if c.is_empty() {
                    Interval::EMPTY
                } else if c.certainly_ge(0.0) {
                    self.child_val(then)
                } else if c.certainly_lt(0.0) {
                    self.child_val(otherwise)
                } else {
                    self.child_val(then).hull(&self.child_val(otherwise))
                }
            }
        };
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{constant, var, Expr};
    use xcv_interval::interval;

    #[test]
    fn eval_polynomial() {
        let x = var(0);
        let e = x.powi(2) + 2.0 * var(0) + 1.0; // (x+1)^2
        assert_eq!(e.eval(&[3.0]).unwrap(), 16.0);
    }

    #[test]
    fn eval_unbound_var_errors() {
        let e = var(3) + 1.0;
        assert_eq!(e.eval(&[0.0]), Err(EvalError::UnboundVar(3)));
    }

    #[test]
    fn eval_domain_violation_nan() {
        let e = constant(-1.0).abs().neg().ln();
        assert!(e.eval(&[]).unwrap().is_nan());
        let e = var(0).sqrt();
        assert!(e.eval(&[-1.0]).unwrap().is_nan());
    }

    #[test]
    fn eval_transcendentals() {
        let e = var(0).exp().ln();
        assert!((e.eval(&[2.5]).unwrap() - 2.5).abs() < 1e-14);
        let e = var(0).atan();
        assert!((e.eval(&[1.0]).unwrap() - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
    }

    #[test]
    fn eval_ite_branches() {
        let e = Expr::ite(&(var(0) - 1.0), &constant(10.0), &constant(20.0));
        assert_eq!(e.eval(&[2.0]).unwrap(), 10.0);
        assert_eq!(e.eval(&[1.0]).unwrap(), 10.0); // boundary: cond >= 0
        assert_eq!(e.eval(&[0.0]).unwrap(), 20.0);
    }

    #[test]
    fn tape_matches_recursive_eval() {
        let x = var(0);
        let y = var(1);
        let e = (x.clone() * y.clone() + x.exp()).sqrt() / (y + 2.0);
        let tape = Tape::compile(&e);
        let mut scratch = tape.scratch();
        for &(a, b) in &[(0.5, 1.0), (2.0, 3.0), (0.1, 0.2)] {
            let r1 = e.eval(&[a, b]).unwrap();
            let r2 = tape.eval(&[a, b], &mut scratch);
            assert!((r1 - r2).abs() <= 1e-15 * r1.abs().max(1.0), "{r1} vs {r2}");
        }
    }

    #[test]
    fn run_batch_lanes_match_scalar_run_bitwise() {
        let x = var(0);
        let y = var(1);
        let e = (x.clone() * y.clone() + x.clone().exp()).sqrt() / (y.clone() - 0.5)
            + x.abs().min(&y.powi(3));
        let tape = Tape::compile(&e);
        let pts: Vec<Vec<f64>> = vec![
            vec![0.5, 1.0],
            vec![2.0, 3.0],
            vec![-1.0, 0.25],
            vec![0.0, 0.5], // division by zero lane
            vec![f64::NAN, 1.0],
        ];
        let width = pts.len();
        let views: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut soa = vec![0.0; tape.len() * width];
        tape.run_batch(width, &views, &mut soa);
        let mut scratch = tape.scratch();
        for (j, p) in pts.iter().enumerate() {
            tape.run(p, &mut scratch);
            for i in 0..tape.len() {
                assert_eq!(
                    soa[i * width + j].to_bits(),
                    scratch[i].to_bits(),
                    "slot {i}, lane {j}"
                );
            }
        }
    }

    #[test]
    fn tape_len_counts_shared_nodes_once() {
        let x = var(0);
        let t = x.clone() * x.clone();
        let e = t.clone() + t.clone();
        let tape = Tape::compile(&e);
        assert_eq!(tape.len(), 3); // x, x^2, add
    }

    #[test]
    fn interval_forward_contains_point_eval() {
        let x = var(0);
        let e = (x.clone() + 1.0).ln() * x.exp();
        let dom = [interval(0.5, 2.0)];
        let enc = e.eval_interval(&dom);
        for &p in &[0.5, 1.0, 1.7, 2.0] {
            let v = e.eval(&[p]).unwrap();
            assert!(enc.contains(v), "{v} not in {enc:?}");
        }
    }

    #[test]
    fn interval_ite_hull_when_undecided() {
        let e = Expr::ite(&var(0), &constant(1.0), &constant(5.0));
        let enc = e.eval_interval(&[interval(-1.0, 1.0)]);
        assert!(enc.contains(1.0) && enc.contains(5.0));
        let enc = e.eval_interval(&[interval(0.0, 1.0)]);
        assert_eq!(enc, Interval::point(1.0));
        let enc = e.eval_interval(&[interval(-2.0, -1.0)]);
        assert_eq!(enc, Interval::point(5.0));
    }

    #[test]
    fn tape_folds_constant_subtrees() {
        // exp(2) and sqrt(3) stay symbolic in the DAG (the smart
        // constructors only fold exact values) but fold at tape level, with
        // bit-identical f64 semantics.
        let e = constant(2.0).exp() + var(0).ln() * constant(3.0).sqrt();
        let unfolded = lower_dag(std::slice::from_ref(&e)).code.len();
        let tape = Tape::compile(&e);
        assert!(tape.len() < unfolded, "{} !< {unfolded}", tape.len());
        let mut s = tape.scratch();
        for &x in &[0.5, 1.7, 3.0] {
            assert_eq!(tape.eval(&[x], &mut s), e.eval(&[x]).unwrap());
        }
        // Domain-violating constants fold to NaN and keep propagating.
        let bad = constant(-1.0).ln() + var(0);
        let tape = Tape::compile(&bad);
        let mut s = tape.scratch();
        assert!(tape.eval(&[1.0], &mut s).is_nan());
    }

    #[test]
    fn folding_keeps_roots_and_vars_consistent() {
        // A root that folds entirely, sharing a tape with one that does not.
        let c = constant(2.0).exp() * constant(3.0).sqrt();
        let v = var(1) + constant(2.0).exp();
        let (tape, roots) = Tape::compile_multi(&[c.clone(), v.clone()]);
        let mut s = tape.scratch();
        tape.run(&[0.0, 4.0], &mut s);
        assert_eq!(s[roots[0] as usize], c.eval(&[]).unwrap());
        assert_eq!(s[roots[1] as usize], v.eval(&[0.0, 4.0]).unwrap());
    }

    #[test]
    fn interval_env_reuse() {
        let e = var(0).powi(2);
        let mut env = IntervalEnv::new(std::slice::from_ref(&e));
        env.forward(&[interval(1.0, 2.0)]);
        assert!(env.value(&e).contains(4.0));
        env.forward(&[interval(3.0, 4.0)]);
        assert!(env.value(&e).contains(16.0));
        assert!(!env.value(&e).contains(4.0));
    }

    #[test]
    fn interval_env_multi_root_shares() {
        let x = var(0);
        let f = x.clone() * 2.0;
        let g = x.clone() * 2.0 + 1.0;
        let env = IntervalEnv::new(&[f.clone(), g.clone()]);
        // x, 2x, 1?, 2x+1 — constants included
        assert!(env.len() >= 3);
        assert!(env.index_of(&f).is_some());
        assert!(env.index_of(&g).is_some());
    }
}
