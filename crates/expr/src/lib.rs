//! Hash-consed symbolic expression DAG for real-valued functions.
//!
//! This crate reproduces the symbolic layer of XCVerifier's XCEncoder:
//!
//! * [`Expr`] — an immutable, globally hash-consed expression node. Building
//!   the same expression twice yields pointer-identical nodes, so structural
//!   equality is O(1) and downstream passes (differentiation, evaluation,
//!   interval contraction) can memoize by node id.
//! * [`diff`](Expr::diff) — symbolic differentiation (the SymPy substitute);
//!   derivatives required by the DFT local conditions are computed exactly,
//!   never by finite differences.
//! * [`Expr::eval`] / [`Expr::eval_interval`] — memoized evaluation over
//!   `f64` and over [`xcv_interval::Interval`].
//! * [`dsl`] — a small Python-subset frontend with a symbolic executor,
//!   mirroring the paper's Maple → Python → symbolic-execution pipeline for
//!   LIBXC functional sources.
//! * [`VarSpace`] — typed variable axes ([`Axis`]/[`AxisKind`]): what each
//!   variable index *means* (`rs`, `s`, `α`, `ζ`, per-spin `s↑`/`s↓`), with
//!   names and Pederson–Burke bounds. The functional trait, the condition
//!   encoder, the compiled solver and the grid baseline all describe their
//!   problems through it.
//!
//! Expressions support the operation set found in LIBXC DFA implementations:
//! field operations, powers (integer and real), `exp`, `ln`, `sqrt`, `cbrt`,
//! `atan`, `sin`, `cos`, `tanh`, `abs`, `min`/`max`, the Lambert W function
//! (AM05), and if-then-else on sign conditions (SCAN).

mod build;
mod diff;
mod display;
pub mod dsl;
mod eval;
mod itape;
pub mod newton;
mod node;
mod subst;
mod vars;
mod varspace;

pub use build::{constant, var};
pub use eval::{EvalError, IntervalEnv, Tape};
pub use itape::IntervalTape;
pub use node::{Expr, Kind, NodeId};
pub use vars::VarSet;
pub use varspace::{Axis, AxisKind, VarSpace};
