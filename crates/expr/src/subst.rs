//! Substitution of variables by expressions.
//!
//! Used by the condition encoder to form limits such as `F_c(rs → ∞)`, which
//! the paper approximates by substituting `rs = 100` (Section III-A), and by
//! the DSL symbolic executor to inline non-recursive function calls.

use crate::node::{Expr, Kind, NodeId};
use std::collections::HashMap;

impl Expr {
    /// Replace every occurrence of variable `v` with `replacement`.
    pub fn subst_var(&self, v: u32, replacement: &Expr) -> Expr {
        let mut map = HashMap::new();
        map.insert(v, replacement.clone());
        self.subst_vars(&map)
    }

    /// Replace several variables simultaneously.
    pub fn subst_vars(&self, map: &HashMap<u32, Expr>) -> Expr {
        let mut cache: HashMap<NodeId, Expr> = HashMap::new();
        self.subst_cached(map, &mut cache)
    }

    fn subst_cached(&self, map: &HashMap<u32, Expr>, cache: &mut HashMap<NodeId, Expr>) -> Expr {
        if let Some(r) = cache.get(&self.id()) {
            return r.clone();
        }
        let result = match self.kind() {
            Kind::Const(_) => self.clone(),
            Kind::Var(i) => map.get(i).cloned().unwrap_or_else(|| self.clone()),
            Kind::Add(a, b) => a.subst_cached(map, cache) + b.subst_cached(map, cache),
            Kind::Mul(a, b) => a.subst_cached(map, cache) * b.subst_cached(map, cache),
            Kind::Div(a, b) => a.subst_cached(map, cache) / b.subst_cached(map, cache),
            Kind::Neg(a) => -a.subst_cached(map, cache),
            Kind::PowI(a, n) => a.subst_cached(map, cache).powi(*n),
            Kind::Pow(a, b) => a.subst_cached(map, cache).pow(&b.subst_cached(map, cache)),
            Kind::Exp(a) => a.subst_cached(map, cache).exp(),
            Kind::Ln(a) => a.subst_cached(map, cache).ln(),
            Kind::Sqrt(a) => a.subst_cached(map, cache).sqrt(),
            Kind::Cbrt(a) => a.subst_cached(map, cache).cbrt(),
            Kind::Atan(a) => a.subst_cached(map, cache).atan(),
            Kind::Sin(a) => a.subst_cached(map, cache).sin(),
            Kind::Cos(a) => a.subst_cached(map, cache).cos(),
            Kind::Tanh(a) => a.subst_cached(map, cache).tanh(),
            Kind::Abs(a) => a.subst_cached(map, cache).abs(),
            Kind::Min(a, b) => a.subst_cached(map, cache).min(&b.subst_cached(map, cache)),
            Kind::Max(a, b) => a.subst_cached(map, cache).max(&b.subst_cached(map, cache)),
            Kind::LambertW(a) => a.subst_cached(map, cache).lambert_w(),
            Kind::Ite {
                cond,
                then,
                otherwise,
            } => Expr::ite(
                &cond.subst_cached(map, cache),
                &then.subst_cached(map, cache),
                &otherwise.subst_cached(map, cache),
            ),
        };
        cache.insert(self.id(), result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use crate::{constant, var};
    use std::collections::HashMap;

    #[test]
    fn subst_constant_folds() {
        let e = var(0).powi(2) + var(1);
        let r = e.subst_var(0, &constant(3.0));
        assert_eq!(r.eval(&[0.0, 5.0]).unwrap(), 14.0);
        // Fully substituting yields a literal.
        let r2 = r.subst_var(1, &constant(1.0));
        assert_eq!(r2.as_const(), Some(10.0));
    }

    #[test]
    fn subst_expression() {
        let e = var(0).exp();
        let r = e.subst_var(0, &(var(1) * 2.0));
        assert!((r.eval(&[0.0, 1.5]).unwrap() - 3.0_f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_subst_no_chaining() {
        // {x -> y, y -> x} swaps, it must not chain x -> y -> x.
        let e = var(0) - var(1);
        let mut map = HashMap::new();
        map.insert(0, var(1));
        map.insert(1, var(0));
        let r = e.subst_vars(&map);
        assert_eq!(r.eval(&[3.0, 10.0]).unwrap(), 7.0);
    }

    #[test]
    fn untouched_vars_remain() {
        let e = var(0) + var(1);
        let r = e.subst_var(0, &constant(1.0));
        assert_eq!(r.free_vars(), vec![1]);
    }

    #[test]
    fn subst_preserves_sharing() {
        let x = var(0);
        let g = (x.clone() + 1.0).exp();
        let e = g.clone() * g.clone();
        let r = e.subst_var(0, &(var(1) * var(1)));
        // Still a single shared exp node: y, 1, y^2, y^2+1, exp, exp^2.
        assert!(r.node_count() <= 6);
    }
}
