//! Variable naming.
//!
//! Expressions refer to variables by dense index (`Kind::Var(u32)`); a
//! [`VarSet`] maps indices to human-readable names for display and for the
//! DSL frontend. The verifier's domains ([`xcv_interval::Interval`] boxes)
//! are indexed the same way.

use std::collections::HashMap;

/// An ordered set of named variables.
#[derive(Clone, Debug, Default)]
pub struct VarSet {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl VarSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of names.
    pub fn from_names<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        let mut vs = Self::new();
        for n in names {
            vs.intern(&n.into());
        }
        vs
    }

    /// Get or create the index for `name`.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Index of an existing name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Name of an index.
    pub fn name(&self, index: u32) -> Option<&str> {
        self.names.get(index as usize).map(|s| s.as_str())
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The variable expression for an existing name.
    pub fn var(&self, name: &str) -> Option<crate::Expr> {
        self.get(name).map(crate::var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut vs = VarSet::new();
        let a = vs.intern("rs");
        let b = vs.intern("s");
        assert_eq!(vs.intern("rs"), a);
        assert_ne!(a, b);
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn lookup_round_trip() {
        let vs = VarSet::from_names(["rs", "s", "alpha"]);
        assert_eq!(vs.get("s"), Some(1));
        assert_eq!(vs.name(2), Some("alpha"));
        assert_eq!(vs.get("zeta"), None);
        assert_eq!(vs.name(9), None);
    }

    #[test]
    fn var_builder() {
        let vs = VarSet::from_names(["rs"]);
        let e = vs.var("rs").unwrap();
        assert_eq!(e.as_var(), Some(0));
        assert!(vs.var("nope").is_none());
    }
}
