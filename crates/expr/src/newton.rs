//! Shared interval-Newton (Gauss–Seidel) contraction over gradient tapes.
//!
//! This module is the *single implementation* of the rung-1 contractor of the
//! solver's escalation ladder: given, per constraint atom, an interval tape
//! whose root 0 evaluates `g` and whose remaining roots evaluate `∂g/∂axis`,
//! it runs mean-value-form interval Gauss–Seidel sweeps over a box.
//!
//! Both `xcv-solver` (producing `Newton` trace steps) and `xcv-cert`'s
//! solver-free replayer (checking them) call this exact function with the
//! same tape — the certificate carries the tape in portable text form — so
//! the checker's own contraction is bit-identical to the recorded one and a
//! `Newton` step verifies with two subset tests, no tolerance.
//!
//! The row-solve arithmetic itself lives in [`xcv_interval::newton`]; this
//! module owns the sweep/atom iteration order, which is part of the
//! certificate contract: changing it invalidates recorded steps.

use crate::IntervalTape;
use xcv_interval::newton::{axis_offset, gauss_seidel_axis, grad_usable};
use xcv_interval::Interval;

/// Gain threshold below which further sweeps are cut off (matches the HC4
/// contractor's fixpoint threshold).
const SWEEP_GAIN_FLOOR: f64 = 0.05;

/// One constraint atom's Newton data: a gradient tape and the closed allowed
/// set of its relation.
#[derive(Debug, Clone, Copy)]
pub struct NewtonAtom<'a> {
    /// Tape with roots `[g, ∂g/∂axis…]`.
    pub tape: &'a IntervalTape,
    /// `(axis, root)` pairs: gradient root index (into the tape's root list)
    /// per variable axis, in ascending axis order.
    pub grads: &'a [(u32, u32)],
    /// Closed allowed set of the atom's relation (`g ∈ allowed`).
    pub allowed: Interval,
}

/// Reusable buffers for [`newton_contract`] — no allocation per box after
/// warm-up.
#[derive(Debug, Default)]
pub struct NewtonScratch {
    vals: Vec<Interval>,
    point: Vec<Interval>,
    before: Vec<Interval>,
    grads: Vec<(usize, Interval)>,
    offsets: Vec<Interval>,
}

/// Relative contraction gain between two equal-length boxes (max over axes).
/// Slice twin of the solver's `improvement`; the certificate replayer uses it
/// to reproduce the solver's sweep cutoff exactly.
pub fn improvement(before: &[Interval], after: &[Interval]) -> f64 {
    let mut best: f64 = 0.0;
    for (b, a) in before.iter().zip(after) {
        let wb = b.width();
        let wa = a.width();
        if wb > 0.0 && wb.is_finite() {
            best = best.max((wb - wa) / wb);
        } else if wb.is_infinite() && wa.is_finite() {
            best = 1.0;
        }
    }
    best
}

/// Run up to `sweeps` interval Gauss–Seidel sweeps of every atom over `dims`,
/// contracting in place. Per atom and sweep, the mean-value *enclosure*
/// `g(m) + Σⱼ ∂g/∂xⱼ(X)·(Xⱼ − mⱼ)` is tested against the allowed set first —
/// it is first-order tight where the natural extension suffers dependency
/// blow-up, and it prunes even when every gradient straddles zero (where the
/// row solves are powerless). Returns `false` when the enclosure test or
/// some row solve proves the box has no solution (the caller may prune);
/// `true` otherwise, with `dims` tightened (never widened, never discarding
/// a solution of the constraints).
///
/// Atoms whose gradient axes fall outside `dims` are skipped whole (their
/// mean-value form carries no information for this box), as are atoms whose
/// midpoint evaluation is empty (midpoint outside the natural domain).
pub fn newton_contract(
    atoms: &[NewtonAtom<'_>],
    dims: &mut [Interval],
    sweeps: usize,
    scratch: &mut NewtonScratch,
) -> bool {
    let ndim = dims.len();
    for _ in 0..sweeps {
        scratch.before.clear();
        scratch.before.extend_from_slice(dims);
        for atom in atoms {
            if atom.grads.iter().any(|&(axis, _)| axis as usize >= ndim) {
                continue;
            }
            let vals = &mut scratch.vals;
            vals.resize(atom.tape.len(), Interval::ENTIRE);
            // g(m): evaluate over the point box at the current midpoint.
            scratch.point.clear();
            scratch
                .point
                .extend(dims.iter().map(|d| Interval::point(d.midpoint())));
            atom.tape.forward(&scratch.point, vals);
            let g_m = vals[atom.tape.root_slot(0) as usize];
            if g_m.is_empty() {
                continue;
            }
            // Gradient ranges over the full box.
            atom.tape.forward(dims, vals);
            scratch.grads.clear();
            scratch.grads.extend(atom.grads.iter().map(|&(axis, r)| {
                (
                    axis as usize,
                    vals[atom.tape.root_slot(r as usize) as usize],
                )
            }));
            scratch.offsets.clear();
            for &(v, g) in scratch.grads.iter() {
                scratch
                    .offsets
                    .push(axis_offset(&g, &dims[v], scratch.point[v].lo));
            }
            // Mean-value enclosure infeasibility: g(X) ⊆ g(m) + Σⱼ offsetⱼ;
            // if that misses the allowed set entirely, the box has no
            // solution of this atom.
            let mut enclosure = g_m;
            for off in scratch.offsets.iter() {
                enclosure = enclosure.add(off);
            }
            if enclosure.intersect(&atom.allowed).is_empty() {
                return false;
            }
            for k in 0..scratch.grads.len() {
                let (v, grad) = scratch.grads[k];
                if !grad_usable(&grad) {
                    continue;
                }
                // rest = g(m) + Σ_{j≠k} offsets[j]
                let mut rest = g_m;
                for (j, off) in scratch.offsets.iter().enumerate() {
                    if j != k {
                        rest = rest.add(off);
                    }
                }
                let newdom =
                    gauss_seidel_axis(&dims[v], scratch.point[v].lo, &grad, &rest, &atom.allowed);
                if newdom.is_empty() {
                    return false;
                }
                dims[v] = newdom;
            }
        }
        if improvement(&scratch.before, dims) < SWEEP_GAIN_FLOOR {
            break;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{var, IntervalTape};
    use xcv_interval::interval;

    fn atom_tape(e: &crate::Expr) -> (IntervalTape, Vec<(u32, u32)>) {
        let mut roots = vec![e.clone()];
        let mut grads = Vec::new();
        for v in e.free_vars() {
            grads.push((v, roots.len() as u32));
            roots.push(e.diff(v));
        }
        (IntervalTape::compile(&roots), grads)
    }

    #[test]
    fn contracts_quadratic_root() {
        // x² − 2 = 0 over [1, 2]: Newton should tighten around √2.
        let e = var(0).powi(2) - 2.0;
        let (tape, grads) = atom_tape(&e);
        let atoms = [NewtonAtom {
            tape: &tape,
            grads: &grads,
            allowed: interval(0.0, 0.0),
        }];
        let mut dims = vec![interval(1.0, 2.0)];
        let mut s = NewtonScratch::default();
        assert!(newton_contract(&atoms, &mut dims, 4, &mut s));
        assert!(dims[0].contains(std::f64::consts::SQRT_2));
        assert!(dims[0].width() < 0.5);
    }

    #[test]
    fn proves_infeasible() {
        // x + 10 ≤ 0 over [0, 1]: impossible, one sweep proves it.
        let e = var(0) + 10.0;
        let (tape, grads) = atom_tape(&e);
        let atoms = [NewtonAtom {
            tape: &tape,
            grads: &grads,
            allowed: interval(f64::NEG_INFINITY, 0.0),
        }];
        let mut dims = vec![interval(0.0, 1.0)];
        let mut s = NewtonScratch::default();
        assert!(!newton_contract(&atoms, &mut dims, 1, &mut s));
    }

    #[test]
    fn deterministic_and_idempotent_under_replay() {
        // Same tape, same box, same sweep count → bitwise-identical result
        // (the property the certificate checker relies on).
        let e = (var(0).powi(3) - var(1)) + 0.25;
        let (tape, grads) = atom_tape(&e);
        let atoms = [NewtonAtom {
            tape: &tape,
            grads: &grads,
            allowed: interval(0.0, 0.0),
        }];
        let run = || {
            let mut dims = vec![interval(-1.0, 1.0), interval(-0.5, 0.5)];
            let mut s = NewtonScratch::default();
            let ok = newton_contract(&atoms, &mut dims, 3, &mut s);
            (ok, dims)
        };
        let (ok1, d1) = run();
        let (ok2, d2) = run();
        assert_eq!(ok1, ok2);
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.lo.to_bits(), b.lo.to_bits());
            assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        }
    }
}
