//! Flat interval tape: the compile-once backend for interval evaluation and
//! HC4-revise contraction.
//!
//! [`crate::IntervalEnv`] walks the expression DAG through `Arc` handles and
//! `HashMap` slot maps — fine for one-shot evaluation, ruinous when the
//! δ-complete solver revisits the same formula on thousands of sub-boxes.
//! [`IntervalTape`] lowers one or more rooted DAGs *once* into a dense,
//! `Vec`-indexed program (children always precede parents; operands are plain
//! `u32` slot indices) and then runs every pass over a caller-owned slot file:
//!
//! * [`IntervalTape::forward`] — natural interval extension of every node;
//! * [`IntervalTape::forward_meet`] — re-tighten parents from narrowed
//!   children (between HC4 sweeps), intersecting in place;
//! * [`IntervalTape::backward`] — one reverse sweep of the HC4 inverse rules,
//!   contracting child enclosures in place (a no-op where no cheap inverse
//!   exists — always sound).
//!
//! The tape itself is immutable after compilation and holds no interning
//! `Arc`s, so it is `Send + Sync` and can be shared across worker threads,
//! each bringing its own scratch slot file ([`IntervalTape::scratch`]).

use crate::eval::{lower_dag, Instr};
use crate::node::Expr;
use xcv_interval::{round, Interval};

/// A compiled, shareable interval program over one or more expression roots.
#[derive(Debug, Clone)]
pub struct IntervalTape {
    code: Vec<Instr>,
    /// Slot of each root, in the order given to [`IntervalTape::compile`].
    roots: Vec<u32>,
    /// `(slot, variable id)` for every variable node.
    var_slots: Vec<(u32, u32)>,
}

impl IntervalTape {
    /// Lower the merged DAG of `roots` into a flat program. Nodes shared
    /// between roots are lowered once. The lowering itself is
    /// [`crate::eval::lower_dag`], shared with the f64 [`crate::Tape`].
    pub fn compile(roots: &[Expr]) -> IntervalTape {
        let mut lowered = lower_dag(roots);
        // Fold constant-only subtrees into their (outward-rounded) interval
        // values and drop the dead slots: differentiation leaves plenty of
        // `exp`/`ln`/`pow`-of-constant chains the smart constructors keep
        // symbolic, and every surviving slot is re-evaluated on every box.
        crate::eval::fold_constants_interval(&mut lowered);
        crate::eval::compact(&mut lowered);
        IntervalTape {
            code: lowered.code,
            roots: lowered.roots,
            var_slots: lowered.var_slots,
        }
    }

    /// Number of slots (= distinct DAG nodes across all roots).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Slot of the `i`-th compiled root.
    pub fn root_slot(&self, i: usize) -> u32 {
        self.roots[i]
    }

    /// `(slot, variable id)` of every variable node, in program order.
    pub fn var_slots(&self) -> &[(u32, u32)] {
        &self.var_slots
    }

    /// A slot file sized for this tape (reuse across boxes and passes).
    pub fn scratch(&self) -> Vec<Interval> {
        vec![Interval::ENTIRE; self.code.len()]
    }

    /// Forward pass: overwrite every slot with the natural interval extension
    /// given per-variable `domains` (indexed by variable id; missing
    /// variables read as ENTIRE).
    pub fn forward(&self, domains: &[Interval], vals: &mut [Interval]) {
        debug_assert_eq!(vals.len(), self.code.len());
        for (i, instr) in self.code.iter().enumerate() {
            vals[i] = match *instr {
                Instr::Const(c) => Interval::point(c),
                Instr::IConst(v) => v,
                Instr::Var(v) => domains.get(v as usize).copied().unwrap_or(Interval::ENTIRE),
                op => eval_op(op, vals),
            };
        }
    }

    /// Re-run the forward pass, *intersecting* each non-leaf slot with its
    /// recomputed value (between HC4 sweeps). Leaves keep their current —
    /// possibly contracted — enclosures.
    pub fn forward_meet(&self, vals: &mut [Interval]) {
        debug_assert_eq!(vals.len(), self.code.len());
        for (i, instr) in self.code.iter().enumerate() {
            match *instr {
                Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {}
                op => {
                    let fresh = eval_op(op, vals);
                    vals[i] = vals[i].intersect(&fresh);
                }
            }
        }
    }

    /// One reverse-topological HC4 backward sweep over the slot file,
    /// contracting children through the inverse of each operation. Returns
    /// `false` when some slot is proven empty (no solution in the box).
    ///
    /// Soundness: every rule computes a *superset* of the child values
    /// consistent with the parent's current enclosure; operations without a
    /// cheap inverse (`sin`, `cos`, parts of `pow`) do not contract.
    pub fn backward(&self, vals: &mut [Interval]) -> bool {
        debug_assert_eq!(vals.len(), self.code.len());
        for i in (0..self.code.len()).rev() {
            let d = vals[i];
            if d.is_empty() {
                return false;
            }
            match self.code[i] {
                Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {}
                Instr::Add(a, b) => {
                    let (ca, cb) = (vals[a as usize], vals[b as usize]);
                    if !meet(vals, a, d.sub(&cb)) || !meet(vals, b, d.sub(&ca)) {
                        return false;
                    }
                }
                Instr::Mul(a, b) => {
                    let (ca, cb) = (vals[a as usize], vals[b as usize]);
                    if !meet(vals, a, d.div(&cb)) || !meet(vals, b, d.div(&ca)) {
                        return false;
                    }
                }
                Instr::Div(a, b) => {
                    let (ca, cb) = (vals[a as usize], vals[b as usize]);
                    if !meet(vals, a, d.mul(&cb)) || !meet(vals, b, ca.div(&d)) {
                        return false;
                    }
                }
                Instr::Neg(a) => {
                    if !meet(vals, a, d.neg()) {
                        return false;
                    }
                }
                Instr::PowI(a, n) => {
                    if !backward_powi(vals, a, n, d) {
                        return false;
                    }
                }
                Instr::Pow(a, b) => {
                    let (ca, cb) = (vals[a as usize], vals[b as usize]);
                    // a^b with a > 0 implies node > 0.
                    if ca.certainly_gt(0.0) {
                        let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                        if dpos.is_empty() {
                            return false;
                        }
                        let ld = dpos.ln();
                        if !ld.is_empty() {
                            let la = ca.ln();
                            if !meet(vals, a, ld.div(&cb).exp()) {
                                return false;
                            }
                            if !la.is_empty() && !meet(vals, b, ld.div(&la)) {
                                return false;
                            }
                        }
                    }
                }
                Instr::Exp(a) => {
                    // exp(a) = d  =>  a = ln(d); d.hi <= 0 is infeasible.
                    let pre = d.ln();
                    if pre.is_empty() || !meet(vals, a, pre) {
                        return false;
                    }
                }
                Instr::Ln(a) => {
                    if !meet(vals, a, d.exp()) {
                        return false;
                    }
                }
                Instr::Sqrt(a) => {
                    let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                    if dpos.is_empty() {
                        return false;
                    }
                    if !meet(vals, a, dpos.powi(2)) {
                        return false;
                    }
                }
                Instr::Cbrt(a) => {
                    if !meet(vals, a, d.powi(3)) {
                        return false;
                    }
                }
                Instr::Atan(a) => {
                    let range =
                        Interval::new(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
                    let dc = d.intersect(&range);
                    if dc.is_empty() {
                        return false;
                    }
                    // tan blows up approaching ±π/2; treat anything within
                    // 1e-4 of the pole as unbounded.
                    let near_pole = std::f64::consts::FRAC_PI_2 - 1e-4;
                    let lo = if dc.lo <= -near_pole {
                        f64::NEG_INFINITY
                    } else {
                        round::libm_lo(dc.lo.tan())
                    };
                    let hi = if dc.hi >= near_pole {
                        f64::INFINITY
                    } else {
                        round::libm_hi(dc.hi.tan())
                    };
                    if !meet(vals, a, Interval::checked(lo, hi)) {
                        return false;
                    }
                }
                Instr::Sin(_) | Instr::Cos(_) => {
                    // Periodic inverse: no contraction (sound no-op), but an
                    // enclosure disjoint from [-1, 1] is infeasible.
                    if d.intersect(&Interval::new(-1.0, 1.0)).is_empty() {
                        return false;
                    }
                }
                Instr::Tanh(a) => {
                    let dc = d.intersect(&Interval::new(-1.0, 1.0));
                    if dc.is_empty() {
                        return false;
                    }
                    let atanh = |x: f64, up: bool| -> f64 {
                        if x <= -1.0 {
                            f64::NEG_INFINITY
                        } else if x >= 1.0 {
                            f64::INFINITY
                        } else {
                            let v = 0.5 * ((1.0 + x) / (1.0 - x)).ln();
                            if up {
                                round::libm_hi(v)
                            } else {
                                round::libm_lo(v)
                            }
                        }
                    };
                    if !meet(
                        vals,
                        a,
                        Interval::checked(atanh(dc.lo, false), atanh(dc.hi, true)),
                    ) {
                        return false;
                    }
                }
                Instr::Abs(a) => {
                    let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                    if dpos.is_empty() {
                        return false;
                    }
                    let ca = vals[a as usize];
                    let pre = ca.intersect(&dpos).hull(&ca.intersect(&dpos.neg()));
                    if pre.is_empty() {
                        return false;
                    }
                    vals[a as usize] = pre;
                }
                Instr::Min(a, b) => {
                    let (ca, cb) = (vals[a as usize], vals[b as usize]);
                    // Both operands are >= min's lower bound.
                    let floor = Interval::new(d.lo, f64::INFINITY);
                    let mut na = ca.intersect(&floor);
                    let mut nb = cb.intersect(&floor);
                    // If one operand is certainly above the node's range, the
                    // other must equal the node.
                    if cb.lo > d.hi {
                        na = na.intersect(&d);
                    }
                    if ca.lo > d.hi {
                        nb = nb.intersect(&d);
                    }
                    if na.is_empty() || nb.is_empty() {
                        return false;
                    }
                    vals[a as usize] = na;
                    vals[b as usize] = nb;
                }
                Instr::Max(a, b) => {
                    let (ca, cb) = (vals[a as usize], vals[b as usize]);
                    let ceil = Interval::new(f64::NEG_INFINITY, d.hi);
                    let mut na = ca.intersect(&ceil);
                    let mut nb = cb.intersect(&ceil);
                    if cb.hi < d.lo {
                        na = na.intersect(&d);
                    }
                    if ca.hi < d.lo {
                        nb = nb.intersect(&d);
                    }
                    if na.is_empty() || nb.is_empty() {
                        return false;
                    }
                    vals[a as usize] = na;
                    vals[b as usize] = nb;
                }
                Instr::LambertW(a) => {
                    // W(a) = d  =>  a = d e^d (monotone on our domain).
                    if !meet(vals, a, d.mul(&d.exp())) {
                        return false;
                    }
                }
                Instr::Ite(c, t, e) => {
                    let cc = vals[c as usize];
                    if cc.certainly_ge(0.0) {
                        if !meet(vals, t, d) {
                            return false;
                        }
                    } else if cc.certainly_lt(0.0) {
                        if !meet(vals, e, d) {
                            return false;
                        }
                    } else {
                        let ct = vals[t as usize];
                        let ce = vals[e as usize];
                        let then_possible = !ct.intersect(&d).is_empty();
                        let else_possible = !ce.intersect(&d).is_empty();
                        match (then_possible, else_possible) {
                            (false, false) => return false,
                            (false, true) => {
                                // cond must be negative; closed meet is sound.
                                if !meet(vals, c, Interval::new(f64::NEG_INFINITY, 0.0))
                                    || !meet(vals, e, d)
                                {
                                    return false;
                                }
                            }
                            (true, false) => {
                                if !meet(vals, c, Interval::new(0.0, f64::INFINITY))
                                    || !meet(vals, t, d)
                                {
                                    return false;
                                }
                            }
                            (true, true) => {}
                        }
                    }
                }
            }
        }
        true
    }
}

/// Forward interval value of one non-leaf instruction from its children
/// (shared with the compile-time constant folder in [`crate::eval`]).
#[inline]
pub(crate) fn eval_op(instr: Instr, vals: &[Interval]) -> Interval {
    let g = |j: u32| vals[j as usize];
    match instr {
        Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {
            unreachable!("leaves handled by callers")
        }
        Instr::Add(a, b) => g(a).add(&g(b)),
        Instr::Mul(a, b) => g(a).mul(&g(b)),
        Instr::Div(a, b) => g(a).div(&g(b)),
        Instr::Neg(a) => g(a).neg(),
        Instr::PowI(a, n) => g(a).powi(n),
        Instr::Pow(a, b) => g(a).powf(&g(b)),
        Instr::Exp(a) => g(a).exp(),
        Instr::Ln(a) => g(a).ln(),
        Instr::Sqrt(a) => g(a).sqrt(),
        Instr::Cbrt(a) => g(a).cbrt(),
        Instr::Atan(a) => g(a).atan(),
        Instr::Sin(a) => g(a).sin(),
        Instr::Cos(a) => g(a).cos(),
        Instr::Tanh(a) => g(a).tanh(),
        Instr::Abs(a) => g(a).abs(),
        Instr::Min(a, b) => g(a).min_i(&g(b)),
        Instr::Max(a, b) => g(a).max_i(&g(b)),
        Instr::LambertW(a) => g(a).lambert_w0(),
        Instr::Ite(c, t, e) => {
            let cc = g(c);
            if cc.is_empty() {
                Interval::EMPTY
            } else if cc.certainly_ge(0.0) {
                g(t)
            } else if cc.certainly_lt(0.0) {
                g(e)
            } else {
                g(t).hull(&g(e))
            }
        }
    }
}

/// Meet the slot with `narrow`; false if proven empty.
#[inline]
fn meet(vals: &mut [Interval], idx: u32, narrow: Interval) -> bool {
    let m = vals[idx as usize].intersect(&narrow);
    vals[idx as usize] = m;
    !m.is_empty()
}

fn backward_powi(vals: &mut [Interval], a: u32, n: i32, d: Interval) -> bool {
    if n == 0 {
        return !d.intersect(&Interval::ONE).is_empty();
    }
    if n < 0 {
        // a^n = 1/a^{-n}: invert the target and recurse on the positive
        // exponent.
        return backward_powi(vals, a, -n, d.recip());
    }
    if n % 2 == 1 {
        meet(vals, a, d.nth_root(n))
    } else {
        let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
        if dpos.is_empty() {
            return false;
        }
        let r = dpos.nth_root(n); // [p, q], p >= 0
        let ca = vals[a as usize];
        let pre = ca.intersect(&r).hull(&ca.intersect(&r.neg()));
        if pre.is_empty() {
            return false;
        }
        vals[a as usize] = pre;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{constant, var, IntervalEnv};
    use xcv_interval::interval;

    #[test]
    fn forward_matches_interval_env() {
        let x = var(0);
        let y = var(1);
        let e = (x.clone() * y.clone() + x.exp()).sqrt() / (y + 2.0);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        let dom = [interval(0.1, 0.9), interval(0.5, 2.0)];
        tape.forward(&dom, &mut vals);
        let want = e.eval_interval(&dom);
        let got = vals[tape.root_slot(0) as usize];
        assert_eq!(got, want);
    }

    #[test]
    fn shared_nodes_lowered_once() {
        let x = var(0);
        let t = x.clone() * x.clone();
        let f = t.clone() + 1.0;
        let g = t.clone() + 2.0;
        let tape = IntervalTape::compile(&[f.clone(), g.clone()]);
        let env = IntervalEnv::new(&[f, g]);
        assert_eq!(tape.len(), env.len());
        assert_eq!(tape.var_slots().len(), 1);
    }

    #[test]
    fn backward_contracts_linear() {
        // root = x - 3; impose root <= 0 by meeting the root slot, then
        // backward: x must drop to <= 3.
        let e = var(0) - 3.0;
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(0.0, 10.0)], &mut vals);
        let root = tape.root_slot(0) as usize;
        vals[root] = vals[root].intersect(&Interval::new(f64::NEG_INFINITY, 0.0));
        assert!(tape.backward(&mut vals));
        let (xslot, v) = tape.var_slots()[0];
        assert_eq!(v, 0);
        assert!(vals[xslot as usize].hi <= 3.0 + 1e-9);
    }

    #[test]
    fn backward_reports_emptiness() {
        // x^2 + 1 <= 0 is infeasible: meeting the root with (-inf, 0] and
        // running backward must prove emptiness.
        let e = var(0).powi(2) + 1.0;
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(-10.0, 10.0)], &mut vals);
        let root = tape.root_slot(0) as usize;
        vals[root] = vals[root].intersect(&Interval::new(f64::NEG_INFINITY, 0.0));
        assert!(vals[root].is_empty() || !tape.backward(&mut vals));
    }

    #[test]
    fn forward_meet_tightens_parents() {
        let e = var(0) + constant(1.0);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(0.0, 4.0)], &mut vals);
        // Narrow the variable slot by hand, then re-tighten the sum.
        let (xslot, _) = tape.var_slots()[0];
        vals[xslot as usize] = interval(0.0, 1.0);
        tape.forward_meet(&mut vals);
        let root = vals[tape.root_slot(0) as usize];
        assert!(root.hi <= 2.0 + 1e-12, "{root:?}");
    }

    #[test]
    fn constant_folding_keeps_enclosures() {
        // exp(2)·x: folded to one interval leaf that still brackets the real
        // e² (an f64 point would not), with the forward value unchanged.
        let e = constant(2.0).exp() * var(0);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let env = IntervalEnv::new(std::slice::from_ref(&e));
        assert!(tape.len() < env.len());
        let mut vals = tape.scratch();
        let dom = [interval(1.0, 1.0)];
        tape.forward(&dom, &mut vals);
        let got = vals[tape.root_slot(0) as usize];
        assert_eq!(got, e.eval_interval(&dom));
        assert!(got.lo <= std::f64::consts::E.powi(2));
        assert!(got.hi >= std::f64::consts::E.powi(2));
        assert!(got.lo < got.hi, "rounding must survive the fold: {got:?}");
    }

    #[test]
    fn constant_folding_backward_still_contracts() {
        // x·sqrt(2) <= 1 over [0, 10]: impose the root bound and contract —
        // x must drop to ~1/√2 with the constant folded away.
        let e = var(0) * constant(2.0).sqrt();
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(0.0, 10.0)], &mut vals);
        let root = tape.root_slot(0) as usize;
        vals[root] = vals[root].intersect(&Interval::new(f64::NEG_INFINITY, 1.0));
        assert!(tape.backward(&mut vals));
        let (xslot, v) = tape.var_slots()[0];
        assert_eq!(v, 0);
        assert!(vals[xslot as usize].hi <= 1.0 / 2f64.sqrt() + 1e-9);
    }

    #[test]
    fn scratch_reuse_across_boxes() {
        let e = var(0).powi(2);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(1.0, 2.0)], &mut vals);
        assert!(vals[tape.root_slot(0) as usize].contains(4.0));
        tape.forward(&[interval(3.0, 4.0)], &mut vals);
        let v = vals[tape.root_slot(0) as usize];
        assert!(v.contains(16.0) && !v.contains(4.0));
    }
}
