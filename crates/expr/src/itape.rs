//! Flat interval tape: the compile-once backend for interval evaluation and
//! HC4-revise contraction.
//!
//! [`crate::IntervalEnv`] walks the expression DAG through `Arc` handles and
//! `HashMap` slot maps — fine for one-shot evaluation, ruinous when the
//! δ-complete solver revisits the same formula on thousands of sub-boxes.
//! [`IntervalTape`] lowers one or more rooted DAGs *once* into a dense,
//! `Vec`-indexed program (children always precede parents; operands are plain
//! `u32` slot indices) and then runs every pass over a caller-owned slot file:
//!
//! * [`IntervalTape::forward`] — natural interval extension of every node;
//! * [`IntervalTape::forward_batch`] — the same forward pass over a
//!   structure-of-arrays slot file holding B boxes at once
//!   (`slots × lanes`, lane-major per slot): one instruction decode serves
//!   every lane, with the inner loops delegated to the slice kernels of
//!   [`xcv_interval::lanes`]. The branch-and-prune frontier search feeds
//!   its `batch_width` boxes through this;
//! * [`IntervalTape::forward_from`] — *dirty-slot* re-evaluation: using the
//!   per-slot variable **dependency bitsets** computed at compile time
//!   ([`IntervalTape::deps`]), recompute only the slots downstream of one
//!   axis. After bisecting axis *k*, a child box differs from its parent
//!   only along *k*, so every slot outside *k*'s dependency cone keeps the
//!   parent's (already computed, bit-identical) enclosure — the
//!   common-subexpression work above the split axis is never redone;
//! * [`IntervalTape::forward_meet`] — re-tighten parents from narrowed
//!   children (between HC4 sweeps), intersecting in place;
//! * [`IntervalTape::backward`] — one reverse sweep of the HC4 inverse rules,
//!   contracting child enclosures in place (a no-op where no cheap inverse
//!   exists — always sound).
//!
//! All the forward variants compute bit-identical slot values for the same
//! box: `forward_batch` applies the identical scalar operations lane by
//! lane, and `forward_from` only skips slots whose inputs are unchanged.
//! Batched solving therefore never changes an outcome, only its cost.
//!
//! Slot files are **write-before-read**: every pass overwrites each slot it
//! touches before reading it, so scratch buffers are reused across boxes
//! verbatim — no per-box reinitialization (to [`Interval::ENTIRE`] or
//! anything else) is ever needed, and none is performed.
//!
//! The tape itself is immutable after compilation and holds no interning
//! `Arc`s, so it is `Send + Sync` and can be shared across worker threads,
//! each bringing its own scratch slot file ([`IntervalTape::scratch`]).

use crate::eval::{lower_dag, Instr};
use crate::node::Expr;
use xcv_interval::{round, Interval};

/// The dependency-mask bit of variable `v`: variables 64 and beyond share a
/// saturated "could be anything" mask, which is always sound (they are only
/// ever *over*-recomputed).
#[inline]
fn var_bit(v: u32) -> u64 {
    if v < 64 {
        1 << v
    } else {
        u64::MAX
    }
}

/// A compiled, shareable interval program over one or more expression roots.
#[derive(Debug, Clone)]
pub struct IntervalTape {
    code: Vec<Instr>,
    /// Slot of each root, in the order given to [`IntervalTape::compile`].
    roots: Vec<u32>,
    /// `(slot, variable id)` for every variable node.
    var_slots: Vec<(u32, u32)>,
    /// Per-slot transitive variable-dependency bitset (bit `v` set when the
    /// slot's value depends on variable `v`; see [`IntervalTape::deps`]).
    deps: Vec<u64>,
}

impl IntervalTape {
    /// Lower the merged DAG of `roots` into a flat program. Nodes shared
    /// between roots are lowered once. The lowering itself is
    /// [`crate::eval::lower_dag`], shared with the f64 [`crate::Tape`].
    pub fn compile(roots: &[Expr]) -> IntervalTape {
        let mut lowered = lower_dag(roots);
        // Fold constant-only subtrees into their (outward-rounded) interval
        // values and drop the dead slots: differentiation leaves plenty of
        // `exp`/`ln`/`pow`-of-constant chains the smart constructors keep
        // symbolic, and every surviving slot is re-evaluated on every box.
        crate::eval::fold_constants_interval(&mut lowered);
        crate::eval::compact(&mut lowered);
        // Dependency bitsets over the folded, compacted program — the same
        // construction the f64 tape's `run_masked` cache uses.
        let deps = crate::eval::compute_deps(&lowered.code);
        IntervalTape {
            code: lowered.code,
            roots: lowered.roots,
            var_slots: lowered.var_slots,
            deps,
        }
    }

    /// Serialize the program into a compact, self-contained text form that
    /// [`IntervalTape::from_portable`] reconstructs exactly — the transport
    /// used by proof certificates, where an *independent* checker re-runs
    /// the interval kernels without access to the expression DAG.
    ///
    /// Format: instructions in program order, `;`-separated, each an opcode
    /// followed by space-separated operands (slot indices, or numeric
    /// literals rendered with Rust's shortest round-trip `Display`, so every
    /// `f64` — interval-constant bounds included — survives bit-exactly);
    /// then `|` and the root slots, `,`-separated. The charset is plain
    /// ASCII with no quotes or backslashes, so the string embeds in
    /// hand-rolled JSON without escaping.
    pub fn to_portable(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.code.len() * 12);
        for (i, instr) in self.code.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            match *instr {
                Instr::Const(c) => {
                    let _ = write!(out, "const {c}");
                }
                Instr::IConst(v) => {
                    let _ = write!(out, "iconst {} {}", v.lo, v.hi);
                }
                Instr::Var(v) => {
                    let _ = write!(out, "var {v}");
                }
                Instr::Add(a, b) => {
                    let _ = write!(out, "add {a} {b}");
                }
                Instr::Mul(a, b) => {
                    let _ = write!(out, "mul {a} {b}");
                }
                Instr::Div(a, b) => {
                    let _ = write!(out, "div {a} {b}");
                }
                Instr::Neg(a) => {
                    let _ = write!(out, "neg {a}");
                }
                Instr::PowI(a, n) => {
                    let _ = write!(out, "powi {a} {n}");
                }
                Instr::Pow(a, b) => {
                    let _ = write!(out, "pow {a} {b}");
                }
                Instr::Exp(a) => {
                    let _ = write!(out, "exp {a}");
                }
                Instr::Ln(a) => {
                    let _ = write!(out, "ln {a}");
                }
                Instr::Sqrt(a) => {
                    let _ = write!(out, "sqrt {a}");
                }
                Instr::Cbrt(a) => {
                    let _ = write!(out, "cbrt {a}");
                }
                Instr::Atan(a) => {
                    let _ = write!(out, "atan {a}");
                }
                Instr::Sin(a) => {
                    let _ = write!(out, "sin {a}");
                }
                Instr::Cos(a) => {
                    let _ = write!(out, "cos {a}");
                }
                Instr::Tanh(a) => {
                    let _ = write!(out, "tanh {a}");
                }
                Instr::Abs(a) => {
                    let _ = write!(out, "abs {a}");
                }
                Instr::Min(a, b) => {
                    let _ = write!(out, "min {a} {b}");
                }
                Instr::Max(a, b) => {
                    let _ = write!(out, "max {a} {b}");
                }
                Instr::LambertW(a) => {
                    let _ = write!(out, "lambertw {a}");
                }
                Instr::Ite(c, t, e) => {
                    let _ = write!(out, "ite {c} {t} {e}");
                }
            }
        }
        out.push('|');
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{r}");
        }
        out
    }

    /// Reconstruct a tape serialized by [`IntervalTape::to_portable`],
    /// revalidating the structural invariants the interpreters rely on
    /// (operands strictly precede their slot; roots are in range). Variable
    /// slots are rebuilt from the `var` instructions in program order and
    /// the dependency bitsets recomputed, so the result behaves identically
    /// to the originally compiled tape.
    pub fn from_portable(text: &str) -> Result<IntervalTape, String> {
        let (code_part, roots_part) = text
            .split_once('|')
            .ok_or_else(|| "portable tape: missing '|' root separator".to_string())?;
        let mut code = Vec::new();
        let mut var_slots = Vec::new();
        for (i, tok) in code_part.split(';').enumerate() {
            let mut words = tok.split_whitespace();
            let op = words
                .next()
                .ok_or_else(|| format!("portable tape: empty instruction at slot {i}"))?;
            let mut num = |what: &str| -> Result<f64, String> {
                words
                    .next()
                    .ok_or_else(|| format!("portable tape: slot {i}: missing {what}"))?
                    .parse::<f64>()
                    .map_err(|e| format!("portable tape: slot {i}: bad {what}: {e}"))
            };
            let instr = match op {
                "const" => {
                    let c = num("constant")?;
                    if c.is_nan() {
                        return Err(format!("portable tape: slot {i}: NaN constant"));
                    }
                    Instr::Const(c)
                }
                "iconst" => {
                    let lo = num("lower bound")?;
                    let hi = num("upper bound")?;
                    Instr::IConst(Interval::checked(lo, hi))
                }
                _ => {
                    let mut slot_args = [0u32; 3];
                    let mut n_args = 0usize;
                    let mut powi_exp = 0i32;
                    let (want, is_powi, is_var) = match op {
                        "var" => (1, false, true),
                        "neg" | "exp" | "ln" | "sqrt" | "cbrt" | "atan" | "sin" | "cos"
                        | "tanh" | "abs" | "lambertw" => (1, false, false),
                        "powi" => (2, true, false),
                        "add" | "mul" | "div" | "pow" | "min" | "max" => (2, false, false),
                        "ite" => (3, false, false),
                        other => {
                            return Err(format!("portable tape: slot {i}: unknown op {other}"))
                        }
                    };
                    for k in 0..want {
                        let w = words
                            .next()
                            .ok_or_else(|| format!("portable tape: slot {i}: missing operand"))?;
                        if is_powi && k == 1 {
                            powi_exp = w.parse().map_err(|e| {
                                format!("portable tape: slot {i}: bad exponent: {e}")
                            })?;
                        } else {
                            slot_args[n_args] = w.parse().map_err(|e| {
                                format!("portable tape: slot {i}: bad operand: {e}")
                            })?;
                            n_args += 1;
                        }
                    }
                    if !is_var {
                        for &a in &slot_args[..n_args] {
                            if a as usize >= i {
                                return Err(format!(
                                    "portable tape: slot {i}: operand {a} does not precede it"
                                ));
                            }
                        }
                    }
                    let [a, b, c] = slot_args;
                    match op {
                        "var" => {
                            var_slots.push((i as u32, a));
                            Instr::Var(a)
                        }
                        "add" => Instr::Add(a, b),
                        "mul" => Instr::Mul(a, b),
                        "div" => Instr::Div(a, b),
                        "neg" => Instr::Neg(a),
                        "powi" => Instr::PowI(a, powi_exp),
                        "pow" => Instr::Pow(a, b),
                        "exp" => Instr::Exp(a),
                        "ln" => Instr::Ln(a),
                        "sqrt" => Instr::Sqrt(a),
                        "cbrt" => Instr::Cbrt(a),
                        "atan" => Instr::Atan(a),
                        "sin" => Instr::Sin(a),
                        "cos" => Instr::Cos(a),
                        "tanh" => Instr::Tanh(a),
                        "abs" => Instr::Abs(a),
                        "min" => Instr::Min(a, b),
                        "max" => Instr::Max(a, b),
                        "lambertw" => Instr::LambertW(a),
                        "ite" => Instr::Ite(a, b, c),
                        _ => unreachable!("op validated above"),
                    }
                }
            };
            if words.next().is_some() {
                return Err(format!("portable tape: slot {i}: trailing operands"));
            }
            code.push(instr);
        }
        let mut roots = Vec::new();
        for r in roots_part.split(',').filter(|s| !s.is_empty()) {
            let slot: u32 = r
                .parse()
                .map_err(|e| format!("portable tape: bad root slot: {e}"))?;
            if slot as usize >= code.len() {
                return Err(format!("portable tape: root {slot} out of range"));
            }
            roots.push(slot);
        }
        if roots.is_empty() {
            return Err("portable tape: no roots".to_string());
        }
        let deps = crate::eval::compute_deps(&code);
        Ok(IntervalTape {
            code,
            roots,
            var_slots,
            deps,
        })
    }

    /// Number of slots (= distinct DAG nodes across all roots).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Slot of the `i`-th compiled root.
    pub fn root_slot(&self, i: usize) -> u32 {
        self.roots[i]
    }

    /// Number of compiled roots.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// `(slot, variable id)` of every variable node, in program order.
    pub fn var_slots(&self) -> &[(u32, u32)] {
        &self.var_slots
    }

    /// The per-slot variable-dependency bitsets, computed once at compile
    /// time: bit `v` of `deps()[i]` is set when slot `i`'s value depends
    /// (transitively) on variable `v`. Variables `>= 64` saturate to the
    /// all-ones mask — sound, since a saturated slot is only ever
    /// re-evaluated more than necessary.
    pub fn deps(&self) -> &[u64] {
        &self.deps
    }

    /// The union of every slot's dependency mask — the variables this
    /// program actually computes with (post constant folding).
    pub fn var_mask(&self) -> u64 {
        self.var_slots.iter().fold(0, |m, &(_, v)| m | var_bit(v))
    }

    /// A slot file sized for this tape. Reuse it across boxes and passes:
    /// every pass is write-before-read, so the previous box's values never
    /// leak and no reinitialization between boxes is needed (the fill value
    /// here only seeds never-written slots of *partial* passes, which read
    /// their stale value by design — see [`IntervalTape::forward_from`]).
    pub fn scratch(&self) -> Vec<Interval> {
        vec![Interval::ENTIRE; self.code.len()]
    }

    /// A structure-of-arrays slot file for `width`-lane batched passes
    /// (`slots × width`, lane-major within each slot: lane `j` of slot `i`
    /// lives at `i * width + j`). Reuse across batches exactly like
    /// [`IntervalTape::scratch`].
    pub fn scratch_batch(&self, width: usize) -> Vec<Interval> {
        vec![Interval::ENTIRE; self.code.len() * width]
    }

    /// Forward pass: overwrite every slot with the natural interval extension
    /// given per-variable `domains` (indexed by variable id; missing
    /// variables read as ENTIRE).
    pub fn forward(&self, domains: &[Interval], vals: &mut [Interval]) {
        debug_assert_eq!(vals.len(), self.code.len());
        for (i, instr) in self.code.iter().enumerate() {
            vals[i] = match *instr {
                Instr::Const(c) => Interval::point(c),
                Instr::IConst(v) => v,
                Instr::Var(v) => domains.get(v as usize).copied().unwrap_or(Interval::ENTIRE),
                op => eval_op(op, vals),
            };
        }
    }

    /// Dirty-slot forward pass: recompute only the slots whose dependency
    /// cone contains `axis`, leaving every other slot untouched.
    ///
    /// Precondition: `vals` holds the forward image of a box that agrees
    /// with `domains` on every variable except (possibly) `axis` — i.e. the
    /// parent's slot file after bisecting `axis`. Under that precondition
    /// the result is bit-identical to a full [`IntervalTape::forward`] over
    /// `domains`: skipped slots have unchanged inputs, and recomputed slots
    /// read either recomputed or unchanged operands, in program order.
    pub fn forward_from(&self, axis: u32, domains: &[Interval], vals: &mut [Interval]) {
        self.forward_masked(var_bit(axis), domains, vals);
    }

    /// [`IntervalTape::forward_from`] generalized to a set of axes:
    /// recompute the slots whose dependency set intersects `mask`. The
    /// precondition generalizes accordingly — `vals` must be a valid
    /// forward image of a box agreeing with `domains` outside `mask`.
    /// (Constant slots are box-independent and are never recomputed, so
    /// this never substitutes for a first full [`IntervalTape::forward`];
    /// batch lanes marked `u64::MAX` get that in
    /// [`IntervalTape::forward_batch`].)
    pub fn forward_masked(&self, mask: u64, domains: &[Interval], vals: &mut [Interval]) {
        debug_assert_eq!(vals.len(), self.code.len());
        for (i, instr) in self.code.iter().enumerate() {
            if self.deps[i] & mask == 0 {
                continue;
            }
            vals[i] = match *instr {
                Instr::Const(c) => Interval::point(c),
                Instr::IConst(v) => v,
                Instr::Var(v) => domains.get(v as usize).copied().unwrap_or(Interval::ENTIRE),
                op => eval_op(op, vals),
            };
        }
    }

    /// How many slots a dirty `mask` would recompute.
    pub fn cone_count(&self, mask: u64) -> usize {
        self.deps.iter().filter(|&&d| d & mask != 0).count()
    }

    /// Weighted recompute cost of a dirty `mask`: the sum of per-
    /// instruction forward weights over its cone. Slot counts alone
    /// mislead — one `exp` costs an order of magnitude more than an `add`
    /// — so the batched solver's snapshot-refresh decision weighs cones
    /// with this instead.
    pub fn cone_cost(&self, mask: u64) -> f64 {
        self.code
            .iter()
            .zip(&self.deps)
            .filter(|&(_, &d)| d & mask != 0)
            .map(|(&c, _)| instr_weight(c))
            .sum()
    }

    /// Batched forward pass over a structure-of-arrays slot file
    /// (`slots × width`, lane-major per slot — see
    /// [`IntervalTape::scratch_batch`]). `domains[j]` is lane `j`'s box;
    /// `dirty[j]` selects what lane `j` recomputes:
    ///
    /// * `u64::MAX` — a full forward pass for the lane (every slot,
    ///   constants included); the lane's column may hold garbage;
    /// * any other mask — dirty-slot re-evaluation: only slots whose
    ///   dependency set intersects the mask are recomputed, so the lane's
    ///   column must already hold a forward image valid outside the mask
    ///   (the [`IntervalTape::forward_from`] precondition, lifted to masks).
    ///
    /// When every lane wants a slot, the operation runs as one
    /// [`xcv_interval::lanes`] slice kernel over the contiguous lane block;
    /// otherwise the needing lanes are evaluated individually. Either way
    /// each lane's values are bit-identical to a scalar
    /// [`IntervalTape::forward`] over its box.
    pub fn forward_batch(
        &self,
        width: usize,
        domains: &[&[Interval]],
        dirty: &[u64],
        vals: &mut [Interval],
    ) {
        assert_eq!(domains.len(), width, "one domain slice per lane");
        assert_eq!(dirty.len(), width, "one dirty mask per lane");
        assert_eq!(vals.len(), self.code.len() * width, "SoA slot file size");
        if width == 0 {
            return;
        }
        for (i, &instr) in self.code.iter().enumerate() {
            let d = self.deps[i];
            let need = |j: usize| dirty[j] == u64::MAX || d & dirty[j] != 0;
            // `split_at_mut` keeps this safe: operands always precede the
            // output slot, so their columns live entirely in `head`.
            let (head, tail) = vals.split_at_mut(i * width);
            let out = &mut tail[..width];
            match instr {
                Instr::Const(c) => {
                    for (j, o) in out.iter_mut().enumerate() {
                        if need(j) {
                            *o = Interval::point(c);
                        }
                    }
                }
                Instr::IConst(v) => {
                    for (j, o) in out.iter_mut().enumerate() {
                        if need(j) {
                            *o = v;
                        }
                    }
                }
                Instr::Var(v) => {
                    for (j, o) in out.iter_mut().enumerate() {
                        if need(j) {
                            *o = domains[j]
                                .get(v as usize)
                                .copied()
                                .unwrap_or(Interval::ENTIRE);
                        }
                    }
                }
                op => {
                    // Lanes with equal dirty masks form contiguous runs —
                    // the engine pushes, selects, and seeds sibling boxes
                    // together — so even the partial-recompute path runs as
                    // slice kernels over each needing run (and a uniform
                    // batch degenerates to one full-width kernel).
                    let mut g0 = 0;
                    while g0 < width {
                        let m = dirty[g0];
                        let mut g1 = g0 + 1;
                        while g1 < width && dirty[g1] == m {
                            g1 += 1;
                        }
                        if m == u64::MAX || d & m != 0 {
                            if g1 - g0 == 1 {
                                out[g0] = eval_op_with(op, |s| head[s as usize * width + g0]);
                            } else {
                                batch_op(
                                    op,
                                    |s| {
                                        let base = s as usize * width;
                                        &head[base + g0..base + g1]
                                    },
                                    &mut out[g0..g1],
                                );
                            }
                        }
                        g0 = g1;
                    }
                }
            }
        }
    }

    /// Re-run the forward pass, *intersecting* each non-leaf slot with its
    /// recomputed value (between HC4 sweeps). Leaves keep their current —
    /// possibly contracted — enclosures.
    pub fn forward_meet(&self, vals: &mut [Interval]) {
        debug_assert_eq!(vals.len(), self.code.len());
        for (i, instr) in self.code.iter().enumerate() {
            match *instr {
                Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {}
                op => {
                    let fresh = eval_op(op, vals);
                    vals[i] = vals[i].intersect(&fresh);
                }
            }
        }
    }

    /// [`IntervalTape::forward_meet`] over the live lanes of a
    /// structure-of-arrays slot file (same layout as
    /// [`IntervalTape::forward_batch`]): one instruction decode per slot,
    /// every live lane re-tightened. Lane-by-lane identical to the scalar
    /// pass.
    pub fn forward_meet_batch(&self, width: usize, alive: &[bool], vals: &mut [Interval]) {
        debug_assert_eq!(alive.len(), width);
        debug_assert_eq!(vals.len(), self.code.len() * width);
        for (i, &instr) in self.code.iter().enumerate() {
            match instr {
                Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {}
                op => {
                    let (head, tail) = vals.split_at_mut(i * width);
                    let out = &mut tail[..width];
                    for (j, o) in out.iter_mut().enumerate() {
                        if alive[j] {
                            let fresh = eval_op_with(op, |s| head[s as usize * width + j]);
                            *o = o.intersect(&fresh);
                        }
                    }
                }
            }
        }
    }

    /// One reverse-topological HC4 backward sweep over the slot file,
    /// contracting children through the inverse of each operation. Returns
    /// `false` when some slot is proven empty (no solution in the box).
    ///
    /// Soundness: every rule computes a *superset* of the child values
    /// consistent with the parent's current enclosure; operations without a
    /// cheap inverse (`sin`, `cos`, parts of `pow`) do not contract.
    pub fn backward(&self, vals: &mut [Interval]) -> bool {
        debug_assert_eq!(vals.len(), self.code.len());
        for i in (0..self.code.len()).rev() {
            if !backward_step(i as u32, self.code[i], vals) {
                return false;
            }
        }
        true
    }

    /// [`IntervalTape::backward`] over the live lanes of a
    /// structure-of-arrays slot file: one instruction decode per slot, the
    /// identical inverse rule ([`backward_step`] is shared code, generic
    /// over the slot layout) applied to every live lane. A lane whose sweep
    /// proves emptiness has its `alive` flag cleared — the caller reads the
    /// transitions; the sweep itself continues for the other lanes.
    pub fn backward_batch(&self, width: usize, alive: &mut [bool], vals: &mut [Interval]) {
        debug_assert_eq!(alive.len(), width);
        debug_assert_eq!(vals.len(), self.code.len() * width);
        for i in (0..self.code.len()).rev() {
            let instr = self.code[i];
            for (j, live) in alive.iter_mut().enumerate() {
                if *live {
                    let mut lane = LaneView {
                        vals,
                        width,
                        lane: j,
                    };
                    if !backward_step(i as u32, instr, &mut lane) {
                        *live = false;
                    }
                }
            }
        }
    }
}

/// Rough relative forward-evaluation cost of one instruction, in "adds"
/// (libm transcendentals dominate; rounding steps are cheap). Only ratios
/// matter — see [`IntervalTape::cone_cost`].
fn instr_weight(instr: Instr) -> f64 {
    match instr {
        Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => 1.0,
        Instr::Add(..) | Instr::Neg(_) | Instr::Abs(_) | Instr::Min(..) | Instr::Max(..) => 2.0,
        Instr::Mul(..) | Instr::PowI(..) | Instr::Ite(..) => 4.0,
        Instr::Div(..) | Instr::Sqrt(_) | Instr::Cbrt(_) => 6.0,
        Instr::Exp(_)
        | Instr::Ln(_)
        | Instr::Pow(..)
        | Instr::Atan(_)
        | Instr::Sin(_)
        | Instr::Cos(_)
        | Instr::Tanh(_)
        | Instr::LambertW(_) => 12.0,
    }
}

/// Read/write access to one box's slot values, independent of memory
/// layout: contiguous slices for the scalar engine, one lane of a
/// structure-of-arrays file ([`LaneView`]) for the batched one. The HC4
/// inverse rules ([`backward_step`]) are generic over this, so both engines
/// run literally the same code — bit-identical results by construction.
pub trait SlotFile {
    fn get(&self, i: u32) -> Interval;
    fn set(&mut self, i: u32, v: Interval);
}

impl SlotFile for [Interval] {
    #[inline]
    fn get(&self, i: u32) -> Interval {
        self[i as usize]
    }

    #[inline]
    fn set(&mut self, i: u32, v: Interval) {
        self[i as usize] = v;
    }
}

/// One lane of a `slots × width` structure-of-arrays slot file.
pub struct LaneView<'a> {
    pub vals: &'a mut [Interval],
    pub width: usize,
    pub lane: usize,
}

impl SlotFile for LaneView<'_> {
    #[inline]
    fn get(&self, i: u32) -> Interval {
        self.vals[i as usize * self.width + self.lane]
    }

    #[inline]
    fn set(&mut self, i: u32, v: Interval) {
        self.vals[i as usize * self.width + self.lane] = v;
    }
}

/// The HC4 inverse rule for one instruction, on one box's slot values:
/// read the node's enclosure, contract the children through the operation's
/// inverse. `false` when emptiness is proven. This is *the* rule set — the
/// scalar sweep and every batched lane execute this exact function.
#[allow(clippy::too_many_lines)]
fn backward_step<S: SlotFile + ?Sized>(i: u32, instr: Instr, vals: &mut S) -> bool {
    {
        let d = vals.get(i);
        if d.is_empty() {
            return false;
        }
        match instr {
            Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {}
            Instr::Add(a, b) => {
                let (ca, cb) = (vals.get(a), vals.get(b));
                if !meet(vals, a, d.sub(&cb)) || !meet(vals, b, d.sub(&ca)) {
                    return false;
                }
            }
            Instr::Mul(a, b) => {
                let (ca, cb) = (vals.get(a), vals.get(b));
                if !meet(vals, a, d.div(&cb)) || !meet(vals, b, d.div(&ca)) {
                    return false;
                }
            }
            Instr::Div(a, b) => {
                let (ca, cb) = (vals.get(a), vals.get(b));
                if !meet(vals, a, d.mul(&cb)) || !meet(vals, b, ca.div(&d)) {
                    return false;
                }
            }
            Instr::Neg(a) => {
                if !meet(vals, a, d.neg()) {
                    return false;
                }
            }
            Instr::PowI(a, n) => {
                if !backward_powi(vals, a, n, d) {
                    return false;
                }
            }
            Instr::Pow(a, b) => {
                let (ca, cb) = (vals.get(a), vals.get(b));
                // a^b with a > 0 implies node > 0.
                if ca.certainly_gt(0.0) {
                    let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                    if dpos.is_empty() {
                        return false;
                    }
                    let ld = dpos.ln();
                    if !ld.is_empty() {
                        let la = ca.ln();
                        if !meet(vals, a, ld.div(&cb).exp()) {
                            return false;
                        }
                        if !la.is_empty() && !meet(vals, b, ld.div(&la)) {
                            return false;
                        }
                    }
                }
            }
            Instr::Exp(a) => {
                // exp(a) = d  =>  a = ln(d); d.hi <= 0 is infeasible.
                let pre = d.ln();
                if pre.is_empty() || !meet(vals, a, pre) {
                    return false;
                }
            }
            Instr::Ln(a) => {
                if !meet(vals, a, d.exp()) {
                    return false;
                }
            }
            Instr::Sqrt(a) => {
                let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                if dpos.is_empty() {
                    return false;
                }
                if !meet(vals, a, dpos.powi(2)) {
                    return false;
                }
            }
            Instr::Cbrt(a) => {
                if !meet(vals, a, d.powi(3)) {
                    return false;
                }
            }
            Instr::Atan(a) => {
                let range =
                    Interval::new(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
                let dc = d.intersect(&range);
                if dc.is_empty() {
                    return false;
                }
                // tan blows up approaching ±π/2; treat anything within
                // 1e-4 of the pole as unbounded.
                let near_pole = std::f64::consts::FRAC_PI_2 - 1e-4;
                let lo = if dc.lo <= -near_pole {
                    f64::NEG_INFINITY
                } else {
                    round::libm_lo(dc.lo.tan())
                };
                let hi = if dc.hi >= near_pole {
                    f64::INFINITY
                } else {
                    round::libm_hi(dc.hi.tan())
                };
                if !meet(vals, a, Interval::checked(lo, hi)) {
                    return false;
                }
            }
            Instr::Sin(_) | Instr::Cos(_) => {
                // Periodic inverse: no contraction (sound no-op), but an
                // enclosure disjoint from [-1, 1] is infeasible.
                if d.intersect(&Interval::new(-1.0, 1.0)).is_empty() {
                    return false;
                }
            }
            Instr::Tanh(a) => {
                let dc = d.intersect(&Interval::new(-1.0, 1.0));
                if dc.is_empty() {
                    return false;
                }
                let atanh = |x: f64, up: bool| -> f64 {
                    if x <= -1.0 {
                        f64::NEG_INFINITY
                    } else if x >= 1.0 {
                        f64::INFINITY
                    } else {
                        let v = 0.5 * ((1.0 + x) / (1.0 - x)).ln();
                        if up {
                            round::libm_hi(v)
                        } else {
                            round::libm_lo(v)
                        }
                    }
                };
                if !meet(
                    vals,
                    a,
                    Interval::checked(atanh(dc.lo, false), atanh(dc.hi, true)),
                ) {
                    return false;
                }
            }
            Instr::Abs(a) => {
                let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                if dpos.is_empty() {
                    return false;
                }
                let ca = vals.get(a);
                let pre = ca.intersect(&dpos).hull(&ca.intersect(&dpos.neg()));
                if pre.is_empty() {
                    return false;
                }
                vals.set(a, pre);
            }
            Instr::Min(a, b) => {
                let (ca, cb) = (vals.get(a), vals.get(b));
                // Both operands are >= min's lower bound.
                let floor = Interval::new(d.lo, f64::INFINITY);
                let mut na = ca.intersect(&floor);
                let mut nb = cb.intersect(&floor);
                // If one operand is certainly above the node's range, the
                // other must equal the node.
                if cb.lo > d.hi {
                    na = na.intersect(&d);
                }
                if ca.lo > d.hi {
                    nb = nb.intersect(&d);
                }
                if na.is_empty() || nb.is_empty() {
                    return false;
                }
                vals.set(a, na);
                vals.set(b, nb);
            }
            Instr::Max(a, b) => {
                let (ca, cb) = (vals.get(a), vals.get(b));
                let ceil = Interval::new(f64::NEG_INFINITY, d.hi);
                let mut na = ca.intersect(&ceil);
                let mut nb = cb.intersect(&ceil);
                if cb.hi < d.lo {
                    na = na.intersect(&d);
                }
                if ca.hi < d.lo {
                    nb = nb.intersect(&d);
                }
                if na.is_empty() || nb.is_empty() {
                    return false;
                }
                vals.set(a, na);
                vals.set(b, nb);
            }
            Instr::LambertW(a) => {
                // W(a) = d  =>  a = d e^d (monotone on our domain).
                if !meet(vals, a, d.mul(&d.exp())) {
                    return false;
                }
            }
            Instr::Ite(c, t, e) => {
                let cc = vals.get(c);
                if cc.certainly_ge(0.0) {
                    if !meet(vals, t, d) {
                        return false;
                    }
                } else if cc.certainly_lt(0.0) {
                    if !meet(vals, e, d) {
                        return false;
                    }
                } else {
                    let ct = vals.get(t);
                    let ce = vals.get(e);
                    let then_possible = !ct.intersect(&d).is_empty();
                    let else_possible = !ce.intersect(&d).is_empty();
                    match (then_possible, else_possible) {
                        (false, false) => return false,
                        (false, true) => {
                            // cond must be negative; closed meet is sound.
                            if !meet(vals, c, Interval::new(f64::NEG_INFINITY, 0.0))
                                || !meet(vals, e, d)
                            {
                                return false;
                            }
                        }
                        (true, false) => {
                            if !meet(vals, c, Interval::new(0.0, f64::INFINITY))
                                || !meet(vals, t, d)
                            {
                                return false;
                            }
                        }
                        (true, true) => {}
                    }
                }
            }
        }
    }
    true
}

/// Forward interval value of one non-leaf instruction from its children
/// (shared with the compile-time constant folder in [`crate::eval`]).
#[inline]
pub(crate) fn eval_op(instr: Instr, vals: &[Interval]) -> Interval {
    eval_op_with(instr, |j| vals[j as usize])
}

/// One non-leaf instruction over `width` lanes at once: the contiguous-lane
/// slice kernels of [`xcv_interval::lanes`] for the core operations, a
/// lane-indexed scalar loop for the rest (`Ite` needs per-lane branch
/// resolution anyway). Lane-by-lane identical to [`eval_op`].
#[inline]
fn batch_op<'a>(instr: Instr, col: impl Fn(u32) -> &'a [Interval], out: &mut [Interval]) {
    use xcv_interval::lanes;
    match instr {
        Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {
            unreachable!("leaves handled by callers")
        }
        Instr::Add(a, b) => lanes::add(col(a), col(b), out),
        Instr::Mul(a, b) => lanes::mul(col(a), col(b), out),
        Instr::Div(a, b) => lanes::div(col(a), col(b), out),
        Instr::Neg(a) => lanes::neg(col(a), out),
        Instr::PowI(a, n) => lanes::powi(col(a), n, out),
        Instr::Pow(a, b) => lanes::pow(col(a), col(b), out),
        Instr::Exp(a) => lanes::exp(col(a), out),
        Instr::Ln(a) => lanes::ln(col(a), out),
        Instr::Sqrt(a) => lanes::sqrt(col(a), out),
        Instr::Cbrt(a) => lanes::cbrt(col(a), out),
        Instr::Atan(a) => lanes::atan(col(a), out),
        Instr::Sin(a) => lanes::sin(col(a), out),
        Instr::Cos(a) => lanes::cos(col(a), out),
        Instr::Tanh(a) => lanes::tanh(col(a), out),
        Instr::Abs(a) => lanes::abs(col(a), out),
        Instr::Min(a, b) => lanes::min_i(col(a), col(b), out),
        Instr::Max(a, b) => lanes::max_i(col(a), col(b), out),
        Instr::LambertW(a) => lanes::lambert_w0(col(a), out),
        Instr::Ite(..) => {
            for (j, o) in out.iter_mut().enumerate() {
                *o = eval_op_with(instr, |s| col(s)[j]);
            }
        }
    }
}

/// The single-instruction forward step, generic over how operand enclosures
/// are fetched — slot-indexed for the scalar interpreter, lane-strided for
/// the batched one.
#[inline]
fn eval_op_with(instr: Instr, g: impl Fn(u32) -> Interval) -> Interval {
    match instr {
        Instr::Const(_) | Instr::IConst(_) | Instr::Var(_) => {
            unreachable!("leaves handled by callers")
        }
        Instr::Add(a, b) => g(a).add(&g(b)),
        Instr::Mul(a, b) => g(a).mul(&g(b)),
        Instr::Div(a, b) => g(a).div(&g(b)),
        Instr::Neg(a) => g(a).neg(),
        Instr::PowI(a, n) => g(a).powi(n),
        Instr::Pow(a, b) => g(a).powf(&g(b)),
        Instr::Exp(a) => g(a).exp(),
        Instr::Ln(a) => g(a).ln(),
        Instr::Sqrt(a) => g(a).sqrt(),
        Instr::Cbrt(a) => g(a).cbrt(),
        Instr::Atan(a) => g(a).atan(),
        Instr::Sin(a) => g(a).sin(),
        Instr::Cos(a) => g(a).cos(),
        Instr::Tanh(a) => g(a).tanh(),
        Instr::Abs(a) => g(a).abs(),
        Instr::Min(a, b) => g(a).min_i(&g(b)),
        Instr::Max(a, b) => g(a).max_i(&g(b)),
        Instr::LambertW(a) => g(a).lambert_w0(),
        Instr::Ite(c, t, e) => {
            let cc = g(c);
            if cc.is_empty() {
                Interval::EMPTY
            } else if cc.certainly_ge(0.0) {
                g(t)
            } else if cc.certainly_lt(0.0) {
                g(e)
            } else {
                g(t).hull(&g(e))
            }
        }
    }
}

/// Meet the slot with `narrow`; false if proven empty.
#[inline]
fn meet<S: SlotFile + ?Sized>(vals: &mut S, idx: u32, narrow: Interval) -> bool {
    let m = vals.get(idx).intersect(&narrow);
    vals.set(idx, m);
    !m.is_empty()
}

fn backward_powi<S: SlotFile + ?Sized>(vals: &mut S, a: u32, n: i32, d: Interval) -> bool {
    if n == 0 {
        return !d.intersect(&Interval::ONE).is_empty();
    }
    if n < 0 {
        // a^n = 1/a^{-n}: invert the target and recurse on the positive
        // exponent.
        return backward_powi(vals, a, -n, d.recip());
    }
    if n % 2 == 1 {
        meet(vals, a, d.nth_root(n))
    } else {
        let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
        if dpos.is_empty() {
            return false;
        }
        let r = dpos.nth_root(n); // [p, q], p >= 0
        let ca = vals.get(a);
        let pre = ca.intersect(&r).hull(&ca.intersect(&r.neg()));
        if pre.is_empty() {
            return false;
        }
        vals.set(a, pre);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{constant, var, IntervalEnv};
    use xcv_interval::interval;

    #[test]
    fn forward_matches_interval_env() {
        let x = var(0);
        let y = var(1);
        let e = (x.clone() * y.clone() + x.exp()).sqrt() / (y + 2.0);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        let dom = [interval(0.1, 0.9), interval(0.5, 2.0)];
        tape.forward(&dom, &mut vals);
        let want = e.eval_interval(&dom);
        let got = vals[tape.root_slot(0) as usize];
        assert_eq!(got, want);
    }

    #[test]
    fn shared_nodes_lowered_once() {
        let x = var(0);
        let t = x.clone() * x.clone();
        let f = t.clone() + 1.0;
        let g = t.clone() + 2.0;
        let tape = IntervalTape::compile(&[f.clone(), g.clone()]);
        let env = IntervalEnv::new(&[f, g]);
        assert_eq!(tape.len(), env.len());
        assert_eq!(tape.var_slots().len(), 1);
    }

    #[test]
    fn backward_contracts_linear() {
        // root = x - 3; impose root <= 0 by meeting the root slot, then
        // backward: x must drop to <= 3.
        let e = var(0) - 3.0;
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(0.0, 10.0)], &mut vals);
        let root = tape.root_slot(0) as usize;
        vals[root] = vals[root].intersect(&Interval::new(f64::NEG_INFINITY, 0.0));
        assert!(tape.backward(&mut vals));
        let (xslot, v) = tape.var_slots()[0];
        assert_eq!(v, 0);
        assert!(vals[xslot as usize].hi <= 3.0 + 1e-9);
    }

    #[test]
    fn backward_reports_emptiness() {
        // x^2 + 1 <= 0 is infeasible: meeting the root with (-inf, 0] and
        // running backward must prove emptiness.
        let e = var(0).powi(2) + 1.0;
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(-10.0, 10.0)], &mut vals);
        let root = tape.root_slot(0) as usize;
        vals[root] = vals[root].intersect(&Interval::new(f64::NEG_INFINITY, 0.0));
        assert!(vals[root].is_empty() || !tape.backward(&mut vals));
    }

    #[test]
    fn forward_meet_tightens_parents() {
        let e = var(0) + constant(1.0);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(0.0, 4.0)], &mut vals);
        // Narrow the variable slot by hand, then re-tighten the sum.
        let (xslot, _) = tape.var_slots()[0];
        vals[xslot as usize] = interval(0.0, 1.0);
        tape.forward_meet(&mut vals);
        let root = vals[tape.root_slot(0) as usize];
        assert!(root.hi <= 2.0 + 1e-12, "{root:?}");
    }

    #[test]
    fn constant_folding_keeps_enclosures() {
        // exp(2)·x: folded to one interval leaf that still brackets the real
        // e² (an f64 point would not), with the forward value unchanged.
        let e = constant(2.0).exp() * var(0);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let env = IntervalEnv::new(std::slice::from_ref(&e));
        assert!(tape.len() < env.len());
        let mut vals = tape.scratch();
        let dom = [interval(1.0, 1.0)];
        tape.forward(&dom, &mut vals);
        let got = vals[tape.root_slot(0) as usize];
        assert_eq!(got, e.eval_interval(&dom));
        assert!(got.lo <= std::f64::consts::E.powi(2));
        assert!(got.hi >= std::f64::consts::E.powi(2));
        assert!(got.lo < got.hi, "rounding must survive the fold: {got:?}");
    }

    #[test]
    fn constant_folding_backward_still_contracts() {
        // x·sqrt(2) <= 1 over [0, 10]: impose the root bound and contract —
        // x must drop to ~1/√2 with the constant folded away.
        let e = var(0) * constant(2.0).sqrt();
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(0.0, 10.0)], &mut vals);
        let root = tape.root_slot(0) as usize;
        vals[root] = vals[root].intersect(&Interval::new(f64::NEG_INFINITY, 1.0));
        assert!(tape.backward(&mut vals));
        let (xslot, v) = tape.var_slots()[0];
        assert_eq!(v, 0);
        assert!(vals[xslot as usize].hi <= 1.0 / 2f64.sqrt() + 1e-9);
    }

    #[test]
    fn deps_track_transitive_variable_cones() {
        // f = exp(x0) + x1 * 2: the exp slot depends only on x0, the mul
        // slot only on x1, the sum on both; the folded constant on neither.
        let e = var(0).exp() + var(1) * 2.0;
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        assert_eq!(tape.var_mask(), 0b11);
        let root = tape.root_slot(0) as usize;
        assert_eq!(tape.deps()[root], 0b11);
        let (x0_slot, _) = tape
            .var_slots()
            .iter()
            .find(|&&(_, v)| v == 0)
            .copied()
            .unwrap();
        let (x1_slot, _) = tape
            .var_slots()
            .iter()
            .find(|&&(_, v)| v == 1)
            .copied()
            .unwrap();
        assert_eq!(tape.deps()[x0_slot as usize], 0b01);
        assert_eq!(tape.deps()[x1_slot as usize], 0b10);
        // Some non-leaf slot depends on exactly x0 but not x1 (the exp).
        assert!(tape
            .deps()
            .iter()
            .enumerate()
            .any(|(i, &d)| d == 0b01 && i != x0_slot as usize));
    }

    #[test]
    fn forward_from_matches_full_forward_bitwise() {
        // A DAG mixing per-axis cones and shared nodes; rebisect each axis
        // in turn and check the dirty-slot pass reproduces the full pass
        // exactly (PartialEq on Interval is bitwise on the bounds).
        let x = var(0);
        let y = var(1);
        let z = var(2);
        let shared = (x.clone() * y.clone() + 1.0).sqrt();
        let e = shared.clone() * z.clone().exp() + shared.clone().ln() + y.clone().tanh();
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let parent = [interval(0.5, 2.0), interval(0.1, 1.5), interval(-1.0, 1.0)];
        let mut vals = tape.scratch();
        tape.forward(&parent, &mut vals);
        for axis in 0..3u32 {
            let mut child = parent;
            let (lo, hi) = (parent[axis as usize].lo, parent[axis as usize].hi);
            child[axis as usize] = interval(lo, 0.5 * (lo + hi));
            // Dirty-slot pass from the parent image...
            let mut partial = vals.clone();
            tape.forward_from(axis, &child, &mut partial);
            // ...must equal a from-scratch forward pass over the child.
            let mut full = tape.scratch();
            tape.forward(&child, &mut full);
            assert_eq!(partial, full, "axis {axis}");
        }
    }

    #[test]
    fn forward_batch_matches_scalar_lanes() {
        let x = var(0);
        let y = var(1);
        let e = (x.clone() * y.clone() + x.clone().exp()).sqrt() / (y.clone() + 2.0)
            + x.clone().min(&y.clone()).abs();
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let boxes = [
            vec![interval(0.1, 0.9), interval(0.5, 2.0)],
            vec![interval(-1.0, 1.0), interval(1.0, 3.0)],
            vec![interval(2.0, 2.0), interval(-0.5, 0.5)],
        ];
        let width = boxes.len();
        let domains: Vec<&[Interval]> = boxes.iter().map(|b| b.as_slice()).collect();
        let dirty = vec![u64::MAX; width];
        let mut soa = tape.scratch_batch(width);
        tape.forward_batch(width, &domains, &dirty, &mut soa);
        let mut scalar = tape.scratch();
        for (j, b) in boxes.iter().enumerate() {
            tape.forward(b, &mut scalar);
            for i in 0..tape.len() {
                assert_eq!(soa[i * width + j], scalar[i], "slot {i}, lane {j}");
            }
        }
    }

    #[test]
    fn forward_batch_mixed_dirty_lanes() {
        // Lane 0: full pass. Lane 1: a child of lane 0's box re-bisected
        // along axis 1, seeded with lane 0's column. Both must equal their
        // scalar forward images.
        let e = (var(0).exp() + var(1).powi(2)).sqrt() * var(1).atan();
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let parent = vec![interval(0.2, 1.0), interval(0.0, 2.0)];
        let child = vec![interval(0.2, 1.0), interval(1.0, 2.0)];
        let width = 2;
        let mut soa = tape.scratch_batch(width);
        // Seed lane 1's column with the parent's forward image.
        let mut parent_vals = tape.scratch();
        tape.forward(&parent, &mut parent_vals);
        for i in 0..tape.len() {
            soa[i * width + 1] = parent_vals[i];
        }
        let domains: Vec<&[Interval]> = vec![&parent, &child];
        let dirty = vec![u64::MAX, 1u64 << 1];
        tape.forward_batch(width, &domains, &dirty, &mut soa);
        let mut scalar = tape.scratch();
        for (j, b) in [&parent, &child].into_iter().enumerate() {
            tape.forward(b, &mut scalar);
            for i in 0..tape.len() {
                assert_eq!(soa[i * width + j], scalar[i], "slot {i}, lane {j}");
            }
        }
    }

    #[test]
    fn portable_round_trip_is_bit_identical() {
        // A program touching every structural feature: shared nodes, folded
        // interval constants (irrational bounds), powi with a negative
        // exponent, min/abs, and two roots.
        let x = var(0);
        let y = var(1);
        let shared = (x.clone() * y.clone() + constant(2.0).sqrt()).sqrt();
        let r0 = shared.clone() * x.clone().powi(-2) + y.clone().tanh();
        let r1 = shared.min(&y.clone().abs()) + constant(1.0).exp();
        let tape = IntervalTape::compile(&[r0, r1]);
        let text = tape.to_portable();
        let back = IntervalTape::from_portable(&text).expect("round trip parses");
        assert_eq!(back.len(), tape.len());
        assert_eq!(back.var_slots(), tape.var_slots());
        assert_eq!(back.deps(), tape.deps());
        assert_eq!(back.root_slot(0), tape.root_slot(0));
        assert_eq!(back.root_slot(1), tape.root_slot(1));
        // Bit-identical forward/backward behaviour on a real box.
        let dom = [interval(0.3, 1.7), interval(-0.9, 2.1)];
        let mut a = tape.scratch();
        let mut b = back.scratch();
        tape.forward(&dom, &mut a);
        back.forward(&dom, &mut b);
        assert_eq!(a, b);
        let root = tape.root_slot(0) as usize;
        a[root] = a[root].intersect(&Interval::new(f64::NEG_INFINITY, 0.5));
        b[root] = b[root].intersect(&Interval::new(f64::NEG_INFINITY, 0.5));
        assert_eq!(tape.backward(&mut a), back.backward(&mut b));
        assert_eq!(a, b);
        // And the text itself is stable under a second round trip.
        assert_eq!(back.to_portable(), text);
    }

    #[test]
    fn portable_rejects_malformed_programs() {
        for bad in [
            "",                    // no separator
            "var 0",               // no roots section
            "add 0 1|0",           // forward reference (operand >= own slot)
            "var 0;frob 0|1",      // unknown opcode
            "var 0|7",             // root out of range
            "var 0;neg 0|",        // empty roots
            "const nan|0",         // NaN constant
            "var 0;neg 0 3|1",     // trailing operand
            "var 0;powi 0 2.5|1",  // non-integer exponent
            "const 1;exp 0 |zero", // non-numeric root
        ] {
            assert!(
                IntervalTape::from_portable(bad).is_err(),
                "accepted malformed tape {bad:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_across_boxes() {
        let e = var(0).powi(2);
        let tape = IntervalTape::compile(std::slice::from_ref(&e));
        let mut vals = tape.scratch();
        tape.forward(&[interval(1.0, 2.0)], &mut vals);
        assert!(vals[tape.root_slot(0) as usize].contains(4.0));
        tape.forward(&[interval(3.0, 4.0)], &mut vals);
        let v = vals[tape.root_slot(0) as usize];
        assert!(v.contains(16.0) && !v.contains(4.0));
    }
}
