//! Typed variable spaces: what each expression variable index *means*.
//!
//! Expressions refer to variables by dense index (`Kind::Var(u32)`); a
//! [`VarSpace`] gives those indices physical identity — an ordered list of
//! [`Axis`] values, each carrying a name, its index, its Pederson–Burke
//! bounds, and an [`AxisKind`]. The whole toolchain used to reason about
//! problems through a bare `arity()` integer and positional convention
//! (`rs` at 0, `s` at 1, `α` at 2, `ζ` at 3); the kinds make non-positional
//! layouts expressible — most importantly the per-spin reduced gradients
//! `s↑`/`s↓` of exact-spin-scaled exchange, which occupy the slots the
//! scalar convention reserved for `s` and `α`.
//!
//! The space is the contract between layers:
//!
//! * functionals describe their inputs with `Functional::var_space`;
//! * the condition encoder builds the search [`VarSpace::pb_box`] from it
//!   (what `pb_domain` used to derive from `arity() >= k` thresholds);
//! * the solver's compiled formulas carry it so mean-value gradients and
//!   witnesses are axis-indexed;
//! * the grid baseline meshes any space — ζ and per-spin axes included —
//!   instead of a hard-coded `rs × s` plane.

use crate::vars::VarSet;

/// The physical identity of one variable axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AxisKind {
    /// Wigner–Seitz radius `rs`.
    Rs,
    /// Reduced density gradient `s` (total density).
    S,
    /// Meta-GGA iso-orbital indicator `α`.
    Alpha,
    /// Spin polarization `ζ = (n↑ − n↓)/n`.
    Zeta,
    /// Per-spin reduced gradient `s↑` (of the doubled spin-up density).
    SUp,
    /// Per-spin reduced gradient `s↓` (of the doubled spin-down density).
    SDown,
}

impl AxisKind {
    /// The canonical display name of the axis.
    pub const fn canonical_name(self) -> &'static str {
        match self {
            AxisKind::Rs => "rs",
            AxisKind::S => "s",
            AxisKind::Alpha => "alpha",
            AxisKind::Zeta => "zeta",
            AxisKind::SUp => "s_up",
            AxisKind::SDown => "s_dn",
        }
    }

    /// The Pederson–Burke search bounds for this axis — the single source
    /// the per-family domain constants derive from.
    pub const fn pb_bounds(self) -> (f64, f64) {
        match self {
            AxisKind::Rs => (1e-4, 5.0),
            AxisKind::S | AxisKind::SUp | AxisKind::SDown => (0.0, 5.0),
            AxisKind::Alpha => (0.0, 5.0),
            AxisKind::Zeta => (-1.0, 1.0),
        }
    }

    /// True for the axes only spin-resolved (`ζ ≠ 0`) problems mention.
    pub const fn is_spin(self) -> bool {
        matches!(self, AxisKind::Zeta | AxisKind::SUp | AxisKind::SDown)
    }
}

impl std::fmt::Display for AxisKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.canonical_name())
    }
}

/// One named, bounded variable axis of a [`VarSpace`].
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    /// Display name (defaults to [`AxisKind::canonical_name`]).
    pub name: String,
    /// The `Kind::Var` index this axis occupies.
    pub index: u32,
    /// `(lo, hi)` search bounds (defaults to [`AxisKind::pb_bounds`]).
    pub bounds: (f64, f64),
    pub kind: AxisKind,
}

impl Axis {
    /// The canonical axis of `kind` at `index` (PB bounds, canonical name).
    pub fn canonical(kind: AxisKind, index: u32) -> Axis {
        Axis {
            name: kind.canonical_name().to_string(),
            index,
            bounds: kind.pb_bounds(),
            kind,
        }
    }
}

/// An ordered, dense list of typed axes: the variable space of a problem.
///
/// Axis `k` occupies variable index `k` (the list is dense by construction),
/// so a `VarSpace` of `ndim` axes describes expressions over
/// `Kind::Var(0..ndim)` and boxes of `ndim` intervals, in the same order.
#[derive(Clone, Debug, PartialEq)]
pub struct VarSpace {
    axes: Vec<Axis>,
}

impl VarSpace {
    /// Build from explicit axes. Panics unless indices are dense and in
    /// order (`axes[k].index == k`) — a space with holes cannot index a box.
    pub fn new(axes: Vec<Axis>) -> VarSpace {
        for (k, ax) in axes.iter().enumerate() {
            assert_eq!(
                ax.index as usize, k,
                "VarSpace axes must be dense and ordered: axis {k} has index {}",
                ax.index
            );
        }
        VarSpace { axes }
    }

    /// The canonical space over a list of kinds: axis `k` gets index `k`,
    /// its canonical name, and its PB bounds.
    pub fn of_kinds(kinds: &[AxisKind]) -> VarSpace {
        VarSpace {
            axes: kinds
                .iter()
                .enumerate()
                .map(|(k, &kind)| Axis::canonical(kind, k as u32))
                .collect(),
        }
    }

    /// The positional-convention space of the given arity: `rs` | `rs, s` |
    /// `rs, s, α` | `rs, s, α, ζ` — what the pre-typed toolchain inferred
    /// from `arity()` thresholds.
    pub fn from_arity(arity: usize) -> VarSpace {
        const CANONICAL: [AxisKind; 4] =
            [AxisKind::Rs, AxisKind::S, AxisKind::Alpha, AxisKind::Zeta];
        assert!(
            (1..=CANONICAL.len()).contains(&arity),
            "no canonical variable order for arity {arity}"
        );
        VarSpace::of_kinds(&CANONICAL[..arity])
    }

    pub fn ndim(&self) -> usize {
        self.axes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    pub fn axis(&self, index: usize) -> &Axis {
        &self.axes[index]
    }

    /// The first axis of `kind`, if the space has one.
    pub fn find(&self, kind: AxisKind) -> Option<&Axis> {
        self.axes.iter().find(|a| a.kind == kind)
    }

    /// Does the space mention `kind`?
    pub fn contains(&self, kind: AxisKind) -> bool {
        self.find(kind).is_some()
    }

    /// True when any axis is spin-specific (`ζ`, `s↑`, `s↓`).
    pub fn is_spin_resolved(&self) -> bool {
        self.axes.iter().any(|a| a.kind.is_spin())
    }

    /// Axis names, in index order.
    pub fn names(&self) -> Vec<&str> {
        self.axes.iter().map(|a| a.name.as_str()).collect()
    }

    /// The Pederson–Burke search box: one `(lo, hi)` pair per axis, in
    /// index order — ready for `BoxDomain::from_bounds`. This replaces the
    /// `arity() >= k` bound-pushing of the old `pb_domain`.
    pub fn pb_box(&self) -> Vec<(f64, f64)> {
        self.axes.iter().map(|a| a.bounds).collect()
    }

    /// A [`VarSet`] over the axis names (for the DSL frontend and display).
    pub fn var_set(&self) -> VarSet {
        VarSet::from_names(self.axes.iter().map(|a| a.name.clone()))
    }

    /// Label a point's coordinates with the axis names:
    /// `rs=1.00, s_up=4.50, …` (indices past the space render bare).
    pub fn label_point(&self, point: &[f64]) -> String {
        point
            .iter()
            .enumerate()
            .map(|(i, v)| match self.axes.get(i) {
                Some(a) => format!("{}={v:.4}", a.name),
                None => format!("{v:.4}"),
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for VarSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({})", self.names().join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_arity_matches_canonical_order() {
        let vs = VarSpace::from_arity(3);
        assert_eq!(vs.ndim(), 3);
        assert_eq!(vs.names(), vec!["rs", "s", "alpha"]);
        assert_eq!(vs.axis(0).kind, AxisKind::Rs);
        assert_eq!(vs.axis(2).index, 2);
        assert!(!vs.is_spin_resolved());
        assert!(VarSpace::from_arity(4).is_spin_resolved());
    }

    #[test]
    #[should_panic]
    fn from_arity_rejects_zero() {
        VarSpace::from_arity(0);
    }

    #[test]
    fn per_spin_space_reuses_positional_slots() {
        let vs =
            VarSpace::of_kinds(&[AxisKind::Rs, AxisKind::SUp, AxisKind::SDown, AxisKind::Zeta]);
        assert_eq!(vs.names(), vec!["rs", "s_up", "s_dn", "zeta"]);
        assert_eq!(vs.find(AxisKind::SDown).unwrap().index, 2);
        assert!(vs.contains(AxisKind::Zeta));
        assert!(!vs.contains(AxisKind::Alpha));
        assert!(vs.is_spin_resolved());
    }

    #[test]
    fn pb_box_matches_axis_bounds() {
        let vs = VarSpace::from_arity(4);
        let b = vs.pb_box();
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], (1e-4, 5.0));
        assert_eq!(b[3], (-1.0, 1.0));
        assert_eq!(b[1], AxisKind::S.pb_bounds());
    }

    #[test]
    #[should_panic]
    fn sparse_indices_rejected() {
        VarSpace::new(vec![Axis::canonical(AxisKind::Rs, 1)]);
    }

    #[test]
    fn var_set_and_labels() {
        let vs = VarSpace::from_arity(2);
        assert_eq!(vs.var_set().get("s"), Some(1));
        assert_eq!(vs.label_point(&[1.0, 2.5]), "rs=1.0000, s=2.5000");
        assert_eq!(format!("{vs}"), "(rs, s)");
        // Points longer than the space keep their trailing coordinates.
        assert!(vs.label_point(&[1.0, 2.5, 0.5]).ends_with(", 0.5000"));
    }
}
