//! Recursive-descent parser for the Python-subset DSL.

use super::lexer::{Lexer, Token, TokenKind};
use super::{DslError, Pos};

/// Comparison operators allowed in `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Le,
    Ge,
    Lt,
    Gt,
}

/// Surface-syntax expression (pre symbolic execution).
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    Num(f64),
    Name(String),
    Neg(Box<PExpr>),
    Add(Box<PExpr>, Box<PExpr>),
    Sub(Box<PExpr>, Box<PExpr>),
    Mul(Box<PExpr>, Box<PExpr>),
    Div(Box<PExpr>, Box<PExpr>),
    Pow(Box<PExpr>, Box<PExpr>),
    Call(String, Vec<PExpr>),
}

/// A statement in a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Assign(String, PExpr),
    If {
        lhs: PExpr,
        op: CmpOp,
        rhs: PExpr,
        then: Vec<Stmt>,
        otherwise: Vec<Stmt>,
    },
    Return(PExpr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
}

/// A whole program: an ordered list of function definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub funcs: Vec<FuncDef>,
}

impl Program {
    pub fn get(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// Parse a complete program.
pub fn parse_program(source: &str) -> Result<Program, DslError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut p = Parser { tokens, i: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.i].kind.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), DslError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> DslError {
        DslError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    fn program(&mut self) -> Result<Program, DslError> {
        let mut funcs = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Def => funcs.push(self.func_def()?),
                _ => return Err(self.err("expected 'def' at top level")),
            }
        }
        Ok(Program { funcs })
    }

    fn func_def(&mut self) -> Result<FuncDef, DslError> {
        self.expect(&TokenKind::Def, "'def'")?;
        let name = self.name_token()?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                params.push(self.name_token()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        self.expect(&TokenKind::Colon, "':'")?;
        self.expect(&TokenKind::Newline, "newline after ':'")?;
        let body = self.block()?;
        Ok(FuncDef { name, params, body })
    }

    fn name_token(&mut self) -> Result<String, DslError> {
        match self.bump() {
            TokenKind::Name(n) => Ok(n),
            other => Err(self.err(format!("expected name, found {other:?}"))),
        }
    }

    /// An indented block of statements.
    fn block(&mut self) -> Result<Vec<Stmt>, DslError> {
        self.skip_newlines();
        self.expect(&TokenKind::Indent, "indented block")?;
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                TokenKind::Dedent => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => break,
                _ => stmts.push(self.stmt()?),
            }
        }
        if stmts.is_empty() {
            return Err(self.err("empty block"));
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, DslError> {
        match self.peek().clone() {
            TokenKind::Return => {
                self.bump();
                let e = self.expr()?;
                self.end_of_line()?;
                Ok(Stmt::Return(e))
            }
            TokenKind::If => {
                self.bump();
                self.if_tail()
            }
            TokenKind::Name(n) => {
                self.bump();
                self.expect(&TokenKind::Assign, "'='")?;
                let e = self.expr()?;
                self.end_of_line()?;
                Ok(Stmt::Assign(n, e))
            }
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    /// Parses everything after `if`/`elif`: condition, block, optional
    /// `elif`/`else` continuation.
    fn if_tail(&mut self) -> Result<Stmt, DslError> {
        let lhs = self.expr()?;
        let op = match self.bump() {
            TokenKind::Le => CmpOp::Le,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Gt => CmpOp::Gt,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        let rhs = self.expr()?;
        self.expect(&TokenKind::Colon, "':'")?;
        self.expect(&TokenKind::Newline, "newline after ':'")?;
        let then = self.block()?;
        self.skip_newlines();
        let otherwise = match self.peek() {
            TokenKind::Elif => {
                self.bump();
                vec![self.if_tail()?]
            }
            TokenKind::Else => {
                self.bump();
                self.expect(&TokenKind::Colon, "':'")?;
                self.expect(&TokenKind::Newline, "newline after ':'")?;
                self.block()?
            }
            _ => Vec::new(),
        };
        Ok(Stmt::If {
            lhs,
            op,
            rhs,
            then,
            otherwise,
        })
    }

    fn end_of_line(&mut self) -> Result<(), DslError> {
        match self.peek() {
            TokenKind::Newline => {
                self.bump();
                Ok(())
            }
            TokenKind::Eof | TokenKind::Dedent => Ok(()),
            other => Err(self.err(format!("expected end of line, found {other:?}"))),
        }
    }

    // Expression grammar (precedence climbing):
    //   expr   := term (('+'|'-') term)*
    //   term   := factor (('*'|'/') factor)*
    //   factor := '-' factor | power
    //   power  := atom ('**' factor)?          (right-associative)
    //   atom   := number | name | name '(' args ')' | '(' expr ')'
    fn expr(&mut self) -> Result<PExpr, DslError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = PExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                TokenKind::Minus => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = PExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<PExpr, DslError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    let rhs = self.factor()?;
                    lhs = PExpr::Mul(Box::new(lhs), Box::new(rhs));
                }
                TokenKind::Slash => {
                    self.bump();
                    let rhs = self.factor()?;
                    lhs = PExpr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<PExpr, DslError> {
        if matches!(self.peek(), TokenKind::Minus) {
            self.bump();
            let inner = self.factor()?;
            return Ok(PExpr::Neg(Box::new(inner)));
        }
        self.power()
    }

    fn power(&mut self) -> Result<PExpr, DslError> {
        let base = self.atom()?;
        if matches!(self.peek(), TokenKind::DoubleStar) {
            self.bump();
            // Python: ** binds tighter than unary minus on the left but the
            // exponent may itself be signed; right associative.
            let exp = self.factor()?;
            return Ok(PExpr::Pow(Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<PExpr, DslError> {
        match self.bump() {
            TokenKind::Number(v) => Ok(PExpr::Num(v)),
            TokenKind::Name(n) => {
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if matches!(self.peek(), TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')'")?;
                    Ok(PExpr::Call(n, args))
                } else {
                    Ok(PExpr::Name(n))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_params() {
        let p = parse_program("def f(a, b):\n    return a + b\n").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].params, vec!["a", "b"]);
        assert!(matches!(p.funcs[0].body[0], Stmt::Return(_)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_program("def f(x):\n    return 1 + x * 2\n").unwrap();
        let Stmt::Return(e) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, PExpr::Add(_, _)));
    }

    #[test]
    fn power_right_associative_and_tight() {
        let p = parse_program("def f(x):\n    return -x ** 2\n").unwrap();
        let Stmt::Return(e) = &p.funcs[0].body[0] else {
            panic!()
        };
        // Python semantics: -(x**2).
        assert!(matches!(e, PExpr::Neg(_)));
        let p = parse_program("def f(x):\n    return x ** -2\n").unwrap();
        let Stmt::Return(PExpr::Pow(_, exp)) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(**exp, PExpr::Neg(_)));
    }

    #[test]
    fn if_elif_else_chain() {
        let src = "\
def f(x):
    if x >= 1:
        y = 1
    elif x >= 0:
        y = 2
    else:
        y = 3
    return y
";
        let p = parse_program(src).unwrap();
        let Stmt::If { otherwise, .. } = &p.funcs[0].body[0] else {
            panic!()
        };
        // elif nests as a single If statement in the else block.
        assert_eq!(otherwise.len(), 1);
        assert!(matches!(otherwise[0], Stmt::If { .. }));
    }

    #[test]
    fn if_without_else() {
        let src = "def f(x):\n    y = 0\n    if x >= 0:\n        y = 1\n    return y\n";
        let p = parse_program(src).unwrap();
        let Stmt::If { otherwise, .. } = &p.funcs[0].body[1] else {
            panic!()
        };
        assert!(otherwise.is_empty());
    }

    #[test]
    fn call_with_multiple_args() {
        let p = parse_program("def f(x):\n    return max(x, 0)\n").unwrap();
        let Stmt::Return(PExpr::Call(name, args)) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(name, "max");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn multiple_functions() {
        let p = parse_program("def f(x):\n    return x\n\ndef g(y):\n    return f(y)\n").unwrap();
        assert_eq!(p.funcs.len(), 2);
        assert!(p.get("g").is_some());
        assert!(p.get("h").is_none());
    }

    #[test]
    fn error_on_missing_colon() {
        assert!(parse_program("def f(x)\n    return x\n").is_err());
    }

    #[test]
    fn error_on_statement_at_top_level() {
        assert!(parse_program("x = 1\n").is_err());
    }

    #[test]
    fn error_on_bad_condition() {
        assert!(parse_program("def f(x):\n    if x:\n        y = 1\n    return x\n").is_err());
    }
}
