//! Symbolic execution of the Python-subset DSL into expression DAGs.
//!
//! Mirrors XCEncoder's treatment of LIBXC functionals: straight-line code is
//! evaluated over symbolic values, non-recursive function calls are inlined,
//! and `if`/`else` executes *both* branches and merges every variable the
//! branches define through an if-then-else term on the branch condition.

use super::parser::{CmpOp, FuncDef, PExpr, Program, Stmt};
use super::DslError;
use crate::{constant, Expr, VarSet};
use std::collections::HashMap;

/// Symbolically execute `func` from `program`, interning its parameters into
/// `vars` (in declaration order) and returning the function's value as an
/// expression over those variables.
pub fn compile_function(
    program: &Program,
    func: &str,
    vars: &mut VarSet,
) -> Result<Expr, DslError> {
    let def = program.get(func).ok_or_else(|| DslError::Exec {
        message: format!("function {func:?} not defined"),
    })?;
    let args: Vec<Expr> = def
        .params
        .iter()
        .map(|p| crate::var(vars.intern(p)))
        .collect();
    let mut exec = Executor {
        program,
        call_stack: vec![func.to_string()],
    };
    exec.run(def, &args)
}

struct Executor<'a> {
    program: &'a Program,
    call_stack: Vec<String>,
}

/// A lexical environment: names in scope mapped to symbolic values.
type Env = HashMap<String, Expr>;

/// Result of executing a statement list: either it fell through (with the
/// updated environment) or it returned a value.
enum Flow {
    Fallthrough,
    Returned(Expr),
}

impl<'a> Executor<'a> {
    fn err(&self, message: impl Into<String>) -> DslError {
        DslError::Exec {
            message: message.into(),
        }
    }

    fn run(&mut self, def: &FuncDef, args: &[Expr]) -> Result<Expr, DslError> {
        if args.len() != def.params.len() {
            return Err(self.err(format!(
                "{} expects {} arguments, got {}",
                def.name,
                def.params.len(),
                args.len()
            )));
        }
        let mut env: Env = def
            .params
            .iter()
            .cloned()
            .zip(args.iter().cloned())
            .collect();
        env.insert("pi".to_string(), constant(std::f64::consts::PI));
        env.insert("euler_e".to_string(), constant(std::f64::consts::E));
        match self.exec_block(&def.body, &mut env)? {
            Flow::Returned(e) => Ok(e),
            Flow::Fallthrough => Err(self.err(format!(
                "function {} can fall off the end without returning",
                def.name
            ))),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env) -> Result<Flow, DslError> {
        for stmt in stmts {
            match stmt {
                Stmt::Assign(name, pe) => {
                    let v = self.eval(pe, env)?;
                    env.insert(name.clone(), v);
                }
                Stmt::Return(pe) => {
                    let v = self.eval(pe, env)?;
                    return Ok(Flow::Returned(v));
                }
                Stmt::If {
                    lhs,
                    op,
                    rhs,
                    then,
                    otherwise,
                } => {
                    let l = self.eval(lhs, env)?;
                    let r = self.eval(rhs, env)?;
                    // Normalize to `cond >= 0` selecting the then branch.
                    // Strict and non-strict comparisons coincide except on the
                    // measure-zero switching surface.
                    let cond = match op {
                        CmpOp::Ge | CmpOp::Gt => &l - &r,
                        CmpOp::Le | CmpOp::Lt => &r - &l,
                    };
                    // Constant conditions select a branch outright (this also
                    // prevents spurious merge errors for dead branches).
                    if let Some(c) = cond.as_const() {
                        let taken = if c >= 0.0 { then } else { otherwise };
                        if let Flow::Returned(v) = self.exec_block(taken, env)? {
                            return Ok(Flow::Returned(v));
                        }
                        continue;
                    }
                    let mut then_env = env.clone();
                    let mut else_env = env.clone();
                    let tflow = self.exec_block(then, &mut then_env)?;
                    let eflow = if otherwise.is_empty() {
                        Flow::Fallthrough
                    } else {
                        self.exec_block(otherwise, &mut else_env)?
                    };
                    match (tflow, eflow) {
                        (Flow::Returned(tv), Flow::Returned(ev)) => {
                            return Ok(Flow::Returned(Expr::ite(&cond, &tv, &ev)));
                        }
                        (Flow::Fallthrough, Flow::Fallthrough) => {
                            // Merge every name defined in either branch.
                            let names: std::collections::BTreeSet<&String> =
                                then_env.keys().chain(else_env.keys()).collect();
                            let mut merged = Env::new();
                            for name in names {
                                // Names defined on one path only are dropped:
                                // referencing them later is an "undefined
                                // name" error, the same judgement Python
                                // would make dynamically on the missing path.
                                if let (Some(t), Some(e)) = (then_env.get(name), else_env.get(name))
                                {
                                    let v = if t.same(e) {
                                        t.clone()
                                    } else {
                                        Expr::ite(&cond, t, e)
                                    };
                                    merged.insert(name.clone(), v);
                                }
                            }
                            *env = merged;
                        }
                        _ => {
                            return Err(self.err(
                                "branches of 'if' must either both return or both fall through",
                            ));
                        }
                    }
                }
            }
        }
        Ok(Flow::Fallthrough)
    }

    fn eval(&mut self, pe: &PExpr, env: &Env) -> Result<Expr, DslError> {
        Ok(match pe {
            PExpr::Num(v) => constant(*v),
            PExpr::Name(n) => env
                .get(n)
                .cloned()
                .ok_or_else(|| self.err(format!("undefined name {n:?}")))?,
            PExpr::Neg(a) => -self.eval(a, env)?,
            PExpr::Add(a, b) => self.eval(a, env)? + self.eval(b, env)?,
            PExpr::Sub(a, b) => self.eval(a, env)? - self.eval(b, env)?,
            PExpr::Mul(a, b) => self.eval(a, env)? * self.eval(b, env)?,
            PExpr::Div(a, b) => self.eval(a, env)? / self.eval(b, env)?,
            PExpr::Pow(a, b) => {
                let base = self.eval(a, env)?;
                let exp = self.eval(b, env)?;
                base.pow(&exp)
            }
            PExpr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.call(name, &vals)?
            }
        })
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<Expr, DslError> {
        let arity = |n: usize| -> Result<(), DslError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(self.err(format!(
                    "{name} expects {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        match name {
            "exp" => {
                arity(1)?;
                Ok(args[0].exp())
            }
            "log" | "ln" => {
                arity(1)?;
                Ok(args[0].ln())
            }
            "sqrt" => {
                arity(1)?;
                Ok(args[0].sqrt())
            }
            "cbrt" => {
                arity(1)?;
                Ok(args[0].cbrt())
            }
            "atan" | "arctan" => {
                arity(1)?;
                Ok(args[0].atan())
            }
            "sin" => {
                arity(1)?;
                Ok(args[0].sin())
            }
            "cos" => {
                arity(1)?;
                Ok(args[0].cos())
            }
            "tanh" => {
                arity(1)?;
                Ok(args[0].tanh())
            }
            "abs" => {
                arity(1)?;
                Ok(args[0].abs())
            }
            "lambertw" => {
                arity(1)?;
                Ok(args[0].lambert_w())
            }
            "min" => {
                arity(2)?;
                Ok(args[0].min(&args[1]))
            }
            "max" => {
                arity(2)?;
                Ok(args[0].max(&args[1]))
            }
            _ => {
                // User-defined function: inline by symbolic execution.
                let def = self
                    .program
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown function {name:?}")))?;
                if self.call_stack.iter().any(|f| f == name) {
                    return Err(self.err(format!(
                        "recursive call to {name:?} (DFA implementations are non-recursive)"
                    )));
                }
                self.call_stack.push(name.to_string());
                let result = self.run(def, args);
                self.call_stack.pop();
                result
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_program;
    use super::*;

    fn compile(src: &str, f: &str) -> (Expr, VarSet) {
        let p = parse_program(src).unwrap();
        let mut vars = VarSet::new();
        let e = compile_function(&p, f, &mut vars).unwrap();
        (e, vars)
    }

    #[test]
    fn straight_line_assignments() {
        let (e, vars) = compile(
            "def f(x):\n    a = x * 2\n    b = a + 1\n    a = b * b\n    return a\n",
            "f",
        );
        assert_eq!(vars.len(), 1);
        assert_eq!(e.eval(&[3.0]).unwrap(), 49.0);
    }

    #[test]
    fn builtins_map_to_expr_ops() {
        let (e, _) = compile(
            "def f(x):\n    return exp(log(sqrt(x))) + atan(0) + max(x, 2)\n",
            "f",
        );
        assert!((e.eval(&[4.0]).unwrap() - (2.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn pi_available() {
        let (e, _) = compile("def f(x):\n    return pi * x\n", "f");
        assert!((e.eval(&[2.0]).unwrap() - 2.0 * std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn if_merges_assignments() {
        let src = "\
def f(x):
    if x >= 0:
        y = x
    else:
        y = -x
    return y
";
        let (e, _) = compile(src, "f");
        assert_eq!(e.eval(&[3.0]).unwrap(), 3.0);
        assert_eq!(e.eval(&[-3.0]).unwrap(), 3.0);
    }

    #[test]
    fn if_with_returns_in_both_branches() {
        let src = "\
def f(x):
    if x - 1 > 0:
        return x * 10
    else:
        return x
";
        let (e, _) = compile(src, "f");
        assert_eq!(e.eval(&[2.0]).unwrap(), 20.0);
        assert_eq!(e.eval(&[0.5]).unwrap(), 0.5);
    }

    #[test]
    fn if_without_else_keeps_prior_value() {
        let src = "\
def f(x):
    y = 0
    if x >= 2:
        y = 1
    return y
";
        let (e, _) = compile(src, "f");
        assert_eq!(e.eval(&[3.0]).unwrap(), 1.0);
        assert_eq!(e.eval(&[1.0]).unwrap(), 0.0);
    }

    #[test]
    fn elif_chain_compiles_to_nested_ite() {
        let src = "\
def f(x):
    if x >= 1:
        y = 10
    elif x >= 0:
        y = 20
    else:
        y = 30
    return y
";
        let (e, _) = compile(src, "f");
        assert_eq!(e.eval(&[1.5]).unwrap(), 10.0);
        assert_eq!(e.eval(&[0.5]).unwrap(), 20.0);
        assert_eq!(e.eval(&[-0.5]).unwrap(), 30.0);
    }

    #[test]
    fn user_calls_inline() {
        let src = "\
def helper(t):
    return t * t + 1

def f(x):
    return helper(x) + helper(2 * x)
";
        let (e, vars) = compile(src, "f");
        assert_eq!(vars.len(), 1, "helper params must not leak into the varset");
        assert_eq!(e.eval(&[1.0]).unwrap(), 2.0 + 5.0);
    }

    #[test]
    fn recursion_rejected() {
        let src = "def f(x):\n    return f(x - 1)\n";
        let p = parse_program(src).unwrap();
        let mut vars = VarSet::new();
        let err = compile_function(&p, "f", &mut vars).unwrap_err();
        assert!(format!("{err}").contains("recursive"));
    }

    #[test]
    fn undefined_name_rejected() {
        let src = "def f(x):\n    return x + zz\n";
        let p = parse_program(src).unwrap();
        let mut vars = VarSet::new();
        assert!(compile_function(&p, "f", &mut vars).is_err());
    }

    #[test]
    fn one_sided_definition_unusable_after_join() {
        let src = "\
def f(x):
    if x >= 0:
        y = 1
    return y
";
        let p = parse_program(src).unwrap();
        let mut vars = VarSet::new();
        assert!(compile_function(&p, "f", &mut vars).is_err());
    }

    #[test]
    fn branch_return_mismatch_rejected() {
        let src = "\
def f(x):
    if x >= 0:
        return 1
    else:
        y = 2
    return y
";
        let p = parse_program(src).unwrap();
        let mut vars = VarSet::new();
        assert!(compile_function(&p, "f", &mut vars).is_err());
    }

    #[test]
    fn constant_condition_selects_branch() {
        let src = "\
def f(x):
    if 1 >= 0:
        y = x
    else:
        y = undefined_name_never_evaluated
    return y
";
        // The else branch references an undefined name but is dead.
        let (e, _) = compile(src, "f");
        assert_eq!(e.eval(&[5.0]).unwrap(), 5.0);
    }
}
