//! Tokenizer with Python-style indentation handling.
//!
//! Produces a flat token stream in which block structure is made explicit by
//! `Indent`/`Dedent` tokens, so the parser never needs to look at whitespace.

use super::{DslError, Pos};

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords
    Def,
    Return,
    If,
    Elif,
    Else,
    // Literals and names
    Number(f64),
    Name(String),
    // Punctuation
    LParen,
    RParen,
    Comma,
    Colon,
    // Operators
    Assign,     // =
    Plus,       // +
    Minus,      // -
    Star,       // *
    DoubleStar, // **
    Slash,      // /
    Le,         // <=
    Ge,         // >=
    Lt,         // <
    Gt,         // >
    // Layout
    Newline,
    Indent,
    Dedent,
    Eof,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: Pos,
}

/// Streaming tokenizer; use [`Lexer::tokenize`] for the full stream.
pub struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    indent_stack: Vec<u32>,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
            indent_stack: vec![0],
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> DslError {
        DslError::Lex {
            pos: self.pos(),
            message: message.into(),
        }
    }

    /// Tokenize the entire source.
    pub fn tokenize(mut self) -> Result<Vec<Token>, DslError> {
        let mut out = Vec::new();
        let mut at_line_start = true;
        loop {
            if at_line_start {
                // Measure indentation; skip blank / comment-only lines.
                let mut width = 0u32;
                loop {
                    match self.peek() {
                        Some(b' ') => {
                            self.bump();
                            width += 1;
                        }
                        Some(b'\t') => {
                            return Err(self.err("tabs are not allowed; indent with spaces"));
                        }
                        _ => break,
                    }
                }
                match self.peek() {
                    None => break,
                    Some(b'\n') => {
                        self.bump();
                        continue;
                    }
                    Some(b'#') => {
                        while let Some(c) = self.peek() {
                            if c == b'\n' {
                                break;
                            }
                            self.bump();
                        }
                        continue;
                    }
                    _ => {}
                }
                let current = *self.indent_stack.last().unwrap();
                if width > current {
                    self.indent_stack.push(width);
                    out.push(Token {
                        kind: TokenKind::Indent,
                        pos: self.pos(),
                    });
                } else if width < current {
                    while *self.indent_stack.last().unwrap() > width {
                        self.indent_stack.pop();
                        out.push(Token {
                            kind: TokenKind::Dedent,
                            pos: self.pos(),
                        });
                    }
                    if *self.indent_stack.last().unwrap() != width {
                        return Err(self.err("inconsistent dedent"));
                    }
                }
                at_line_start = false;
            }
            let pos = self.pos();
            let Some(c) = self.peek() else { break };
            match c {
                b'\n' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Newline,
                        pos,
                    });
                    at_line_start = true;
                }
                b' ' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'(' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::LParen,
                        pos,
                    });
                }
                b')' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::RParen,
                        pos,
                    });
                }
                b',' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Comma,
                        pos,
                    });
                }
                b':' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Colon,
                        pos,
                    });
                }
                b'+' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Plus,
                        pos,
                    });
                }
                b'-' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Minus,
                        pos,
                    });
                }
                b'/' => {
                    self.bump();
                    out.push(Token {
                        kind: TokenKind::Slash,
                        pos,
                    });
                }
                b'*' => {
                    self.bump();
                    if self.peek() == Some(b'*') {
                        self.bump();
                        out.push(Token {
                            kind: TokenKind::DoubleStar,
                            pos,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Star,
                            pos,
                        });
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        out.push(Token {
                            kind: TokenKind::Le,
                            pos,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Lt,
                            pos,
                        });
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        out.push(Token {
                            kind: TokenKind::Ge,
                            pos,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Gt,
                            pos,
                        });
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        return Err(self.err("'==' comparisons are not supported"));
                    }
                    out.push(Token {
                        kind: TokenKind::Assign,
                        pos,
                    });
                }
                b'0'..=b'9' | b'.' => {
                    out.push(Token {
                        kind: self.number()?,
                        pos,
                    });
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    out.push(Token {
                        kind: self.name(),
                        pos,
                    });
                }
                other => {
                    return Err(self.err(format!("unexpected character {:?}", other as char)));
                }
            }
        }
        // Close the file: final newline + pending dedents.
        let pos = self.pos();
        if !matches!(out.last().map(|t| &t.kind), Some(TokenKind::Newline) | None) {
            out.push(Token {
                kind: TokenKind::Newline,
                pos,
            });
        }
        while self.indent_stack.len() > 1 {
            self.indent_stack.pop();
            out.push(Token {
                kind: TokenKind::Dedent,
                pos,
            });
        }
        out.push(Token {
            kind: TokenKind::Eof,
            pos,
        });
        Ok(out)
    }

    fn number(&mut self) -> Result<TokenKind, DslError> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'.')) {
            self.bump();
        }
        // Exponent part.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.i;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. `2*euler_e`): rewind.
                self.i = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(TokenKind::Number)
            .map_err(|_| self.err(format!("invalid number literal {text:?}")))
    }

    fn name(&mut self) -> TokenKind {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z') | Some(b'A'..=b'Z') | Some(b'0'..=b'9') | Some(b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).unwrap();
        match text {
            "def" => TokenKind::Def,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "elif" => TokenKind::Elif,
            "else" => TokenKind::Else,
            _ => TokenKind::Name(text.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn simple_expression() {
        let k = kinds("x + 2.5 * y\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Name("x".into()),
                TokenKind::Plus,
                TokenKind::Number(2.5),
                TokenKind::Star,
                TokenKind::Name("y".into()),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn power_and_comparison_operators() {
        let k = kinds("a ** 2 <= b >= c < d > e\n");
        assert!(k.contains(&TokenKind::DoubleStar));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Lt));
        assert!(k.contains(&TokenKind::Gt));
    }

    #[test]
    fn indentation_tokens() {
        let k = kinds("def f(x):\n    y = 1\n    return y\n");
        let indents = k.iter().filter(|t| **t == TokenKind::Indent).count();
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn nested_blocks_dedent_fully_at_eof() {
        let k = kinds("def f(x):\n    if x >= 0:\n        y = 1\n");
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_lines_and_comments_ignored() {
        let k = kinds("x = 1\n\n# a comment\n   # indented comment\ny = 2\n");
        assert!(!k.contains(&TokenKind::Indent));
        assert_eq!(
            k.iter().filter(|t| matches!(t, TokenKind::Name(_))).count(),
            2
        );
    }

    #[test]
    fn scientific_notation() {
        let k = kinds("a = 6.672455060314922e-2\n");
        assert!(k.contains(&TokenKind::Number(6.672455060314922e-2)));
        let k = kinds("a = 1e5\n");
        assert!(k.contains(&TokenKind::Number(1e5)));
    }

    #[test]
    fn name_starting_with_e_not_exponent() {
        let k = kinds("x = 2 * euler_e\n");
        assert!(k.contains(&TokenKind::Name("euler_e".into())));
    }

    #[test]
    fn tabs_rejected() {
        assert!(Lexer::new("def f(x):\n\ty = 1\n").tokenize().is_err());
    }

    #[test]
    fn inconsistent_dedent_rejected() {
        assert!(Lexer::new("def f(x):\n    y = 1\n  z = 2\n")
            .tokenize()
            .is_err());
    }

    #[test]
    fn eof_without_trailing_newline() {
        let k = kinds("x = 1");
        assert_eq!(k.last(), Some(&TokenKind::Eof));
        assert!(k.contains(&TokenKind::Newline));
    }
}
