//! A Python-subset DSL with a symbolic executor.
//!
//! XCVerifier's XCEncoder translates each LIBXC functional's Maple source to
//! Python (via Maple's `CodeGeneration` package) and then *symbolically
//! executes* that Python — straight-line code with non-recursive function
//! calls and if-then-else — into a solver expression. This module reproduces
//! the pipeline: functional sources are written in the same Python subset and
//! compiled to [`crate::Expr`] DAGs.
//!
//! Supported language:
//!
//! ```python
//! def pbe_x(rs, s):
//!     kappa = 0.804
//!     mu = 0.2195149727645171
//!     fx = 1 + kappa - kappa / (1 + mu * s**2 / kappa)
//!     if s - 1 >= 0:          # both branches symbolically executed,
//!         g = fx * 2          # merged into an if-then-else term
//!     else:
//!         g = fx
//!     return g
//! ```
//!
//! * statements: assignment, `if`/`elif`/`else` (on a single comparison),
//!   `return`;
//! * expressions: `+ - * / **`, unary minus, parentheses, number literals,
//!   names, calls to builtins (`exp`, `log`, `ln`, `sqrt`, `cbrt`, `atan`,
//!   `sin`, `cos`, `tanh`, `abs`, `min`, `max`, `lambertw`) and to previously
//!   defined functions (inlined; recursion is rejected);
//! * the names `pi` and `euler_e` are predefined constants.
//!
//! Strict-inequality conditions (`<`, `>`) are normalized to their non-strict
//! counterparts on the branch expression — the two differ only on the
//! measure-zero switching surface, where LIBXC implementations are themselves
//! branch-order dependent.

mod lexer;
mod parser;
mod symexec;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_program, CmpOp, FuncDef, PExpr, Program, Stmt};
pub use symexec::compile_function;

use std::fmt;

/// A source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from any stage of the DSL pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    Lex { pos: Pos, message: String },
    Parse { pos: Pos, message: String },
    Exec { message: String },
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            DslError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            DslError::Exec { message } => write!(f, "symbolic execution error: {message}"),
        }
    }
}
impl std::error::Error for DslError {}

/// Parse a program and symbolically execute `func` into an expression; the
/// function's parameters are interned into `vars` in declaration order.
pub fn compile(
    source: &str,
    func: &str,
    vars: &mut crate::VarSet,
) -> Result<crate::Expr, DslError> {
    let program = parse_program(source)?;
    compile_function(&program, func, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSet;

    #[test]
    fn end_to_end_simple() {
        let src = "def f(x):\n    y = x * x + 1\n    return y\n";
        let mut vars = VarSet::new();
        let e = compile(src, "f", &mut vars).unwrap();
        assert_eq!(e.eval(&[3.0]).unwrap(), 10.0);
    }

    #[test]
    fn end_to_end_branches_and_calls() {
        let src = "\
def sq(x):
    return x ** 2

def f(a, b):
    t = sq(a) + sq(b)
    if a - b >= 0:
        r = t
    else:
        r = -t
    return r
";
        let mut vars = VarSet::new();
        let e = compile(src, "f", &mut vars).unwrap();
        assert_eq!(e.eval(&[3.0, 2.0]).unwrap(), 13.0);
        assert_eq!(e.eval(&[2.0, 3.0]).unwrap(), -13.0);
    }

    #[test]
    fn unknown_function_is_error() {
        let mut vars = VarSet::new();
        let err = compile("def f(x):\n    return x\n", "g", &mut vars).unwrap_err();
        assert!(matches!(err, DslError::Exec { .. }));
    }
}
