//! Infix pretty-printing with minimal parenthesization.

use crate::node::{Expr, Kind};
use std::fmt;

/// Operator precedence for parenthesization decisions.
fn prec(kind: &Kind) -> u8 {
    match kind {
        Kind::Add(..) => 1,
        Kind::Neg(..) => 2,
        Kind::Mul(..) | Kind::Div(..) => 3,
        Kind::PowI(..) | Kind::Pow(..) => 4,
        _ => 5, // atoms and function applications
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if prec(child.kind()) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            Kind::Const(c) => {
                if *c < 0.0 {
                    write!(f, "({c})")
                } else {
                    write!(f, "{c}")
                }
            }
            Kind::Var(v) => write!(f, "x{v}"),
            Kind::Add(a, b) => {
                write_child(f, a, 1)?;
                if let Kind::Neg(inner) = b.kind() {
                    write!(f, " - ")?;
                    write_child(f, inner, 2)
                } else {
                    write!(f, " + ")?;
                    write_child(f, b, 1)
                }
            }
            Kind::Neg(a) => {
                write!(f, "-")?;
                write_child(f, a, 3)
            }
            Kind::Mul(a, b) => {
                write_child(f, a, 3)?;
                write!(f, "*")?;
                write_child(f, b, 4)
            }
            Kind::Div(a, b) => {
                write_child(f, a, 3)?;
                write!(f, "/")?;
                write_child(f, b, 4)
            }
            Kind::PowI(a, n) => {
                write_child(f, a, 5)?;
                write!(f, "^{n}")
            }
            Kind::Pow(a, b) => {
                write_child(f, a, 5)?;
                write!(f, "^(")?;
                write!(f, "{b})")
            }
            Kind::Exp(a) => write!(f, "exp({a})"),
            Kind::Ln(a) => write!(f, "ln({a})"),
            Kind::Sqrt(a) => write!(f, "sqrt({a})"),
            Kind::Cbrt(a) => write!(f, "cbrt({a})"),
            Kind::Atan(a) => write!(f, "atan({a})"),
            Kind::Sin(a) => write!(f, "sin({a})"),
            Kind::Cos(a) => write!(f, "cos({a})"),
            Kind::Tanh(a) => write!(f, "tanh({a})"),
            Kind::Abs(a) => write!(f, "abs({a})"),
            Kind::Min(a, b) => write!(f, "min({a}, {b})"),
            Kind::Max(a, b) => write!(f, "max({a}, {b})"),
            Kind::LambertW(a) => write!(f, "W({a})"),
            Kind::Ite {
                cond,
                then,
                otherwise,
            } => write!(f, "ite({cond} >= 0, {then}, {otherwise})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{constant, var, Expr};

    #[test]
    fn renders_infix() {
        let x = var(0);
        let e = (x.clone() + 1.0) * x.clone();
        let s = format!("{e}");
        assert!(s.contains('+') && s.contains('*'), "{s}");
        assert!(s.contains("(x0 + 1)"), "{s}");
    }

    #[test]
    fn subtraction_renders_minus() {
        let e = var(0) - var(1);
        assert_eq!(format!("{e}"), "x0 - x1");
    }

    #[test]
    fn functions_render() {
        let e = var(0).exp().ln().sqrt();
        assert_eq!(format!("{e}"), "sqrt(ln(exp(x0)))");
    }

    #[test]
    fn power_renders() {
        let e = var(0).powi(3);
        assert_eq!(format!("{e}"), "x0^3");
        let e = var(0).pow(&(var(1) + 1.0));
        assert_eq!(format!("{e}"), "x0^(x1 + 1)");
    }

    #[test]
    fn negative_constant_parenthesized() {
        let e = var(0) * constant(-2.0);
        let s = format!("{e}");
        assert!(s.contains("(-2)"), "{s}");
    }

    #[test]
    fn ite_renders() {
        let e = Expr::ite(&var(0), &constant(1.0), &constant(2.0));
        assert_eq!(format!("{e}"), "ite(x0 >= 0, 1, 2)");
    }
}
