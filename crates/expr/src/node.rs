//! Expression nodes and the global hash-consing interner.
//!
//! Every distinct expression structure exists exactly once in the process:
//! constructing `x + 1` twice returns the *same* `Arc`. This gives
//!
//! * O(1) structural equality (pointer/id comparison),
//! * maximal sharing in derivative DAGs (SCAN's second derivatives reuse
//!   thousands of subterms),
//! * stable [`NodeId`]s usable as memoization keys across passes.
//!
//! The interner stores weak references so dropped expressions are reclaimed;
//! a `Mutex` guards it (construction is a cold path compared to evaluation,
//! which never touches the interner).

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Stable identifier of an interned node (unique per structure, process-wide).
pub type NodeId = u64;

/// An immutable, hash-consed expression.
#[derive(Clone)]
pub struct Expr(pub(crate) Arc<Node>);

pub(crate) struct Node {
    pub id: NodeId,
    pub kind: Kind,
}

/// The operation set of LIBXC DFA implementations (after Maple → Python
/// translation), as consumed by the δ-complete solver.
#[derive(Clone)]
pub enum Kind {
    /// A literal constant (the nearest `f64` to the source literal, exactly as
    /// a C/LIBXC implementation would hold it).
    Const(f64),
    /// A free variable, identified by index into a [`crate::VarSet`].
    Var(u32),
    Add(Expr, Expr),
    Mul(Expr, Expr),
    Div(Expr, Expr),
    Neg(Expr),
    /// Integer power (kept distinct from `Pow` for exact differentiation and
    /// tighter interval enclosures on even powers).
    PowI(Expr, i32),
    /// Real power `a^b`.
    Pow(Expr, Expr),
    Exp(Expr),
    Ln(Expr),
    Sqrt(Expr),
    Cbrt(Expr),
    Atan(Expr),
    Sin(Expr),
    Cos(Expr),
    Tanh(Expr),
    Abs(Expr),
    Min(Expr, Expr),
    Max(Expr, Expr),
    /// Principal Lambert W (needed by AM05's Airy/LAA factor).
    LambertW(Expr),
    /// `if cond >= 0 { then } else { otherwise }` — the normal form for the
    /// piecewise definitions in SCAN-family functionals.
    Ite {
        cond: Expr,
        then: Expr,
        otherwise: Expr,
    },
}

impl Expr {
    /// The node id (stable for the lifetime of the process).
    #[inline]
    pub fn id(&self) -> NodeId {
        self.0.id
    }

    /// The node operation.
    #[inline]
    pub fn kind(&self) -> &Kind {
        &self.0.kind
    }

    /// Pointer equality — equivalent to structural equality thanks to
    /// hash-consing.
    #[inline]
    pub fn same(&self, other: &Expr) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Constant value if this node is a literal.
    pub fn as_const(&self) -> Option<f64> {
        match self.kind() {
            Kind::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Variable index if this node is a variable.
    pub fn as_var(&self) -> Option<u32> {
        match self.kind() {
            Kind::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Number of distinct operation nodes in the DAG (constants and variables
    /// excluded) — the metric the paper uses to describe functional
    /// complexity ("over 300 operations", "over 1000 operations").
    pub fn op_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.clone()];
        let mut count = 0usize;
        while let Some(e) = stack.pop() {
            if !seen.insert(e.id()) {
                continue;
            }
            match e.kind() {
                Kind::Const(_) | Kind::Var(_) => {}
                _ => count += 1,
            }
            e.for_each_child(|c| stack.push(c.clone()));
        }
        count
    }

    /// Total distinct nodes in the DAG.
    pub fn node_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.clone()];
        while let Some(e) = stack.pop() {
            if !seen.insert(e.id()) {
                continue;
            }
            e.for_each_child(|c| stack.push(c.clone()));
        }
        seen.len()
    }

    /// The set of free variable indices.
    pub fn free_vars(&self) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![self.clone()];
        while let Some(e) = stack.pop() {
            if !seen.insert(e.id()) {
                continue;
            }
            if let Kind::Var(v) = e.kind() {
                vars.insert(*v);
            }
            e.for_each_child(|c| stack.push(c.clone()));
        }
        vars.into_iter().collect()
    }

    /// Visit each direct child.
    pub fn for_each_child<F: FnMut(&Expr)>(&self, mut f: F) {
        match self.kind() {
            Kind::Const(_) | Kind::Var(_) => {}
            Kind::Add(a, b)
            | Kind::Mul(a, b)
            | Kind::Div(a, b)
            | Kind::Pow(a, b)
            | Kind::Min(a, b)
            | Kind::Max(a, b) => {
                f(a);
                f(b);
            }
            Kind::Neg(a)
            | Kind::PowI(a, _)
            | Kind::Exp(a)
            | Kind::Ln(a)
            | Kind::Sqrt(a)
            | Kind::Cbrt(a)
            | Kind::Atan(a)
            | Kind::Sin(a)
            | Kind::Cos(a)
            | Kind::Tanh(a)
            | Kind::Abs(a)
            | Kind::LambertW(a) => f(a),
            Kind::Ite {
                cond,
                then,
                otherwise,
            } => {
                f(cond);
                f(then);
                f(otherwise);
            }
        }
    }

    /// Topological order (children before parents) of the reachable DAG.
    pub fn topo_order(&self) -> Vec<Expr> {
        let mut order = Vec::new();
        let mut state: HashMap<NodeId, u8> = HashMap::new(); // 1 = visiting, 2 = done
        let mut stack: Vec<(Expr, bool)> = vec![(self.clone(), false)];
        while let Some((e, expanded)) = stack.pop() {
            if expanded {
                state.insert(e.id(), 2);
                order.push(e);
                continue;
            }
            match state.get(&e.id()) {
                Some(2) => continue,
                Some(1) => continue, // DAG: already scheduled
                _ => {}
            }
            state.insert(e.id(), 1);
            stack.push((e.clone(), true));
            e.for_each_child(|c| {
                if state.get(&c.id()) != Some(&2) {
                    stack.push((c.clone(), false));
                }
            });
        }
        // Deduplicate (a node can be pushed twice before being marked done).
        let mut seen = std::collections::HashSet::new();
        order.retain(|e| seen.insert(e.id()));
        order
    }
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.same(other)
    }
}
impl Eq for Expr {}
impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id().hash(state);
    }
}
impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Structural key used by the interner: operation discriminant + child ids +
/// payload bits.
#[derive(PartialEq, Eq, Hash)]
enum InternKey {
    Const(u64),
    Var(u32),
    Unary(u8, NodeId),
    Binary(u8, NodeId, NodeId),
    PowI(NodeId, i32),
    Ite(NodeId, NodeId, NodeId),
}

fn intern_key(kind: &Kind) -> InternKey {
    match kind {
        Kind::Const(c) => InternKey::Const(c.to_bits()),
        Kind::Var(v) => InternKey::Var(*v),
        Kind::Add(a, b) => InternKey::Binary(0, a.id(), b.id()),
        Kind::Mul(a, b) => InternKey::Binary(1, a.id(), b.id()),
        Kind::Div(a, b) => InternKey::Binary(2, a.id(), b.id()),
        Kind::Pow(a, b) => InternKey::Binary(3, a.id(), b.id()),
        Kind::Min(a, b) => InternKey::Binary(4, a.id(), b.id()),
        Kind::Max(a, b) => InternKey::Binary(5, a.id(), b.id()),
        Kind::Neg(a) => InternKey::Unary(0, a.id()),
        Kind::Exp(a) => InternKey::Unary(1, a.id()),
        Kind::Ln(a) => InternKey::Unary(2, a.id()),
        Kind::Sqrt(a) => InternKey::Unary(3, a.id()),
        Kind::Cbrt(a) => InternKey::Unary(4, a.id()),
        Kind::Atan(a) => InternKey::Unary(5, a.id()),
        Kind::Sin(a) => InternKey::Unary(6, a.id()),
        Kind::Cos(a) => InternKey::Unary(7, a.id()),
        Kind::Tanh(a) => InternKey::Unary(8, a.id()),
        Kind::Abs(a) => InternKey::Unary(9, a.id()),
        Kind::LambertW(a) => InternKey::Unary(10, a.id()),
        Kind::PowI(a, n) => InternKey::PowI(a.id(), *n),
        Kind::Ite {
            cond,
            then,
            otherwise,
        } => InternKey::Ite(cond.id(), then.id(), otherwise.id()),
    }
}

struct Interner {
    map: Mutex<HashMap<InternKey, Weak<Node>>>,
    next_id: AtomicU64,
}

static INTERNER: OnceLock<Interner> = OnceLock::new();

fn interner() -> &'static Interner {
    INTERNER.get_or_init(|| Interner {
        map: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(1),
    })
}

/// Intern a node, returning the canonical `Expr` for its structure.
pub(crate) fn intern(kind: Kind) -> Expr {
    let key = intern_key(&kind);
    let it = interner();
    let mut map = it.map.lock().expect("interner poisoned");
    if let Some(weak) = map.get(&key) {
        if let Some(strong) = weak.upgrade() {
            return Expr(strong);
        }
    }
    let id = it.next_id.fetch_add(1, Ordering::Relaxed);
    let node = Arc::new(Node { id, kind });
    map.insert(key, Arc::downgrade(&node));
    // Opportunistic cleanup when the table accumulates many dead entries.
    if map.len() > 1 << 20 {
        map.retain(|_, w| w.strong_count() > 0);
    }
    Expr(node)
}

#[cfg(test)]
mod tests {
    use crate::{constant, var};

    #[test]
    fn hash_consing_dedups() {
        let x = var(0);
        let a = x.clone() + constant(1.0);
        let b = var(0) + constant(1.0);
        assert!(a.same(&b));
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_structures_distinct_ids() {
        let x = var(0);
        let a = x.clone() + constant(1.0);
        let b = x * constant(2.0);
        assert!(!a.same(&b));
    }

    #[test]
    fn op_count_shares_dag() {
        let x = var(0);
        let t = x.clone() * x.clone(); // 1 op
        let e = t.clone() + t.clone(); // add counts once, t counts once
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn free_vars_sorted_unique() {
        let e = var(2) + var(0) * var(2);
        assert_eq!(e.free_vars(), vec![0, 2]);
    }

    #[test]
    fn topo_order_children_first() {
        let x = var(0);
        let sq = x.clone() * x.clone();
        let e = sq.clone() + constant(1.0);
        let order = e.topo_order();
        let pos = |n: &crate::Expr| order.iter().position(|o| o.same(n)).unwrap();
        assert!(pos(&x) < pos(&sq));
        assert!(pos(&sq) < pos(&e));
        // Every node exactly once.
        let ids: std::collections::HashSet<_> = order.iter().map(|e| e.id()).collect();
        assert_eq!(ids.len(), order.len());
    }

    #[test]
    fn node_count_on_shared_tree() {
        let x = var(0);
        let t = x.clone() * x.clone();
        let e = t.clone() + t.clone();
        // nodes: x, t, e  (plus none for constants)
        assert_eq!(e.node_count(), 3);
    }
}
