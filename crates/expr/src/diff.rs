//! Symbolic differentiation (the SymPy substitute of XCEncoder).
//!
//! Derivatives are computed over the hash-consed DAG with memoization, so
//! shared subterms are differentiated once. Piecewise nodes differentiate
//! branchwise (the distributional term at the switching surface is ignored,
//! exactly as in the paper's SymPy pipeline and in LIBXC's own generated
//! derivative code).

use crate::build::constant;
use crate::node::{Expr, Kind, NodeId};
use std::collections::HashMap;

impl Expr {
    /// The partial derivative with respect to variable index `v`.
    pub fn diff(&self, v: u32) -> Expr {
        let mut d = Differ {
            var: v,
            cache: HashMap::new(),
        };
        d.diff(self)
    }
}

struct Differ {
    var: u32,
    cache: HashMap<NodeId, Expr>,
}

impl Differ {
    fn diff(&mut self, e: &Expr) -> Expr {
        if let Some(d) = self.cache.get(&e.id()) {
            return d.clone();
        }
        let d = self.diff_uncached(e);
        self.cache.insert(e.id(), d.clone());
        d
    }

    fn diff_uncached(&mut self, e: &Expr) -> Expr {
        match e.kind() {
            Kind::Const(_) => constant(0.0),
            Kind::Var(i) => constant(if *i == self.var { 1.0 } else { 0.0 }),
            Kind::Add(a, b) => self.diff(a) + self.diff(b),
            Kind::Neg(a) => -self.diff(a),
            Kind::Mul(a, b) => self.diff(a) * b + a * self.diff(b),
            Kind::Div(a, b) => (self.diff(a) * b - a * self.diff(b)) / b.powi(2),
            Kind::PowI(a, n) => constant(f64::from(*n)) * a.powi(n - 1) * self.diff(a),
            Kind::Pow(a, b) => {
                // d(a^b) = a^b (b' ln a + b a'/a)
                let da = self.diff(a);
                let db = self.diff(b);
                e * (db * a.ln() + b * da / a)
            }
            Kind::Exp(a) => e * self.diff(a),
            Kind::Ln(a) => self.diff(a) / a,
            Kind::Sqrt(a) => self.diff(a) / (2.0 * e),
            Kind::Cbrt(a) => self.diff(a) / (3.0 * e.powi(2)),
            Kind::Atan(a) => self.diff(a) / (a.powi(2) + 1.0),
            Kind::Sin(a) => a.cos() * self.diff(a),
            Kind::Cos(a) => -(a.sin()) * self.diff(a),
            Kind::Tanh(a) => (constant(1.0) - e.powi(2)) * self.diff(a),
            Kind::Abs(a) => {
                // sign(a) * a', expressed piecewise; not differentiable at 0.
                let da = self.diff(a);
                Expr::ite(a, &da, &(-&da))
            }
            Kind::Min(a, b) => {
                let da = self.diff(a);
                let db = self.diff(b);
                // min(a,b) = a where b - a >= 0.
                Expr::ite(&(b - a), &da, &db)
            }
            Kind::Max(a, b) => {
                let da = self.diff(a);
                let db = self.diff(b);
                Expr::ite(&(a - b), &da, &db)
            }
            Kind::LambertW(a) => {
                // W'(x) = 1 / (x + e^{W(x)}), finite at x = 0 (value 1).
                self.diff(a) / (a + e.exp())
            }
            Kind::Ite {
                cond,
                then,
                otherwise,
            } => {
                let dt = self.diff(then);
                let de = self.diff(otherwise);
                Expr::ite(cond, &dt, &de)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{constant, var, Expr};

    /// Assert that the symbolic derivative matches a central difference at
    /// several probe points.
    fn check_diff(e: &Expr, v: u32, env_fn: impl Fn(f64) -> Vec<f64>, points: &[f64]) {
        let d = e.diff(v);
        for &p in points {
            let h = 1e-6 * p.abs().max(1.0);
            let mut lo = env_fn(p);
            let mut hi = env_fn(p);
            lo[v as usize] -= h;
            hi[v as usize] += h;
            let num = (e.eval(&hi).unwrap() - e.eval(&lo).unwrap()) / (2.0 * h);
            let sym = d.eval(&env_fn(p)).unwrap();
            let tol = 1e-5 * num.abs().max(1.0);
            assert!(
                (num - sym).abs() <= tol,
                "at {p}: numeric {num} vs symbolic {sym} for {e}"
            );
        }
    }

    #[test]
    fn polynomial_derivative() {
        let x = var(0);
        let e = x.powi(3) + 2.0 * var(0) + 7.0;
        let d = e.diff(0);
        assert_eq!(d.eval(&[2.0]).unwrap(), 14.0); // 3x^2 + 2
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        assert_eq!(constant(5.0).diff(0).as_const(), Some(0.0));
        assert_eq!(var(1).diff(0).as_const(), Some(0.0));
        assert_eq!(var(0).diff(0).as_const(), Some(1.0));
    }

    #[test]
    fn product_and_quotient_rules() {
        let x = var(0);
        let e = (x.clone() + 1.0) * x.exp() / (x.powi(2) + 1.0);
        check_diff(&e, 0, |p| vec![p], &[0.3, 1.0, 2.5]);
    }

    #[test]
    fn transcendental_chain_rule() {
        let x = var(0);
        let e = (x.powi(2) + 1.0).ln().sqrt().atan();
        check_diff(&e, 0, |p| vec![p], &[0.5, 1.0, 3.0]);
        let e = (2.0 * var(0)).sin() * (var(0)).cos() + (var(0) / 3.0).tanh();
        check_diff(&e, 0, |p| vec![p], &[0.2, 1.2]);
    }

    #[test]
    fn general_power_rule() {
        let x = var(0);
        let y = var(1);
        let e = x.pow(&y);
        // d/dx x^y = y x^(y-1); d/dy = x^y ln x.
        let dx = e.diff(0);
        let dy = e.diff(1);
        let v = [2.0, 3.0];
        assert!((dx.eval(&v).unwrap() - 3.0 * 4.0).abs() < 1e-12);
        assert!((dy.eval(&v).unwrap() - 8.0 * 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cbrt_derivative() {
        let e = var(0).cbrt();
        check_diff(&e, 0, |p| vec![p], &[0.5, 8.0]);
    }

    #[test]
    fn lambert_w_derivative() {
        let e = var(0).lambert_w();
        check_diff(&e, 0, |p| vec![p], &[0.5, 1.0, 5.0]);
        // W'(0) = 1 via the x + e^W form.
        let d = e.diff(0);
        assert!((d.eval(&[0.0]).unwrap() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn abs_derivative_is_sign() {
        let e = var(0).abs();
        let d = e.diff(0);
        assert_eq!(d.eval(&[2.0]).unwrap(), 1.0);
        assert_eq!(d.eval(&[-2.0]).unwrap(), -1.0);
    }

    #[test]
    fn min_max_branchwise() {
        let e = var(0).min(&var(0).powi(2));
        let d = e.diff(0);
        // For x in (0,1): x <= x^2 is false -> min = x... careful: x^2 < x on
        // (0,1) so min = x^2, derivative 2x.
        assert!(
            (d.eval(&[0.5]).unwrap() - 1.0).abs() < 1e-14
                || (d.eval(&[0.5]).unwrap() - 2.0 * 0.5).abs() < 1e-14
        );
        // For x > 1: min = x, derivative 1.
        assert_eq!(d.eval(&[2.0]).unwrap(), 1.0);
    }

    #[test]
    fn ite_differentiates_branches() {
        let e = Expr::ite(&(var(0) - 1.0), &var(0).powi(2), &var(0).powi(3));
        let d = e.diff(0);
        assert_eq!(d.eval(&[2.0]).unwrap(), 4.0); // then branch: 2x
        assert_eq!(d.eval(&[0.5]).unwrap(), 0.75); // else branch: 3x^2
    }

    #[test]
    fn second_derivative() {
        let x = var(0);
        let e = x.powi(4);
        let d2 = e.diff(0).diff(0);
        assert_eq!(d2.eval(&[2.0]).unwrap(), 48.0); // 12 x^2
    }

    #[test]
    fn shared_subterm_derivative_shares() {
        // d/dx of f(g) where g appears twice should reuse dg.
        let x = var(0);
        let g = (x.clone() * 37.0 + 1.0).exp();
        let e = g.clone() * g.clone() + g.clone();
        let d = e.diff(0);
        check_diff(&e, 0, |p| vec![p], &[0.01]);
        // DAG sharing keeps the derivative small.
        assert!(d.node_count() < 30);
    }
}
