//! The open functional interface: the [`Functional`] trait and the
//! [`Registry`] of handles the rest of the toolchain dispatches through.
//!
//! # The `Functional` contract
//!
//! A functional is anything that can present itself to the encoder in two
//! synchronized forms:
//!
//! * **symbolically** — enhancement-factor expression DAGs over the
//!   canonical variables, in the fixed order `rs` (index 0), `s` (index 1),
//!   `alpha` (index 2). [`Functional::eps_c_expr`] is the correlation energy
//!   per particle; [`Functional::f_x_expr`] the exchange enhancement when
//!   the functional has an exchange part. Lower rungs simply do not mention
//!   the higher-index variables;
//! * **as scalar closed forms** — [`Functional::eps_c`] / [`Functional::f_x`],
//!   the LIBXC-call analogue the grid-search baseline samples. The two code
//!   paths must agree to ~1e-9 relative error on the Pederson–Burke domain
//!   (`rs ∈ [1e-4, 5]`, `s ∈ [0, 5]`, `α ∈ [0, 5]`); the workspace
//!   cross-validates every registered builtin in
//!   `crates/bench/tests/functional_agreement.rs`.
//!
//! Metadata comes from [`Functional::info`] and [`Functional::var_space`]:
//! the typed variable space names every input axis (kind + PB bounds) and is
//! what the encoder, solver and grid baseline reason about — the default is
//! derived from the family (LDA: `rs`; GGA: `rs, s`; meta-GGA: `rs, s, α`),
//! and spin-resolved citizens override it (`rs, s, α, ζ` or the per-spin
//! `rs, s↑, s↓, ζ`); `has_exchange`/`has_correlation` fix which conditions
//! apply. Everything else (`arity`, `F_c`, `F_xc`, both symbolic and scalar)
//! is derived and should rarely be overridden.
//!
//! The paper's five DFAs remain available as the [`crate::Dfa`] enum — each
//! variant implements `Functional` — but the enum is no longer the boundary
//! of the system: user-defined functionals (e.g. compiled from the Python
//! DSL, see [`crate::DslFunctional`]) register at runtime and flow through
//! the encoder, verifier, grid baseline, campaigns and reports exactly like
//! the builtins.

use crate::error::XcvError;
use crate::registry::{Design, DfaInfo, Family};
use crate::{lda_x, Dfa};
use std::sync::Arc;
use xcv_expr::{Expr, VarSpace};

/// A density functional approximation, as the verification pipeline sees it.
///
/// See the [module documentation](self) for the full contract (canonical
/// variable order `rs, s, alpha`; symbolic/scalar agreement; metadata).
pub trait Functional: Send + Sync {
    /// Static metadata: name, rung, design philosophy, which parts exist.
    fn info(&self) -> DfaInfo;

    /// Symbolic correlation energy per particle `ε_c(rs, s, α)`.
    fn eps_c_expr(&self) -> Expr;

    /// Symbolic exchange enhancement `F_x(s, α)`, if the functional has an
    /// exchange part (`info().has_exchange`).
    fn f_x_expr(&self) -> Option<Expr>;

    /// Scalar `ε_c(rs, s, α)` — the LIBXC-call analogue used by the
    /// grid-search baseline. Lower rungs ignore the extra variables.
    fn eps_c(&self, rs: f64, s: f64, alpha: f64) -> f64;

    /// Scalar `F_x(s, α)`.
    fn f_x(&self, s: f64, alpha: f64) -> Option<f64>;

    // --- derived (rarely overridden) ------------------------------------

    /// The functional's display name (from [`Functional::info`]).
    fn name(&self) -> String {
        self.info().name
    }

    /// The typed variable space of the functional's inputs: one
    /// [`xcv_expr::Axis`] per expression variable index, with names, kinds
    /// and Pederson–Burke bounds. This is the description the encoder, the
    /// solver and the grid baseline reason about; the default is the
    /// positional convention fixed by the family (`rs` | `rs, s` |
    /// `rs, s, α`), so existing implementations are untouched. Spin-resolved
    /// citizens override it — e.g. exact-spin-scaled exchange presents
    /// `(rs, s↑, s↓, ζ)` (see [`crate::spin::SpinScaledX`]).
    fn var_space(&self) -> VarSpace {
        VarSpace::from_arity(match self.info().family {
            Family::Lda => 1,
            Family::Gga => 2,
            Family::MetaGga => 3,
        })
    }

    /// Number of input variables — derived: the dimension of
    /// [`Functional::var_space`].
    fn arity(&self) -> usize {
        self.var_space().ndim()
    }

    /// Symbolic correlation enhancement `F_c = ε_c / ε_x^unif`.
    fn f_c_expr(&self) -> Expr {
        lda_x::enhancement_from_eps(&self.eps_c_expr())
    }

    /// Symbolic total enhancement `F_xc = F_x + F_c` (`None` when the
    /// functional has no exchange part — the Lieb–Oxford conditions then do
    /// not apply).
    fn f_xc_expr(&self) -> Option<Expr> {
        self.f_x_expr().map(|fx| fx + self.f_c_expr())
    }

    /// Scalar `F_c(rs, s, α)`.
    fn f_c(&self, rs: f64, s: f64, alpha: f64) -> f64 {
        lda_x::enhancement_from_eps_scalar(self.eps_c(rs, s, alpha), rs)
    }

    /// Scalar `F_xc(rs, s, α)`.
    fn f_xc(&self, rs: f64, s: f64, alpha: f64) -> Option<f64> {
        self.f_x(s, alpha).map(|fx| fx + self.f_c(rs, s, alpha))
    }

    /// Scalar `ε_c` at a canonical-order point (`rs, s, α`, plus `ζ` for
    /// spin-resolved implementations — see [`crate::spin::SpinResolved`]).
    /// The default forwards to the three-argument form, ignoring anything
    /// beyond `α`; missing trailing coordinates read as 0.
    fn eps_c_at(&self, point: &[f64]) -> f64 {
        let g = |i: usize| point.get(i).copied().unwrap_or(0.0);
        self.eps_c(g(0), g(1), g(2))
    }

    /// Scalar `F_x` at a canonical-order point (see [`Functional::eps_c_at`]).
    fn f_x_at(&self, point: &[f64]) -> Option<f64> {
        let g = |i: usize| point.get(i).copied().unwrap_or(0.0);
        self.f_x(g(1), g(2))
    }

    /// Scalar `F_c` at a canonical-order point (derived).
    fn f_c_at(&self, point: &[f64]) -> f64 {
        let rs = point.first().copied().unwrap_or(f64::NAN);
        lda_x::enhancement_from_eps_scalar(self.eps_c_at(point), rs)
    }

    /// Scalar `F_xc = F_x + F_c` at a point of the functional's
    /// [`Functional::var_space`] (derived; `None` without an exchange part).
    /// The N-D grid baseline samples this for the Lieb–Oxford conditions.
    fn f_xc_at(&self, point: &[f64]) -> Option<f64> {
        self.f_x_at(point).map(|fx| fx + self.f_c_at(point))
    }
}

impl std::fmt::Debug for dyn Functional {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Functional({})", self.name())
    }
}

/// A shared, thread-safe handle to a registered functional — the currency
/// the encoder, campaigns and reports pass around.
pub type FunctionalHandle = Arc<dyn Functional>;

/// The signature of a module-level registration entry point: every
/// functional module (`crate::pbe`, `crate::scan`, …, and `crate::spin`'s
/// constructors) exports a `register` function of this shape, and the
/// built-in registries are assembled purely from such calls.
pub type RegisterFn = fn(&mut Registry) -> Result<FunctionalHandle, XcvError>;

/// Cheap conversion into a [`FunctionalHandle`], so call sites can pass a
/// `Dfa` variant, a handle, or a borrowed handle interchangeably.
pub trait IntoFunctional {
    fn into_handle(self) -> FunctionalHandle;
}

impl IntoFunctional for Dfa {
    fn into_handle(self) -> FunctionalHandle {
        Arc::new(self)
    }
}

impl IntoFunctional for FunctionalHandle {
    fn into_handle(self) -> FunctionalHandle {
        self
    }
}

impl IntoFunctional for &FunctionalHandle {
    fn into_handle(self) -> FunctionalHandle {
        Arc::clone(self)
    }
}

impl<F: Functional + 'static> IntoFunctional for Arc<F> {
    fn into_handle(self) -> FunctionalHandle {
        self
    }
}

/// An ordered, name-indexed collection of functionals.
///
/// Order is preserved (it becomes the column order of rendered tables);
/// names are unique case-insensitively. The paper's evaluation set is
/// [`Registry::builtin`]; [`Registry::register`] accepts any
/// `Arc<dyn Functional>` at runtime.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    items: Vec<FunctionalHandle>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Self {
        Registry::default()
    }

    /// The paper's five DFAs, in its column order
    /// (PBE, LYP, AM05, SCAN, VWN RPA) — assembled from the per-module
    /// [`RegisterFn`] entry points.
    pub fn builtin() -> Self {
        Self::assemble(&[
            crate::pbe::register,
            crate::lyp::register,
            crate::am05::register,
            crate::scan::register,
            crate::vwn::register,
        ])
    }

    /// The paper's five plus the extensions (BLYP and regularized SCAN).
    pub fn extended() -> Self {
        Self::assemble(&[
            crate::pbe::register,
            crate::lyp::register,
            crate::b88::register,
            crate::am05::register,
            crate::scan::register,
            crate::rscan::register,
            crate::vwn::register,
        ])
    }

    /// Every built-in module's registry entry: the extended set plus PW92
    /// (the LDA correlation backbone as a verifiable citizen in its own
    /// right). Assembled purely from the per-module `register` calls — no
    /// enum is consulted.
    pub fn with_builtins() -> Self {
        Self::assemble(&[
            crate::pbe::register,
            crate::lyp::register,
            crate::b88::register,
            crate::am05::register,
            crate::scan::register,
            crate::rscan::register,
            crate::vwn::register,
            crate::pw92::register,
        ])
    }

    /// The ζ-resolved (spin-general) citizens, registered by
    /// [`crate::spin::register`].
    pub fn spin() -> Self {
        let mut r = Registry::empty();
        crate::spin::register(&mut r).expect("spin names are unique");
        r
    }

    /// The spin-general workload: every built-in module entry
    /// ([`Registry::with_builtins`]) plus the ζ-resolved citizens
    /// ([`Registry::spin`]) as additional columns.
    pub fn spin_general() -> Self {
        let mut r = Self::with_builtins();
        crate::spin::register(&mut r).expect("spin names are unique");
        r
    }

    fn assemble(fns: &[RegisterFn]) -> Self {
        let mut r = Registry::empty();
        for f in fns {
            f(&mut r).expect("builtin names are unique");
        }
        r
    }

    /// Register a functional. Fails with [`XcvError::DuplicateFunctional`]
    /// when the name (case-insensitive) is already taken. Returns the handle
    /// for immediate use.
    pub fn register(&mut self, f: FunctionalHandle) -> Result<FunctionalHandle, XcvError> {
        let name = f.name();
        if self.get(&name).is_some() {
            return Err(XcvError::DuplicateFunctional(name));
        }
        self.items.push(Arc::clone(&f));
        Ok(f)
    }

    /// Look a functional up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<FunctionalHandle> {
        self.items
            .iter()
            .find(|f| f.name().eq_ignore_ascii_case(name))
            .cloned()
    }

    /// Like [`Registry::get`] but with an [`XcvError::UnknownFunctional`]
    /// for the miss path.
    pub fn require(&self, name: &str) -> Result<FunctionalHandle, XcvError> {
        self.get(name)
            .ok_or_else(|| XcvError::UnknownFunctional(name.to_string()))
    }

    /// The registered handles, in registration order.
    pub fn handles(&self) -> &[FunctionalHandle] {
        &self.items
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.items.iter().map(|f| f.name()).collect()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &FunctionalHandle> {
        self.items.iter()
    }
}

/// A closure-backed functional, handy for tests and for wrapping ad-hoc
/// scalar/symbolic pairs without a dedicated type.
pub struct FnFunctional<EC, FX>
where
    EC: Fn(f64, f64, f64) -> f64 + Send + Sync,
    FX: Fn(f64, f64) -> f64 + Send + Sync,
{
    pub info: DfaInfo,
    pub eps_c_expr: Expr,
    pub f_x_expr: Option<Expr>,
    pub eps_c: EC,
    pub f_x: Option<FX>,
}

impl<EC, FX> Functional for FnFunctional<EC, FX>
where
    EC: Fn(f64, f64, f64) -> f64 + Send + Sync,
    FX: Fn(f64, f64) -> f64 + Send + Sync,
{
    fn info(&self) -> DfaInfo {
        self.info.clone()
    }
    fn eps_c_expr(&self) -> Expr {
        self.eps_c_expr.clone()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        self.f_x_expr.clone()
    }
    fn eps_c(&self, rs: f64, s: f64, alpha: f64) -> f64 {
        (self.eps_c)(rs, s, alpha)
    }
    fn f_x(&self, s: f64, alpha: f64) -> Option<f64> {
        self.f_x.as_ref().map(|f| f(s, alpha))
    }
}

/// Metadata builder used when declaring non-enum functionals.
pub fn info(
    name: impl Into<String>,
    family: Family,
    design: Design,
    has_exchange: bool,
    has_correlation: bool,
) -> DfaInfo {
    DfaInfo {
        name: name.into(),
        family,
        design,
        has_exchange,
        has_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_matches_paper_set() {
        let r = Registry::builtin();
        assert_eq!(r.len(), 5);
        assert_eq!(r.names(), vec!["PBE", "LYP", "AM05", "SCAN", "VWN RPA"]);
        assert_eq!(Registry::extended().len(), 7);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = Registry::builtin();
        assert!(r.get("pbe").is_some());
        assert!(r.get("vwn rpa").is_some());
        assert!(r.get("B3LYP").is_none());
        assert_eq!(
            r.require("B3LYP").unwrap_err(),
            XcvError::UnknownFunctional("B3LYP".into())
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = Registry::builtin();
        let err = r.register(Arc::new(Dfa::Pbe)).unwrap_err();
        assert_eq!(err, XcvError::DuplicateFunctional("PBE".into()));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn runtime_registration_dispatches_like_builtins() {
        // A fake LDA whose ε_c = -0.1/(1+rs): registered at runtime, it must
        // answer every trait method without touching the Dfa enum.
        let eps = -xcv_expr::constant(0.1) / (xcv_expr::constant(1.0) + xcv_expr::var(0));
        let handle: FunctionalHandle = Arc::new(FnFunctional {
            info: info("toy-lda", Family::Lda, Design::Empirical, false, true),
            eps_c_expr: eps,
            f_x_expr: None,
            eps_c: |rs, _s, _a| -0.1 / (1.0 + rs),
            f_x: None::<fn(f64, f64) -> f64>,
        });
        let mut r = Registry::builtin();
        r.register(Arc::clone(&handle)).unwrap();
        let got = r.get("toy-lda").unwrap();
        assert_eq!(got.arity(), 1);
        assert!(got.f_x_expr().is_none());
        let sym = got.eps_c_expr().eval(&[2.0]).unwrap();
        assert!((sym - got.eps_c(2.0, 0.0, 0.0)).abs() < 1e-15);
        // Derived enhancement factors work through the defaults.
        assert!(got.f_c(2.0, 0.0, 0.0) > 0.0);
        assert!(got.f_xc(2.0, 0.0, 0.0).is_none());
    }

    #[test]
    fn dfa_variants_are_functionals() {
        let h: FunctionalHandle = Dfa::Scan.into_handle();
        assert_eq!(h.name(), "SCAN");
        assert_eq!(h.arity(), 3);
        assert!(h.f_xc_expr().is_some());
    }
}
