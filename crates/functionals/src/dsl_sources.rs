//! DSL sources for a subset of the functionals.
//!
//! These reproduce the XCEncoder path end to end: the functional is written
//! as straight-line Python-subset code (what Maple `CodeGeneration` emits for
//! the LIBXC sources), symbolically executed into an expression DAG, and
//! golden-tested against the builder-constructed DAGs of the sibling
//! modules. Variables follow the canonical order (`rs`, `s`).

/// PBE exchange enhancement factor.
pub const PBE_X: &str = "\
def pbe_fx(rs, s):
    kappa = 0.804
    mu = 0.2195149727645171
    fx = 1 + kappa - kappa / (1 + mu * s ** 2 / kappa)
    return fx
";

/// PW92 LDA correlation (unpolarized), the backbone of PBE correlation.
pub const PW92: &str = "\
def pw92(rs, s):
    a = 0.031091
    alpha1 = 0.21370
    beta1 = 7.5957
    beta2 = 3.5876
    beta3 = 1.6382
    beta4 = 0.49294
    sqrs = sqrt(rs)
    poly = beta1 * sqrs + beta2 * rs + beta3 * rs * sqrs + beta4 * rs ** 2
    inner = 1 + 1 / (2 * a * poly)
    return -2 * a * (1 + alpha1 * rs) * log(inner)
";

/// PBE correlation (unpolarized), calling the PW92 definition.
pub const PBE_C: &str = "\
def pw92(rs, s):
    a = 0.031091
    alpha1 = 0.21370
    beta1 = 7.5957
    beta2 = 3.5876
    beta3 = 1.6382
    beta4 = 0.49294
    sqrs = sqrt(rs)
    poly = beta1 * sqrs + beta2 * rs + beta3 * rs * sqrs + beta4 * rs ** 2
    inner = 1 + 1 / (2 * a * poly)
    return -2 * a * (1 + alpha1 * rs) * log(inner)

def pbe_c(rs, s):
    beta = 0.06672455060314922
    gamma = 0.031090690869654895
    ct = 1.5073033983379012
    ec = pw92(rs, s)
    t2 = ct * s ** 2 / rs
    bg = beta / gamma
    aa = bg / (exp(-ec / gamma) - 1)
    at2 = aa * t2
    inner = 1 + bg * t2 * (1 + at2) / (1 + at2 + at2 ** 2)
    return ec + gamma * log(inner)
";

/// VWN RPA correlation (unpolarized).
pub const VWN_RPA: &str = "\
def vwn_rpa(rs, s):
    a = 0.0310907
    x0 = -0.409286
    b = 13.0720
    c = 42.7198
    x = sqrt(rs)
    bigx = x ** 2 + b * x + c
    q = sqrt(4 * c - b ** 2)
    bigx0 = x0 ** 2 + b * x0 + c
    at = atan(q / (2 * x + b))
    t1 = log(x ** 2 / bigx)
    t2 = 2 * b / q * at
    t3 = b * x0 / bigx0 * (log((x - x0) ** 2 / bigx) + 2 * (b + 2 * x0) / q * at)
    return a * (t1 + t2 - t3)
";

/// A SCAN-style α-switch written with `if`/`else`, exercising the piecewise
/// path of the encoder (not the full SCAN, which the builders provide).
pub const SCAN_F_ALPHA: &str = "\
def scan_f_alpha(alpha):
    c1 = 0.667
    c2 = 0.8
    d = 1.24
    if 1 - alpha >= 0:
        f = exp(-c1 * alpha / (1 - alpha))
    else:
        f = -d * exp(c2 / (1 - alpha))
    return f
";

/// LYP correlation in the reduced (rs, s) form (see `crate::lyp` for the
/// derivation from the Miehlich density form).
pub const LYP_C: &str = "\
def lyp_c(rs, s):
    a = 0.04918
    b = 0.132
    c = 0.2533
    d = 0.349
    cf = 2.871234000188191
    kf_rs = 1.9191582926775128
    q = (4 * pi / 3) ** (1 / 3)
    cq_rs = c * q * rs
    dq_rs = d * q * rs
    denom = 1 + dq_rs
    delta = cq_rs + dq_rs / denom
    k = 1 / 24 + 7 * delta / 72
    g = 4 * k * kf_rs ** 2 * q ** 2
    bracket = cf - g * s ** 2
    return -(a / denom) - a * b * exp(-cq_rs) / denom * bracket
";

/// AM05 exchange enhancement (exercises the Lambert-W builtin).
pub const AM05_X: &str = "\
def am05_fx(rs, s):
    alpha = 2.804
    c = 0.7168
    dd = 28.23705740248932
    if s - 1e-12 <= 0:
        fx = 1
    else:
        x = 1 / (1 + alpha * s ** 2)
        w = lambertw(s ** 1.5 / sqrt(24))
        xi = (1.5 * w) ** (2 / 3)
        fb = pi / 3 * s / (xi * (dd + xi ** 2) ** 0.25)
        cs2 = c * s ** 2
        flaa = (cs2 + 1) / (cs2 / fb + 1)
        fx = x + (1 - x) * flaa
    return fx
";

/// The complete SCAN exchange enhancement factor, with the piecewise α
/// switch written as Python `if`/`else` — the exact shape XCEncoder's
/// symbolic executor must handle for SCAN.
pub const SCAN_X: &str = "\
def scan_h1x(s, alpha):
    k1 = 0.065
    mu = 0.12345679012345678
    b2 = 0.12083045973594572
    b1 = 0.15663207743548518
    b3 = 0.5
    b4 = 0.12183151020599578
    s2 = s ** 2
    term_b4 = b4 / mu * s2 * exp(-b4 / mu * s2)
    oma = 1 - alpha
    quad = b1 * s2 + b2 * oma * exp(-b3 * oma ** 2)
    x = mu * s2 * (1 + term_b4) + quad ** 2
    return 1 + k1 - k1 / (1 + x / k1)

def scan_fx_switch(alpha):
    c1x = 0.667
    c2x = 0.8
    dx = 1.24
    if 1 - alpha >= 0:
        f = exp(-c1x * alpha / (1 - alpha))
    else:
        f = -dx * exp(c2x / (1 - alpha))
    return f

def scan_fx(rs, s, alpha):
    h0x = 1.174
    a1 = 4.9479
    h1 = scan_h1x(s, alpha)
    fa = scan_fx_switch(alpha)
    gx = 1 - exp(-a1 / sqrt(s))
    return (h1 + fa * (h0x - h1)) * gx
";

/// The complete SCAN correlation (ζ = 0), including the PW92 backbone, both
/// endpoint energies, and the piecewise α switch.
pub const SCAN_C: &str = "\
def pw92(rs):
    a = 0.031091
    alpha1 = 0.21370
    beta1 = 7.5957
    beta2 = 3.5876
    beta3 = 1.6382
    beta4 = 0.49294
    sqrs = sqrt(rs)
    poly = beta1 * sqrs + beta2 * rs + beta3 * rs * sqrs + beta4 * rs ** 2
    inner = 1 + 1 / (2 * a * poly)
    return -2 * a * (1 + alpha1 * rs) * log(inner)

def scan_ec0(rs, s):
    b1c = 0.0285764
    b2c = 0.0889
    b3c = 0.125541
    chi_inf = 0.12802585262625815
    ec_lda0 = -b1c / (1 + b2c * sqrt(rs) + b3c * rs)
    w0 = exp(-ec_lda0 / b1c) - 1
    ginf = (1 + 4 * chi_inf * s ** 2) ** -0.25
    return ec_lda0 + b1c * log(1 + w0 * (1 - ginf))

def scan_ec1(rs, s):
    gamma = 0.031091
    ct = 1.5073033983379012
    ec = pw92(rs)
    w1 = exp(-ec / gamma) - 1
    beta = 0.066725 * (1 + 0.1 * rs) / (1 + 0.1778 * rs)
    t2 = ct * s ** 2 / rs
    aa = beta / (gamma * w1)
    g = (1 + 4 * aa * t2) ** -0.25
    return ec + gamma * log(1 + w1 * (1 - g))

def scan_fc_switch(alpha):
    c1c = 0.64
    c2c = 1.5
    dc = 0.7
    if 1 - alpha >= 0:
        f = exp(-c1c * alpha / (1 - alpha))
    else:
        f = -dc * exp(c2c / (1 - alpha))
    return f

def scan_c(rs, s, alpha):
    ec0 = scan_ec0(rs, s)
    ec1 = scan_ec1(rs, s)
    fc = scan_fc_switch(alpha)
    return ec1 + fc * (ec0 - ec1)
";

#[cfg(test)]
mod tests {
    use crate::canonical_vars;
    use xcv_expr::dsl;

    /// Compile a DSL source against the canonical variable set.
    fn compile(src: &str, f: &str) -> xcv_expr::Expr {
        let mut vars = canonical_vars();
        dsl::compile(src, f, &mut vars).expect("DSL compiles")
    }

    #[test]
    fn pbe_x_matches_builder() {
        let dsl_fx = compile(super::PBE_X, "pbe_fx");
        let built = crate::pbe::f_x_expr();
        for &s in &[0.0, 0.5, 1.3, 5.0] {
            let a = dsl_fx.eval(&[1.0, s, 0.0]).unwrap();
            let b = built.eval(&[1.0, s, 0.0]).unwrap();
            assert!((a - b).abs() < 1e-14, "s={s}: {a} vs {b}");
        }
    }

    #[test]
    fn pw92_matches_builder() {
        let dsl_e = compile(super::PW92, "pw92");
        for &rs in &[1e-4, 0.3, 1.0, 5.0] {
            let a = dsl_e.eval(&[rs, 0.0, 0.0]).unwrap();
            let b = crate::pw92::eps_c(rs);
            assert!((a - b).abs() < 1e-13 * b.abs().max(1e-10), "rs={rs}");
        }
    }

    #[test]
    fn pbe_c_matches_builder() {
        let dsl_e = compile(super::PBE_C, "pbe_c");
        for &rs in &[0.1, 1.0, 4.0] {
            for &s in &[0.0, 1.0, 3.0] {
                let a = dsl_e.eval(&[rs, s, 0.0]).unwrap();
                let b = crate::pbe::eps_c(rs, s);
                assert!(
                    (a - b).abs() < 1e-12 * b.abs().max(1e-10),
                    "rs={rs}, s={s}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn vwn_rpa_matches_builder() {
        let dsl_e = compile(super::VWN_RPA, "vwn_rpa");
        for &rs in &[1e-4, 0.5, 1.0, 5.0] {
            let a = dsl_e.eval(&[rs, 0.0, 0.0]).unwrap();
            let b = crate::vwn::eps_c(rs);
            assert!((a - b).abs() < 1e-12 * b.abs().max(1e-10), "rs={rs}");
        }
    }

    #[test]
    fn scan_switch_matches_builder_branches() {
        let mut vars = xcv_expr::VarSet::from_names(["alpha"]);
        let dsl_f = xcv_expr::dsl::compile(super::SCAN_F_ALPHA, "scan_f_alpha", &mut vars)
            .expect("compiles");
        for &alpha in &[0.0, 0.5, 0.99, 1.5, 4.0] {
            let got = dsl_f.eval(&[alpha]).unwrap();
            let want = if alpha <= 1.0 {
                (-0.667 * alpha / (1.0 - alpha)).exp()
            } else {
                -1.24 * (0.8 / (1.0 - alpha)).exp()
            };
            assert!((got - want).abs() < 1e-14, "α={alpha}: {got} vs {want}");
        }
    }

    #[test]
    fn lyp_c_matches_builder() {
        let dsl_e = compile(super::LYP_C, "lyp_c");
        for &rs in &[1e-4, 0.5, 2.0, 5.0] {
            for &s in &[0.0, 1.0, 2.5, 5.0] {
                let a = dsl_e.eval(&[rs, s, 0.0]).unwrap();
                let b = crate::lyp::eps_c(rs, s);
                assert!(
                    (a - b).abs() < 1e-10 * b.abs().max(1e-10),
                    "rs={rs}, s={s}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn am05_x_matches_builder() {
        let dsl_e = compile(super::AM05_X, "am05_fx");
        for &s in &[0.0, 0.3, 1.0, 3.0, 5.0] {
            let a = dsl_e.eval(&[1.0, s, 0.0]).unwrap();
            let b = crate::am05::f_x(s);
            assert!(
                (a - b).abs() < 1e-9 * b.abs().max(1e-9),
                "s={s}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn scan_x_matches_builder() {
        let dsl_e = compile(super::SCAN_X, "scan_fx");
        for &s in &[0.05, 0.5, 2.0, 5.0] {
            for &alpha in &[0.0, 0.5, 1.0, 1.5, 4.0] {
                let a = dsl_e.eval(&[1.0, s, alpha]).unwrap();
                let b = crate::scan::f_x(s, alpha);
                assert!(
                    (a - b).abs() < 1e-9 * b.abs().max(1e-9),
                    "s={s}, alpha={alpha}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn scan_c_matches_builder() {
        let dsl_e = compile(super::SCAN_C, "scan_c");
        for &rs in &[0.1, 1.0, 4.0] {
            for &s in &[0.0, 1.0, 3.0] {
                for &alpha in &[0.0, 1.0, 2.5] {
                    let a = dsl_e.eval(&[rs, s, alpha]).unwrap();
                    let b = crate::scan::eps_c(rs, s, alpha);
                    assert!(
                        (a - b).abs() < 1e-9 * b.abs().max(1e-10),
                        "({rs},{s},{alpha}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_dsl_switch_op_count_substantial() {
        // The DSL-compiled SCAN correlation should be in the same complexity
        // class as the builder's (the paper's "over 1000 operations" point
        // scaled to ζ=0).
        let dsl_e = compile(super::SCAN_C, "scan_c");
        let built = crate::scan::eps_c_expr();
        let (a, b) = (dsl_e.op_count(), built.op_count());
        assert!(a > b / 2 && a < b * 2, "DSL {a} ops vs builder {b} ops");
    }

    #[test]
    fn dsl_derivative_usable() {
        // The DSL output is a first-class Expr: differentiate it.
        let dsl_e = compile(super::PBE_C, "pbe_c");
        let d = dsl_e.diff(crate::registry::RS);
        let v = d.eval(&[1.0, 0.5, 0.0]).unwrap();
        assert!(v.is_finite());
        // Cross-check with central differences.
        let h = 1e-6;
        let num = (dsl_e.eval(&[1.0 + h, 0.5, 0.0]).unwrap()
            - dsl_e.eval(&[1.0 - h, 0.5, 0.0]).unwrap())
            / (2.0 * h);
        assert!((v - num).abs() < 1e-6);
    }
}
