//! Vosko–Wilk–Nusair fit to the RPA correlation energy of the uniform gas
//! (paramagnetic) — the paper's LDA functional "VWN RPA".
//!
//! Reference: S. H. Vosko, L. Wilk, M. Nusair, Can. J. Phys. 58, 1200 (1980),
//! Eq. (4.4) with the RPA (not Ceperley–Alder) parameter set; this is LIBXC's
//! `LDA_C_VWN_RPA` at `ζ = 0`.

use crate::registry::RS;
use xcv_expr::{constant, var, Expr};

/// `A` in Hartree (VWN tabulate 0.0621814 Ry = 0.0310907 Ha).
pub const A: f64 = 0.031_090_7;
pub const X0: f64 = -0.409_286;
pub const B: f64 = 13.072_0;
pub const C: f64 = 42.719_8;

/// Symbolic `ε_c^{VWN-RPA}(rs)`.
pub fn eps_c_expr() -> Expr {
    let x = var(RS).sqrt();
    let xx = x.powi(2) + constant(B) * &x + constant(C); // X(x)
    let q = constant((4.0 * C - B * B).sqrt());
    let xx0 = constant(X0 * X0 + B * X0 + C); // X(x0)
    let atan_term = (&q / (constant(2.0) * &x + constant(B))).atan();
    let term1 = (x.powi(2) / &xx).ln();
    let term2 = (constant(2.0 * B) / &q) * &atan_term;
    let term3a = ((&x - constant(X0)).powi(2) / &xx).ln();
    let term3b = (constant(2.0 * (B + 2.0 * X0)) / &q) * &atan_term;
    let term3 = (constant(B * X0) / xx0) * (term3a + term3b);
    constant(A) * (term1 + term2 - term3)
}

/// Scalar `ε_c^{VWN-RPA}(rs)`. Independent closed-form code path.
pub fn eps_c(rs: f64) -> f64 {
    let x = rs.sqrt();
    let xx = x * x + B * x + C;
    let q = (4.0 * C - B * B).sqrt();
    let xx0 = X0 * X0 + B * X0 + C;
    let atan_term = (q / (2.0 * x + B)).atan();
    let term1 = (x * x / xx).ln();
    let term2 = 2.0 * B / q * atan_term;
    let term3 =
        B * X0 / xx0 * (((x - X0) * (x - X0) / xx).ln() + 2.0 * (B + 2.0 * X0) / q * atan_term);
    A * (term1 + term2 - term3)
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// VWN RPA as an open-trait registry citizen (see [`crate::Functional`]).
pub struct VwnRpa;

impl crate::Functional for VwnRpa {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "VWN RPA",
            crate::Family::Lda,
            crate::Design::NonEmpirical,
            false,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        None
    }
    fn eps_c(&self, rs: f64, _s: f64, _alpha: f64) -> f64 {
        eps_c(rs)
    }
    fn f_x(&self, _s: f64, _alpha: f64) -> Option<f64> {
        None
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(VwnRpa)
}

/// Module-level registration entry point: add VWN RPA to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_matches_scalar() {
        let e = eps_c_expr();
        for &rs in &[1e-4, 0.01, 0.5, 1.0, 2.0, 5.0, 100.0] {
            let sym = e.eval(&[rs, 0.0, 0.0]).unwrap();
            let num = eps_c(rs);
            assert!(
                (sym - num).abs() <= 1e-12 * num.abs().max(1e-12),
                "rs={rs}: {sym} vs {num}"
            );
        }
    }

    #[test]
    fn rpa_reference_values() {
        // RPA correlation energy of the uniform gas: ε_c(rs=1) ≈ -0.0787 Ha,
        // ε_c(rs=5) ≈ -0.0427 Ha (von Barth–Hedin / VWN RPA tabulations).
        assert!((eps_c(1.0) + 0.0787).abs() < 2e-3, "{}", eps_c(1.0));
        assert!((eps_c(5.0) + 0.0427).abs() < 2e-3, "{}", eps_c(5.0));
    }

    #[test]
    fn negative_and_increasing() {
        let mut prev = eps_c(1e-4);
        for i in 1..100 {
            let rs = 1e-4 + (i as f64) * 0.05;
            let v = eps_c(rs);
            assert!(v < 0.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn more_negative_than_pw92() {
        // RPA overbinds: |ε_c^{RPA}| > |ε_c^{PW92}| across the domain.
        for &rs in &[0.1, 1.0, 5.0] {
            assert!(eps_c(rs) < crate::pw92::eps_c(rs));
        }
    }
}
