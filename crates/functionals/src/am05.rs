//! Armiento–Mattsson 2005 GGA (exchange and correlation), unpolarized.
//!
//! Reference: Armiento & Mattsson, Phys. Rev. B 72, 085108 (2005); constants
//! follow LIBXC's `GGA_X_AM05` / `GGA_C_AM05`. The exchange refinement
//! factor is built from the Airy-gas local approximation and involves the
//! principal Lambert W function — the reason this reproduction carries a
//! certified W enclosure in its interval substrate.
//!
//! ```text
//! X(s)      = 1/(1 + α s²)                          α = 2.804
//! ξ(s)      = ( (3/2)·W( s^{3/2}/√24 ) )^{2/3}
//! F_b(s)    = (π/3)·s / ( ξ (D + ξ²)^{1/4} )        D = 28.23705740248932
//! F_LAA(s)  = (c s² + 1) / (c s²/F_b(s) + 1)        c = 0.7168
//! F_x(s)    = X + (1 - X)·F_LAA
//! ε_c(rs,s) = ε_c^{PW92}(rs) · ( X + γ(1 - X) )     γ = 0.8098
//! ```

#[cfg(test)]
use crate::registry::RS;
use crate::registry::S;
use crate::{lda_x, pw92};
use xcv_expr::{constant, var, Expr};
use xcv_interval::lambert_w0_f64;

pub const ALPHA: f64 = 2.804;
pub const C: f64 = 0.716_8;
pub const GAMMA: f64 = 0.809_8;
pub const D: f64 = 28.237_057_402_489_32;

/// Symbolic interpolation index `X(s)`.
pub fn x_index_expr() -> Expr {
    constant(1.0) / (constant(1.0) + constant(ALPHA) * var(S).powi(2))
}

/// Symbolic `F_x^{AM05}(s)`.
pub fn f_x_expr() -> Expr {
    let s = var(S);
    let s2 = s.powi(2);
    let xi = (constant(1.5) * (s.pow(&constant(1.5)) / constant(24.0_f64.sqrt())).lambert_w())
        .pow(&constant(2.0 / 3.0));
    let fb = constant(std::f64::consts::PI / 3.0) * &s
        / (&xi * (constant(D) + xi.powi(2)).pow(&constant(0.25)));
    let flaa = (constant(C) * &s2 + constant(1.0)) / (constant(C) * &s2 / fb + constant(1.0));
    let x = x_index_expr();
    &x + (constant(1.0) - &x) * flaa
}

/// Scalar `F_x^{AM05}(s)`. Independent closed-form code path.
pub fn f_x(s: f64) -> f64 {
    if s == 0.0 {
        return 1.0;
    }
    let x = 1.0 / (1.0 + ALPHA * s * s);
    let w = lambert_w0_f64(s.powf(1.5) / 24.0_f64.sqrt());
    let xi = (1.5 * w).powf(2.0 / 3.0);
    let fb = std::f64::consts::FRAC_PI_3 * s / (xi * (D + xi * xi).powf(0.25));
    let cs2 = C * s * s;
    let flaa = (cs2 + 1.0) / (cs2 / fb + 1.0);
    x + (1.0 - x) * flaa
}

/// Symbolic `ε_x^{AM05}(rs, s)`.
pub fn eps_x_expr() -> Expr {
    lda_x::eps_x_unif_expr() * f_x_expr()
}

/// Scalar `ε_x^{AM05}(rs, s)`.
pub fn eps_x(rs: f64, s: f64) -> f64 {
    lda_x::eps_x_unif(rs) * f_x(s)
}

/// Symbolic `ε_c^{AM05}(rs, s)`.
pub fn eps_c_expr() -> Expr {
    let x = x_index_expr();
    let factor = &x + constant(GAMMA) * (constant(1.0) - &x);
    pw92::eps_c_expr() * factor
}

/// Scalar `ε_c^{AM05}(rs, s)`. Independent closed-form code path.
pub fn eps_c(rs: f64, s: f64) -> f64 {
    let x = 1.0 / (1.0 + ALPHA * s * s);
    pw92::eps_c(rs) * (x + GAMMA * (1.0 - x))
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// AM05 as an open-trait registry citizen (see [`crate::Functional`]).
pub struct Am05;

impl crate::Functional for Am05 {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "AM05",
            crate::Family::Gga,
            crate::Design::NonEmpirical,
            true,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        Some(f_x_expr())
    }
    fn eps_c(&self, rs: f64, s: f64, _alpha: f64) -> f64 {
        eps_c(rs, s)
    }
    fn f_x(&self, s: f64, _alpha: f64) -> Option<f64> {
        Some(f_x(s))
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(Am05)
}

/// Module-level registration entry point: add AM05 to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_expr_matches_scalar() {
        let e = f_x_expr();
        for &s in &[1e-6, 0.1, 0.5, 1.0, 2.0, 5.0] {
            let sym = e.eval(&[1.0, s, 0.0]).unwrap();
            let num = f_x(s);
            assert!(
                (sym - num).abs() <= 1e-11 * num.abs().max(1e-10),
                "s={s}: {sym} vs {num}"
            );
        }
    }

    #[test]
    fn correlation_expr_matches_scalar() {
        let e = eps_c_expr();
        for &rs in &[1e-4, 0.5, 1.0, 5.0] {
            for &s in &[0.0, 0.5, 2.0, 5.0] {
                let sym = e.eval(&[rs, s, 0.0]).unwrap();
                let num = eps_c(rs, s);
                assert!(
                    (sym - num).abs() <= 1e-11 * num.abs().max(1e-12),
                    "rs={rs}, s={s}"
                );
            }
        }
    }

    #[test]
    fn lda_limit() {
        // s -> 0: F_x -> 1 (the Airy LAA interpolation is normalized so that
        // F_b(0) ≈ 1 via the constant D) and ε_c -> ε_c^{PW92}.
        assert!((f_x(1e-8) - 1.0).abs() < 1e-3);
        assert!((eps_c(1.0, 0.0) - pw92::eps_c(1.0)).abs() < 1e-14);
    }

    #[test]
    fn exchange_growth_moderate() {
        // AM05 exchange grows with s but stays modest on the PB domain —
        // F_x(5) is below the Lieb–Oxford-ish scale ≈ 2.
        let v = f_x(5.0);
        assert!(v > 1.2 && v < 2.1, "F_x(5) = {v}");
        assert!(f_x(2.0) > f_x(1.0));
    }

    #[test]
    fn correlation_interpolates_between_full_and_gamma() {
        // Factor ranges between 1 (s=0) and γ (s -> inf).
        let full = pw92::eps_c(2.0);
        assert!((eps_c(2.0, 0.0) - full).abs() < 1e-14);
        let damped = eps_c(2.0, 100.0);
        assert!((damped - GAMMA * full).abs() < 1e-4 * full.abs());
        // Monotone in between.
        assert!(eps_c(2.0, 1.0) > full && eps_c(2.0, 1.0) < 0.0);
    }

    #[test]
    fn correlation_nonpositive_everywhere() {
        // AM05 verifies EC1 in the paper (Table I ✓).
        for i in 0..30 {
            for j in 0..30 {
                let rs = 1e-4 + 5.0 * (i as f64) / 29.0;
                let s = 5.0 * (j as f64) / 29.0;
                assert!(eps_c(rs, s) <= 0.0);
            }
        }
    }

    #[test]
    fn fc_rs_derivative_nonnegative() {
        // EC2 for AM05 holds because the s-factor is rs-independent.
        let fc = lda_x::enhancement_from_eps(&eps_c_expr());
        let d = fc.diff(RS);
        for &rs in &[0.01, 0.5, 2.0, 4.9] {
            for &s in &[0.0, 1.0, 4.0] {
                assert!(d.eval(&[rs, s, 0.0]).unwrap() >= -1e-12);
            }
        }
    }
}
