//! Shared physical constants of the reduced-variable formulation (Hartree
//! atomic units, unpolarized `ζ = 0`).

/// Exchange prefactor: `ε_x^unif(rs) = -A_X / rs` with
/// `A_X = (3/4) (9/(4π²))^{1/3}`.
pub const A_X: f64 = 0.458_165_293_283_142_9;

/// `t² = C_T s²/rs` — conversion between the reduced gradient `s` (normalized
/// by `2 k_F n`) and PBE's screening-normalized gradient `t` (normalized by
/// `2 k_s n`), at `ζ = 0`: `C_T = (π/4)(9π/4)^{1/3}`.
pub const C_T: f64 = 1.507_303_398_337_901_2;

/// Thomas–Fermi kinetic prefactor `C_F = (3/10)(3π²)^{2/3}`.
pub const C_F: f64 = 2.871_234_000_188_191;

/// `k_F·rs = (9π/4)^{1/3}`.
pub const KF_RS: f64 = 1.919_158_292_677_512_8;

/// Electron density from the Wigner–Seitz radius: `n = 3/(4π rs³)`.
pub fn density_from_rs(rs: f64) -> f64 {
    3.0 / (4.0 * std::f64::consts::PI * rs.powi(3))
}

/// Wigner–Seitz radius from the density.
pub fn rs_from_density(n: f64) -> f64 {
    (3.0 / (4.0 * std::f64::consts::PI * n)).cbrt()
}

/// `|∇n|` corresponding to a reduced gradient `s` at density `n`:
/// `|∇n| = 2 (3π²)^{1/3} n^{4/3} s`.
pub fn grad_norm_from_s(n: f64, s: f64) -> f64 {
    2.0 * (3.0 * std::f64::consts::PI.powi(2)).cbrt() * n.powf(4.0 / 3.0) * s
}

/// The uniform-gas exchange energy per particle, `ε_x^unif(rs)`.
pub fn eps_x_unif(rs: f64) -> f64 {
    -A_X / rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn a_x_matches_definition() {
        let expected = 0.75 * (9.0 / (4.0 * PI * PI)).cbrt();
        assert!((A_X - expected).abs() < 1e-15);
    }

    #[test]
    fn c_t_matches_definition() {
        let expected = (PI / 4.0) * (9.0 * PI / 4.0).cbrt();
        assert!((C_T - expected).abs() < 1e-14);
    }

    #[test]
    fn c_f_matches_definition() {
        let expected = 0.3 * (3.0 * PI * PI).powf(2.0 / 3.0);
        assert!((C_F - expected).abs() < 1e-14);
    }

    #[test]
    fn kf_rs_matches_definition() {
        let expected = (9.0 * PI / 4.0).cbrt();
        assert!((KF_RS - expected).abs() < 1e-15);
    }

    #[test]
    fn density_round_trip() {
        for &rs in &[0.1, 1.0, 2.5, 5.0] {
            let n = density_from_rs(rs);
            assert!((rs_from_density(n) - rs).abs() < 1e-12);
        }
    }

    #[test]
    fn eps_x_unif_known_value() {
        // ε_x^unif at rs = 1 equals -A_X.
        assert_eq!(eps_x_unif(1.0), -A_X);
        // And via the density form: ε_x = -(3/4)(3n/π)^{1/3}.
        let rs = 2.0;
        let n = density_from_rs(rs);
        let direct = -0.75 * (3.0 * n / PI).cbrt();
        assert!((eps_x_unif(rs) - direct).abs() < 1e-14);
    }

    #[test]
    fn grad_norm_consistent_with_s_definition() {
        let (rs, s) = (1.3, 0.7);
        let n = density_from_rs(rs);
        let g = grad_norm_from_s(n, s);
        let s_back = g / (2.0 * (3.0 * PI * PI).cbrt() * n.powf(4.0 / 3.0));
        assert!((s_back - s).abs() < 1e-12);
    }
}
