//! SCAN meta-GGA (exchange and correlation), unpolarized.
//!
//! Reference: Sun, Ruzsinszky, Perdew, Phys. Rev. Lett. 115, 036402 (2015)
//! and its supplemental material. SCAN depends on `rs`, `s`, and the
//! iso-orbital indicator `α`; its interpolation function `f(α)` switches
//! functional form at `α = 1`, which our expression DAG represents with an
//! explicit if-then-else node — exactly the structure XCEncoder extracts
//! from the LIBXC Maple source, and (together with the essential
//! singularities `exp(±c/(1-α))` at the switch) the reason the paper's
//! solver times out on every SCAN condition.

use crate::constants::C_T;
use crate::registry::{ALPHA, RS, S};
use crate::{lda_x, pw92};
use xcv_expr::{constant, var, Expr};

// --- exchange constants (SCAN paper, supplemental) ---
pub const K1: f64 = 0.065;
/// `μ_AK = 10/81`, the tight gradient-expansion coefficient.
pub const MU_AK: f64 = 10.0 / 81.0;
pub const B2: f64 = 0.120_830_459_735_945_72; // sqrt(5913/405000)
pub const B1: f64 = 0.156_632_077_435_485_18; // (511/13500)/(2 b2)
pub const B3: f64 = 0.5;
pub const B4: f64 = 0.121_831_510_205_995_78; // mu^2/k1 - 1606/18225 - b1^2
pub const C1X: f64 = 0.667;
pub const C2X: f64 = 0.8;
pub const DX: f64 = 1.24;
pub const H0X: f64 = 1.174;
pub const A1: f64 = 4.947_9;

// --- correlation constants ---
pub const B1C: f64 = 0.028_576_4;
pub const B2C: f64 = 0.088_9;
pub const B3C: f64 = 0.125_541;
pub const C1C: f64 = 0.64;
pub const C2C: f64 = 1.5;
pub const DC: f64 = 0.7;
/// `χ_∞` for the `g_∞` gradient damping of the low-density limit.
pub const CHI_INF: f64 = 0.128_025_852_626_258_15;
/// `γ` of the H1 term (same as PBE's γ).
pub const GAMMA: f64 = 0.031_091;

/// The α-interpolation switch `f(α)`: `exp(-c1 α/(1-α))` for `α < 1`,
/// `-d exp(c2/(1-α))` for `α > 1` (both branches tend to 0 at `α = 1`).
fn f_alpha_expr(c1: f64, c2: f64, d: f64) -> Expr {
    let alpha = var(ALPHA);
    let one_minus = constant(1.0) - &alpha;
    let lo = (-(constant(c1) * &alpha) / &one_minus).exp();
    let hi = -(constant(d) * (constant(c2) / &one_minus).exp());
    Expr::ite(&one_minus, &lo, &hi)
}

/// Scalar `f(α)`.
fn f_alpha(alpha: f64, c1: f64, c2: f64, d: f64) -> f64 {
    if alpha <= 1.0 {
        if alpha == 1.0 {
            0.0
        } else {
            (-c1 * alpha / (1.0 - alpha)).exp()
        }
    } else {
        -d * (c2 / (1.0 - alpha)).exp()
    }
}

/// Symbolic exchange enhancement `F_x^{SCAN}(s, α)`.
pub fn f_x_expr() -> Expr {
    let s2 = var(S).powi(2);
    let alpha = var(ALPHA);
    // x(s, α)
    let term_b4 = (constant(B4 / MU_AK) * &s2) * (-(constant(B4.abs() / MU_AK) * &s2)).exp();
    let one_minus_a = constant(1.0) - &alpha;
    let quad = constant(B1) * &s2
        + constant(B2) * &one_minus_a * (-(constant(B3) * one_minus_a.powi(2))).exp();
    let x = constant(MU_AK) * &s2 * (constant(1.0) + term_b4) + quad.powi(2);
    // h1x
    let h1x = constant(1.0 + K1) - constant(K1) / (constant(1.0) + x / constant(K1));
    // gx(s) = 1 - exp(-a1 / sqrt(s))
    let gx = constant(1.0) - (-(constant(A1) / var(S).sqrt())).exp();
    let fa = f_alpha_expr(C1X, C2X, DX);
    (&h1x + fa * (constant(H0X) - &h1x)) * gx
}

/// Scalar `F_x^{SCAN}(s, α)`. Independent closed-form code path.
pub fn f_x(s: f64, alpha: f64) -> f64 {
    let s2 = s * s;
    let term_b4 = B4 / MU_AK * s2 * (-B4.abs() / MU_AK * s2).exp();
    let oma = 1.0 - alpha;
    let quad = B1 * s2 + B2 * oma * (-B3 * oma * oma).exp();
    let x = MU_AK * s2 * (1.0 + term_b4) + quad * quad;
    let h1x = 1.0 + K1 - K1 / (1.0 + x / K1);
    let gx = if s == 0.0 {
        1.0
    } else {
        1.0 - (-A1 / s.sqrt()).exp()
    };
    let fa = f_alpha(alpha, C1X, C2X, DX);
    (h1x + fa * (H0X - h1x)) * gx
}

/// Symbolic `ε_x^{SCAN}(rs, s, α)`.
pub fn eps_x_expr() -> Expr {
    lda_x::eps_x_unif_expr() * f_x_expr()
}

/// Scalar `ε_x^{SCAN}`.
pub fn eps_x(rs: f64, s: f64, alpha: f64) -> f64 {
    lda_x::eps_x_unif(rs) * f_x(s, alpha)
}

/// Symbolic single-orbital limit `ε_c^{0}(rs, s)` (α = 0 endpoint).
fn eps_c0_expr() -> Expr {
    let rs = var(RS);
    let s2 = var(S).powi(2);
    let ec_lda0 =
        -(constant(B1C)) / (constant(1.0) + constant(B2C) * rs.sqrt() + constant(B3C) * &rs);
    let w0 = (-(ec_lda0.clone()) / constant(B1C)).exp() - constant(1.0);
    let ginf = constant(1.0) / (constant(1.0) + constant(4.0 * CHI_INF) * s2).pow(&constant(0.25));
    let h0 = constant(B1C) * (constant(1.0) + w0 * (constant(1.0) - ginf)).ln();
    ec_lda0 + h0
}

/// Symbolic PBE-like limit `ε_c^{1}(rs, s)` (α = 1 endpoint) with the
/// rs-dependent β of SCAN.
fn eps_c1_expr() -> Expr {
    let rs = var(RS);
    let ec_lda = pw92::eps_c_expr();
    let w1 = (-(ec_lda.clone()) / constant(GAMMA)).exp() - constant(1.0);
    let beta = constant(0.066_725) * (constant(1.0) + constant(0.1) * &rs)
        / (constant(1.0) + constant(0.177_8) * &rs);
    let t2 = constant(C_T) * var(S).powi(2) / &rs;
    let a = beta / (constant(GAMMA) * &w1);
    let g = constant(1.0) / (constant(1.0) + constant(4.0) * a * t2).pow(&constant(0.25));
    let h1 = constant(GAMMA) * (constant(1.0) + w1 * (constant(1.0) - g)).ln();
    ec_lda + h1
}

/// The α = 0 endpoint energy, exposed for the regularized-SCAN variant.
pub fn eps_c0_expr_pub() -> Expr {
    eps_c0_expr()
}

/// The α = 1 endpoint energy, exposed for the regularized-SCAN variant.
pub fn eps_c1_expr_pub() -> Expr {
    eps_c1_expr()
}

/// Scalar endpoint energies `(ε_c⁰, ε_c¹)` at `(rs, s)`.
pub fn eps_c_endpoints(rs: f64, s: f64) -> (f64, f64) {
    let s2 = s * s;
    let ec_lda0 = -B1C / (1.0 + B2C * rs.sqrt() + B3C * rs);
    let w0 = (-ec_lda0 / B1C).exp() - 1.0;
    let ginf = (1.0 + 4.0 * CHI_INF * s2).powf(-0.25);
    let ec0 = ec_lda0 + B1C * (1.0 + w0 * (1.0 - ginf)).ln();
    let ec_lda = pw92::eps_c(rs);
    let w1 = (-ec_lda / GAMMA).exp() - 1.0;
    let beta = 0.066_725 * (1.0 + 0.1 * rs) / (1.0 + 0.177_8 * rs);
    let t2 = C_T * s2 / rs;
    let a = beta / (GAMMA * w1);
    let g = (1.0 + 4.0 * a * t2).powf(-0.25);
    let ec1 = ec_lda + GAMMA * (1.0 + w1 * (1.0 - g)).ln();
    (ec0, ec1)
}

/// Symbolic `ε_c^{SCAN}(rs, s, α)`.
pub fn eps_c_expr() -> Expr {
    let ec0 = eps_c0_expr();
    let ec1 = eps_c1_expr();
    let fc = f_alpha_expr(C1C, C2C, DC);
    &ec1 + fc * (ec0 - &ec1)
}

/// Scalar `ε_c^{SCAN}(rs, s, α)`. Independent closed-form code path.
pub fn eps_c(rs: f64, s: f64, alpha: f64) -> f64 {
    let (ec0, ec1) = eps_c_endpoints(rs, s);
    let fc = f_alpha(alpha, C1C, C2C, DC);
    ec1 + fc * (ec0 - ec1)
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// SCAN as an open-trait registry citizen (see [`crate::Functional`]).
pub struct Scan;

impl crate::Functional for Scan {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "SCAN",
            crate::Family::MetaGga,
            crate::Design::NonEmpirical,
            true,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        Some(f_x_expr())
    }
    fn eps_c(&self, rs: f64, s: f64, alpha: f64) -> f64 {
        eps_c(rs, s, alpha)
    }
    fn f_x(&self, s: f64, alpha: f64) -> Option<f64> {
        Some(f_x(s, alpha))
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(Scan)
}

/// Module-level registration entry point: add SCAN to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_constants() {
        assert!((B2 - (5913.0_f64 / 405000.0).sqrt()).abs() < 1e-15);
        assert!((B1 - (511.0 / 13500.0) / (2.0 * B2)).abs() < 1e-15);
        assert!((B4 - (MU_AK * MU_AK / K1 - 1606.0 / 18225.0 - B1 * B1)).abs() < 1e-15);
    }

    #[test]
    fn exchange_expr_matches_scalar() {
        let e = f_x_expr();
        for &s in &[0.01, 0.3, 1.0, 3.0, 5.0] {
            for &alpha in &[0.0, 0.3, 0.9, 1.0, 1.5, 5.0] {
                let sym = e.eval(&[1.0, s, alpha]).unwrap();
                let num = f_x(s, alpha);
                assert!(
                    (sym - num).abs() <= 1e-10 * num.abs().max(1e-10),
                    "s={s}, α={alpha}: {sym} vs {num}"
                );
            }
        }
    }

    #[test]
    fn correlation_expr_matches_scalar() {
        let e = eps_c_expr();
        for &rs in &[1e-3, 0.5, 1.0, 5.0] {
            for &s in &[0.0, 0.5, 2.0] {
                for &alpha in &[0.0, 0.5, 1.0, 2.0] {
                    let sym = e.eval(&[rs, s, alpha]).unwrap();
                    let num = eps_c(rs, s, alpha);
                    assert!(
                        (sym - num).abs() <= 1e-9 * num.abs().max(1e-10),
                        "rs={rs}, s={s}, α={alpha}: {sym} vs {num}"
                    );
                }
            }
        }
    }

    #[test]
    fn interpolation_switch_continuous_at_alpha_one() {
        // f(α) -> 0 from both sides of α = 1.
        for &eps in &[1e-3, 1e-6] {
            assert!(f_alpha(1.0 - eps, C1X, C2X, DX).abs() < 1e-100 / eps.min(1.0) + 1e-3);
            assert!(f_alpha(1.0 + eps, C1X, C2X, DX).abs() < 1e-3);
        }
        // F_x continuous across the switch.
        let below = f_x(1.0, 1.0 - 1e-9);
        let at = f_x(1.0, 1.0);
        let above = f_x(1.0, 1.0 + 1e-9);
        assert!((below - at).abs() < 1e-6 && (above - at).abs() < 1e-6);
    }

    #[test]
    fn exchange_bounded_by_design() {
        // SCAN's tightened Lieb–Oxford bound: F_x <= 1.174 everywhere.
        for i in 0..25 {
            for j in 0..25 {
                let s = 0.01 + 5.0 * (i as f64) / 24.0;
                let alpha = 5.0 * (j as f64) / 24.0;
                let v = f_x(s, alpha);
                assert!(v <= H0X + 1e-10, "F_x({s}, {alpha}) = {v} > 1.174");
                assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn correlation_nonpositive_sampled() {
        // SCAN satisfies EC1 by construction (the paper's solver merely
        // cannot prove it); sample a grid.
        for i in 0..20 {
            for j in 0..20 {
                for k in 0..8 {
                    let rs = 1e-4 + 5.0 * (i as f64) / 19.0;
                    let s = 5.0 * (j as f64) / 19.0;
                    let alpha = 5.0 * (k as f64) / 7.0;
                    let v = eps_c(rs, s, alpha);
                    assert!(v <= 1e-12, "ε_c({rs},{s},{alpha}) = {v}");
                }
            }
        }
    }

    #[test]
    fn alpha_one_reduces_to_pbe_like_form() {
        // At α = 1 the correlation is exactly ε_c^1 (the GGA-like branch).
        let v = eps_c(1.0, 0.5, 1.0);
        // Compare against directly computed ε_c^1.
        let e = super::eps_c1_expr();
        let direct = e.eval(&[1.0, 0.5, 1.0]).unwrap();
        assert!((v - direct).abs() < 1e-12);
    }

    #[test]
    fn uniform_gas_norm() {
        // At s = 0, α = 1: ε_c = ε_c^{PW92} (the HEG norm SCAN reproduces).
        for &rs in &[0.5, 1.0, 2.0] {
            assert!((eps_c(rs, 0.0, 1.0) - pw92::eps_c(rs)).abs() < 1e-12);
        }
    }

    #[test]
    fn op_count_largest_of_all() {
        // The paper: SCAN has "over 1000 operations" in LIBXC (spin-general).
        // Our ζ=0 form must still dwarf PBE's.
        let scan_ops = eps_c_expr().op_count() + f_x_expr().op_count();
        let pbe_ops = crate::pbe::eps_c_expr().op_count() + crate::pbe::f_x_expr().op_count();
        assert!(
            scan_ops > 2 * pbe_ops,
            "SCAN ({scan_ops} ops) should dwarf PBE ({pbe_ops} ops)"
        );
    }
}
