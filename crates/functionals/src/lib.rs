//! Density functional approximations (DFAs) as symbolic expressions and as
//! closed-form scalar code — the LIBXC substitute for the XCVerifier
//! reproduction.
//!
//! The five DFAs evaluated in the paper are implemented for the unpolarized
//! (`ζ = 0`) case used by Pederson–Burke, in the reduced variables
//!
//! * `rs` — Wigner–Seitz radius, `rs = (4πn/3)^{-1/3}` (variable index 0),
//! * `s`  — reduced density gradient `|∇n| / (2 (3π²)^{1/3} n^{4/3})`
//!   (index 1),
//! * `α`  — SCAN's iso-orbital indicator (index 2, meta-GGA only).
//!
//! | DFA | family | design | exchange | correlation |
//! |-----|--------|--------|----------|-------------|
//! | PBE | GGA | non-empirical | yes | yes |
//! | SCAN | meta-GGA | non-empirical | yes | yes |
//! | LYP | GGA | empirical | no | yes |
//! | AM05 | GGA | non-empirical | yes | yes |
//! | VWN RPA | LDA | non-empirical | no | yes |
//!
//! Each functional module provides (a) a builder producing the symbolic
//! expression DAG the verifier analyses (the analogue of symbolically
//! executing the LIBXC Maple/Python source), (b) an independent closed-form
//! `f64` implementation (the analogue of calling LIBXC's C evaluation, used
//! by the grid-search baseline), and (c) its own [`Functional`] registry
//! citizen with a module-level `register(&mut Registry)` entry point — the
//! built-in registries ([`Registry::builtin`], [`Registry::extended`],
//! [`Registry::with_builtins`]) are assembled purely from those calls, and
//! the [`Dfa`] enum is a thin delegation over them. Unit tests
//! cross-validate the two code paths to <= 1e-10 relative error.
//!
//! Variable indices carry physical identity through the typed
//! [`xcv_expr::VarSpace`] every [`Functional`] exposes via
//! `Functional::var_space` (default: the positional convention above,
//! derived from the family).
//!
//! The [`spin`] module extends the workload beyond the paper's `ζ = 0`
//! restriction: [`SpinResolved`] citizens (`PBE(ζ)`, `PW92(ζ)`,
//! `LSDA-X(ζ)`) carry ζ-general expression DAGs over the canonical
//! four-axis space (`ζ`, index [`ZETA`]), and [`SpinScaledX`] citizens
//! (`B88(ζ)`, `PBE-X(ζ)`) carry exact-spin-scaled exchange over the
//! per-spin space `(rs, s↑, s↓, ζ)` — all verifying through the same
//! pipeline.

pub mod am05;
pub mod b88;
pub mod constants;
pub mod dsl_functional;
pub mod dsl_sources;
pub mod error;
pub mod functional;
pub mod lda_x;
pub mod lyp;
pub mod pbe;
pub mod pw92;
pub mod registry;
pub mod rscan;
pub mod scan;
pub mod spin;
pub mod vwn;

pub use dsl_functional::DslFunctional;
pub use error::XcvError;
pub use functional::{
    FnFunctional, Functional, FunctionalHandle, IntoFunctional, RegisterFn, Registry,
};
pub use registry::{Design, Dfa, DfaInfo, Family, ALPHA, RS, S};
pub use spin::{SpinResolved, SpinScaledX, S_DOWN, S_UP, ZETA};

/// The canonical variable set shared by every functional: `rs`, `s`, `alpha`.
pub fn canonical_vars() -> xcv_expr::VarSet {
    xcv_expr::VarSet::from_names(["rs", "s", "alpha"])
}

/// The canonical variable set of the spin-resolved workload:
/// `rs`, `s`, `alpha`, `zeta`.
pub fn spin_vars() -> xcv_expr::VarSet {
    xcv_expr::VarSet::from_names(["rs", "s", "alpha", "zeta"])
}
