//! Density functional approximations (DFAs) as symbolic expressions and as
//! closed-form scalar code — the LIBXC substitute for the XCVerifier
//! reproduction.
//!
//! The five DFAs evaluated in the paper are implemented for the unpolarized
//! (`ζ = 0`) case used by Pederson–Burke, in the reduced variables
//!
//! * `rs` — Wigner–Seitz radius, `rs = (4πn/3)^{-1/3}` (variable index 0),
//! * `s`  — reduced density gradient `|∇n| / (2 (3π²)^{1/3} n^{4/3})`
//!   (index 1),
//! * `α`  — SCAN's iso-orbital indicator (index 2, meta-GGA only).
//!
//! | DFA | family | design | exchange | correlation |
//! |-----|--------|--------|----------|-------------|
//! | PBE | GGA | non-empirical | yes | yes |
//! | SCAN | meta-GGA | non-empirical | yes | yes |
//! | LYP | GGA | empirical | no | yes |
//! | AM05 | GGA | non-empirical | yes | yes |
//! | VWN RPA | LDA | non-empirical | no | yes |
//!
//! Each functional module provides (a) a builder producing the symbolic
//! expression DAG the verifier analyses (the analogue of symbolically
//! executing the LIBXC Maple/Python source) and (b) an independent
//! closed-form `f64` implementation (the analogue of calling LIBXC's C
//! evaluation, used by the grid-search baseline). Unit tests cross-validate
//! the two code paths to <= 1e-10 relative error.

pub mod am05;
pub mod b88;
pub mod constants;
pub mod dsl_functional;
pub mod dsl_sources;
pub mod error;
pub mod functional;
pub mod lda_x;
pub mod lyp;
pub mod pbe;
pub mod pw92;
pub mod registry;
pub mod rscan;
pub mod scan;
pub mod spin;
pub mod vwn;

pub use dsl_functional::DslFunctional;
pub use error::XcvError;
pub use functional::{FnFunctional, Functional, FunctionalHandle, IntoFunctional, Registry};
pub use registry::{Design, Dfa, DfaInfo, Family, ALPHA, RS, S};

/// The canonical variable set shared by every functional: `rs`, `s`, `alpha`.
pub fn canonical_vars() -> xcv_expr::VarSet {
    xcv_expr::VarSet::from_names(["rs", "s", "alpha"])
}
