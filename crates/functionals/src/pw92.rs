//! Perdew–Wang 1992 parametrization of the uniform-gas correlation energy
//! (unpolarized), `ε_c^{PW}(rs)` — the LDA backbone of PBE, AM05 and SCAN.
//!
//! Reference: J. P. Perdew and Y. Wang, Phys. Rev. B 45, 13244 (1992),
//! Eq. (10) with the `ζ = 0` parameter set.

use crate::registry::RS;
use xcv_expr::{constant, var, Expr};

/// `A` in Eq. (10) (called `2A` in some tabulations; here ε_c =
/// `-2A(1+α₁rs)ln[1 + 1/(2A(β₁√rs + β₂rs + β₃rs^{3/2} + β₄rs²))]`).
pub const A: f64 = 0.031_091;
pub const ALPHA1: f64 = 0.213_70;
pub const BETA1: f64 = 7.595_7;
pub const BETA2: f64 = 3.587_6;
pub const BETA3: f64 = 1.638_2;
pub const BETA4: f64 = 0.492_94;

/// Symbolic `ε_c^{PW}(rs)` (unpolarized).
pub fn eps_c_expr() -> Expr {
    let rs = var(RS);
    let sqrt_rs = rs.sqrt();
    let poly = constant(BETA1) * &sqrt_rs
        + constant(BETA2) * &rs
        + constant(BETA3) * &rs * &sqrt_rs
        + constant(BETA4) * rs.powi(2);
    let inner = constant(1.0) + constant(1.0) / (constant(2.0 * A) * poly);
    -(constant(2.0 * A) * (constant(1.0) + constant(ALPHA1) * &rs)) * inner.ln()
}

/// Scalar `ε_c^{PW}(rs)` (unpolarized). Independent closed-form code path.
pub fn eps_c(rs: f64) -> f64 {
    let sq = rs.sqrt();
    let poly = BETA1 * sq + BETA2 * rs + BETA3 * rs * sq + BETA4 * rs * rs;
    let inner = 1.0 + 1.0 / (2.0 * A * poly);
    -2.0 * A * (1.0 + ALPHA1 * rs) * inner.ln()
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// PW92 (the LDA correlation backbone) as an open-trait registry
/// citizen, verifiable in its own right.
pub struct Pw92;

impl crate::Functional for Pw92 {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "PW92",
            crate::Family::Lda,
            crate::Design::NonEmpirical,
            false,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        None
    }
    fn eps_c(&self, rs: f64, _s: f64, _alpha: f64) -> f64 {
        eps_c(rs)
    }
    fn f_x(&self, _s: f64, _alpha: f64) -> Option<f64> {
        None
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(Pw92)
}

/// Module-level registration entry point: add PW92 to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_matches_scalar() {
        let e = eps_c_expr();
        for &rs in &[1e-4, 0.01, 0.5, 1.0, 2.0, 5.0, 100.0] {
            let sym = e.eval(&[rs, 0.0, 0.0]).unwrap();
            let num = eps_c(rs);
            assert!(
                (sym - num).abs() <= 1e-12 * num.abs().max(1e-12),
                "rs={rs}: {sym} vs {num}"
            );
        }
    }

    #[test]
    fn known_reference_values() {
        // PW92 unpolarized ε_c at rs = 1, 2, 5 (standard tabulated values,
        // Hartree): ≈ -0.0600, -0.0448, -0.0282.
        assert!((eps_c(1.0) - (-0.060_0)).abs() < 5e-4, "{}", eps_c(1.0));
        assert!((eps_c(2.0) - (-0.044_8)).abs() < 5e-4, "{}", eps_c(2.0));
        assert!((eps_c(5.0) - (-0.028_2)).abs() < 5e-4, "{}", eps_c(5.0));
    }

    #[test]
    fn always_negative_and_increasing() {
        // ε_c < 0 and monotonically increasing toward 0 with rs.
        let mut prev = eps_c(1e-4);
        assert!(prev < 0.0);
        for i in 1..200 {
            let rs = 1e-4 + (i as f64) * 0.05;
            let v = eps_c(rs);
            assert!(v < 0.0, "ε_c({rs}) = {v} must be negative");
            assert!(v > prev, "ε_c must increase with rs");
            prev = v;
        }
    }

    #[test]
    fn high_density_log_divergence() {
        // As rs -> 0, ε_c ~ A ln rs -> -inf slowly; check it keeps falling.
        assert!(eps_c(1e-6) < eps_c(1e-4));
        assert!(eps_c(1e-4) < eps_c(1e-2));
    }

    #[test]
    fn derivative_positive() {
        // dε_c/drs > 0 everywhere on the PB domain (needed by EC2 for LDA).
        let d = eps_c_expr().diff(RS);
        for &rs in &[1e-4, 0.1, 1.0, 5.0] {
            assert!(d.eval(&[rs, 0.0, 0.0]).unwrap() > 0.0);
        }
    }
}
