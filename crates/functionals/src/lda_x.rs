//! Uniform electron gas (LDA) exchange — the denominator of every
//! enhancement factor.

use crate::constants::A_X;
use crate::registry::RS;
use xcv_expr::{constant, var, Expr};

/// Symbolic `ε_x^unif(rs) = -A_X / rs`.
pub fn eps_x_unif_expr() -> Expr {
    -(constant(A_X) / var(RS))
}

/// Scalar `ε_x^unif(rs)`.
pub fn eps_x_unif(rs: f64) -> f64 {
    -A_X / rs
}

/// Divide a local energy-per-particle by `ε_x^unif` to form an enhancement
/// factor: `F = ε / ε_x^unif = -ε rs / A_X`.
///
/// Written multiplicatively (rather than as a division by the ε_x expression)
/// so the solver sees the benign form; both are mathematically identical on
/// `rs > 0`.
pub fn enhancement_from_eps(eps: &Expr) -> Expr {
    -(eps * var(RS)) / constant(A_X)
}

/// Scalar version of [`enhancement_from_eps`].
pub fn enhancement_from_eps_scalar(eps: f64, rs: f64) -> f64 {
    -eps * rs / A_X
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_matches_scalar() {
        let e = eps_x_unif_expr();
        for &rs in &[1e-4, 0.1, 1.0, 5.0] {
            let sym = e.eval(&[rs, 0.0, 0.0]).unwrap();
            assert!((sym - eps_x_unif(rs)).abs() < 1e-15);
        }
    }

    #[test]
    fn enhancement_of_unif_exchange_is_one() {
        let f = enhancement_from_eps(&eps_x_unif_expr());
        for &rs in &[0.01, 1.0, 4.2] {
            let v = f.eval(&[rs, 0.0, 0.0]).unwrap();
            assert!((v - 1.0).abs() < 1e-14, "F_x[unif]({rs}) = {v}");
        }
    }

    #[test]
    fn enhancement_sign_convention() {
        // ε_c <= 0 corresponds to F_c >= 0 (Equation 4 of the paper).
        assert!(enhancement_from_eps_scalar(-0.05, 1.0) > 0.0);
        assert!(enhancement_from_eps_scalar(0.05, 1.0) < 0.0);
    }
}
