//! Runtime-loaded functionals: Python-subset DSL sources compiled into
//! first-class [`Functional`] registry citizens.
//!
//! This closes the loop the paper's XCEncoder pipeline implies: a functional
//! written in the Maple-`CodeGeneration` Python subset (what
//! `xcv_expr::dsl` consumes) becomes indistinguishable from a built-in —
//! it encodes, verifies, grid-checks, and reports through exactly the same
//! trait-object paths, with no `Dfa` enum variant added anywhere.
//!
//! # Contract
//!
//! DSL functions must declare their parameters as a prefix of the canonical
//! variable order `rs, s, alpha` (matching the functional's family: LDA
//! takes `rs`, GGA `rs, s`, meta-GGA `rs, s, alpha`). The scalar code path
//! is derived by evaluating the compiled DAG, so symbolic/scalar agreement
//! is exact by construction.

use crate::canonical_vars;
use crate::error::XcvError;
use crate::functional::Functional;
use crate::registry::{DfaInfo, Family};
use xcv_expr::{dsl, Expr};

/// A functional compiled from DSL source at runtime.
#[derive(Debug)]
pub struct DslFunctional {
    info: DfaInfo,
    eps_c: Expr,
    f_x: Option<Expr>,
}

impl DslFunctional {
    /// Compile a correlation-only functional from `source`, symbolically
    /// executing the function named `func`.
    pub fn new(info: DfaInfo, source: &str, func: &str) -> Result<Self, XcvError> {
        let eps_c = compile_checked(&info, source, func)?;
        if info.has_exchange {
            return Err(XcvError::dsl(
                info.name.clone(),
                "info.has_exchange is set — use with_exchange to supply F_x",
            ));
        }
        if !info.has_correlation {
            return Err(XcvError::dsl(
                info.name.clone(),
                "a DSL functional must have a correlation part (ε_c)",
            ));
        }
        Ok(DslFunctional {
            info,
            eps_c,
            f_x: None,
        })
    }

    /// Attach an exchange enhancement `F_x` compiled from DSL source,
    /// producing an exchange-correlation functional.
    ///
    /// `F_x` is a function of `s` and `α` only (the `Functional::f_x`
    /// scalar contract); a source whose expression depends on `rs` is
    /// rejected, since the scalar path could not honor it.
    pub fn with_exchange(mut self, source: &str, func: &str) -> Result<Self, XcvError> {
        let fx = compile_checked(&self.info, source, func)?;
        if fx.free_vars().contains(&crate::registry::RS) {
            return Err(XcvError::dsl(
                self.info.name.clone(),
                "the exchange enhancement F_x must depend only on (s, alpha); \
                 this expression depends on rs",
            ));
        }
        self.info.has_exchange = true;
        self.f_x = Some(fx);
        Ok(self)
    }

    /// The compiled correlation DAG (e.g. to inspect its operation count).
    pub fn correlation_dag(&self) -> &Expr {
        &self.eps_c
    }
}

/// Compile `func` from `source` against the canonical variable set and
/// validate the variable contract: only canonical names may be interned and
/// no free variable may exceed the family's arity.
fn compile_checked(info: &DfaInfo, source: &str, func: &str) -> Result<Expr, XcvError> {
    let mut vars = canonical_vars();
    let expr =
        dsl::compile(source, func, &mut vars).map_err(|e| XcvError::dsl(info.name.clone(), e))?;
    if vars.len() > 3 {
        return Err(XcvError::dsl(
            info.name.clone(),
            format!(
                "parameters must be a prefix of the canonical order (rs, s, alpha); \
                 found extra variable {:?}",
                vars.name(3).unwrap_or("?")
            ),
        ));
    }
    let arity = match info.family {
        Family::Lda => 1,
        Family::Gga => 2,
        Family::MetaGga => 3,
    } as u32;
    if let Some(&v) = expr.free_vars().iter().find(|&&v| v >= arity) {
        return Err(XcvError::dsl(
            info.name.clone(),
            format!(
                "expression depends on variable {:?} (index {v}), beyond the \
                 {:?} family's arity {arity}",
                vars.name(v).unwrap_or("?"),
                info.family
            ),
        ));
    }
    Ok(expr)
}

impl Functional for DslFunctional {
    fn info(&self) -> DfaInfo {
        self.info.clone()
    }

    fn eps_c_expr(&self) -> Expr {
        self.eps_c.clone()
    }

    fn f_x_expr(&self) -> Option<Expr> {
        self.f_x.clone()
    }

    /// Scalar path: evaluate the compiled DAG (NaN outside its natural
    /// domain, matching how LIBXC scalar code propagates domain errors).
    fn eps_c(&self, rs: f64, s: f64, alpha: f64) -> f64 {
        self.eps_c.eval(&[rs, s, alpha]).unwrap_or(f64::NAN)
    }

    fn f_x(&self, s: f64, alpha: f64) -> Option<f64> {
        self.f_x
            .as_ref()
            .map(|fx| fx.eval(&[0.0, s, alpha]).unwrap_or(f64::NAN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::info;
    use crate::registry::Design;

    const WIGNER: &str = "\
def wigner_c(rs, s):
    a = 0.44
    b = 7.8
    damp = 1 / (1 + 0.5 * s ** 2)
    return -a / (b + rs) * damp
";

    fn wigner_info() -> DfaInfo {
        info("wigner-like", Family::Gga, Design::Empirical, false, true)
    }

    #[test]
    fn compiles_and_agrees_with_hand_eval() {
        let f = DslFunctional::new(wigner_info(), WIGNER, "wigner_c").unwrap();
        for &(rs, s) in &[(0.5, 0.0), (1.0, 1.0), (4.0, 3.0)] {
            let want = -0.44 / (7.8 + rs) / (1.0 + 0.5 * s * s);
            assert!((f.eps_c(rs, s, 0.0) - want).abs() < 1e-14, "({rs},{s})");
            let sym = f.eps_c_expr().eval(&[rs, s, 0.0]).unwrap();
            assert_eq!(sym.to_bits(), f.eps_c(rs, s, 0.0).to_bits());
        }
        assert_eq!(f.arity(), 2);
        assert!(f.f_x(1.0, 0.0).is_none());
    }

    #[test]
    fn derived_enhancement_factor_positive() {
        // ε_c < 0 everywhere ⇒ F_c > 0 through the default derivation.
        let f = DslFunctional::new(wigner_info(), WIGNER, "wigner_c").unwrap();
        assert!(f.f_c(1.0, 1.0, 0.0) > 0.0);
    }

    #[test]
    fn bad_source_is_a_dsl_error() {
        let err = DslFunctional::new(wigner_info(), "def f(x:\n", "f").unwrap_err();
        assert!(matches!(err, XcvError::Dsl { .. }), "{err}");
    }

    #[test]
    fn non_canonical_parameter_rejected() {
        let src = "def f(rho):\n    return -rho\n";
        let err = DslFunctional::new(wigner_info(), src, "f").unwrap_err();
        assert!(err.to_string().contains("canonical"), "{err}");
    }

    #[test]
    fn arity_violation_rejected() {
        // An LDA-declared functional must not mention s.
        let lda = info("bad-lda", Family::Lda, Design::Empirical, false, true);
        let err = DslFunctional::new(lda, WIGNER, "wigner_c").unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn exchange_depending_on_rs_rejected() {
        // F_x is F_x(s, α) by contract: the scalar path has no rs to give
        // it, so a symbolically rs-dependent exchange must be refused
        // rather than silently diverging between the two code paths.
        let src = "def fx(rs, s):\n    return 1 + 0.1 * rs\n";
        let err = DslFunctional::new(wigner_info(), WIGNER, "wigner_c")
            .unwrap()
            .with_exchange(src, "fx")
            .unwrap_err();
        assert!(err.to_string().contains("rs"), "{err}");
    }

    #[test]
    fn exchange_attachment() {
        let pbe_x = "\
def pbe_fx(rs, s):
    kappa = 0.804
    mu = 0.2195149727645171
    return 1 + kappa - kappa / (1 + mu * s ** 2 / kappa)
";
        let f = DslFunctional::new(wigner_info(), WIGNER, "wigner_c")
            .unwrap()
            .with_exchange(pbe_x, "pbe_fx")
            .unwrap();
        assert!(f.info().has_exchange);
        let fx = f.f_x(1.0, 0.0).unwrap();
        assert!(fx > 1.0 && fx < 1.804);
        assert!(f.f_xc(1.0, 1.0, 0.0).is_some());
    }
}
