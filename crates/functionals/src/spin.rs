//! Spin-polarization extension (`ζ ≠ 0`).
//!
//! The paper (following Pederson–Burke) verifies the unpolarized `ζ = 0`
//! restriction of each functional; LIBXC implementations are spin-general.
//! This module provides the spin machinery needed to extend the verification
//! to polarized densities:
//!
//! * exact spin scaling of exchange,
//!   `E_x[n↑, n↓] = (E_x[2n↑] + E_x[2n↓])/2`, giving the LSDA exchange
//!   `ε_x(rs, ζ) = ε_x^unif(rs)·((1+ζ)^{4/3} + (1−ζ)^{4/3})/2`;
//! * the full PW92 spin interpolation
//!   `ε_c(rs, ζ) = ε_c⁰ + α_c·f(ζ)/f''(0)·(1−ζ⁴) + (ε_c¹ − ε_c⁰)·f(ζ)·ζ⁴`
//!   with the three PW92 `G`-function fits;
//! * PBE correlation at general ζ via `φ(ζ) = ((1+ζ)^{2/3}+(1−ζ)^{2/3})/2`
//!   entering both `t²` and the `H` term;
//! * **per-spin `s_σ` machinery** for GGA exchange at `ζ ≠ 0`:
//!   [`f_x_spin_scaled`] / [`f_x_spin_scaled_expr`] apply exact spin
//!   scaling `E_x[n↑,n↓] = (E_x[2n↑]+E_x[2n↓])/2` to any unpolarized
//!   `F_x(s)`, producing an enhancement over `(rs, s↑, s↓, ζ)` — per-spin
//!   reduced gradients no scalar `φ(ζ)` factor can express.
//!
//! The scalar-factor citizens ([`SpinResolved`]) live in the canonical
//! space `rs, s, α, ζ`; the per-spin exchange citizens ([`SpinScaledX`]:
//! `B88(ζ)`, `PBE-X(ζ)`) in `rs, s↑, s↓, ζ`. Both describe themselves
//! through the typed [`xcv_expr::VarSpace`], so the solver, verifier and
//! grid baseline run unchanged on spin-resolved conditions — see the
//! `spin_conditions` and `spin_campaign` integration tests.

use crate::constants::{A_X, C_T};
use crate::registry::{RS, S};
use xcv_expr::{constant, var, Expr};

/// Canonical variable index for ζ.
pub const ZETA: u32 = 3;

/// Variable index of the per-spin reduced gradient `s↑` in the
/// exact-spin-scaled exchange space `(rs, s↑, s↓, ζ)`. It occupies the slot
/// the scalar convention reserves for `s` — the typed
/// [`xcv_expr::VarSpace`] is what tells the toolchain the difference.
pub const S_UP: u32 = 1;
/// Variable index of `s↓` in the exchange space (the slot `α` occupies in
/// the scalar convention).
pub const S_DOWN: u32 = 2;

/// `f''(0) = 8 / (9 (2^{4/3} − 2))`.
pub fn fpp0() -> f64 {
    8.0 / (9.0 * (2.0_f64.powf(4.0 / 3.0) - 2.0))
}

/// The spin interpolation function
/// `f(ζ) = ((1+ζ)^{4/3} + (1−ζ)^{4/3} − 2)/(2^{4/3} − 2)`.
pub fn f_zeta(z: f64) -> f64 {
    (((1.0 + z).powf(4.0 / 3.0) + (1.0 - z).powf(4.0 / 3.0)) - 2.0)
        / (2.0_f64.powf(4.0 / 3.0) - 2.0)
}

/// Symbolic `f(ζ)`.
pub fn f_zeta_expr() -> Expr {
    let z = var(ZETA);
    let p = constant(4.0 / 3.0);
    ((constant(1.0) + &z).pow(&p) + (constant(1.0) - &z).pow(&p) - constant(2.0))
        / constant(2.0_f64.powf(4.0 / 3.0) - 2.0)
}

/// `φ(ζ) = ((1+ζ)^{2/3} + (1−ζ)^{2/3})/2` (PBE's spin factor).
pub fn phi_zeta(z: f64) -> f64 {
    0.5 * ((1.0 + z).powf(2.0 / 3.0) + (1.0 - z).powf(2.0 / 3.0))
}

/// Symbolic `φ(ζ)`.
pub fn phi_zeta_expr() -> Expr {
    let z = var(ZETA);
    let p = constant(2.0 / 3.0);
    constant(0.5) * ((constant(1.0) + &z).pow(&p) + (constant(1.0) - &z).pow(&p))
}

/// LSDA exchange `ε_x(rs, ζ)` by exact spin scaling.
pub fn eps_x_lsda(rs: f64, z: f64) -> f64 {
    let scale = 0.5 * ((1.0 + z).powf(4.0 / 3.0) + (1.0 - z).powf(4.0 / 3.0));
    -A_X / rs * scale
}

/// Symbolic LSDA exchange.
pub fn eps_x_lsda_expr() -> Expr {
    let z = var(ZETA);
    let p = constant(4.0 / 3.0);
    let scale = constant(0.5) * ((constant(1.0) + &z).pow(&p) + (constant(1.0) - &z).pow(&p));
    -(constant(A_X) / var(RS)) * scale
}

/// One PW92 `G` function: `-2A(1+α₁rs)ln[1 + 1/(2A(β₁√rs + β₂rs + β₃rs^{3/2}
/// + β₄rs²))]`.
fn pw92_g(rs: f64, a: f64, a1: f64, b1: f64, b2: f64, b3: f64, b4: f64) -> f64 {
    let sq = rs.sqrt();
    let poly = b1 * sq + b2 * rs + b3 * rs * sq + b4 * rs * rs;
    -2.0 * a * (1.0 + a1 * rs) * (1.0 + 1.0 / (2.0 * a * poly)).ln()
}

fn pw92_g_expr(a: f64, a1: f64, b1: f64, b2: f64, b3: f64, b4: f64) -> Expr {
    let rs = var(RS);
    let sq = rs.sqrt();
    let poly = constant(b1) * &sq
        + constant(b2) * &rs
        + constant(b3) * &rs * &sq
        + constant(b4) * rs.powi(2);
    -(constant(2.0 * a) * (constant(1.0) + constant(a1) * &rs))
        * (constant(1.0) + constant(1.0) / (constant(2.0 * a) * poly)).ln()
}

/// PW92 parameter sets: (A, α₁, β₁, β₂, β₃, β₄) for ε_c(ζ=0), ε_c(ζ=1) and
/// −α_c (the spin stiffness).
pub const PW92_EC0: [f64; 6] = [0.031_091, 0.213_70, 7.595_7, 3.587_6, 1.638_2, 0.492_94];
pub const PW92_EC1: [f64; 6] = [0.015_545, 0.205_48, 14.118_9, 6.197_7, 3.366_2, 0.625_17];
pub const PW92_MALPHA: [f64; 6] = [0.016_887, 0.111_25, 10.357, 3.623_1, 0.880_26, 0.496_71];

/// Full PW92 correlation `ε_c(rs, ζ)`.
pub fn eps_c_pw92(rs: f64, z: f64) -> f64 {
    let [a, a1, b1, b2, b3, b4] = PW92_EC0;
    let ec0 = pw92_g(rs, a, a1, b1, b2, b3, b4);
    let [a, a1, b1, b2, b3, b4] = PW92_EC1;
    let ec1 = pw92_g(rs, a, a1, b1, b2, b3, b4);
    let [a, a1, b1, b2, b3, b4] = PW92_MALPHA;
    let malpha = pw92_g(rs, a, a1, b1, b2, b3, b4);
    let f = f_zeta(z);
    let z4 = z.powi(4);
    ec0 - malpha * f / fpp0() * (1.0 - z4) + (ec1 - ec0) * f * z4
}

/// Symbolic full PW92 correlation over (rs, ζ).
pub fn eps_c_pw92_expr() -> Expr {
    let [a, a1, b1, b2, b3, b4] = PW92_EC0;
    let ec0 = pw92_g_expr(a, a1, b1, b2, b3, b4);
    let [a, a1, b1, b2, b3, b4] = PW92_EC1;
    let ec1 = pw92_g_expr(a, a1, b1, b2, b3, b4);
    let [a, a1, b1, b2, b3, b4] = PW92_MALPHA;
    let malpha = pw92_g_expr(a, a1, b1, b2, b3, b4);
    let f = f_zeta_expr();
    let z4 = var(ZETA).powi(4);
    &ec0 - malpha * &f / constant(fpp0()) * (constant(1.0) - &z4) + (ec1 - &ec0) * f * z4
}

/// PBE correlation at general spin polarization `ε_c^{PBE}(rs, s, ζ)`.
pub fn eps_c_pbe(rs: f64, s: f64, z: f64) -> f64 {
    let phi = phi_zeta(z);
    let phi3 = phi * phi * phi;
    let ec_lda = eps_c_pw92(rs, z);
    let t2 = C_T * s * s / rs / (phi * phi);
    let gamma = crate::pbe::GAMMA;
    let beta = crate::pbe::BETA;
    let a = beta / gamma / ((-ec_lda / (gamma * phi3)).exp() - 1.0);
    let at2 = a * t2;
    let inner = 1.0 + beta / gamma * t2 * (1.0 + at2) / (1.0 + at2 + at2 * at2);
    ec_lda + gamma * phi3 * inner.ln()
}

/// Symbolic PBE correlation over (rs, s, ζ).
pub fn eps_c_pbe_expr() -> Expr {
    let phi = phi_zeta_expr();
    let phi3 = phi.powi(3);
    let ec_lda = eps_c_pw92_expr();
    let gamma = crate::pbe::GAMMA;
    let beta = crate::pbe::BETA;
    let t2 = constant(C_T) * var(S).powi(2) / var(RS) / phi.powi(2);
    let a = constant(beta / gamma)
        / ((-(ec_lda.clone()) / (constant(gamma) * &phi3)).exp() - constant(1.0));
    let at2 = &a * &t2;
    let num = constant(1.0) + &at2;
    let den = constant(1.0) + &at2 + at2.powi(2);
    let inner = constant(1.0) + constant(beta / gamma) * t2 * (num / den);
    ec_lda + constant(gamma) * phi3 * inner.ln()
}

/// Scalar LSDA exchange enhancement relative to the unpolarized gas,
/// `F_x(ζ) = ((1+ζ)^{4/3} + (1−ζ)^{4/3})/2` (`= 1` at ζ = 0, `= 2^{1/3}` at
/// ζ = ±1). Encoded directly in ζ — carrying `rs` in both numerator and
/// denominator would fall to the interval dependency problem.
pub fn f_x_lsda(z: f64) -> f64 {
    0.5 * ((1.0 + z).powf(4.0 / 3.0) + (1.0 - z).powf(4.0 / 3.0))
}

/// Symbolic [`f_x_lsda`].
pub fn f_x_lsda_expr() -> Expr {
    let z = var(ZETA);
    let p = constant(4.0 / 3.0);
    constant(0.5) * ((constant(1.0) + &z).pow(&p) + (constant(1.0) - &z).pow(&p))
}

// ---------------------------------------------------------------------------
// Per-spin s_σ machinery: GGA exchange at ζ ≠ 0 by exact spin scaling
// ---------------------------------------------------------------------------

/// Exact-spin-scaled GGA exchange enhancement, relative to the unpolarized
/// gas at the same total density:
///
/// ```text
/// E_x[n↑, n↓] = (E_x[2n↑] + E_x[2n↓]) / 2
/// ⇒ F_x(s↑, s↓, ζ) = ((1+ζ)^{4/3} F_x(s↑) + (1−ζ)^{4/3} F_x(s↓)) / 2
/// ```
///
/// where `s_σ` is the reduced gradient of the doubled spin-σ density — a
/// *per-spin* variable no scalar `φ(ζ)` factor can express (each channel
/// carries its own gradient). At `ζ = 0` and `s↑ = s↓ = s` this reduces to
/// the unpolarized `F_x(s)`; at `ζ = ±1` it is `2^{1/3} F_x(s_σ)`, the LSDA
/// scaling with the surviving channel's gradient.
pub fn f_x_spin_scaled(fx: impl Fn(f64) -> f64, s_up: f64, s_dn: f64, z: f64) -> f64 {
    0.5 * ((1.0 + z).powf(4.0 / 3.0) * fx(s_up) + (1.0 - z).powf(4.0 / 3.0) * fx(s_dn))
}

/// Symbolic [`f_x_spin_scaled`], built from a base enhancement DAG over the
/// canonical `s` (index [`crate::registry::S`]). `s↑` keeps that slot
/// (index [`S_UP`] = `S`); the `s↓` copy is formed by substitution onto
/// index [`S_DOWN`]. The result lives in the `(rs, s↑, s↓, ζ)` space.
pub fn f_x_spin_scaled_expr(fx_of_s: &Expr) -> Expr {
    let z = var(ZETA);
    let p = constant(4.0 / 3.0);
    let up = fx_of_s.clone();
    let dn = fx_of_s.subst_var(S, &var(S_DOWN));
    constant(0.5) * ((constant(1.0) + &z).pow(&p) * up + (constant(1.0) - &z).pow(&p) * dn)
}

// ---------------------------------------------------------------------------
// Registry citizenship: ζ-resolved functionals as first-class citizens
// ---------------------------------------------------------------------------

use crate::functional::{info, Functional, FunctionalHandle, Registry};
use crate::registry::{Design, DfaInfo, Family};
use crate::XcvError;
use std::sync::Arc;

type SpinEpsC = Box<dyn Fn(f64, f64, f64, f64) -> f64 + Send + Sync>;
type SpinFx = Box<dyn Fn(f64, f64, f64) -> f64 + Send + Sync>;

/// A spin-resolved (`ζ`-general) functional as an ordinary registry citizen.
///
/// The adapter pairs this module's ζ-aware symbolic forms (fourth canonical
/// variable `ζ`, index [`ZETA`]) with four-argument scalar closures, and
/// presents **arity 4** to the toolchain: `xcv_conditions::pb_domain`
/// extends the Pederson–Burke box with `ζ ∈ [−1, 1]`, and the encoder and
/// compiled-tape solver run the spin-general Table I/II cells unchanged.
///
/// The inherited three-argument scalar interface is the paper's `ζ = 0`
/// restriction (so the grid baseline and the registry-wide agreement checks
/// keep their meaning); the full spin surface is reachable through
/// [`Functional::eps_c_at`] / [`Functional::f_x_at`].
///
/// The uniform arity keeps spin cells shaped like every other registry
/// problem at the price of splitting along axes an LDA-based citizen never
/// reads (16 children per level); campaign presets cap spin recursion depth
/// accordingly, and deriving the fan-out from the variables an expression
/// actually uses is left to a future scheduler change.
pub struct SpinResolved {
    info: DfaInfo,
    eps_c_expr: Expr,
    f_x_expr: Option<Expr>,
    eps_c: SpinEpsC,
    f_x: Option<SpinFx>,
}

impl SpinResolved {
    /// PBE correlation at general spin polarization (`φ(ζ)` in both `t²`
    /// and the `H` term, PW92 spin interpolation underneath). Correlation
    /// only: the module's ζ machinery does not cover GGA exchange.
    pub fn pbe() -> SpinResolved {
        SpinResolved {
            info: info("PBE(ζ)", Family::Gga, Design::NonEmpirical, false, true),
            eps_c_expr: eps_c_pbe_expr(),
            f_x_expr: None,
            eps_c: Box::new(|rs, s, _alpha, z| eps_c_pbe(rs, s, z)),
            f_x: None,
        }
    }

    /// The full PW92 spin interpolation
    /// `ε_c(rs, ζ) = ε_c⁰ + α_c·f(ζ)/f''(0)·(1−ζ⁴) + (ε_c¹−ε_c⁰)·f(ζ)·ζ⁴`.
    pub fn pw92() -> SpinResolved {
        SpinResolved {
            info: info("PW92(ζ)", Family::Lda, Design::NonEmpirical, false, true),
            eps_c_expr: eps_c_pw92_expr(),
            f_x_expr: None,
            eps_c: Box::new(|rs, _s, _alpha, z| eps_c_pw92(rs, z)),
            f_x: None,
        }
    }

    /// LSDA exchange by exact spin scaling, as an exchange-only citizen
    /// (`F_x(ζ) = ((1+ζ)^{4/3} + (1−ζ)^{4/3})/2`); only the Lieb–Oxford
    /// conditions apply.
    pub fn lsda_x() -> SpinResolved {
        SpinResolved {
            info: info("LSDA-X(ζ)", Family::Lda, Design::NonEmpirical, true, false),
            eps_c_expr: constant(0.0) * var(crate::registry::RS),
            f_x_expr: Some(f_x_lsda_expr()),
            eps_c: Box::new(|_rs, _s, _alpha, _z| 0.0),
            f_x: Some(Box::new(|_s, _alpha, z| f_x_lsda(z))),
        }
    }
}

impl Functional for SpinResolved {
    fn info(&self) -> DfaInfo {
        self.info.clone()
    }

    /// Scalar-factor spin citizens live in the canonical four-axis space
    /// `rs, s, α, ζ` (arity 4 is derived from it).
    fn var_space(&self) -> VarSpace {
        VarSpace::from_arity(4)
    }

    fn eps_c_expr(&self) -> Expr {
        self.eps_c_expr.clone()
    }

    fn f_x_expr(&self) -> Option<Expr> {
        self.f_x_expr.clone()
    }

    /// The `ζ = 0` restriction (the paper's workload).
    fn eps_c(&self, rs: f64, s: f64, alpha: f64) -> f64 {
        (self.eps_c)(rs, s, alpha, 0.0)
    }

    /// The `ζ = 0` restriction (the paper's workload).
    fn f_x(&self, s: f64, alpha: f64) -> Option<f64> {
        self.f_x.as_ref().map(|f| f(s, alpha, 0.0))
    }

    fn eps_c_at(&self, point: &[f64]) -> f64 {
        let g = |i: usize| point.get(i).copied().unwrap_or(0.0);
        (self.eps_c)(g(0), g(1), g(2), g(3))
    }

    fn f_x_at(&self, point: &[f64]) -> Option<f64> {
        let g = |i: usize| point.get(i).copied().unwrap_or(0.0);
        self.f_x.as_ref().map(|f| f(g(1), g(2), g(3)))
    }
}

/// Register the ζ-resolved PBE correlation ([`SpinResolved::pbe`]).
pub fn register_pbe(registry: &mut Registry) -> Result<FunctionalHandle, XcvError> {
    registry.register(Arc::new(SpinResolved::pbe()))
}

/// Register the ζ-resolved PW92 correlation ([`SpinResolved::pw92`]).
pub fn register_pw92(registry: &mut Registry) -> Result<FunctionalHandle, XcvError> {
    registry.register(Arc::new(SpinResolved::pw92()))
}

/// Register the spin-scaled LSDA exchange ([`SpinResolved::lsda_x`]).
pub fn register_lsda_x(registry: &mut Registry) -> Result<FunctionalHandle, XcvError> {
    registry.register(Arc::new(SpinResolved::lsda_x()))
}

// ---------------------------------------------------------------------------
// Per-spin exchange citizens over (rs, s↑, s↓, ζ)
// ---------------------------------------------------------------------------

use xcv_expr::{AxisKind, VarSpace};

type BaseFx = Box<dyn Fn(f64) -> f64 + Send + Sync>;

/// A GGA exchange functional extended to `ζ ≠ 0` by exact spin scaling —
/// the citizens whose variable model the scalar `φ(ζ)`/`f(ζ)` machinery
/// cannot express. The typed space is `(rs, s↑, s↓, ζ)`
/// ([`Functional::var_space`] returns `Rs, SUp, SDown, Zeta`): per-spin
/// reduced gradients occupy the slots the positional convention reserved
/// for `s` and `α`, and every consumer (the PB box, the encoder, the
/// compiled solver, the N-D grid baseline) follows the axes instead of the
/// positions.
///
/// The inherited three-argument interface is the `ζ = 0, s↑ = s↓ = s`
/// restriction — the base unpolarized `F_x(s)` — so the registry-wide
/// agreement checks keep their meaning; the full per-spin surface is
/// reachable through [`Functional::f_x_at`].
pub struct SpinScaledX {
    info: DfaInfo,
    f_x_expr: Expr,
    base_f_x: BaseFx,
}

impl SpinScaledX {
    fn new(name: &str, design: Design, base_expr: &Expr, base_f_x: BaseFx) -> SpinScaledX {
        SpinScaledX {
            info: info(name, Family::Gga, design, true, false),
            f_x_expr: f_x_spin_scaled_expr(base_expr),
            base_f_x,
        }
    }

    /// B88 exchange at general polarization. B88 already violates the
    /// Lieb–Oxford bound near the `s = 5` edge at ζ = 0; spin scaling makes
    /// the violating region larger (the `(1+ζ)^{4/3}` weight reaches
    /// `2^{4/3}/2 = 2^{1/3}` at full polarization), so this citizen is the
    /// matrix's genuine 4-D counterexample row.
    pub fn b88() -> SpinScaledX {
        SpinScaledX::new(
            "B88(ζ)",
            Design::Empirical,
            &crate::b88::f_x_expr(),
            Box::new(crate::b88::f_x),
        )
    }

    /// PBE exchange at general polarization. `F_x ≤ 1.804` and
    /// `F_x(s = 5) ≈ 1.70`, so the scaled enhancement stays below
    /// `2^{1/3} · 1.70 ≈ 2.14 < C_LO` on the PB box: the Lieb–Oxford cells
    /// verify at every ζ.
    pub fn pbe_x() -> SpinScaledX {
        SpinScaledX::new(
            "PBE-X(ζ)",
            Design::NonEmpirical,
            &crate::pbe::f_x_expr(),
            Box::new(crate::pbe::f_x),
        )
    }
}

impl Functional for SpinScaledX {
    fn info(&self) -> DfaInfo {
        self.info.clone()
    }

    /// The per-spin exchange space: `rs, s↑, s↓, ζ`.
    fn var_space(&self) -> VarSpace {
        VarSpace::of_kinds(&[AxisKind::Rs, AxisKind::SUp, AxisKind::SDown, AxisKind::Zeta])
    }

    /// Exchange-only citizen: `ε_c ≡ 0` (written with an `rs` factor so the
    /// derived `F_c` stays a well-formed DAG over the space).
    fn eps_c_expr(&self) -> Expr {
        constant(0.0) * var(RS)
    }

    fn f_x_expr(&self) -> Option<Expr> {
        Some(self.f_x_expr.clone())
    }

    fn eps_c(&self, _rs: f64, _s: f64, _alpha: f64) -> f64 {
        0.0
    }

    /// The `ζ = 0, s↑ = s↓ = s` restriction: the base unpolarized `F_x(s)`.
    fn f_x(&self, s: f64, _alpha: f64) -> Option<f64> {
        Some((self.base_f_x)(s))
    }

    fn eps_c_at(&self, _point: &[f64]) -> f64 {
        0.0
    }

    /// The full per-spin surface over `(rs, s↑, s↓, ζ)`.
    fn f_x_at(&self, point: &[f64]) -> Option<f64> {
        let g = |i: usize| point.get(i).copied().unwrap_or(0.0);
        Some(f_x_spin_scaled(
            &self.base_f_x,
            g(S_UP as usize),
            g(S_DOWN as usize),
            g(ZETA as usize),
        ))
    }
}

/// Register the exact-spin-scaled B88 exchange ([`SpinScaledX::b88`]).
pub fn register_b88(registry: &mut Registry) -> Result<FunctionalHandle, XcvError> {
    registry.register(Arc::new(SpinScaledX::b88()))
}

/// Register the exact-spin-scaled PBE exchange ([`SpinScaledX::pbe_x`]).
pub fn register_pbe_x(registry: &mut Registry) -> Result<FunctionalHandle, XcvError> {
    registry.register(Arc::new(SpinScaledX::pbe_x()))
}

/// Module-level registration entry point: add every ζ-resolved citizen —
/// the scalar-factor three (`PBE(ζ)`, `PW92(ζ)`, `LSDA-X(ζ)`, space
/// `rs, s, α, ζ`) and the per-spin exchange two (`B88(ζ)`, `PBE-X(ζ)`,
/// space `rs, s↑, s↓, ζ`).
pub fn register(registry: &mut Registry) -> Result<(), XcvError> {
    register_pbe(registry)?;
    register_pw92(registry)?;
    register_lsda_x(registry)?;
    register_b88(registry)?;
    register_pbe_x(registry)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_zeta_endpoints() {
        assert!(f_zeta(0.0).abs() < 1e-15);
        assert!((f_zeta(1.0) - 1.0).abs() < 1e-15);
        assert!((f_zeta(-1.0) - 1.0).abs() < 1e-15);
        // Symmetric and convex-ish in between.
        assert!((f_zeta(0.5) - f_zeta(-0.5)).abs() < 1e-15);
        assert!(f_zeta(0.5) > 0.0 && f_zeta(0.5) < 1.0);
    }

    #[test]
    fn fpp0_value() {
        // Standard value ≈ 1.709920934.
        assert!((fpp0() - 1.709_920_934_161_37).abs() < 1e-9);
    }

    #[test]
    fn phi_endpoints() {
        assert!((phi_zeta(0.0) - 1.0).abs() < 1e-15);
        let p1 = 0.5 * 2.0_f64.powf(2.0 / 3.0);
        assert!((phi_zeta(1.0) - p1).abs() < 1e-15);
    }

    #[test]
    fn exchange_spin_scaling_limits() {
        // ζ = 0 reduces to the unpolarized gas; ζ = ±1 scales by 2^{1/3}.
        let rs = 1.7;
        assert!((eps_x_lsda(rs, 0.0) - crate::lda_x::eps_x_unif(rs)).abs() < 1e-15);
        let expected = crate::lda_x::eps_x_unif(rs) * 2.0_f64.powf(1.0 / 3.0);
        assert!((eps_x_lsda(rs, 1.0) - expected).abs() < 1e-14);
        assert!((eps_x_lsda(rs, -1.0) - eps_x_lsda(rs, 1.0)).abs() < 1e-15);
    }

    #[test]
    fn pw92_zeta0_matches_unpolarized_module() {
        for &rs in &[1e-3, 0.5, 1.0, 5.0, 50.0] {
            assert!((eps_c_pw92(rs, 0.0) - crate::pw92::eps_c(rs)).abs() < 1e-15);
        }
    }

    #[test]
    fn pw92_ferromagnetic_weaker_correlation() {
        // |ε_c(ζ=1)| < |ε_c(ζ=0)| — correlation is weaker in the fully
        // polarized gas (same-spin electrons already avoid each other).
        for &rs in &[0.5, 1.0, 2.0, 5.0] {
            let e0 = eps_c_pw92(rs, 0.0);
            let e1 = eps_c_pw92(rs, 1.0);
            assert!(e1 < 0.0 && e1 > e0, "rs={rs}: {e1} vs {e0}");
        }
    }

    #[test]
    fn pw92_known_ferromagnetic_value() {
        // PW92 tabulate ε_c(rs=1, ζ=1) ≈ -0.03206 Ha.
        let v = eps_c_pw92(1.0, 1.0);
        assert!((v + 0.0321).abs() < 1e-3, "{v}");
    }

    #[test]
    fn pw92_symmetric_in_zeta() {
        for &z in &[0.3, 0.7, 0.95] {
            assert!((eps_c_pw92(1.0, z) - eps_c_pw92(1.0, -z)).abs() < 1e-14);
        }
    }

    #[test]
    fn pbe_zeta0_matches_unpolarized_module() {
        for &(rs, s) in &[(0.5, 0.5), (1.0, 1.0), (3.0, 2.0)] {
            let a = eps_c_pbe(rs, s, 0.0);
            let b = crate::pbe::eps_c(rs, s);
            assert!((a - b).abs() < 1e-13, "({rs},{s}): {a} vs {b}");
        }
    }

    #[test]
    fn exprs_match_scalars() {
        let epw = eps_c_pw92_expr();
        let epbe = eps_c_pbe_expr();
        let ex = eps_x_lsda_expr();
        for &rs in &[0.3, 1.0, 4.0] {
            for &s in &[0.0, 1.0, 3.0] {
                for &z in &[0.0, 0.4, 0.9] {
                    let env = [rs, s, 0.0, z];
                    let a = epw.eval(&env).unwrap();
                    let b = eps_c_pw92(rs, z);
                    assert!((a - b).abs() < 1e-12 * b.abs().max(1e-12));
                    let a = epbe.eval(&env).unwrap();
                    let b = eps_c_pbe(rs, s, z);
                    assert!(
                        (a - b).abs() < 1e-11 * b.abs().max(1e-11),
                        "({rs},{s},{z}): {a} vs {b}"
                    );
                    let a = ex.eval(&env).unwrap();
                    let b = eps_x_lsda(rs, z);
                    assert!((a - b).abs() < 1e-13 * b.abs().max(1e-13));
                }
            }
        }
    }

    #[test]
    fn spin_resolved_ec1_nonpositive_sampled() {
        // The Ec non-positivity condition extends to all ζ for PBE.
        for i in 0..12 {
            for j in 0..12 {
                for k in 0..9 {
                    let rs = 1e-3 + 5.0 * (i as f64) / 11.0;
                    let s = 5.0 * (j as f64) / 11.0;
                    let z = -0.99 + 1.98 * (k as f64) / 8.0;
                    let v = eps_c_pbe(rs, s, z);
                    assert!(v <= 1e-12, "ε_c({rs},{s},ζ={z}) = {v}");
                }
            }
        }
    }

    #[test]
    fn spin_scaled_fx_restrictions() {
        // ζ = 0, s↑ = s↓ = s reduces to the base F_x(s); ζ = ±1 is the LSDA
        // scaling of the surviving channel.
        for &s in &[0.0, 0.7, 2.0, 5.0] {
            let base = crate::b88::f_x(s);
            assert!((f_x_spin_scaled(crate::b88::f_x, s, s, 0.0) - base).abs() < 1e-15);
            let full = 2.0_f64.powf(1.0 / 3.0) * base;
            assert!((f_x_spin_scaled(crate::b88::f_x, s, 9.9, 1.0) - full).abs() < 1e-13);
            assert!((f_x_spin_scaled(crate::b88::f_x, 9.9, s, -1.0) - full).abs() < 1e-13);
        }
        // F_x(s↑, s↓, ζ) = F_x(s↓, s↑, −ζ) by spin symmetry.
        let a = f_x_spin_scaled(crate::pbe::f_x, 1.0, 3.0, 0.4);
        let b = f_x_spin_scaled(crate::pbe::f_x, 3.0, 1.0, -0.4);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn spin_scaled_expr_matches_scalar() {
        for (expr, scalar) in [
            (
                f_x_spin_scaled_expr(&crate::b88::f_x_expr()),
                crate::b88::f_x as fn(f64) -> f64,
            ),
            (
                f_x_spin_scaled_expr(&crate::pbe::f_x_expr()),
                crate::pbe::f_x as fn(f64) -> f64,
            ),
        ] {
            for &su in &[0.0, 1.0, 4.5] {
                for &sd in &[0.0, 2.0, 5.0] {
                    for &z in &[-1.0, -0.3, 0.0, 0.8, 1.0] {
                        let env = [1.7, su, sd, z];
                        let sym = expr.eval(&env).unwrap();
                        let num = f_x_spin_scaled(scalar, su, sd, z);
                        assert!(
                            (sym - num).abs() <= 1e-12 * num.abs().max(1e-12),
                            "({su},{sd},{z}): {sym} vs {num}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn spin_scaled_citizens_present_their_space() {
        use crate::Functional;
        let b = SpinScaledX::b88();
        assert_eq!(b.arity(), 4);
        let space = b.var_space();
        assert_eq!(space.names(), vec!["rs", "s_up", "s_dn", "zeta"]);
        assert_eq!(space.find(AxisKind::SUp).unwrap().index, S_UP);
        assert_eq!(space.find(AxisKind::SDown).unwrap().index, S_DOWN);
        // The 3-arg restriction is the base functional.
        assert_eq!(b.f_x(1.0, 0.0), Some(crate::b88::f_x(1.0)));
        // The full surface through the point interface.
        let p = [1.0, 4.0, 0.5, 0.9];
        let want = f_x_spin_scaled(crate::b88::f_x, 4.0, 0.5, 0.9);
        assert_eq!(b.f_x_at(&p), Some(want));
        assert_eq!(b.f_xc_at(&p), Some(want), "F_c ≡ 0 for exchange-only");
        // B88 scaled past C_LO at the polarized corner; PBE-X never.
        assert!(b.f_x_at(&[1.0, 5.0, 0.0, 1.0]).unwrap() > 2.27);
        let px = SpinScaledX::pbe_x();
        assert!(px.f_x_at(&[1.0, 5.0, 5.0, 1.0]).unwrap() < 2.27);
    }

    #[test]
    fn spin_derivative_wrt_zeta_is_symbolic() {
        // The ζ-derivative exists symbolically and vanishes at ζ = 0 by
        // symmetry.
        let d = eps_c_pw92_expr().diff(ZETA);
        let v = d.eval(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(v.abs() < 1e-10, "dε_c/dζ at ζ=0 should vanish, got {v}");
    }
}
