//! The built-in DFAs: the paper's five (plus two extensions) as an enum
//! whose variants implement the open [`crate::Functional`] trait.
//!
//! `Dfa` is no longer the boundary of the system — the encoder, verifier,
//! grid baseline and campaign engine all dispatch through
//! `Arc<dyn Functional>` handles from the [`crate::Registry`] — but it
//! remains the convenient, copyable way to name the built-in
//! implementations.

use crate::functional::Functional;
use crate::{am05, b88, lyp, pbe, rscan, scan, vwn};
use xcv_expr::Expr;

/// Variable indices of the canonical variable order (`rs`, `s`, `alpha`).
pub const RS: u32 = 0;
pub const S: u32 = 1;
pub const ALPHA: u32 = 2;

/// Rung of Jacob's ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    Lda,
    Gga,
    MetaGga,
}

/// Design philosophy (Section I of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Design {
    Empirical,
    NonEmpirical,
}

/// Static metadata for a functional. The name is owned so runtime-registered
/// functionals (DSL-compiled, closure-backed, …) can carry arbitrary names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfaInfo {
    pub name: String,
    pub family: Family,
    pub design: Design,
    pub has_exchange: bool,
    pub has_correlation: bool,
}

/// The five DFAs evaluated in the paper, plus the regularized-SCAN
/// extension (paper Section VI-A; not part of [`Dfa::all`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dfa {
    Pbe,
    Scan,
    Lyp,
    Am05,
    VwnRpa,
    /// rSCAN-style regularization of SCAN (see `crate::rscan`).
    RScan,
    /// B88 exchange + LYP correlation (see `crate::b88`).
    Blyp,
}

impl Dfa {
    /// The paper's five DFAs, in its column order.
    pub fn all() -> [Dfa; 5] {
        [Dfa::Pbe, Dfa::Lyp, Dfa::Am05, Dfa::Scan, Dfa::VwnRpa]
    }

    /// The paper's five plus the extensions (regularized SCAN and BLYP).
    pub fn extended() -> [Dfa; 7] {
        [
            Dfa::Pbe,
            Dfa::Lyp,
            Dfa::Blyp,
            Dfa::Am05,
            Dfa::Scan,
            Dfa::RScan,
            Dfa::VwnRpa,
        ]
    }

    /// The variant's display name (also available via `Functional::name`,
    /// but without constructing a `DfaInfo`).
    pub fn static_name(&self) -> &'static str {
        match self {
            Dfa::Pbe => "PBE",
            Dfa::Scan => "SCAN",
            Dfa::Lyp => "LYP",
            Dfa::Am05 => "AM05",
            Dfa::VwnRpa => "VWN RPA",
            Dfa::RScan => "rSCAN(reg)",
            Dfa::Blyp => "BLYP",
        }
    }
}

impl Dfa {
    /// The per-module implementation this variant names. Every functional
    /// body lives in its module (`crate::pbe`, `crate::scan`, …); the enum
    /// only dispatches.
    pub fn implementation(&self) -> &'static dyn Functional {
        match self {
            Dfa::Pbe => &pbe::Pbe,
            Dfa::Scan => &scan::Scan,
            Dfa::Lyp => &lyp::Lyp,
            Dfa::Am05 => &am05::Am05,
            Dfa::VwnRpa => &vwn::VwnRpa,
            Dfa::RScan => &rscan::RScan,
            Dfa::Blyp => &b88::Blyp,
        }
    }
}

impl Functional for Dfa {
    fn info(&self) -> DfaInfo {
        self.implementation().info()
    }

    fn eps_c_expr(&self) -> Expr {
        self.implementation().eps_c_expr()
    }

    fn f_x_expr(&self) -> Option<Expr> {
        self.implementation().f_x_expr()
    }

    fn eps_c(&self, rs: f64, s: f64, alpha: f64) -> f64 {
        self.implementation().eps_c(rs, s, alpha)
    }

    fn f_x(&self, s: f64, alpha: f64) -> Option<f64> {
        self.implementation().f_x(s, alpha)
    }
}

impl std::fmt::Display for Dfa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.static_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_matches_paper_table() {
        assert_eq!(Dfa::Pbe.info().family, Family::Gga);
        assert_eq!(Dfa::Scan.info().family, Family::MetaGga);
        assert_eq!(Dfa::VwnRpa.info().family, Family::Lda);
        assert_eq!(Dfa::Lyp.info().design, Design::Empirical);
        assert!(!Dfa::Lyp.info().has_exchange);
        assert!(!Dfa::VwnRpa.info().has_exchange);
        assert!(Dfa::Am05.info().has_exchange);
    }

    #[test]
    fn arity_by_family() {
        assert_eq!(Dfa::VwnRpa.arity(), 1);
        assert_eq!(Dfa::Pbe.arity(), 2);
        assert_eq!(Dfa::Scan.arity(), 3);
    }

    #[test]
    fn symbolic_scalar_agreement_all_dfas() {
        for dfa in Dfa::all() {
            let e = dfa.eps_c_expr();
            for &(rs, s, a) in &[(0.5, 0.3, 0.5), (1.0, 1.0, 1.5), (4.0, 2.0, 0.0)] {
                let sym = e.eval(&[rs, s, a]).unwrap();
                let num = dfa.eps_c(rs, s, a);
                assert!(
                    (sym - num).abs() <= 1e-9 * num.abs().max(1e-10),
                    "{dfa}: ({rs},{s},{a})"
                );
            }
        }
    }

    #[test]
    fn f_c_sign_mirrors_eps_c() {
        for dfa in Dfa::all() {
            let (rs, s, a) = (1.0, 1.0, 1.0);
            let ec = dfa.eps_c(rs, s, a);
            let fc = dfa.f_c(rs, s, a);
            assert_eq!(ec <= 0.0, fc >= 0.0, "{dfa}");
        }
    }

    #[test]
    fn f_xc_only_for_xc_functionals() {
        assert!(Dfa::Pbe.f_xc(1.0, 1.0, 1.0).is_some());
        assert!(Dfa::Scan.f_xc(1.0, 1.0, 1.0).is_some());
        assert!(Dfa::Am05.f_xc(1.0, 1.0, 1.0).is_some());
        assert!(Dfa::Lyp.f_xc(1.0, 1.0, 1.0).is_none());
        assert!(Dfa::VwnRpa.f_xc(1.0, 1.0, 1.0).is_none());
    }

    #[test]
    fn free_vars_respect_family() {
        // LDA correlation depends only on rs; GGA adds s; SCAN adds α.
        assert_eq!(Dfa::VwnRpa.eps_c_expr().free_vars(), vec![RS]);
        assert_eq!(Dfa::Pbe.eps_c_expr().free_vars(), vec![RS, S]);
        assert_eq!(Dfa::Scan.eps_c_expr().free_vars(), vec![RS, S, ALPHA]);
    }

    #[test]
    fn display_uses_static_name() {
        assert_eq!(format!("{}", Dfa::VwnRpa), "VWN RPA");
        assert_eq!(Dfa::RScan.static_name(), "rSCAN(reg)");
    }
}
