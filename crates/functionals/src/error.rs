//! The workspace-wide error type.
//!
//! Every fallible step of the pipeline — registry lookup and registration,
//! DSL loading, encoding a (functional, condition) pair, campaign
//! scheduling — reports through [`XcvError`] instead of bare `Option`s or
//! panics. The enum lives in `xcv-functionals` because that is the lowest
//! crate every other layer (conditions, grid, core, report, bench) already
//! depends on.

use std::fmt;

/// Everything that can go wrong across the XCVerifier pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum XcvError {
    /// The condition does not apply to the functional (the `−` cells of
    /// Table I): Lieb–Oxford conditions need an exchange part, the others a
    /// correlation part.
    NotApplicable {
        functional: String,
        condition: String,
    },
    /// A registry lookup by name found nothing.
    UnknownFunctional(String),
    /// `Registry::register` refused a handle whose name (case-insensitive)
    /// is already taken.
    DuplicateFunctional(String),
    /// An operation needed `F_x` but the functional has no exchange part.
    MissingExchange { functional: String },
    /// Loading a DSL-defined functional failed (lexing, parsing, symbolic
    /// execution, or contract validation).
    Dsl { functional: String, message: String },
    /// Scalar or interval evaluation failed outside its natural domain.
    Eval { context: String, message: String },
    /// A campaign was cancelled before this pair ran.
    Cancelled,
    /// A campaign's global budget expired before this pair ran.
    BudgetExhausted { completed: usize, total: usize },
}

impl XcvError {
    /// Shorthand for wrapping a DSL pipeline error with the functional name.
    pub fn dsl(functional: impl Into<String>, err: impl fmt::Display) -> Self {
        XcvError::Dsl {
            functional: functional.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for XcvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XcvError::NotApplicable {
                functional,
                condition,
            } => write!(f, "{condition} does not apply to {functional}"),
            XcvError::UnknownFunctional(name) => {
                write!(f, "no functional named {name:?} in the registry")
            }
            XcvError::DuplicateFunctional(name) => {
                write!(f, "a functional named {name:?} is already registered")
            }
            XcvError::MissingExchange { functional } => {
                write!(f, "{functional} has no exchange part")
            }
            XcvError::Dsl {
                functional,
                message,
            } => write!(f, "loading DSL functional {functional:?}: {message}"),
            XcvError::Eval { context, message } => {
                write!(f, "evaluation failed in {context}: {message}")
            }
            XcvError::Cancelled => write!(f, "campaign cancelled"),
            XcvError::BudgetExhausted { completed, total } => write!(
                f,
                "campaign budget exhausted after {completed} of {total} pairs"
            ),
        }
    }
}

impl std::error::Error for XcvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = XcvError::NotApplicable {
            functional: "LYP".into(),
            condition: "LO bound".into(),
        };
        assert_eq!(e.to_string(), "LO bound does not apply to LYP");
        assert!(XcvError::UnknownFunctional("B3LYP".into())
            .to_string()
            .contains("B3LYP"));
        assert!(XcvError::dsl("wigner", "parse error at 1:1: oops")
            .to_string()
            .contains("parse error"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&XcvError::Cancelled);
    }
}
