//! Becke 1988 exchange GGA (empirical), unpolarized — combined with LYP
//! correlation this is the ubiquitous **BLYP** functional.
//!
//! Reference: A. D. Becke, Phys. Rev. A 38, 3098 (1988); `β = 0.0042` a.u.
//!
//! ```text
//! E_x^{B88} = E_x^{LDA} − β Σ_σ ∫ n_σ^{4/3} x_σ² / (1 + 6β x_σ asinh x_σ) dr,
//! x_σ = |∇n_σ| / n_σ^{4/3}
//! ```
//!
//! For the closed-shell case (`n_σ = n/2`) the enhancement factor depends on
//! `s` alone:
//!
//! ```text
//! F_x^{B88}(s) = 1 + (β / C_X) · 2^{-1/3} · x_σ² / (1 + 6β x_σ asinh x_σ),
//! x_σ = 2^{1/3} · 2 (3π²)^{1/3} · s,     C_X = (3/4)(3/π)^{1/3}
//! ```
//!
//! `asinh` is expressed as `ln(x + √(x²+1))` (exactly what a Maple → C
//! translation emits), so no new solver operation is needed.
//!
//! B88's enhancement grows like `s/ln s` without bound — it **locally
//! violates the Lieb–Oxford conditions** at large reduced gradients
//! (`F_x(5) ≈ 2.30 > 2.27`). The paper's DFA set contains no LO violation;
//! BLYP provides one, exercising the EC4/EC5 counterexample paths.

use crate::registry::S;
use crate::{lda_x, lyp};
use xcv_expr::{constant, var, Expr};

/// Becke's empirical gradient coefficient.
pub const BETA: f64 = 0.004_2;

/// `C_X = (3/4)(3/π)^{1/3}`, the LDA exchange prefactor in density form.
pub fn c_x() -> f64 {
    0.75 * (3.0 / std::f64::consts::PI).cbrt()
}

/// `x_σ = 2^{1/3} · 2 (3π²)^{1/3} · s`.
pub fn x_sigma(s: f64) -> f64 {
    2.0_f64.cbrt() * 2.0 * (3.0 * std::f64::consts::PI.powi(2)).cbrt() * s
}

/// Symbolic `F_x^{B88}(s)`.
pub fn f_x_expr() -> Expr {
    let xs = constant(x_sigma(1.0)) * var(S);
    // asinh(x) = ln(x + sqrt(x^2 + 1))
    let asinh = (&xs + (xs.powi(2) + constant(1.0)).sqrt()).ln();
    let denom = constant(1.0) + constant(6.0 * BETA) * &xs * asinh;
    constant(1.0) + constant(BETA / c_x() * 2.0_f64.powf(-1.0 / 3.0)) * xs.powi(2) / denom
}

/// Scalar `F_x^{B88}(s)`. Independent closed-form code path.
pub fn f_x(s: f64) -> f64 {
    let xs = x_sigma(s);
    let denom = 1.0 + 6.0 * BETA * xs * xs.asinh();
    1.0 + BETA / c_x() * 2.0_f64.powf(-1.0 / 3.0) * xs * xs / denom
}

/// Symbolic `ε_x^{B88}(rs, s)`.
pub fn eps_x_expr() -> Expr {
    lda_x::eps_x_unif_expr() * f_x_expr()
}

/// Scalar `ε_x^{B88}(rs, s)`.
pub fn eps_x(rs: f64, s: f64) -> f64 {
    lda_x::eps_x_unif(rs) * f_x(s)
}

/// Symbolic BLYP correlation = LYP (re-exported for the registry).
pub fn eps_c_expr() -> Expr {
    lyp::eps_c_expr()
}

/// Scalar BLYP correlation.
pub fn eps_c(rs: f64, s: f64) -> f64 {
    lyp::eps_c(rs, s)
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// BLYP (B88 exchange + LYP correlation) as an open-trait registry
/// citizen.
pub struct Blyp;

impl crate::Functional for Blyp {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "BLYP",
            crate::Family::Gga,
            crate::Design::Empirical,
            true,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        Some(f_x_expr())
    }
    fn eps_c(&self, rs: f64, s: f64, _alpha: f64) -> f64 {
        eps_c(rs, s)
    }
    fn f_x(&self, s: f64, _alpha: f64) -> Option<f64> {
        Some(f_x(s))
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(Blyp)
}

/// Module-level registration entry point: add BLYP to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_matches_scalar() {
        let e = f_x_expr();
        for &s in &[0.0, 0.1, 0.5, 1.0, 2.0, 5.0] {
            let a = e.eval(&[1.0, s, 0.0]).unwrap();
            let b = f_x(s);
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1e-12),
                "s={s}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn lda_limit() {
        assert_eq!(f_x(0.0), 1.0);
        // Small-s: F_x ≈ 1 + (β 2^{-1/3}/C_X) x_σ² (asinh term second order).
        let s = 1e-5;
        let xs = x_sigma(s);
        let expected = 1.0 + BETA / c_x() * 2.0_f64.powf(-1.0 / 3.0) * xs * xs;
        assert!((f_x(s) - expected).abs() < 1e-12);
    }

    #[test]
    fn moderate_gradient_matches_pbe_scale() {
        // B88 and PBE were fit to similar data; at s = 1 both give ≈ 1.18.
        let v = f_x(1.0);
        assert!((1.15..1.21).contains(&v), "F_x(1) = {v}");
        let pbe = crate::pbe::f_x(1.0);
        assert!((v - pbe).abs() < 0.02, "B88 {v} vs PBE {pbe}");
    }

    #[test]
    fn violates_lieb_oxford_at_domain_edge() {
        // The paper's DFA set satisfies EC5 wherever decided; B88 does not:
        // F_x alone exceeds C_LO = 2.27 before s = 5.
        assert!(f_x(5.0) > 2.27, "F_x(5) = {}", f_x(5.0));
        assert!(f_x(4.0) < 2.27, "violation onset should be near the edge");
        // Unbounded growth (s/ln s): still increasing.
        assert!(f_x(50.0) > f_x(5.0));
    }

    #[test]
    fn monotone_increasing_in_s() {
        let mut prev = f_x(0.0);
        for i in 1..100 {
            let v = f_x(0.06 * i as f64);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn asinh_identity_in_expr() {
        // The composite ln(x + sqrt(x²+1)) must equal f64::asinh.
        let e = f_x_expr();
        let d = e.diff(S);
        for &s in &[0.3, 1.7, 4.2] {
            let h = 1e-6;
            let num = (f_x(s + h) - f_x(s - h)) / (2.0 * h);
            let sym = d.eval(&[1.0, s, 0.0]).unwrap();
            assert!((num - sym).abs() < 1e-5, "s={s}: {num} vs {sym}");
        }
    }
}
