//! Perdew–Burke–Ernzerhof GGA (exchange and correlation), unpolarized.
//!
//! Reference: Perdew, Burke, Ernzerhof, Phys. Rev. Lett. 77, 3865 (1996).
//! Exchange: Eq. (14); correlation: Eqs. (7)–(8) with `φ(ζ=0) = 1` and the
//! PW92 LDA backbone.

use crate::constants::C_T;
use crate::registry::{RS, S};
use crate::{lda_x, pw92};
use xcv_expr::{constant, var, Expr};

pub const KAPPA: f64 = 0.804;
pub const MU: f64 = 0.219_514_972_764_517_1;
/// `β` of the correlation gradient term.
pub const BETA: f64 = 0.066_724_550_603_149_22;
/// `γ = (1 - ln 2)/π²`.
pub const GAMMA: f64 = 0.031_090_690_869_654_895;

/// Symbolic exchange enhancement factor `F_x^{PBE}(s)`.
pub fn f_x_expr() -> Expr {
    let s2 = var(S).powi(2);
    constant(1.0 + KAPPA) - constant(KAPPA) / (constant(1.0) + constant(MU / KAPPA) * s2)
}

/// Scalar `F_x^{PBE}(s)`.
pub fn f_x(s: f64) -> f64 {
    1.0 + KAPPA - KAPPA / (1.0 + MU * s * s / KAPPA)
}

/// Symbolic exchange energy per particle `ε_x^{PBE}(rs, s)`.
pub fn eps_x_expr() -> Expr {
    lda_x::eps_x_unif_expr() * f_x_expr()
}

/// Scalar `ε_x^{PBE}(rs, s)`.
pub fn eps_x(rs: f64, s: f64) -> f64 {
    lda_x::eps_x_unif(rs) * f_x(s)
}

/// Symbolic gradient correction `H(rs, t²)` of PBE correlation (`φ = 1`).
fn h_expr(ec_lda: &Expr, t2: &Expr) -> Expr {
    let beta_over_gamma = constant(BETA / GAMMA);
    // A = (β/γ) / (exp(-ε_c^{LDA}/γ) - 1)
    let a = &beta_over_gamma / ((-(ec_lda.clone()) / constant(GAMMA)).exp() - constant(1.0));
    let at2 = &a * t2;
    let num = constant(1.0) + &at2;
    let den = constant(1.0) + &at2 + at2.powi(2);
    let inner = constant(1.0) + &beta_over_gamma * t2 * (num / den);
    constant(GAMMA) * inner.ln()
}

/// Symbolic correlation energy per particle `ε_c^{PBE}(rs, s)`.
pub fn eps_c_expr() -> Expr {
    let ec_lda = pw92::eps_c_expr();
    let t2 = constant(C_T) * var(S).powi(2) / var(RS);
    &ec_lda + h_expr(&ec_lda, &t2)
}

/// Scalar `ε_c^{PBE}(rs, s)`. Independent closed-form code path.
pub fn eps_c(rs: f64, s: f64) -> f64 {
    let ec_lda = pw92::eps_c(rs);
    let t2 = C_T * s * s / rs;
    let a = BETA / GAMMA / ((-ec_lda / GAMMA).exp() - 1.0);
    let at2 = a * t2;
    let inner = 1.0 + BETA / GAMMA * t2 * (1.0 + at2) / (1.0 + at2 + at2 * at2);
    ec_lda + GAMMA * inner.ln()
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// PBE as an open-trait registry citizen (see [`crate::Functional`]).
pub struct Pbe;

impl crate::Functional for Pbe {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "PBE",
            crate::Family::Gga,
            crate::Design::NonEmpirical,
            true,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        Some(f_x_expr())
    }
    fn eps_c(&self, rs: f64, s: f64, _alpha: f64) -> f64 {
        eps_c(rs, s)
    }
    fn f_x(&self, s: f64, _alpha: f64) -> Option<f64> {
        Some(f_x(s))
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(Pbe)
}

/// Module-level registration entry point: add PBE to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_expr_matches_scalar() {
        let e = f_x_expr();
        for &s in &[0.0, 0.5, 1.0, 2.0, 5.0] {
            let sym = e.eval(&[1.0, s, 0.0]).unwrap();
            assert!((sym - f_x(s)).abs() < 1e-14);
        }
    }

    #[test]
    fn correlation_expr_matches_scalar() {
        let e = eps_c_expr();
        for &rs in &[1e-4, 0.1, 1.0, 5.0] {
            for &s in &[0.0, 0.3, 1.0, 3.0, 5.0] {
                let sym = e.eval(&[rs, s, 0.0]).unwrap();
                let num = eps_c(rs, s);
                assert!(
                    (sym - num).abs() <= 1e-11 * num.abs().max(1e-10),
                    "rs={rs}, s={s}: {sym} vs {num}"
                );
            }
        }
    }

    #[test]
    fn exchange_limits() {
        // F_x(0) = 1 (LDA limit); F_x is bounded by 1 + κ (Lieb–Oxford by
        // design).
        assert_eq!(f_x(0.0), 1.0);
        assert!(f_x(1e6) < 1.0 + KAPPA + 1e-12);
        // Small-s expansion: F_x ≈ 1 + μ s².
        let s = 1e-4;
        assert!((f_x(s) - (1.0 + MU * s * s)).abs() < 1e-14);
    }

    #[test]
    fn correlation_reduces_to_pw92_at_zero_gradient() {
        for &rs in &[0.1, 1.0, 4.0] {
            assert!((eps_c(rs, 0.0) - pw92::eps_c(rs)).abs() < 1e-14);
        }
    }

    #[test]
    fn correlation_vanishes_at_large_gradient() {
        // H -> -ε_c^{LDA} as t -> inf, so ε_c^{PBE} -> 0^- (non-positive).
        let v = eps_c(1.0, 50.0);
        assert!(v <= 0.0 && v > -1e-2, "{v}");
    }

    #[test]
    fn correlation_nonpositive_on_domain() {
        // PBE satisfies EC1 by construction — spot-check a dense grid.
        for i in 0..40 {
            for j in 0..40 {
                let rs = 1e-4 + 5.0 * (i as f64) / 39.0;
                let s = 5.0 * (j as f64) / 39.0;
                assert!(eps_c(rs, s) <= 1e-15, "ε_c({rs},{s}) > 0");
            }
        }
    }

    #[test]
    fn h_term_is_positive() {
        // The gradient correction raises ε_c toward zero.
        for &rs in &[0.1, 1.0, 5.0] {
            for &s in &[0.5, 1.0, 3.0] {
                assert!(eps_c(rs, s) > eps_c(rs, 0.0));
            }
        }
    }

    #[test]
    fn known_value_rs1_s0() {
        // ε_c^{PBE}(rs=1, s=0) = ε_c^{PW92}(1) ≈ -0.0600 Ha.
        assert!((eps_c(1.0, 0.0) + 0.0600).abs() < 5e-4);
    }

    #[test]
    fn op_count_in_paper_range() {
        // The paper quotes "over 300 operations" for the LIBXC PBE
        // correlation (which carries spin scaling we fix at ζ=0); ours is the
        // same functional form and must be substantial but finite.
        let n = eps_c_expr().op_count();
        assert!(n > 30, "suspiciously small PBE correlation DAG: {n}");
        assert!(n < 1000);
    }
}
