//! A regularized-SCAN variant (rSCAN-style), following the paper's
//! Section VI-A future-work direction.
//!
//! The paper's solver times out on every SCAN condition and attributes the
//! blow-up to SCAN's interpolation function `f(α)`, whose two branches
//! `exp(-c₁α/(1-α))` / `-d·exp(c₂/(1-α))` have an essential singularity at
//! the `α = 1` switch. The rSCAN family (Bartók & Yates 2019; Furness et al.
//! 2020/2022) regularizes exactly this: the switch is replaced by a
//! polynomial on `α ∈ [0, 2.5]` joined to the smooth outer branch, and `α`
//! itself is regularized to `α' = α³/(α² + α_reg)`.
//!
//! This module applies that regularization to our ζ=0 SCAN form: the same
//! `h⁰/h¹` endpoints and gradient terms, with `f(α)` replaced by the rSCAN
//! switch (exchange coefficients below; correlation uses the rSCAN
//! correlation polynomial). It is *not* a digit-for-digit r²SCAN — the
//! gradient-expansion restoration terms of r²SCAN are out of scope — but it
//! reproduces the property under study: **removing the essential
//! singularity makes the verification problem tractable**, which the
//! `regularization` experiment in EXPERIMENTS.md measures.

use crate::registry::ALPHA;
use crate::scan;
use xcv_expr::{constant, var, Expr};

/// rSCAN regularization constant for `α' = α³/(α² + α_reg)`.
pub const ALPHA_REG: f64 = 1e-3;

/// Exchange interpolation polynomial coefficients on `α ∈ [0, 2.5]`
/// (Bartók & Yates, J. Chem. Phys. 150, 161101 (2019), Eq. (6)).
pub const FX_POLY: [f64; 8] = [
    1.0,
    -0.667,
    -0.4445555,
    -0.663_086_601_049,
    1.451_297_044_490,
    -0.887_998_041_597,
    0.234_528_941_479,
    -0.023_185_843_322,
];

/// Correlation interpolation polynomial coefficients on `α ∈ [0, 2.5]`
/// (same reference, correlation channel).
pub const FC_POLY: [f64; 8] = [
    1.0,
    -0.64,
    -0.4352,
    -1.535_685_604_549,
    3.061_560_252_175,
    -1.915_710_236_206,
    0.516_884_468_372,
    -0.051_848_879_792,
];

/// Where the polynomial hands over to the smooth outer branch.
pub const ALPHA_SWITCH: f64 = 2.5;

/// The regularized iso-orbital indicator `α' = α³/(α² + α_reg)` (symbolic).
pub fn alpha_prime_expr() -> Expr {
    let a = var(ALPHA);
    a.powi(3) / (a.powi(2) + constant(ALPHA_REG))
}

/// Scalar `α'`.
pub fn alpha_prime(alpha: f64) -> f64 {
    alpha * alpha * alpha / (alpha * alpha + ALPHA_REG)
}

/// The regularized switch `f(α')`: polynomial below `α' = 2.5`, smooth
/// exponential tail above. Unlike SCAN's switch this is C¹ at the join and
/// has no singular inner limit.
fn f_regularized_expr(poly: &[f64; 8], c2: f64, d: f64) -> Expr {
    let ap = alpha_prime_expr();
    // Horner evaluation of the polynomial in α'.
    let mut p = constant(poly[7]);
    for i in (0..7).rev() {
        p = p * &ap + constant(poly[i]);
    }
    let tail = -(constant(d) * (constant(c2) / (constant(1.0) - &ap)).exp());
    // α' <= 2.5 ⇔ 2.5 - α' >= 0.
    Expr::ite(&(constant(ALPHA_SWITCH) - &ap), &p, &tail)
}

/// Scalar version of the regularized switch.
fn f_regularized(alpha: f64, poly: &[f64; 8], c2: f64, d: f64) -> f64 {
    let ap = alpha_prime(alpha);
    if ap <= ALPHA_SWITCH {
        let mut p = poly[7];
        for i in (0..7).rev() {
            p = p * ap + poly[i];
        }
        p
    } else {
        -d * (c2 / (1.0 - ap)).exp()
    }
}

/// Symbolic regularized-SCAN exchange enhancement `F_x(s, α)`.
pub fn f_x_expr() -> Expr {
    // Reuse SCAN's h0/h1/g machinery with the regularized switch: build
    // F_x = (h1x + f(α)(h0x - h1x))·g(s) by replacing only the switch. The
    // SCAN x-term's explicit (1-α) quadratic is kept with α' for the same
    // regularity reason.
    let fa = f_regularized_expr(&FX_POLY, scan::C2X, scan::DX);
    scan_like_fx(&fa)
}

/// Scalar regularized-SCAN exchange.
pub fn f_x(s: f64, alpha: f64) -> f64 {
    let fa = f_regularized(alpha, &FX_POLY, scan::C2X, scan::DX);
    scan_like_fx_scalar(s, alpha, fa)
}

fn scan_like_fx(fa: &Expr) -> Expr {
    use crate::registry::S;
    let s2 = var(S).powi(2);
    let term_b4 = (constant(scan::B4 / scan::MU_AK) * &s2)
        * (-(constant(scan::B4.abs() / scan::MU_AK) * &s2)).exp();
    let one_minus_a = constant(1.0) - alpha_prime_expr();
    let quad = constant(scan::B1) * &s2
        + constant(scan::B2) * &one_minus_a * (-(constant(scan::B3) * one_minus_a.powi(2))).exp();
    let x = constant(scan::MU_AK) * &s2 * (constant(1.0) + term_b4) + quad.powi(2);
    let h1x =
        constant(1.0 + scan::K1) - constant(scan::K1) / (constant(1.0) + x / constant(scan::K1));
    let gx = constant(1.0) - (-(constant(scan::A1) / var(S).sqrt())).exp();
    (&h1x + fa * (constant(scan::H0X) - &h1x)) * gx
}

fn scan_like_fx_scalar(s: f64, alpha: f64, fa: f64) -> f64 {
    let s2 = s * s;
    let term_b4 = scan::B4 / scan::MU_AK * s2 * (-scan::B4.abs() / scan::MU_AK * s2).exp();
    let oma = 1.0 - alpha_prime(alpha);
    let quad = scan::B1 * s2 + scan::B2 * oma * (-scan::B3 * oma * oma).exp();
    let x = scan::MU_AK * s2 * (1.0 + term_b4) + quad * quad;
    let h1x = 1.0 + scan::K1 - scan::K1 / (1.0 + x / scan::K1);
    let gx = if s == 0.0 {
        1.0
    } else {
        1.0 - (-scan::A1 / s.sqrt()).exp()
    };
    (h1x + fa * (scan::H0X - h1x)) * gx
}

/// Symbolic regularized-SCAN correlation `ε_c(rs, s, α)`: SCAN's two
/// endpoint energies interpolated by the regularized correlation switch.
pub fn eps_c_expr() -> Expr {
    let ec0 = scan::eps_c0_expr_pub();
    let ec1 = scan::eps_c1_expr_pub();
    let fc = f_regularized_expr(&FC_POLY, scan::C2C, scan::DC);
    &ec1 + fc * (ec0 - &ec1)
}

/// Scalar regularized-SCAN correlation.
pub fn eps_c(rs: f64, s: f64, alpha: f64) -> f64 {
    let (ec0, ec1) = scan::eps_c_endpoints(rs, s);
    let fc = f_regularized(alpha, &FC_POLY, scan::C2C, scan::DC);
    ec1 + fc * (ec0 - ec1)
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// The regularized-SCAN variant as an open-trait registry citizen.
pub struct RScan;

impl crate::Functional for RScan {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "rSCAN(reg)",
            crate::Family::MetaGga,
            crate::Design::NonEmpirical,
            true,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        Some(f_x_expr())
    }
    fn eps_c(&self, rs: f64, s: f64, alpha: f64) -> f64 {
        eps_c(rs, s, alpha)
    }
    fn f_x(&self, s: f64, alpha: f64) -> Option<f64> {
        Some(f_x(s, alpha))
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(RScan)
}

/// Module-level registration entry point: add rSCAN(reg) to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_matches_scalar() {
        let ex = f_x_expr();
        let ec = eps_c_expr();
        for &rs in &[0.1, 1.0, 4.0] {
            for &s in &[0.05, 0.5, 2.0, 5.0] {
                for &alpha in &[0.0, 0.5, 1.0, 1.001, 2.0, 5.0] {
                    let a = ex.eval(&[rs, s, alpha]).unwrap();
                    let b = f_x(s, alpha);
                    assert!(
                        (a - b).abs() <= 1e-10 * b.abs().max(1e-10),
                        "F_x at ({rs},{s},{alpha}): {a} vs {b}"
                    );
                    let a = ec.eval(&[rs, s, alpha]).unwrap();
                    let b = eps_c(rs, s, alpha);
                    assert!(
                        (a - b).abs() <= 1e-9 * b.abs().max(1e-10),
                        "ε_c at ({rs},{s},{alpha}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn alpha_prime_regularizes_origin() {
        // α' ≈ α away from 0, and α' → 0 smoothly (no 0/0) at the origin.
        assert_eq!(alpha_prime(0.0), 0.0);
        assert!((alpha_prime(2.0) - 2.0).abs() < 1e-3);
        assert!(alpha_prime(1e-6) < 1e-6);
    }

    #[test]
    fn switch_value_at_alpha_zero_matches_scan() {
        // Both SCAN's and rSCAN's exchange switches equal 1 at α = 0
        // (single-orbital limit) and decay through 0 near α = 1.
        assert!((f_regularized(0.0, &FX_POLY, scan::C2X, scan::DX) - 1.0).abs() < 1e-12);
        let near_one = f_regularized(1.0, &FX_POLY, scan::C2X, scan::DX);
        assert!(near_one.abs() < 0.2, "f(1) should be small, got {near_one}");
    }

    #[test]
    fn switch_is_smooth_across_alpha_one() {
        // The essential singularity is gone: finite difference slope through
        // α = 1 is bounded (SCAN's switch has unbounded one-sided
        // derivatives there).
        let h = 1e-4;
        let fm = f_regularized(1.0 - h, &FX_POLY, scan::C2X, scan::DX);
        let fp = f_regularized(1.0 + h, &FX_POLY, scan::C2X, scan::DX);
        let slope = (fp - fm) / (2.0 * h);
        assert!(slope.abs() < 10.0, "slope {slope}");
    }

    #[test]
    fn tracks_scan_away_from_switch() {
        // At α = 0 the two functionals share their endpoints, so the
        // energies agree to the polynomial-vs-exponential difference.
        for &(rs, s) in &[(0.5, 0.5), (2.0, 1.0)] {
            let a = eps_c(rs, s, 0.0);
            let b = crate::scan::eps_c(rs, s, 0.0);
            assert!(
                (a - b).abs() < 5e-3 * b.abs().max(1e-3),
                "({rs},{s}): {a} vs {b}"
            );
        }
    }

    #[test]
    fn correlation_nonpositive_sampled() {
        for i in 0..15 {
            for j in 0..15 {
                for k in 0..8 {
                    let rs = 1e-4 + 5.0 * (i as f64) / 14.0;
                    let s = 5.0 * (j as f64) / 14.0;
                    let alpha = 5.0 * (k as f64) / 7.0;
                    let v = eps_c(rs, s, alpha);
                    assert!(v <= 1e-12, "ε_c({rs},{s},{alpha}) = {v}");
                }
            }
        }
    }

    #[test]
    fn no_ite_on_raw_alpha_singularity() {
        // The regularized switch's ITE condition is on 2.5 - α', far from
        // the dense part of the domain — the expression still contains an
        // exp(c/(1-α')) tail but it is only active for α' > 2.5.
        let e = f_x_expr();
        let v = e.eval(&[1.0, 1.0, 1.0]).unwrap();
        assert!(v.is_finite());
    }
}
