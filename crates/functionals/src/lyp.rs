//! Lee–Yang–Parr correlation GGA (empirical), unpolarized.
//!
//! Reference: Lee, Yang, Parr, Phys. Rev. B 37, 785 (1988), in the
//! density-only (Miehlich et al., Chem. Phys. Lett. 157, 200 (1989))
//! reformulation used by LIBXC's `GGA_C_LYP`, reduced to the closed-shell
//! `ζ = 0` case.
//!
//! Starting from the Miehlich spin form with `n_α = n_β = n/2`,
//! `|∇n_σ|² = |∇n|²/4`, the energy density collapses to (derivation in the
//! module tests and DESIGN.md):
//!
//! ```text
//! ε_c(rs, s) = -a/(1 + dq·rs)
//!              - a·b·exp(-cq·rs)/(1 + dq·rs) · [ C_F - G(rs)·s² ]
//! G(rs)  = 4·K(rs)·(k_F rs)²·q²,     (the explicit rs powers cancel)
//! K(rs)  = 1/24 + 7δ(rs)/72,
//! δ(rs)  = cq·rs + dq·rs/(1 + dq·rs),
//! q      = (4π/3)^{1/3}  (so n^{-1/3} = q·rs).
//! ```
//!
//! The positive `s²` term is what drives LYP's violation of the `E_c`
//! non-positivity condition at large reduced gradients — the headline LYP
//! finding of the paper (Fig. 2).

use crate::constants::{C_F, KF_RS};
use crate::registry::{RS, S};
use xcv_expr::{constant, var, Expr};

pub const A: f64 = 0.049_18;
pub const B: f64 = 0.132;
pub const C: f64 = 0.253_3;
pub const D: f64 = 0.349;

/// `q = (4π/3)^{1/3}`: converts `rs` to `n^{-1/3}`.
fn q() -> f64 {
    (4.0 * std::f64::consts::PI / 3.0).cbrt()
}

/// Symbolic `ε_c^{LYP}(rs, s)`.
pub fn eps_c_expr() -> Expr {
    let qv = q();
    let rs = var(RS);
    let s2 = var(S).powi(2);
    let cq_rs = constant(C * qv) * &rs;
    let dq_rs = constant(D * qv) * &rs;
    let denom = constant(1.0) + &dq_rs;
    let delta = &cq_rs + &dq_rs / &denom;
    let k = constant(1.0 / 24.0) + constant(7.0 / 72.0) * &delta;
    let g = constant(4.0 * KF_RS * KF_RS * qv * qv) * &k;
    let bracket = constant(C_F) - g * s2;
    -(constant(A) / &denom) - constant(A * B) * (-cq_rs).exp() / denom * bracket
}

/// Scalar `ε_c^{LYP}(rs, s)`. Independent closed-form code path (computed in
/// the original density variables, not the reduced form above, so agreement
/// between the two validates the algebraic reduction).
pub fn eps_c(rs: f64, s: f64) -> f64 {
    let n = crate::constants::density_from_rs(rs);
    let grad2 = {
        let g = crate::constants::grad_norm_from_s(n, s);
        g * g
    };
    let n13 = n.powf(-1.0 / 3.0);
    let denom = 1.0 + D * n13;
    let omega = (-C * n13).exp() * n.powf(-11.0 / 3.0) / denom;
    let delta = C * n13 + D * n13 / denom;
    let k = 1.0 / 24.0 + 7.0 * delta / 72.0;
    let bracket = C_F * n.powf(14.0 / 3.0) - k * n * n * grad2;
    (-A * n / denom - A * B * omega * bracket) / n
}

// ---------------------------------------------------------------------------
// Registry citizenship
// ---------------------------------------------------------------------------

/// LYP (correlation only) as an open-trait registry citizen.
pub struct Lyp;

impl crate::Functional for Lyp {
    fn info(&self) -> crate::DfaInfo {
        crate::functional::info(
            "LYP",
            crate::Family::Gga,
            crate::Design::Empirical,
            false,
            true,
        )
    }
    fn eps_c_expr(&self) -> Expr {
        eps_c_expr()
    }
    fn f_x_expr(&self) -> Option<Expr> {
        None
    }
    fn eps_c(&self, rs: f64, s: f64, _alpha: f64) -> f64 {
        eps_c(rs, s)
    }
    fn f_x(&self, _s: f64, _alpha: f64) -> Option<f64> {
        None
    }
}

/// A fresh handle to this module's functional.
pub fn handle() -> crate::FunctionalHandle {
    std::sync::Arc::new(Lyp)
}

/// Module-level registration entry point: add LYP to `registry`.
pub fn register(
    registry: &mut crate::Registry,
) -> Result<crate::FunctionalHandle, crate::XcvError> {
    registry.register(handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_form_matches_density_form() {
        // The symbolic expression uses the (rs, s)-reduced algebra; the
        // scalar path works in (n, |∇n|²). Their agreement validates the
        // reduction documented in the module header.
        let e = eps_c_expr();
        for &rs in &[1e-4, 0.05, 0.5, 1.0, 2.5, 5.0] {
            for &s in &[0.0, 0.4, 1.0, 1.7, 3.0, 5.0] {
                let sym = e.eval(&[rs, s, 0.0]).unwrap();
                let num = eps_c(rs, s);
                assert!(
                    (sym - num).abs() <= 1e-10 * num.abs().max(1e-10),
                    "rs={rs}, s={s}: {sym} vs {num}"
                );
            }
        }
    }

    #[test]
    fn negative_at_small_gradient() {
        for &rs in &[0.1, 1.0, 5.0] {
            assert!(eps_c(rs, 0.0) < 0.0);
            assert!(eps_c(rs, 1.0) < 0.0);
        }
    }

    #[test]
    fn violates_non_positivity_at_large_s() {
        // The paper's central LYP finding (EC1 row of Table I): ε_c becomes
        // positive at large reduced gradients, roughly s ≳ 1.7 around rs ≈ 2.
        assert!(eps_c(2.0, 2.0) > 0.0, "{}", eps_c(2.0, 2.0));
        assert!(eps_c(1.0, 2.5) > 0.0);
        assert!(eps_c(5.0, 3.0) > 0.0);
        // And the crossing sits in the right band.
        let mut crossing = None;
        for i in 0..5000 {
            let s = (i as f64) * 0.001;
            if eps_c(2.0, s) > 0.0 {
                crossing = Some(s);
                break;
            }
        }
        let c = crossing.expect("must cross");
        assert!(
            (1.4..2.1).contains(&c),
            "crossing at rs=2 should be near s≈1.7, got {c}"
        );
    }

    #[test]
    fn heg_value_reasonable() {
        // LYP is not exact for the uniform gas; its HEG limit at rs = 1 is
        // ≈ -0.039 Ha (vs PW92's -0.060).
        let v = eps_c(1.0, 0.0);
        assert!((-0.045..=-0.034).contains(&v), "{v}");
    }

    #[test]
    fn empirical_tail_behaviour() {
        // exp(-cq rs) kills the gradient term at low density: at rs = 5 the
        // s-dependence is weak relative to rs = 0.5.
        let spread_low_rs = (eps_c(0.5, 1.0) - eps_c(0.5, 0.0)).abs();
        let spread_high_rs = (eps_c(5.0, 1.0) - eps_c(5.0, 0.0)).abs();
        assert!(spread_high_rs < spread_low_rs);
    }
}
