//! Wire-protocol robustness fuzz: whatever bytes a client throws at the
//! daemon, the answer is a structured `error` event — never a silent drop,
//! never a panic, never a dead daemon.
//!
//! Three generators drive a single long-lived daemon through raw TCP (no
//! [`Client`] conveniences — the point is hostile input):
//!
//! * arbitrary printable garbage lines,
//! * strict prefixes of a *valid* verify request (every torn-write shape),
//! * well-formed JSON whose `cmd` the protocol does not know.
//!
//! Each case additionally pings on the same connection afterwards: a
//! malformed line must not cost the connection, let alone the daemon. The
//! one exception is an oversized (> 1 MiB) line — there is no
//! resynchronization point inside an unterminated line, so the contract is
//! an explicit error *then* connection close, with the daemon still
//! accepting new connections (pinned by a plain test below).

use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;
use xcv_serve::{Event, Policy, Request, Server, ServerConfig, VerifyRequest};

/// One daemon for the whole fuzz binary, leaked so it outlives every test
/// thread (its `Drop` would otherwise shut the accept loop down).
fn daemon() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::spawn(ServerConfig::default()).expect("ephemeral port");
        let addr = server.addr();
        Box::leak(Box::new(server));
        addr
    })
}

/// Send one raw line, read one response line, then prove the connection
/// (and the daemon behind it) still serves by round-tripping a ping.
fn send_line_then_ping(line: &str) -> Result<Event, String> {
    assert!(!line.contains('\n'), "generator bug: embedded newline");
    let mut stream = TcpStream::connect(daemon()).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    writeln!(stream, "{line}").map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    reader
        .read_line(&mut resp)
        .map_err(|e| format!("recv: {e}"))?;
    if resp.is_empty() {
        return Err("silent drop: connection closed without a response".to_string());
    }
    let event = Event::parse(resp.trim_end())?;
    writeln!(stream, "{}", Request::Ping.to_json()).map_err(|e| format!("ping send: {e}"))?;
    let mut pong = String::new();
    reader
        .read_line(&mut pong)
        .map_err(|e| format!("ping recv: {e}"))?;
    match Event::parse(pong.trim_end())? {
        Event::Pong => Ok(event),
        other => Err(format!("connection broken after bad line: {other:?}")),
    }
}

/// A canonical valid request to cut prefixes from.
fn valid_request_json() -> String {
    Request::Verify(VerifyRequest {
        functionals: vec!["PBE".to_string(), "LYP".to_string()],
        conditions: Vec::new(),
        policy: Policy::Gate {
            budget_ms: 50,
            threshold: 0.3,
        },
    })
    .to_json()
}

/// Printable garbage with a JSON-flavoured alphabet — heavy on the
/// structural characters so the parser's every early-exit path gets hit.
fn garbage(len: usize, seed: u64) -> String {
    const ALPHABET: &[u8] = br#"{}[]":,\ abcdefgverifypingstamx0123456789.-_"#;
    let mut state = seed | 1;
    let mut out = String::with_capacity(len + 1);
    for _ in 0..len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let i = (state.wrapping_mul(0x2545F4914F6CDD1D) % ALPHABET.len() as u64) as usize;
        out.push(ALPHABET[i] as char);
    }
    if out.trim().is_empty() {
        out.push('x'); // a blank line is legitimately ignored, not errored
    }
    out
}

proptest! {
    #[test]
    fn garbage_lines_get_a_structured_error(len in 1usize..120, seed in 0u64..u64::MAX) {
        let line = garbage(len, seed);
        match send_line_then_ping(&line) {
            Ok(Event::Error { .. }) => {}
            Ok(other) => {
                return Err(TestCaseError::Fail(format!(
                    "garbage {line:?} was answered with {other:?}, not an error"
                )))
            }
            Err(e) => return Err(TestCaseError::Fail(format!("garbage {line:?}: {e}"))),
        }
    }

    #[test]
    fn truncated_requests_get_a_structured_error(cut in 0u64..u64::MAX) {
        let full = valid_request_json();
        // Every strict non-empty prefix: exactly the shapes a torn write,
        // a crashed client, or a hostile peer produces.
        let idx = 1 + (cut as usize) % (full.len() - 1);
        let line = &full[..idx];
        match send_line_then_ping(line) {
            Ok(Event::Error { .. }) => {}
            Ok(other) => {
                return Err(TestCaseError::Fail(format!(
                    "prefix {line:?} was answered with {other:?}, not an error"
                )))
            }
            Err(e) => return Err(TestCaseError::Fail(format!("prefix {line:?}: {e}"))),
        }
    }

    #[test]
    fn unknown_commands_get_a_structured_error(pick in 0usize..6, seed in 0u64..u64::MAX) {
        let cmd = match pick {
            0 => "frobnicate".to_string(),
            1 => "VERIFY".to_string(), // case matters on the wire
            2 => "verify2".to_string(),
            3 => String::new(),
            4 => "ping ".to_string(),
            _ => garbage(8, seed).replace(['"', '\\'], "x"),
        };
        let line = format!("{{\"cmd\": \"{cmd}\"}}");
        match send_line_then_ping(&line) {
            Ok(Event::Error { message }) => {
                prop_assert!(!message.is_empty(), "error carries a diagnostic");
            }
            Ok(other) => {
                return Err(TestCaseError::Fail(format!(
                    "unknown cmd {cmd:?} was answered with {other:?}, not an error"
                )))
            }
            Err(e) => return Err(TestCaseError::Fail(format!("unknown cmd {cmd:?}: {e}"))),
        }
    }
}

/// An unterminated line past the 1 MiB cap has no resynchronization point:
/// the daemon answers one explicit error, closes that connection, and keeps
/// accepting new ones.
#[test]
fn oversized_lines_error_and_close_but_the_daemon_survives() {
    let mut stream = TcpStream::connect(daemon()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // Exactly one byte past the cap, newline included: the daemon consumes
    // the whole line (so its close is a clean FIN that cannot clobber the
    // queued error reply with a reset) and still must reject it.
    let mut line = vec![b'x'; 1 << 20];
    line.push(b'\n');
    stream.write_all(&line).expect("flood");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("error line");
    match Event::parse(resp.trim_end()).expect("structured event") {
        Event::Error { message } => {
            assert!(message.contains("exceeds"), "names the cap: {message:?}")
        }
        other => panic!("expected an error, got {other:?}"),
    }
    // The flooded connection is closed...
    let mut rest = String::new();
    let closed = matches!(reader.read_line(&mut rest), Ok(0) | Err(_));
    assert!(closed, "flooded connection must close, got {rest:?}");
    // ...and the daemon still serves fresh ones.
    let mut client = xcv_serve::Client::connect(daemon()).expect("connect");
    client.ping().expect("daemon survived the flood");
}
