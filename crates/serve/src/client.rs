//! The thin client: connect, send one line, stream event lines back.
//!
//! `xcverify --server` is built on this — it forwards verify events to a
//! callback (for live per-pair printing) and returns the terminal
//! [`Done`] summary. A connection handles any number of sequential
//! requests.
//!
//! Resilience: [`Client::connect_retry`] rides out a daemon that is still
//! binding (or briefly restarting) with a doubling-backoff connect ladder,
//! transient read interruptions (`EINTR`) are retried in place, and
//! [`Client::set_read_timeout`] bounds how long a read blocks on a wedged
//! daemon so the caller can fall back instead of hanging.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{Done, Event, Request, ServerStats, VerifyRequest};

/// One connection to a running `xcvserve`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Requests are single short lines: flush them immediately instead
        // of trading a Nagle/delayed-ACK stall for nothing.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// [`Client::connect`] with a retry ladder: up to `attempts` tries,
    /// sleeping `backoff` then doubling after each refused/failed connect.
    /// Covers the races a service client actually hits — the daemon still
    /// binding its port, or restarting under a supervisor — without
    /// masking a genuinely absent server for more than the ladder's total.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        attempts: u32,
        backoff: Duration,
    ) -> std::io::Result<Client> {
        let mut delay = backoff;
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Bound how long any single event read blocks (`None` = forever).
    /// The two stream handles share one socket, so this covers every read.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        writeln!(self.writer, "{}", req.to_json()).map_err(|e| format!("send: {e}"))
    }

    fn next_event(&mut self) -> Result<Event, String> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                // A signal-interrupted read is not a dead server: retry,
                // keeping whatever partial line already arrived.
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("recv: {e}")),
                Ok(0) => return Err("server closed the connection".to_string()),
                Ok(_) if line.trim().is_empty() => line.clear(),
                Ok(_) => return Event::parse(line.trim_end()),
            }
        }
    }

    /// Run one verify request, forwarding every streamed event to
    /// `on_event` as it arrives (the terminal event included), and return
    /// the final summary. A server-side `error` event is an `Err`.
    pub fn verify(
        &mut self,
        req: &VerifyRequest,
        mut on_event: impl FnMut(&Event),
    ) -> Result<Done, String> {
        self.send(&Request::Verify(req.clone()))?;
        loop {
            let event = self.next_event()?;
            on_event(&event);
            match event {
                Event::Done(done) => return Ok(done),
                Event::Error { message } => return Err(message),
                _ => {}
            }
        }
    }

    /// Round-trip a ping.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send(&Request::Ping)?;
        match self.next_event()? {
            Event::Pong => Ok(()),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    /// Fetch the daemon's lifetime cache statistics.
    pub fn stats(&mut self) -> Result<ServerStats, String> {
        self.send(&Request::Stats)?;
        match self.next_event()? {
            Event::Stats(s) => Ok(s),
            Event::Error { message } => Err(message),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    /// Ask the daemon to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        match self.next_event()? {
            Event::Ok => Ok(()),
            other => Err(format!("expected ok, got {other:?}")),
        }
    }
}
