//! The thin client: connect, send one line, stream event lines back.
//!
//! `xcverify --server` is built on this — it forwards verify events to a
//! callback (for live per-pair printing) and returns the terminal
//! [`Done`] summary. A connection handles any number of sequential
//! requests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{Done, Event, Request, ServerStats, VerifyRequest};

/// One connection to a running `xcvserve`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        writeln!(self.writer, "{}", req.to_json()).map_err(|e| format!("send: {e}"))
    }

    fn next_event(&mut self) -> Result<Event, String> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Err(e) => return Err(format!("recv: {e}")),
                Ok(0) => return Err("server closed the connection".to_string()),
                Ok(_) if line.trim().is_empty() => continue,
                Ok(_) => return Event::parse(line.trim_end()),
            }
        }
    }

    /// Run one verify request, forwarding every streamed event to
    /// `on_event` as it arrives (the terminal event included), and return
    /// the final summary. A server-side `error` event is an `Err`.
    pub fn verify(
        &mut self,
        req: &VerifyRequest,
        mut on_event: impl FnMut(&Event),
    ) -> Result<Done, String> {
        self.send(&Request::Verify(req.clone()))?;
        loop {
            let event = self.next_event()?;
            on_event(&event);
            match event {
                Event::Done(done) => return Ok(done),
                Event::Error { message } => return Err(message),
                _ => {}
            }
        }
    }

    /// Round-trip a ping.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send(&Request::Ping)?;
        match self.next_event()? {
            Event::Pong => Ok(()),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    /// Fetch the daemon's lifetime cache statistics.
    pub fn stats(&mut self) -> Result<ServerStats, String> {
        self.send(&Request::Stats)?;
        match self.next_event()? {
            Event::Stats(s) => Ok(s),
            Event::Error { message } => Err(message),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    /// Ask the daemon to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        match self.next_event()? {
            Event::Ok => Ok(()),
            other => Err(format!("expected ok, got {other:?}")),
        }
    }
}
