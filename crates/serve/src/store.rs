//! Levels 2 and 3 of the daemon cache: the memoized result store and
//! in-flight request coalescing.
//!
//! ## Level 2 — memoized results
//!
//! A pair's verification outcome is fully determined by its
//! [`ResultKey`]: the level-1 [`ProblemKey`] (functional source hash,
//! condition id, variable-space fingerprint) extended with the solver
//! configuration fingerprint ([`VerifierConfig::fingerprint`] ⊕
//! [`DeltaSolver::fingerprint`], both FNV-1a over exact bit patterns).
//! The store memoizes the [`StoredResult`] summary — mark, witnesses,
//! wall time, region-status census — under that key, so a warm repeat
//! answers without touching the solver at all.
//!
//! Admission is cost-model-driven in the simplest possible way: a result
//! is persisted to the store *directory* only when its measured wall time
//! reached `admit_ms` — cheap pairs are recomputed on restart (recompute
//! is cheaper than the I/O + disk footprint), expensive ones are written
//! with the WDL-style atomic finalize
//! ([`xcv_cert::store::write_atomic_retry`]: temp file + rename, retry
//! ladder with doubling backoff) so a restarted daemon warms from disk.
//! In-memory memoization applies to every result regardless.
//!
//! ## Level 3 — coalescing
//!
//! [`ResultStore::try_claim`] is the single entry point and is
//! *non-blocking*: it answers `Hit` (memoized), `Leader` (the caller now
//! owns the solve for this key), or `Busy` (someone else is solving it).
//! A request thread first claims every pair it needs, solves the keys it
//! leads, finalizes them, and only *then* blocks in
//! [`ResultStore::wait_for`] on its `Busy` keys. Because no thread ever
//! waits while still holding an unfinalized leadership, two requests with
//! overlapping key sets cannot deadlock, and N concurrent identical
//! queries cost exactly one solve.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use xcv_cert::json::{escape, fmt_f64, Json};
use xcv_cert::store::{quarantine, read_dir_json, write_atomic, write_atomic_retry};
use xcv_conditions::Condition;
use xcv_core::cache::{fnv1a, fnv1a_str, ProblemKey};
use xcv_core::{FaultPlan, FaultSite, TableMark};

use crate::proto::{mark_tag, parse_mark};

const SCHEMA: &str = "xcv-serve-result/v2";
const PERSIST_ATTEMPTS: u32 = 3;
const PERSIST_BACKOFF: Duration = Duration::from_millis(10);

/// The full cache key of one verification outcome: *what* was solved
/// (level-1 problem identity) plus *how* (solver config fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultKey {
    pub problem: ProblemKey,
    /// `VerifierConfig::fingerprint()` — covers the solver's δ, budget,
    /// split threshold, depth cap, and deadline; excludes the
    /// parallelism knobs, which cannot change marks.
    pub config_fp: u64,
}

impl std::fmt::Display for ResultKey {
    /// Also the store file stem: `{source}-{cond}-{space}-{config}`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{:016x}", self.problem, self.config_fp)
    }
}

/// The memoized summary of one solved pair — everything a cached answer
/// needs to replay the pair's event stream and mark without re-solving.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResult {
    pub functional: String,
    pub condition: Condition,
    pub mark: TableMark,
    /// Deduplicated counterexample witnesses, in region order.
    pub witnesses: Vec<Vec<f64>>,
    /// Measured solve wall time — drives the persistence admission.
    pub wall_ms: u64,
    /// Region-status census `[verified, counterexample, inconclusive,
    /// timeout]` of the final region map.
    pub regions: [u64; 4],
}

impl StoredResult {
    /// FNV-1a content checksum over every field that round-trips through
    /// the JSON document, key included. Floats hash by exact bit pattern —
    /// `fmt_f64` renders shortest-round-trip, so the bits survive the
    /// render/parse cycle and a recomputed checksum on load matches iff
    /// the document is the one that was finalized. A flipped bit, a torn
    /// tail, or a hand-edited mark all fail the check and quarantine.
    fn content_checksum(&self, key: &ResultKey) -> u64 {
        let mut h = fnv1a_str("xcv-serve-result-checksum/v2");
        h = fnv1a(h, &key.problem.source_hash.to_le_bytes());
        h = fnv1a(h, key.problem.condition.id().as_bytes());
        h = fnv1a(h, &key.problem.space_fp.to_le_bytes());
        h = fnv1a(h, &key.config_fp.to_le_bytes());
        h = fnv1a(h, self.functional.as_bytes());
        h = fnv1a(h, &[0]); // separator: functional name is free-form
        h = fnv1a(h, mark_tag(self.mark).as_bytes());
        h = fnv1a(h, &self.wall_ms.to_le_bytes());
        for r in self.regions {
            h = fnv1a(h, &r.to_le_bytes());
        }
        h = fnv1a(h, &(self.witnesses.len() as u64).to_le_bytes());
        for w in &self.witnesses {
            h = fnv1a(h, &(w.len() as u64).to_le_bytes());
            for v in w {
                h = fnv1a(h, &v.to_bits().to_le_bytes());
            }
        }
        h
    }

    fn render(&self, key: &ResultKey) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"checksum\": \"{:016x}\",\n",
            self.content_checksum(key)
        ));
        // u64 fingerprints travel as hex strings: the hand-rolled Json
        // parses numbers through f64, which silently rounds above 2^53.
        out.push_str(&format!(
            "  \"source_hash\": \"{:016x}\", \"condition\": \"{}\", \
             \"space_fp\": \"{:016x}\", \"config_fp\": \"{:016x}\",\n",
            key.problem.source_hash,
            key.problem.condition.id(),
            key.problem.space_fp,
            key.config_fp
        ));
        out.push_str(&format!(
            "  \"functional\": \"{}\", \"mark\": \"{}\", \"wall_ms\": {},\n",
            escape(&self.functional),
            mark_tag(self.mark),
            self.wall_ms
        ));
        out.push_str(&format!(
            "  \"regions\": [{}, {}, {}, {}],\n",
            self.regions[0], self.regions[1], self.regions[2], self.regions[3]
        ));
        out.push_str("  \"witnesses\": [");
        for (i, w) in self.witnesses.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, v) in w.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&fmt_f64(*v));
            }
            out.push(']');
        }
        out.push_str("]\n}\n");
        out
    }

    fn parse(text: &str) -> Result<(ResultKey, StoredResult), String> {
        let doc = Json::parse(text)?;
        if doc.want("schema")?.as_str()? != SCHEMA {
            return Err(format!(
                "unsupported result schema {:?}",
                doc.want("schema")?.as_str()?
            ));
        }
        let hex = |field: &str| -> Result<u64, String> {
            let s = doc.want(field)?.as_str()?;
            u64::from_str_radix(s, 16).map_err(|e| format!("{field}: {e}"))
        };
        let cond_id = doc.want("condition")?.as_str()?;
        let condition =
            Condition::from_id(cond_id).ok_or_else(|| format!("unknown condition {cond_id:?}"))?;
        let mark_s = doc.want("mark")?.as_str()?;
        let mark = parse_mark(mark_s).ok_or_else(|| format!("unknown mark {mark_s:?}"))?;
        let regions_v = doc.want("regions")?.as_arr()?;
        if regions_v.len() != 4 {
            return Err("regions census needs exactly 4 entries".to_string());
        }
        let mut regions = [0u64; 4];
        for (i, v) in regions_v.iter().enumerate() {
            regions[i] = v.as_u64()?;
        }
        let witnesses = doc
            .want("witnesses")?
            .as_arr()?
            .iter()
            .map(|w| w.as_arr()?.iter().map(Json::as_f64).collect())
            .collect::<Result<Vec<Vec<f64>>, _>>()?;
        let key = ResultKey {
            problem: ProblemKey {
                source_hash: hex("source_hash")?,
                condition,
                space_fp: hex("space_fp")?,
            },
            config_fp: hex("config_fp")?,
        };
        let result = StoredResult {
            functional: doc.want("functional")?.as_str()?.to_string(),
            condition,
            mark,
            witnesses,
            wall_ms: doc.want("wall_ms")?.as_u64()?,
            regions,
        };
        let stored_sum = hex("checksum")?;
        let computed = result.content_checksum(&key);
        if stored_sum != computed {
            return Err(format!(
                "checksum mismatch: stored {stored_sum:016x}, content hashes to {computed:016x}"
            ));
        }
        Ok((key, result))
    }
}

/// The outcome of a non-blocking claim.
#[derive(Debug, Clone, PartialEq)]
pub enum Claim {
    /// Memoized — here is the answer.
    Hit(StoredResult),
    /// The caller now owns this key's solve and MUST call
    /// [`ResultStore::finalize`] or [`ResultStore::abandon`] — or wrap the
    /// leadership in a [`LeaderGuard`] so a panic abandons it automatically.
    Leader,
    /// Another request is solving this key; defer and
    /// [`ResultStore::wait_for`] it after finalizing your own leads.
    Busy,
}

/// The outcome of a bounded wait ([`ResultStore::wait_for_timeout`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WaitOutcome {
    /// The key left the in-flight set: `Some` result, or `None` when the
    /// leader abandoned it (the caller should re-claim).
    Ready(Option<StoredResult>),
    /// The leader was still solving when the timeout expired. The wait
    /// consumed no leadership — the solve keeps running and a later wait
    /// or claim can still pick the result up.
    TimedOut,
}

/// RAII wrapper around an already-granted leadership: dropping the guard
/// without [`LeaderGuard::finalize`] abandons the claim and wakes the
/// coalesced waiters. This is the panic-isolation primitive — a request
/// thread that unwinds mid-solve releases every leadership it held, so
/// `Busy` waiters re-claim and take over instead of deadlocking.
pub struct LeaderGuard<'a> {
    store: &'a ResultStore,
    key: ResultKey,
    done: bool,
}

impl<'a> LeaderGuard<'a> {
    /// The guarded key.
    pub fn key(&self) -> ResultKey {
        self.key
    }

    /// Publish the result (consumes the guard; no abandon on drop).
    pub fn finalize(mut self, result: StoredResult) {
        self.done = true;
        self.store.finalize(self.key, result);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.store.abandon(self.key);
        }
    }
}

#[derive(Default)]
struct Inner {
    memo: HashMap<ResultKey, StoredResult>,
    inflight: HashSet<ResultKey>,
}

/// The level-2/3 store. All methods take `&self`; share via `Arc`.
pub struct ResultStore {
    dir: Option<PathBuf>,
    admit_ms: u64,
    inner: Mutex<Inner>,
    cv: Condvar,
    hits: AtomicU64,
    solves: AtomicU64,
    coalesced: AtomicU64,
    persisted: AtomicU64,
    warm_loaded: AtomicU64,
    quarantined: AtomicU64,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl ResultStore {
    /// An in-memory store (nothing survives the process).
    pub fn in_memory() -> Self {
        Self::with_dir(None, 0)
    }

    /// A store backed by `dir`: results whose solve took at least
    /// `admit_ms` are persisted there, and every readable result file in
    /// `dir` is warm-loaded into the memo now.
    pub fn open(dir: impl Into<PathBuf>, admit_ms: u64) -> Self {
        Self::with_dir(Some(dir.into()), admit_ms)
    }

    fn with_dir(dir: Option<PathBuf>, admit_ms: u64) -> Self {
        let store = ResultStore {
            dir,
            admit_ms,
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            hits: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            warm_loaded: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            fault_plan: None,
        };
        if let Some(dir) = &store.dir {
            let mut inner = store.lock_inner();
            for (path, text) in read_dir_json(dir) {
                match StoredResult::parse(&text) {
                    Ok((key, result)) => {
                        inner.memo.insert(key, result);
                        store.warm_loaded.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        // Corrupt document (torn write under a kill, bit
                        // rot, schema drift): rename it out of the `.json`
                        // namespace so no later scan trips on it, and let
                        // the pair recompute. Never crash, never serve it.
                        store.quarantined.fetch_add(1, Ordering::Relaxed);
                        match quarantine(&path) {
                            Ok(dest) => eprintln!(
                                "xcvserve: corrupt result {} ({e}); quarantined to {}",
                                path.display(),
                                dest.display()
                            ),
                            Err(io) => eprintln!(
                                "xcvserve: corrupt result {} ({e}); quarantine failed: {io}",
                                path.display()
                            ),
                        }
                    }
                }
            }
        }
        store
    }

    /// Attach a deterministic [`FaultPlan`] (test harness hook) before the
    /// store is shared: plans arming [`FaultSite::FinalizeIo`] or
    /// [`FaultSite::StoreCorrupt`] sabotage the persist path on schedule.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault_plan = Some(plan);
    }

    /// The store's mutable state, recovering from mutex poisoning: every
    /// lock region here upholds the memo/inflight invariants before
    /// releasing, so the state a panicking thread left behind is
    /// consistent — and a daemon that isolated that panic must keep
    /// serving from it rather than unwinding on every later lock.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking claim: memo hit, leadership, or busy. Leadership is
    /// granted at most once per key until finalized/abandoned.
    pub fn try_claim(&self, key: ResultKey) -> Claim {
        let mut inner = self.lock_inner();
        if let Some(r) = inner.memo.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Claim::Hit(r.clone());
        }
        if inner.inflight.contains(&key) {
            return Claim::Busy;
        }
        inner.inflight.insert(key);
        self.solves.fetch_add(1, Ordering::Relaxed);
        Claim::Leader
    }

    /// Wrap an already-granted [`Claim::Leader`] in a [`LeaderGuard`]:
    /// dropped without finalizing (early return, panic unwinding through
    /// the caller), the guard abandons the leadership so waiters re-claim.
    pub fn guard(&self, key: ResultKey) -> LeaderGuard<'_> {
        LeaderGuard {
            store: self,
            key,
            done: false,
        }
    }

    /// Block until `key` is no longer in flight, then return its memoized
    /// result (`None` if the leader abandoned it — e.g. the pair failed
    /// to encode or the connection died; the caller should re-claim).
    pub fn wait_for(&self, key: ResultKey) -> Option<StoredResult> {
        let mut inner = self.lock_inner();
        while inner.inflight.contains(&key) {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        self.finish_wait(&inner, key)
    }

    /// [`ResultStore::wait_for`] bounded by `timeout`: a serving thread
    /// must never block unconditionally on another request's solve — a
    /// wedged leader would wedge every coalesced connection with it.
    pub fn wait_for_timeout(&self, key: ResultKey, timeout: Duration) -> WaitOutcome {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock_inner();
        while inner.inflight.contains(&key) {
            let Some(left) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return WaitOutcome::TimedOut;
            };
            let (guard, wait) = self
                .cv
                .wait_timeout(inner, left)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() && inner.inflight.contains(&key) {
                return WaitOutcome::TimedOut;
            }
        }
        WaitOutcome::Ready(self.finish_wait(&inner, key))
    }

    fn finish_wait(&self, inner: &Inner, key: ResultKey) -> Option<StoredResult> {
        let r = inner.memo.get(&key).cloned();
        if r.is_some() {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Publish a leader's result: memoize, release waiters, and — when the
    /// solve was expensive enough and the store has a directory — persist
    /// with the atomic-rename retry ladder. Persistence failures are
    /// reported but never lose the in-memory result.
    pub fn finalize(&self, key: ResultKey, result: StoredResult) {
        {
            let mut inner = self.lock_inner();
            inner.inflight.remove(&key);
            inner.memo.insert(key, result.clone());
        }
        self.cv.notify_all();
        if let Some(dir) = &self.dir {
            if result.wall_ms >= self.admit_ms {
                if let Err(e) =
                    std::fs::create_dir_all(dir).and_then(|()| self.persist(dir, &key, &result))
                {
                    eprintln!("xcvserve: persist {key} failed: {e}");
                } else {
                    self.persisted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The disk half of [`ResultStore::finalize`], with the fault hooks:
    /// `FinalizeIo` turns the write into a synthetic I/O error (the memo
    /// keeps the result); `StoreCorrupt` writes a torn document — half the
    /// rendering — modelling a non-atomic filesystem under a kill, which a
    /// restart must quarantine rather than serve or crash on.
    fn persist(&self, dir: &Path, key: &ResultKey, result: &StoredResult) -> std::io::Result<()> {
        let path = dir.join(format!("{key}.json"));
        let text = result.render(key);
        if let Some(plan) = &self.fault_plan {
            if plan.should_fire(FaultSite::FinalizeIo) {
                return Err(std::io::Error::other("injected fault: finalize I/O error"));
            }
            if plan.should_fire(FaultSite::StoreCorrupt) {
                return write_atomic(&path, &text[..text.len() / 2]);
            }
        }
        write_atomic_retry(&path, &text, PERSIST_ATTEMPTS, PERSIST_BACKOFF)
    }

    /// Release a leadership without publishing a result (encode failure,
    /// pair skipped, connection torn down mid-solve). Waiters wake and
    /// re-claim.
    pub fn abandon(&self, key: ResultKey) {
        let mut inner = self.lock_inner();
        if inner.inflight.remove(&key) {
            drop(inner);
            self.cv.notify_all();
        }
    }

    /// `(memoized results, memo hits, leader solves, coalesced waits,
    /// persisted files, warm-loaded files, quarantined files)`.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.lock_inner().memo.len() as u64,
            self.hits.load(Ordering::Relaxed),
            self.solves.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.persisted.load(Ordering::Relaxed),
            self.warm_loaded.load(Ordering::Relaxed),
            self.quarantined.load(Ordering::Relaxed),
        )
    }

    /// The backing directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(n: u64) -> ResultKey {
        ResultKey {
            problem: ProblemKey {
                source_hash: 0xabcd_0000 + n,
                condition: Condition::EcNonPositivity,
                space_fp: 0x1234_5678_9abc_def0,
            },
            config_fp: 0xfeed_beef_dead_c0de,
        }
    }

    fn result(wall_ms: u64) -> StoredResult {
        StoredResult {
            functional: "VWN RPA".into(),
            condition: Condition::EcNonPositivity,
            mark: TableMark::Counterexample,
            witnesses: vec![vec![0.1, 2.5e-3], vec![12.5, 0.0]],
            wall_ms,
            regions: [3, 1, 0, 0],
        }
    }

    #[test]
    fn stored_results_round_trip_through_json() {
        let (k, r) = (key(1), result(42));
        let text = r.render(&k);
        let (k2, r2) = StoredResult::parse(&text).unwrap();
        assert_eq!(k2, k);
        assert_eq!(r2, r);
    }

    #[test]
    fn claim_hit_leader_busy_protocol() {
        let store = ResultStore::in_memory();
        let k = key(2);
        assert_eq!(store.try_claim(k), Claim::Leader);
        assert_eq!(store.try_claim(k), Claim::Busy);
        store.finalize(k, result(1));
        assert!(matches!(store.try_claim(k), Claim::Hit(_)));
        let (results, hits, solves, ..) = store.counters();
        assert_eq!((results, hits, solves), (1, 1, 1));
    }

    #[test]
    fn abandoned_leadership_lets_waiters_reclaim() {
        let store = ResultStore::in_memory();
        let k = key(3);
        assert_eq!(store.try_claim(k), Claim::Leader);
        store.abandon(k);
        assert_eq!(store.wait_for(k), None);
        assert_eq!(store.try_claim(k), Claim::Leader);
    }

    #[test]
    fn waiters_coalesce_onto_one_solve() {
        let store = Arc::new(ResultStore::in_memory());
        let k = key(4);
        assert_eq!(store.try_claim(k), Claim::Leader);
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || store.wait_for(k))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        store.finalize(k, result(7));
        for w in waiters {
            assert_eq!(w.join().unwrap(), Some(result(7)));
        }
        let (_, _, solves, coalesced, ..) = store.counters();
        assert_eq!(solves, 1);
        assert_eq!(coalesced, 4);
    }

    #[test]
    fn admission_is_cost_driven_and_warm_start_reads_it_back() {
        let dir = std::env::temp_dir().join(format!("xcv_serve_store_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = ResultStore::open(&dir, 10);
            let cheap = key(5);
            assert_eq!(store.try_claim(cheap), Claim::Leader);
            store.finalize(cheap, result(3)); // below admit_ms: memo only
            let costly = key(6);
            assert_eq!(store.try_claim(costly), Claim::Leader);
            store.finalize(costly, result(42)); // persisted
            assert_eq!(store.counters().4, 1);
        }
        let warm = ResultStore::open(&dir, 10);
        assert_eq!(warm.counters().5, 1, "one file warm-loaded");
        assert!(matches!(warm.try_claim(key(6)), Claim::Hit(r) if r == result(42)));
        assert_eq!(
            warm.try_claim(key(5)),
            Claim::Leader,
            "cheap pair recomputes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_documents_fail_the_checksum() {
        let (k, r) = (key(7), result(42));
        let text = r.render(&k);
        assert!(StoredResult::parse(&text).is_ok(), "pristine parses");
        // Flip the mark: still valid JSON, still schema-correct — only the
        // content checksum can catch it.
        let tampered = text.replace("\"mark\": \"counterexample\"", "\"mark\": \"verified\"");
        assert_ne!(tampered, text);
        let err = StoredResult::parse(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // A truncated document fails parse outright (torn write).
        assert!(StoredResult::parse(&text[..text.len() / 2]).is_err());
    }

    #[test]
    fn corrupt_store_files_are_quarantined_on_warm_start() {
        let dir = std::env::temp_dir().join(format!("xcv_serve_quar_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let (k, r) = (key(8), result(42));
        std::fs::write(dir.join(format!("{k}.json")), r.render(&k)).unwrap();
        // One torn document and one bit-flipped document alongside it.
        let k2 = key(9);
        let text = result(42).render(&k2);
        std::fs::write(dir.join(format!("{k2}.json")), &text[..text.len() / 2]).unwrap();
        let k3 = key(10);
        let flipped = result(42)
            .render(&k3)
            .replace("\"wall_ms\": 42", "\"wall_ms\": 43");
        std::fs::write(dir.join(format!("{k3}.json")), flipped).unwrap();

        let store = ResultStore::open(&dir, 10);
        let (results, .., warm_loaded, quarantined) = store.counters();
        assert_eq!((results, warm_loaded, quarantined), (1, 1, 2));
        assert!(
            matches!(store.try_claim(k), Claim::Hit(_)),
            "good file serves"
        );
        assert_eq!(store.try_claim(k2), Claim::Leader, "torn file recomputes");
        assert_eq!(
            store.try_claim(k3),
            Claim::Leader,
            "flipped file recomputes"
        );
        let bad: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "bad"))
            .collect();
        assert_eq!(bad.len(), 2, "both corrupt files renamed *.bad");
        // A second warm start no longer sees them at all.
        let again = ResultStore::open(&dir, 10);
        assert_eq!(
            again.counters().6,
            0,
            "quarantined files stay out of the scan"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounded_wait_times_out_and_later_wait_picks_up_the_result() {
        let store = Arc::new(ResultStore::in_memory());
        let k = key(11);
        assert_eq!(store.try_claim(k), Claim::Leader);
        // The leader is "wedged": a bounded waiter gives up on schedule...
        let t0 = Instant::now();
        assert_eq!(
            store.wait_for_timeout(k, Duration::from_millis(30)),
            WaitOutcome::TimedOut
        );
        assert!(t0.elapsed() >= Duration::from_millis(30));
        // ...without consuming the leadership: finalize still lands and a
        // later bounded wait returns immediately with the result.
        store.finalize(k, result(7));
        assert_eq!(
            store.wait_for_timeout(k, Duration::from_millis(30)),
            WaitOutcome::Ready(Some(result(7)))
        );
    }

    #[test]
    fn dropped_leader_guard_abandons_and_wakes_waiters() {
        let store = Arc::new(ResultStore::in_memory());
        let k = key(12);
        assert_eq!(store.try_claim(k), Claim::Leader);
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.wait_for(k))
        };
        // Simulate a panicking leader: the guard unwinds without finalize.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = store.guard(k);
            panic!("injected: leader dies mid-solve");
        }));
        assert!(unwound.is_err());
        assert_eq!(waiter.join().unwrap(), None, "waiter wakes, sees abandon");
        assert_eq!(store.try_claim(k), Claim::Leader, "leadership re-claimable");
        // And a guard that does finalize publishes normally.
        store.guard(k).finalize(result(5));
        assert!(matches!(store.try_claim(k), Claim::Hit(_)));
    }

    #[test]
    fn finalize_faults_lose_the_file_but_never_the_memo() {
        let dir = std::env::temp_dir().join(format!("xcv_serve_finfault_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = ResultStore::open(&dir, 0);
        store.set_fault_plan(Arc::new(
            FaultPlan::new(0).arm(FaultSite::FinalizeIo, xcv_core::FaultRule::First(1)),
        ));
        let k = key(13);
        assert_eq!(store.try_claim(k), Claim::Leader);
        store.finalize(k, result(9)); // injected I/O error on the write
        assert_eq!(store.counters().4, 0, "nothing persisted");
        assert!(
            matches!(store.try_claim(k), Claim::Hit(r) if r == result(9)),
            "the in-memory result survives the persist failure"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
