//! xcv-serve — the long-running verification daemon (`xcvserve`) and its
//! line-JSON client.
//!
//! A verification campaign's cost is dominated by two front-loaded pieces
//! of work that are pure functions of the query: encoding/compiling the
//! (functional, condition) pair into interval tapes, and the
//! branch-and-prune solve itself. A CI fleet or an interactive user asks
//! the same queries over and over, so this crate keeps a daemon resident
//! and answers from a three-level cache:
//!
//! * **Level 1 — compiled problems** ([`xcv_core::ProblemCache`]): one
//!   `Arc<EncodedProblem>` per content key *(DSL source hash, condition,
//!   VarSpace fingerprint)*. A warm hit skips tape compilation entirely —
//!   observable as a flat [`xcv_solver::compile_count`].
//! * **Level 2 — memoized results** ([`store::ResultStore`]): the
//!   TableMark/witness summary keyed by the level-1 key *plus* the solver
//!   configuration fingerprint ([`xcv_core::VerifierConfig::fingerprint`]).
//!   Admission to the on-disk store is cost-driven: only results whose
//!   solve took at least `admit_ms` are persisted (atomic temp-file +
//!   rename with a retry ladder); cheap pairs are recomputed on restart. A
//!   restarted daemon warms its memo from the store directory.
//! * **Level 3 — in-flight coalescing** ([`store::ResultStore::try_claim`]):
//!   N concurrent identical queries cost one solve. Claiming is
//!   non-blocking (`Hit` / `Leader` / `Busy`); a request solves and
//!   finalizes everything it leads *before* waiting on busy keys, so
//!   overlapping requests cannot deadlock.
//!
//! The wire protocol (line-delimited JSON over localhost TCP, `std::net`
//! only) is documented in [`proto`]; campaign progress streams back as
//! incremental event lines, so a thin client renders a server-backed run
//! exactly like an in-process one. `xcverify --server ADDR` is that thin
//! client, and answers are configured via the shared [`proto::Policy`] so
//! the server-backed and in-process paths derive identical
//! [`xcv_core::VerifierConfig`]s — and therefore identical marks — by
//! construction.
//!
//! ## Cache-key fingerprints
//!
//! All fingerprints are FNV-1a over exact bit patterns (no float
//! formatting), rendered as zero-padded hex in file names and on the wire
//! (the hand-rolled JSON parses numbers through `f64`, which cannot carry
//! 64-bit hashes):
//!
//! * problem: `{source_hash:016x}-{condition_id}-{space_fp:016x}`
//! * result: problem key + `-{config_fp:016x}` where `config_fp` covers
//!   δ, budget, split threshold, depth cap, and deadline — but *not* the
//!   parallelism knobs, which cannot change marks.
//!
//! ## Operations & failure modes
//!
//! The daemon is built to keep serving through the failures a long-running
//! service actually meets; the deterministic fault-injection suite
//! (`tests/service_faults.rs`, driven by [`xcv_core::FaultPlan`]) pins
//! each of these behaviours:
//!
//! * **A panicking solve** (solver bug, poisoned input) is caught at two
//!   `catch_unwind` boundaries — around each leader campaign and around
//!   the whole request. Every leadership is held via an RAII
//!   [`store::LeaderGuard`], so unwinding *abandons* the claims: coalesced
//!   `Busy` waiters wake, re-claim, and take the solve over. The client
//!   whose request panicked gets a structured `error` event; everyone
//!   else gets the correct marks. Shared caches recover from mutex
//!   poisoning (`PoisonError::into_inner`) and the `stats` counter
//!   `panics` records every isolated panic.
//! * **What survives a crash / restart**: results persisted to the store
//!   directory (solves that reached `admit_ms`) warm the memo on the next
//!   start; everything else — cheap results, in-flight solves, the
//!   compiled-problem cache — is recomputed on demand. Identical marks
//!   either way.
//! * **Corruption is quarantined, never served**: every stored result
//!   carries an FNV-1a content checksum (schema `xcv-serve-result/v2`).
//!   A document that fails to parse or checksum at warm start is renamed
//!   `*.bad` (kept for postmortem, invisible to later scans), counted in
//!   `stats.quarantined`, and its pair recomputes. Campaign checkpoint
//!   files get the same treatment in `xcv_core`.
//! * **Timeouts and backpressure** (defaults in [`ServerConfig`]): socket
//!   read timeout 30 s (reaps hung/idle connections — a stalled client
//!   wedges only itself), write timeout 10 s (a stalled reader's stream
//!   goes dead; the solve finishes and lands in the store), bounded
//!   coalescing waits (`wait_timeout`, 120 s) so a wedged leader cannot
//!   wedge its waiters, request lines capped at 1 MiB, and a
//!   64-connection cap answered with an explicit `busy` error. An
//!   optional per-request wall deadline (`request_deadline_ms`) degrades
//!   gracefully: pairs already solved are answered, the rest stream as
//!   `skipped: "timeout"` and are tallied in `done.timeouts`.
//! * **Client-side resilience**: [`Client::connect_retry`] rides out a
//!   binding/restarting daemon with doubling backoff, and
//!   `xcverify --server --fallback-local` degrades to the bit-identical
//!   in-process path (with a stderr warning) when the daemon is
//!   unreachable mid-campaign.
//!
//! ## Quickstart
//!
//! ```no_run
//! use xcv_serve::{Client, Event, Policy, Server, ServerConfig, VerifyRequest};
//!
//! let mut server = Server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let done = client
//!     .verify(
//!         &VerifyRequest {
//!             functionals: vec!["PBE".into(), "LYP".into()],
//!             conditions: Vec::new(), // all seven
//!             policy: Policy::Gate { budget_ms: 100, threshold: 0.3 },
//!         },
//!         |event| {
//!             if let Event::Pair { functional, condition, mark, .. } = event {
//!                 println!("{functional} / {condition:?}: {mark:?}");
//!             }
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(done.cached + done.solved, done.pairs - /* inapplicable */ 3);
//! server.shutdown();
//! ```

pub mod client;
pub mod proto;
pub mod server;
pub mod store;

pub use client::Client;
pub use proto::{Done, Event, Policy, Request, ServerStats, VerifyRequest};
pub use server::{canonical_name, Server, ServerConfig};
pub use store::{Claim, LeaderGuard, ResultKey, ResultStore, StoredResult, WaitOutcome};
pub use xcv_core::{FaultPlan, FaultRule, FaultSite};
