//! xcv-serve — the long-running verification daemon (`xcvserve`) and its
//! line-JSON client.
//!
//! A verification campaign's cost is dominated by two front-loaded pieces
//! of work that are pure functions of the query: encoding/compiling the
//! (functional, condition) pair into interval tapes, and the
//! branch-and-prune solve itself. A CI fleet or an interactive user asks
//! the same queries over and over, so this crate keeps a daemon resident
//! and answers from a three-level cache:
//!
//! * **Level 1 — compiled problems** ([`xcv_core::ProblemCache`]): one
//!   `Arc<EncodedProblem>` per content key *(DSL source hash, condition,
//!   VarSpace fingerprint)*. A warm hit skips tape compilation entirely —
//!   observable as a flat [`xcv_solver::compile_count`].
//! * **Level 2 — memoized results** ([`store::ResultStore`]): the
//!   TableMark/witness summary keyed by the level-1 key *plus* the solver
//!   configuration fingerprint ([`xcv_core::VerifierConfig::fingerprint`]).
//!   Admission to the on-disk store is cost-driven: only results whose
//!   solve took at least `admit_ms` are persisted (atomic temp-file +
//!   rename with a retry ladder); cheap pairs are recomputed on restart. A
//!   restarted daemon warms its memo from the store directory.
//! * **Level 3 — in-flight coalescing** ([`store::ResultStore::try_claim`]):
//!   N concurrent identical queries cost one solve. Claiming is
//!   non-blocking (`Hit` / `Leader` / `Busy`); a request solves and
//!   finalizes everything it leads *before* waiting on busy keys, so
//!   overlapping requests cannot deadlock.
//!
//! The wire protocol (line-delimited JSON over localhost TCP, `std::net`
//! only) is documented in [`proto`]; campaign progress streams back as
//! incremental event lines, so a thin client renders a server-backed run
//! exactly like an in-process one. `xcverify --server ADDR` is that thin
//! client, and answers are configured via the shared [`proto::Policy`] so
//! the server-backed and in-process paths derive identical
//! [`xcv_core::VerifierConfig`]s — and therefore identical marks — by
//! construction.
//!
//! ## Cache-key fingerprints
//!
//! All fingerprints are FNV-1a over exact bit patterns (no float
//! formatting), rendered as zero-padded hex in file names and on the wire
//! (the hand-rolled JSON parses numbers through `f64`, which cannot carry
//! 64-bit hashes):
//!
//! * problem: `{source_hash:016x}-{condition_id}-{space_fp:016x}`
//! * result: problem key + `-{config_fp:016x}` where `config_fp` covers
//!   δ, budget, split threshold, depth cap, and deadline — but *not* the
//!   parallelism knobs, which cannot change marks.
//!
//! ## Quickstart
//!
//! ```no_run
//! use xcv_serve::{Client, Event, Policy, Server, ServerConfig, VerifyRequest};
//!
//! let mut server = Server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let done = client
//!     .verify(
//!         &VerifyRequest {
//!             functionals: vec!["PBE".into(), "LYP".into()],
//!             conditions: Vec::new(), // all seven
//!             policy: Policy::Gate { budget_ms: 100, threshold: 0.3 },
//!         },
//!         |event| {
//!             if let Event::Pair { functional, condition, mark, .. } = event {
//!                 println!("{functional} / {condition:?}: {mark:?}");
//!             }
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(done.cached + done.solved, done.pairs - /* inapplicable */ 3);
//! server.shutdown();
//! ```

pub mod client;
pub mod proto;
pub mod server;
pub mod store;

pub use client::Client;
pub use proto::{Done, Event, Policy, Request, ServerStats, VerifyRequest};
pub use server::{canonical_name, Server, ServerConfig};
pub use store::{Claim, ResultKey, ResultStore, StoredResult};
