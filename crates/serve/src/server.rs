//! The daemon: a localhost TCP accept loop, thread-per-connection request
//! handling, and the verify path that ties the three cache levels together.
//!
//! A verify request walks its matrix in functional-major order and sorts
//! every applicable pair into one of three buckets with a single
//! non-blocking [`ResultStore::try_claim`]:
//!
//! * **Hit** — replay the memoized answer immediately (started event,
//!   recorded witnesses, `pair` event with `cached: true`).
//! * **Leader** — this request owns the solve. All leads for one
//!   functional run as one [`Campaign`] (compiling through the shared
//!   level-1 [`ProblemCache`], streaming its events down the wire as they
//!   happen), and every outcome is finalized into the store.
//! * **Busy** — another request is already solving the identical key.
//!   Deferred, and waited on only *after* this request's own leads are
//!   finalized — the invariant that makes coalescing deadlock-free.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xcv_conditions::Condition;
use xcv_core::cache::{ProblemCache, ProblemKey};
use xcv_core::{
    Campaign, CampaignEvent, CostModel, RegionMap, RegionStatus, SkipReason, TableMark,
};
use xcv_functionals::{FunctionalHandle, Registry};

use crate::proto::{Done, Event, Request, ServerStats, VerifyRequest};
use crate::store::{Claim, ResultKey, ResultStore, StoredResult};

/// Resolve the CLI spellings of functional names to registry names — the
/// same alias table as `xcverify --dfa`, so a client can send whatever the
/// CLI accepts. [`Registry::get`] is case-insensitive on the result.
pub fn canonical_name(name: &str) -> String {
    match name.to_ascii_uppercase().as_str() {
        "VWN" | "VWN_RPA" | "VWNRPA" => "VWN RPA".to_string(),
        "RSCAN" | "RSCAN_REG" => "rSCAN(reg)".to_string(),
        "PBE_SPIN" | "PBEZ" | "PBE(Z)" => "PBE(ζ)".to_string(),
        "PW92_SPIN" | "PW92Z" | "PW92(Z)" => "PW92(ζ)".to_string(),
        "LSDA_X" | "LSDAX" | "LSDA-X" | "LSDA-X(Z)" => "LSDA-X(ζ)".to_string(),
        "B88_SPIN" | "B88Z" | "B88(Z)" => "B88(ζ)".to_string(),
        "PBEX_SPIN" | "PBEX" | "PBE-X" | "PBE-X(Z)" => "PBE-X(ζ)".to_string(),
        _ => name.to_string(),
    }
}

/// Daemon configuration.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Level-2 store directory (`None`: in-memory only, nothing survives
    /// the process).
    pub store_dir: Option<PathBuf>,
    /// Persistence admission threshold: results whose solve took at least
    /// this many milliseconds are written to `store_dir`; cheaper ones are
    /// recomputed on restart.
    pub admit_ms: u64,
    /// Scheduler cost model for lead campaigns (fitted from a bench run).
    pub cost_model: Option<CostModel>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: None,
            admit_ms: 5,
            cost_model: None,
        }
    }
}

struct State {
    registry: Registry,
    problems: Arc<ProblemCache>,
    results: ResultStore,
    cost_model: Option<CostModel>,
}

/// A running daemon. Dropping it shuts the accept loop down.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. The registry is [`Registry::spin_general`]
    /// — every builtin plus the spin-resolved citizens, a superset of what
    /// `xcverify` exposes.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            registry: Registry::spin_general(),
            problems: Arc::new(ProblemCache::new()),
            results: match &config.store_dir {
                Some(dir) => ResultStore::open(dir, config.admit_ms),
                None => ResultStore::in_memory(),
            },
            cost_model: config.cost_model,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let state = Arc::clone(&state);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || handle_conn(stream, &state, &stop));
                }
            })
        };
        Ok(Server {
            addr,
            state,
            stop,
            accept: Some(accept),
        })
    }

    /// The actual bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Daemon-lifetime cache statistics.
    pub fn stats(&self) -> ServerStats {
        stats_of(&self.state)
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// connection threads finish their current request.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Block until the daemon is shut down (by a `shutdown` request or
    /// [`Server::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn stats_of(state: &State) -> ServerStats {
    let (l1_hits, l1_misses) = state.problems.stats();
    let (results, result_hits, solves, coalesced, persisted, warm_loaded) =
        state.results.counters();
    ServerStats {
        problems: state.problems.len() as u64,
        l1_hits,
        l1_misses,
        results,
        result_hits,
        solves,
        persisted,
        warm_loaded,
        coalesced,
        compile_count: xcv_solver::compile_count(),
    }
}

type Writer = Arc<Mutex<TcpStream>>;

fn send(writer: &Writer, event: &Event) {
    let mut w = writer.lock().unwrap();
    // A vanished client must not kill the solve — the result still lands
    // in the store for the next asker.
    let _ = writeln!(w, "{}", event.to_json());
}

fn handle_conn(stream: TcpStream, state: &Arc<State>, stop: &Arc<AtomicBool>) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let writer: Writer = Arc::new(Mutex::new(stream));
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(e) => send(&writer, &Event::Error { message: e }),
            Ok(Request::Ping) => send(&writer, &Event::Pong),
            Ok(Request::Stats) => send(&writer, &Event::Stats(stats_of(state))),
            Ok(Request::Shutdown) => {
                send(&writer, &Event::Ok);
                if !stop.swap(true, Ordering::SeqCst) {
                    if let Ok(addr) = writer.lock().unwrap().local_addr() {
                        let _ = TcpStream::connect(addr);
                    }
                }
                break;
            }
            Ok(Request::Verify(req)) => handle_verify(state, &writer, &req),
        }
    }
}

/// Replay a memoized result as the same event sequence a fresh solve
/// streams, with `cached` flagged on the terminal pair event. The
/// functional is named as *this* request spelled it, so cached answers
/// are indistinguishable from fresh ones to a thin client.
fn replay(writer: &Writer, functional: &str, condition: Condition, r: &StoredResult, cached: bool) {
    send(
        writer,
        &Event::Started {
            functional: functional.to_string(),
            condition,
        },
    );
    for w in &r.witnesses {
        send(
            writer,
            &Event::Counterexample {
                functional: functional.to_string(),
                condition,
                witness: w.clone(),
            },
        );
    }
    send(
        writer,
        &Event::Pair {
            functional: functional.to_string(),
            condition,
            mark: r.mark,
            wall_ms: r.wall_ms,
            cached,
            skipped: None,
        },
    );
}

fn skip_tag(reason: SkipReason) -> &'static str {
    match reason {
        SkipReason::NotApplicable => "na",
        SkipReason::EncodeFailed => "encode_failed",
        SkipReason::BudgetExhausted => "budget",
        SkipReason::Cancelled => "cancelled",
        SkipReason::OtherShard => "other_shard",
    }
}

fn region_census(map: &RegionMap) -> [u64; 4] {
    let mut census = [0u64; 4];
    for r in &map.regions {
        census[match r.status {
            RegionStatus::Verified => 0,
            RegionStatus::Counterexample(_) => 1,
            RegionStatus::Inconclusive => 2,
            RegionStatus::Timeout | RegionStatus::Cancelled => 3,
        }] += 1;
    }
    census
}

/// One lead pair: the handle, the cell, and its full result key.
struct Lead {
    functional: FunctionalHandle,
    condition: Condition,
    key: ResultKey,
}

fn handle_verify(state: &Arc<State>, writer: &Writer, req: &VerifyRequest) {
    let start = Instant::now();
    // Resolve every functional up front — an unknown name fails the whole
    // request before any work happens.
    let mut handles = Vec::new();
    for name in &req.functionals {
        match state.registry.get(&canonical_name(name)) {
            Some(h) => handles.push(h),
            None => {
                send(
                    writer,
                    &Event::Error {
                        message: format!("unknown functional {name:?}"),
                    },
                );
                return;
            }
        }
    }
    let conditions: Vec<Condition> = if req.conditions.is_empty() {
        Condition::all().to_vec()
    } else {
        req.conditions.clone()
    };
    let policy = req.policy;
    let (l1_hits_0, l1_misses_0) = state.problems.stats();
    let mut done = Done {
        pairs: (handles.len() * conditions.len()) as u64,
        ..Done::default()
    };

    // Pass 1: claim every applicable pair, matrix order.
    let mut leads: Vec<Lead> = Vec::new();
    let mut deferred: Vec<Lead> = Vec::new();
    for f in &handles {
        for &condition in &conditions {
            if !condition.applies_to(f.as_ref()) {
                send(
                    writer,
                    &Event::Pair {
                        functional: f.name(),
                        condition,
                        mark: TableMark::NotApplicable,
                        wall_ms: 0,
                        cached: false,
                        skipped: Some("na".to_string()),
                    },
                );
                continue;
            }
            let key = match ProblemKey::of(f, condition) {
                Ok(k) => k,
                Err(_) => {
                    send(
                        writer,
                        &Event::Pair {
                            functional: f.name(),
                            condition,
                            mark: TableMark::Unknown,
                            wall_ms: 0,
                            cached: false,
                            skipped: Some("encode_failed".to_string()),
                        },
                    );
                    continue;
                }
            };
            let key = ResultKey {
                problem: key,
                config_fp: policy.verifier_config(f.as_ref()).fingerprint(),
            };
            let lead = Lead {
                functional: f.clone(),
                condition,
                key,
            };
            match state.results.try_claim(key) {
                Claim::Hit(r) => {
                    replay(writer, &f.name(), condition, &r, true);
                    done.cached += 1;
                }
                Claim::Leader => leads.push(lead),
                Claim::Busy => deferred.push(lead),
            }
        }
    }

    // Pass 2: solve the leads, one campaign per functional (a campaign is
    // a full sub-matrix; different functionals may lead different
    // condition subsets). Events stream to the client as they happen.
    let mut by_functional: Vec<(FunctionalHandle, Vec<Lead>)> = Vec::new();
    for lead in leads {
        match by_functional
            .iter_mut()
            .find(|(f, _)| f.name() == lead.functional.name())
        {
            Some((_, group)) => group.push(lead),
            None => by_functional.push((lead.functional.clone(), vec![lead])),
        }
    }
    for (f, group) in by_functional {
        let mut builder = Campaign::builder()
            .functional(f.clone())
            .conditions(group.iter().map(|l| l.condition))
            .config_policy(move |f, _| policy.verifier_config(f))
            .problem_cache(Arc::clone(&state.problems))
            .on_event({
                let writer = Arc::clone(writer);
                move |ev| {
                    let mapped = match ev {
                        CampaignEvent::PairStarted {
                            functional,
                            condition,
                        } => Event::Started {
                            functional: functional.clone(),
                            condition: *condition,
                        },
                        CampaignEvent::CounterexampleFound {
                            functional,
                            condition,
                            witness,
                        } => Event::Counterexample {
                            functional: functional.clone(),
                            condition: *condition,
                            witness: witness.clone(),
                        },
                        CampaignEvent::PairFinished {
                            functional,
                            condition,
                            mark,
                            wall_ms,
                        } => Event::Pair {
                            functional: functional.clone(),
                            condition: *condition,
                            mark: *mark,
                            wall_ms: u64::try_from(*wall_ms).unwrap_or(u64::MAX),
                            cached: false,
                            skipped: None,
                        },
                        CampaignEvent::PairSkipped {
                            functional,
                            condition,
                            reason,
                        } => Event::Pair {
                            functional: functional.clone(),
                            condition: *condition,
                            mark: if *reason == SkipReason::NotApplicable {
                                TableMark::NotApplicable
                            } else {
                                TableMark::Unknown
                            },
                            wall_ms: 0,
                            cached: false,
                            skipped: Some(skip_tag(*reason).to_string()),
                        },
                    };
                    send(&writer, &mapped);
                }
            });
        if let Some(model) = &state.cost_model {
            builder = builder.cost_model(model.clone());
        }
        let keys: HashMap<Condition, ResultKey> =
            group.iter().map(|l| (l.condition, l.key)).collect();
        match builder.build() {
            Ok(campaign) => {
                let report = campaign.run();
                for outcome in &report.pairs {
                    let Some(&key) = keys.get(&outcome.condition) else {
                        continue;
                    };
                    if outcome.skipped.is_some() {
                        state.results.abandon(key);
                        continue;
                    }
                    done.solved += 1;
                    let map = outcome.map.as_ref();
                    state.results.finalize(
                        key,
                        StoredResult {
                            functional: outcome.functional_name(),
                            condition: outcome.condition,
                            mark: outcome.mark,
                            witnesses: map
                                .map(|m| {
                                    m.counterexamples()
                                        .into_iter()
                                        .map(<[f64]>::to_vec)
                                        .collect()
                                })
                                .unwrap_or_default(),
                            wall_ms: u64::try_from(outcome.wall_ms).unwrap_or(u64::MAX),
                            regions: map.map(region_census).unwrap_or_default(),
                        },
                    );
                }
            }
            Err(e) => {
                for lead in &group {
                    state.results.abandon(lead.key);
                }
                send(
                    writer,
                    &Event::Error {
                        message: format!("campaign for {}: {e}", f.name()),
                    },
                );
                return;
            }
        }
    }

    // Pass 3: only now — with every owned leadership finalized — block on
    // the pairs other requests were solving. If a leader abandoned one,
    // claim it ourselves and solve solo.
    for lead in deferred {
        loop {
            if let Some(r) = state.results.wait_for(lead.key) {
                replay(writer, &lead.functional.name(), lead.condition, &r, true);
                done.cached += 1;
                done.coalesced += 1;
                break;
            }
            match state.results.try_claim(lead.key) {
                Claim::Hit(r) => {
                    replay(writer, &lead.functional.name(), lead.condition, &r, true);
                    done.cached += 1;
                    break;
                }
                Claim::Busy => continue,
                Claim::Leader => {
                    let campaign = Campaign::builder()
                        .functional(lead.functional.clone())
                        .conditions([lead.condition])
                        .config_policy(move |f, _| policy.verifier_config(f))
                        .problem_cache(Arc::clone(&state.problems))
                        .build();
                    let Ok(campaign) = campaign else {
                        state.results.abandon(lead.key);
                        break;
                    };
                    let report = campaign.run();
                    let Some(outcome) = report
                        .pairs
                        .iter()
                        .find(|p| p.condition == lead.condition && p.skipped.is_none())
                    else {
                        state.results.abandon(lead.key);
                        break;
                    };
                    let map = outcome.map.as_ref();
                    let result = StoredResult {
                        functional: outcome.functional_name(),
                        condition: outcome.condition,
                        mark: outcome.mark,
                        witnesses: map
                            .map(|m| {
                                m.counterexamples()
                                    .into_iter()
                                    .map(<[f64]>::to_vec)
                                    .collect()
                            })
                            .unwrap_or_default(),
                        wall_ms: u64::try_from(outcome.wall_ms).unwrap_or(u64::MAX),
                        regions: map.map(region_census).unwrap_or_default(),
                    };
                    state.results.finalize(lead.key, result.clone());
                    done.solved += 1;
                    replay(
                        writer,
                        &lead.functional.name(),
                        lead.condition,
                        &result,
                        false,
                    );
                    break;
                }
            }
        }
    }

    let (l1_hits_1, l1_misses_1) = state.problems.stats();
    done.l1_hits = l1_hits_1 - l1_hits_0;
    done.l1_misses = l1_misses_1 - l1_misses_0;
    done.compile_count = xcv_solver::compile_count();
    done.wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    send(writer, &Event::Done(done));
}
