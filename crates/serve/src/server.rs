//! The daemon: a localhost TCP accept loop, thread-per-connection request
//! handling, and the verify path that ties the three cache levels together.
//!
//! A verify request walks its matrix in functional-major order and sorts
//! every applicable pair into one of three buckets with a single
//! non-blocking [`ResultStore::try_claim`]:
//!
//! * **Hit** — replay the memoized answer immediately (started event,
//!   recorded witnesses, `pair` event with `cached: true`).
//! * **Leader** — this request owns the solve. All leads for one
//!   functional run as one [`Campaign`] (compiling through the shared
//!   level-1 [`ProblemCache`], streaming its events down the wire as they
//!   happen), and every outcome is finalized into the store.
//! * **Busy** — another request is already solving the identical key.
//!   Deferred, and waited on only *after* this request's own leads are
//!   finalized — the invariant that makes coalescing deadlock-free.
//!
//! ## Fault tolerance
//!
//! The daemon assumes requests fail: every leadership taken in pass 1 is
//! held through a [`LeaderGuard`], every campaign and each whole request
//! runs under `catch_unwind`, and a panic anywhere releases the unwinding
//! thread's claims so coalesced waiters re-claim and take over the solve
//! instead of deadlocking. Accepted sockets carry read/write timeouts, an
//! optional per-request wall deadline degrades gracefully (pairs past the
//! deadline are reported with `skipped: "timeout"` and counted in the
//! `done` event), waits on other requests' solves are bounded, request
//! lines are length-capped, and a connection cap rejects overload with an
//! explicit `busy` error instead of queueing unboundedly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use xcv_conditions::Condition;
use xcv_core::cache::{ProblemCache, ProblemKey};
use xcv_core::{
    Campaign, CampaignEvent, CostModel, FaultPlan, FaultSite, RegionMap, RegionStatus, SkipReason,
    TableMark,
};
use xcv_functionals::{FunctionalHandle, Registry};

use crate::proto::{Done, Event, Request, ServerStats, VerifyRequest};
use crate::store::{Claim, ResultKey, ResultStore, StoredResult, WaitOutcome};

/// Longest accepted request line (bytes, newline included). A line past
/// the cap gets a structured error and the connection is closed — with
/// the line unterminated there is no resynchronization point.
const MAX_REQUEST_LINE: u64 = 1 << 20;

/// Resolve the CLI spellings of functional names to registry names — the
/// same alias table as `xcverify --dfa`, so a client can send whatever the
/// CLI accepts. [`Registry::get`] is case-insensitive on the result.
pub fn canonical_name(name: &str) -> String {
    match name.to_ascii_uppercase().as_str() {
        "VWN" | "VWN_RPA" | "VWNRPA" => "VWN RPA".to_string(),
        "RSCAN" | "RSCAN_REG" => "rSCAN(reg)".to_string(),
        "PBE_SPIN" | "PBEZ" | "PBE(Z)" => "PBE(ζ)".to_string(),
        "PW92_SPIN" | "PW92Z" | "PW92(Z)" => "PW92(ζ)".to_string(),
        "LSDA_X" | "LSDAX" | "LSDA-X" | "LSDA-X(Z)" => "LSDA-X(ζ)".to_string(),
        "B88_SPIN" | "B88Z" | "B88(Z)" => "B88(ζ)".to_string(),
        "PBEX_SPIN" | "PBEX" | "PBE-X" | "PBE-X(Z)" => "PBE-X(ζ)".to_string(),
        _ => name.to_string(),
    }
}

/// Daemon configuration.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Level-2 store directory (`None`: in-memory only, nothing survives
    /// the process).
    pub store_dir: Option<PathBuf>,
    /// Persistence admission threshold: results whose solve took at least
    /// this many milliseconds are written to `store_dir`; cheaper ones are
    /// recomputed on restart.
    pub admit_ms: u64,
    /// Scheduler cost model for lead campaigns (fitted from a bench run).
    pub cost_model: Option<CostModel>,
    /// Socket read timeout: a connection idle (or wedged mid-line) this
    /// long is reaped. `None` disables.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout: an event write blocked this long on a stalled
    /// client fails (the request keeps solving; results still land in the
    /// store). `None` disables.
    pub write_timeout: Option<Duration>,
    /// Per-request wall deadline: pairs not finished when it expires are
    /// reported with `skipped: "timeout"` instead of running on. `None`
    /// disables (the policy's own budgets still apply).
    pub request_deadline_ms: Option<u64>,
    /// Concurrent-connection cap: connections past it are rejected with an
    /// explicit `busy` error line instead of queueing.
    pub max_connections: usize,
    /// Upper bound on any single wait for *another* request's in-flight
    /// solve (pass 3). A wedged leader therefore wedges nobody else for
    /// longer than this.
    pub wait_timeout: Duration,
    /// Deterministic fault-injection plan (test harness hook; `None` in
    /// production).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: None,
            admit_ms: 5,
            cost_model: None,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            request_deadline_ms: None,
            max_connections: 64,
            wait_timeout: Duration::from_secs(120),
            fault_plan: None,
        }
    }
}

struct State {
    registry: Registry,
    problems: Arc<ProblemCache>,
    results: ResultStore,
    cost_model: Option<CostModel>,
    request_deadline_ms: Option<u64>,
    wait_timeout: Duration,
    fault_plan: Option<Arc<FaultPlan>>,
    /// Panics isolated at the request / campaign `catch_unwind` boundaries.
    panics: AtomicU64,
    /// Live connection threads (the accept loop's backpressure gauge).
    active: AtomicUsize,
}

/// A running daemon. Dropping it shuts the accept loop down.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. The registry is [`Registry::spin_general`]
    /// — every builtin plus the spin-resolved citizens, a superset of what
    /// `xcverify` exposes.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let mut results = match &config.store_dir {
            Some(dir) => ResultStore::open(dir, config.admit_ms),
            None => ResultStore::in_memory(),
        };
        if let Some(plan) = &config.fault_plan {
            results.set_fault_plan(Arc::clone(plan));
        }
        let state = Arc::new(State {
            registry: Registry::spin_general(),
            problems: Arc::new(ProblemCache::new()),
            results,
            cost_model: config.cost_model,
            request_deadline_ms: config.request_deadline_ms,
            wait_timeout: config.wait_timeout,
            fault_plan: config.fault_plan,
            panics: AtomicU64::new(0),
            active: AtomicUsize::new(0),
        });
        let max_connections = config.max_connections.max(1);
        let (read_timeout, write_timeout) = (config.read_timeout, config.write_timeout);
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Backpressure: past the cap, answer one explicit busy
                    // line and drop — never an unbounded thread pile-up,
                    // never a silent hang on the client side.
                    let admitted = state
                        .active
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                            (n < max_connections).then_some(n + 1)
                        })
                        .is_ok();
                    if !admitted {
                        let mut stream = stream;
                        let busy = Event::Error {
                            message: "busy: connection limit reached, retry later".to_string(),
                        };
                        let _ = writeln!(stream, "{}", busy.to_json());
                        continue;
                    }
                    let _ = stream.set_read_timeout(read_timeout);
                    let _ = stream.set_write_timeout(write_timeout);
                    // Control round trips (ping, stats, the error replies
                    // the fuzz suite hammers) are latency-bound: without
                    // this, Nagle + delayed ACK cost ~40ms per turn.
                    let _ = stream.set_nodelay(true);
                    let state = Arc::clone(&state);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        // Balance the admission count however the handler
                        // exits — return, panic, or reap.
                        struct Slot<'a>(&'a AtomicUsize);
                        impl Drop for Slot<'_> {
                            fn drop(&mut self) {
                                self.0.fetch_sub(1, Ordering::SeqCst);
                            }
                        }
                        let _slot = Slot(&state.active);
                        handle_conn(stream, &state, &stop);
                    });
                }
            })
        };
        Ok(Server {
            addr,
            state,
            stop,
            accept: Some(accept),
        })
    }

    /// The actual bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Daemon-lifetime cache statistics.
    pub fn stats(&self) -> ServerStats {
        stats_of(&self.state)
    }

    /// Stop accepting connections and join the accept loop. In-flight
    /// connection threads finish their current request.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Block until the daemon is shut down (by a `shutdown` request or
    /// [`Server::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn stats_of(state: &State) -> ServerStats {
    let (l1_hits, l1_misses) = state.problems.stats();
    let (results, result_hits, solves, coalesced, persisted, warm_loaded, quarantined) =
        state.results.counters();
    ServerStats {
        problems: state.problems.len() as u64,
        l1_hits,
        l1_misses,
        results,
        result_hits,
        solves,
        persisted,
        warm_loaded,
        coalesced,
        compile_count: xcv_solver::compile_count(),
        quarantined,
        panics: state.panics.load(Ordering::Relaxed),
    }
}

/// The shared event writer of one connection. Once a write fails the
/// stream is marked dead and later sends are skipped — a vanished or
/// stalled client must not block the solve (the result still lands in the
/// store for the next asker), and with a socket write timeout set, a stall
/// costs at most one timeout before the stream goes dead.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
    fault_plan: Option<Arc<FaultPlan>>,
}

type Writer = Arc<ConnWriter>;

impl ConnWriter {
    fn send(&self, event: &Event) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        if let Some(plan) = &self.fault_plan {
            if plan.should_fire(FaultSite::ClientStall) {
                // Injected slow consumer: the event write stalls.
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        let mut w = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        if writeln!(w, "{}", event.to_json()).is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
    }

    fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .local_addr()
    }
}

fn send(writer: &Writer, event: &Event) {
    writer.send(event);
}

fn handle_conn(stream: TcpStream, state: &Arc<State>, stop: &Arc<AtomicBool>) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let writer: Writer = Arc::new(ConnWriter {
        stream: Mutex::new(stream),
        dead: AtomicBool::new(false),
        fault_plan: state.fault_plan.clone(),
    });
    let mut reader = BufReader::new(reader);
    loop {
        // Length-capped line read: `take` bounds how much one request line
        // may buffer, so an unterminated flood cannot balloon memory.
        let mut line = String::new();
        match (&mut reader)
            .take(MAX_REQUEST_LINE + 1)
            .read_line(&mut line)
        {
            // EOF, a reaped idle/hung connection (read timeout), or any
            // other transport error: the connection is done.
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.len() as u64 > MAX_REQUEST_LINE {
            send(
                &writer,
                &Event::Error {
                    message: format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                },
            );
            break; // unterminated line: no resynchronization point
        }
        if line.trim().is_empty() {
            // A bare newline is ignored; a partial line at EOF with no
            // content ends the connection on the next read.
            continue;
        }
        match Request::parse(&line) {
            Err(e) => send(&writer, &Event::Error { message: e }),
            Ok(Request::Ping) => send(&writer, &Event::Pong),
            Ok(Request::Stats) => send(&writer, &Event::Stats(stats_of(state))),
            Ok(Request::Shutdown) => {
                send(&writer, &Event::Ok);
                if !stop.swap(true, Ordering::SeqCst) {
                    if let Ok(addr) = writer.local_addr() {
                        let _ = TcpStream::connect(addr);
                    }
                }
                break;
            }
            Ok(Request::Verify(req)) => {
                // Panic isolation, outer boundary: whatever unwinds out of
                // the verify path (solver bug, injected fault) is caught
                // here. Unwinding drops every LeaderGuard the request held,
                // abandoning its claims so coalesced waiters take over; the
                // client gets a structured error; the daemon keeps serving.
                let unwound = catch_unwind(AssertUnwindSafe(|| {
                    handle_verify(state, &writer, &req);
                }));
                if unwound.is_err() {
                    state.panics.fetch_add(1, Ordering::Relaxed);
                    send(
                        &writer,
                        &Event::Error {
                            message: "internal panic while serving the request; \
                                      claims released, daemon still serving"
                                .to_string(),
                        },
                    );
                }
            }
        }
    }
}

/// Replay a memoized result as the same event sequence a fresh solve
/// streams, with `cached` flagged on the terminal pair event. The
/// functional is named as *this* request spelled it, so cached answers
/// are indistinguishable from fresh ones to a thin client.
fn replay(writer: &Writer, functional: &str, condition: Condition, r: &StoredResult, cached: bool) {
    send(
        writer,
        &Event::Started {
            functional: functional.to_string(),
            condition,
        },
    );
    for w in &r.witnesses {
        send(
            writer,
            &Event::Counterexample {
                functional: functional.to_string(),
                condition,
                witness: w.clone(),
            },
        );
    }
    send(
        writer,
        &Event::Pair {
            functional: functional.to_string(),
            condition,
            mark: r.mark,
            wall_ms: r.wall_ms,
            cached,
            skipped: None,
        },
    );
}

fn skip_tag(reason: SkipReason) -> &'static str {
    match reason {
        SkipReason::NotApplicable => "na",
        SkipReason::EncodeFailed => "encode_failed",
        SkipReason::BudgetExhausted => "budget",
        SkipReason::Cancelled => "cancelled",
        SkipReason::OtherShard => "other_shard",
    }
}

fn region_census(map: &RegionMap) -> [u64; 4] {
    let mut census = [0u64; 4];
    for r in &map.regions {
        census[match r.status {
            RegionStatus::Verified => 0,
            RegionStatus::Counterexample(_) => 1,
            RegionStatus::Inconclusive => 2,
            RegionStatus::Timeout | RegionStatus::Cancelled => 3,
        }] += 1;
    }
    census
}

/// One lead pair: the handle, the cell, and its full result key.
struct Lead {
    functional: FunctionalHandle,
    condition: Condition,
    key: ResultKey,
}

/// Emit the `skipped: "timeout"` pair event for a pair the request's wall
/// deadline expired on.
fn send_timeout(writer: &Writer, functional: &str, condition: Condition, done: &mut Done) {
    done.timeouts += 1;
    send(
        writer,
        &Event::Pair {
            functional: functional.to_string(),
            condition,
            mark: TableMark::Unknown,
            wall_ms: 0,
            cached: false,
            skipped: Some("timeout".to_string()),
        },
    );
}

fn stored_result_of(outcome: &xcv_core::PairOutcome) -> StoredResult {
    let map = outcome.map.as_ref();
    StoredResult {
        functional: outcome.functional_name(),
        condition: outcome.condition,
        mark: outcome.mark,
        witnesses: map
            .map(|m| {
                m.counterexamples()
                    .into_iter()
                    .map(<[f64]>::to_vec)
                    .collect()
            })
            .unwrap_or_default(),
        wall_ms: u64::try_from(outcome.wall_ms).unwrap_or(u64::MAX),
        regions: map.map(region_census).unwrap_or_default(),
    }
}

fn handle_verify(state: &Arc<State>, writer: &Writer, req: &VerifyRequest) {
    let start = Instant::now();
    let deadline = state
        .request_deadline_ms
        .map(|ms| start + Duration::from_millis(ms));
    // Milliseconds left before the request deadline (`None` = no deadline).
    let remaining_ms = |deadline: Option<Instant>| -> Option<u64> {
        deadline.map(|d| {
            u64::try_from(d.saturating_duration_since(Instant::now()).as_millis())
                .unwrap_or(u64::MAX)
        })
    };
    // Resolve every functional up front — an unknown name fails the whole
    // request before any work happens.
    let mut handles = Vec::new();
    for name in &req.functionals {
        match state.registry.get(&canonical_name(name)) {
            Some(h) => handles.push(h),
            None => {
                send(
                    writer,
                    &Event::Error {
                        message: format!("unknown functional {name:?}"),
                    },
                );
                return;
            }
        }
    }
    let conditions: Vec<Condition> = if req.conditions.is_empty() {
        Condition::all().to_vec()
    } else {
        req.conditions.clone()
    };
    let policy = req.policy;
    let (l1_hits_0, l1_misses_0) = state.problems.stats();
    let mut done = Done {
        pairs: (handles.len() * conditions.len()) as u64,
        ..Done::default()
    };

    // Pass 1: claim every applicable pair, matrix order.
    let mut leads: Vec<Lead> = Vec::new();
    let mut deferred: Vec<Lead> = Vec::new();
    for f in &handles {
        for &condition in &conditions {
            if !condition.applies_to(f.as_ref()) {
                send(
                    writer,
                    &Event::Pair {
                        functional: f.name(),
                        condition,
                        mark: TableMark::NotApplicable,
                        wall_ms: 0,
                        cached: false,
                        skipped: Some("na".to_string()),
                    },
                );
                continue;
            }
            let key = match ProblemKey::of(f, condition) {
                Ok(k) => k,
                Err(_) => {
                    send(
                        writer,
                        &Event::Pair {
                            functional: f.name(),
                            condition,
                            mark: TableMark::Unknown,
                            wall_ms: 0,
                            cached: false,
                            skipped: Some("encode_failed".to_string()),
                        },
                    );
                    continue;
                }
            };
            let key = ResultKey {
                problem: key,
                config_fp: policy.verifier_config(f.as_ref()).fingerprint(),
            };
            let lead = Lead {
                functional: f.clone(),
                condition,
                key,
            };
            match state.results.try_claim(key) {
                Claim::Hit(r) => {
                    replay(writer, &f.name(), condition, &r, true);
                    done.cached += 1;
                }
                Claim::Leader => leads.push(lead),
                Claim::Busy => deferred.push(lead),
            }
        }
    }

    // Every leadership goes under an RAII guard *now*: any exit from this
    // function — early return, deadline, panic unwinding to the connection
    // boundary — abandons whatever was not finalized, waking coalesced
    // waiters to re-claim. No path leaks a claim.
    let mut guards: HashMap<ResultKey, crate::store::LeaderGuard<'_>> = leads
        .iter()
        .map(|l| (l.key, state.results.guard(l.key)))
        .collect();

    // Pass 2: solve the leads, one campaign per functional (a campaign is
    // a full sub-matrix; different functionals may lead different
    // condition subsets). Events stream to the client as they happen.
    let mut by_functional: Vec<(FunctionalHandle, Vec<Lead>)> = Vec::new();
    for lead in leads {
        match by_functional
            .iter_mut()
            .find(|(f, _)| f.name() == lead.functional.name())
        {
            Some((_, group)) => group.push(lead),
            None => by_functional.push((lead.functional.clone(), vec![lead])),
        }
    }
    for (f, group) in by_functional {
        // Deadline expired: report this group's pairs as timed out (their
        // guards abandon the claims) and keep draining the cheap passes —
        // already-solved answers still go out.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            for lead in &group {
                guards.remove(&lead.key);
                send_timeout(writer, &f.name(), lead.condition, &mut done);
            }
            continue;
        }
        let mut builder = Campaign::builder()
            .functional(f.clone())
            .conditions(group.iter().map(|l| l.condition))
            .config_policy(move |f, _| policy.verifier_config(f))
            .problem_cache(Arc::clone(&state.problems))
            .on_event({
                let writer = Arc::clone(writer);
                move |ev| {
                    let mapped = match ev {
                        CampaignEvent::PairStarted {
                            functional,
                            condition,
                        } => Event::Started {
                            functional: functional.clone(),
                            condition: *condition,
                        },
                        CampaignEvent::CounterexampleFound {
                            functional,
                            condition,
                            witness,
                        } => Event::Counterexample {
                            functional: functional.clone(),
                            condition: *condition,
                            witness: witness.clone(),
                        },
                        CampaignEvent::PairFinished {
                            functional,
                            condition,
                            mark,
                            wall_ms,
                        } => Event::Pair {
                            functional: functional.clone(),
                            condition: *condition,
                            mark: *mark,
                            wall_ms: u64::try_from(*wall_ms).unwrap_or(u64::MAX),
                            cached: false,
                            skipped: None,
                        },
                        CampaignEvent::PairSkipped {
                            functional,
                            condition,
                            reason,
                        } => Event::Pair {
                            functional: functional.clone(),
                            condition: *condition,
                            mark: if *reason == SkipReason::NotApplicable {
                                TableMark::NotApplicable
                            } else {
                                TableMark::Unknown
                            },
                            wall_ms: 0,
                            cached: false,
                            skipped: Some(skip_tag(*reason).to_string()),
                        },
                    };
                    send(&writer, &mapped);
                }
            });
        if let Some(model) = &state.cost_model {
            builder = builder.cost_model(model.clone());
        }
        if let Some(ms) = remaining_ms(deadline) {
            // The campaign's own budget machinery enforces the request
            // deadline: pairs past it are skipped (BudgetExhausted) and
            // running pairs have their solver deadlines clamped.
            builder = builder.global_budget_ms(ms);
        }
        if let Some(plan) = &state.fault_plan {
            builder = builder.fault_plan(Arc::clone(plan));
        }
        let keys: HashMap<Condition, ResultKey> =
            group.iter().map(|l| (l.condition, l.key)).collect();
        match builder.build() {
            Ok(campaign) => {
                // Panic isolation, inner boundary: a panicking solve (one
                // worker's panic propagates out of `campaign.run()`) must
                // release this group's claims and fail the request — the
                // coalesced waiters re-claim and take the solve over.
                let report = match catch_unwind(AssertUnwindSafe(|| campaign.run())) {
                    Ok(report) => report,
                    Err(_) => {
                        state.panics.fetch_add(1, Ordering::Relaxed);
                        drop(guards); // abandon every unfinalized claim
                        send(
                            writer,
                            &Event::Error {
                                message: format!(
                                    "campaign for {} panicked; claims released",
                                    f.name()
                                ),
                            },
                        );
                        return;
                    }
                };
                for outcome in &report.pairs {
                    let Some(&key) = keys.get(&outcome.condition) else {
                        continue;
                    };
                    let Some(guard) = guards.remove(&key) else {
                        continue;
                    };
                    match outcome.skipped {
                        Some(reason) => {
                            // Dropping the guard abandons the claim. A skip
                            // caused by the request deadline counts as a
                            // timeout in the summary (the pair event already
                            // streamed with the campaign's own tag).
                            drop(guard);
                            if reason == SkipReason::BudgetExhausted && deadline.is_some() {
                                done.timeouts += 1;
                            }
                        }
                        None => {
                            done.solved += 1;
                            guard.finalize(stored_result_of(outcome));
                        }
                    }
                }
            }
            Err(e) => {
                // The group's guards stay in the map; they abandon when the
                // function returns, alongside every other group's.
                send(
                    writer,
                    &Event::Error {
                        message: format!("campaign for {}: {e}", f.name()),
                    },
                );
                return;
            }
        }
    }
    drop(guards); // every lead is finalized or abandoned by here

    // Pass 3: only now — with every owned leadership finalized — block on
    // the pairs other requests were solving, each wait bounded. If a
    // leader abandoned one, claim it ourselves and solve solo.
    for lead in deferred {
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                send_timeout(writer, &lead.functional.name(), lead.condition, &mut done);
                break;
            }
            let wait = match remaining_ms(deadline) {
                Some(ms) => state.wait_timeout.min(Duration::from_millis(ms)),
                None => state.wait_timeout,
            };
            match state.results.wait_for_timeout(lead.key, wait) {
                WaitOutcome::TimedOut => {
                    send_timeout(writer, &lead.functional.name(), lead.condition, &mut done);
                    break;
                }
                WaitOutcome::Ready(Some(r)) => {
                    replay(writer, &lead.functional.name(), lead.condition, &r, true);
                    done.cached += 1;
                    done.coalesced += 1;
                    break;
                }
                WaitOutcome::Ready(None) => {}
            }
            match state.results.try_claim(lead.key) {
                Claim::Hit(r) => {
                    replay(writer, &lead.functional.name(), lead.condition, &r, true);
                    done.cached += 1;
                    break;
                }
                Claim::Busy => continue,
                Claim::Leader => {
                    let guard = state.results.guard(lead.key);
                    let mut builder = Campaign::builder()
                        .functional(lead.functional.clone())
                        .conditions([lead.condition])
                        .config_policy(move |f, _| policy.verifier_config(f))
                        .problem_cache(Arc::clone(&state.problems));
                    if let Some(ms) = remaining_ms(deadline) {
                        builder = builder.global_budget_ms(ms);
                    }
                    if let Some(plan) = &state.fault_plan {
                        builder = builder.fault_plan(Arc::clone(plan));
                    }
                    let Ok(campaign) = builder.build() else {
                        break; // guard drop abandons
                    };
                    let report = match catch_unwind(AssertUnwindSafe(|| campaign.run())) {
                        Ok(report) => report,
                        Err(_) => {
                            state.panics.fetch_add(1, Ordering::Relaxed);
                            drop(guard);
                            send(
                                writer,
                                &Event::Error {
                                    message: format!(
                                        "solve for {} panicked; claim released",
                                        lead.functional.name()
                                    ),
                                },
                            );
                            return;
                        }
                    };
                    let Some(outcome) = report
                        .pairs
                        .iter()
                        .find(|p| p.condition == lead.condition && p.skipped.is_none())
                    else {
                        drop(guard); // abandon: skipped or missing
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            send_timeout(
                                writer,
                                &lead.functional.name(),
                                lead.condition,
                                &mut done,
                            );
                        }
                        break;
                    };
                    let result = stored_result_of(outcome);
                    guard.finalize(result.clone());
                    done.solved += 1;
                    replay(
                        writer,
                        &lead.functional.name(),
                        lead.condition,
                        &result,
                        false,
                    );
                    break;
                }
            }
        }
    }

    let (l1_hits_1, l1_misses_1) = state.problems.stats();
    done.l1_hits = l1_hits_1 - l1_hits_0;
    done.l1_misses = l1_misses_1 - l1_misses_0;
    done.compile_count = xcv_solver::compile_count();
    done.wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    send(writer, &Event::Done(done));
}
