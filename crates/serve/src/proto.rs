//! The line-delimited JSON wire protocol between `xcvserve` and its clients.
//!
//! One request per line, a stream of event lines back, reusing the
//! hand-rolled JSON of [`xcv_cert::json`] (the workspace is offline — no
//! serde). Every stream ends with a terminal event: `done` for a verify,
//! `pong`/`stats`/`ok` for the control commands, `error` on any failure.
//!
//! ## Requests
//!
//! ```text
//! {"cmd": "verify", "functionals": ["PBE", "LYP"], "conditions": ["ec1"],
//!  "policy": {"mode": "gate", "budget_ms": 100, "threshold": 0.3}}
//! {"cmd": "stats"}
//! {"cmd": "ping"}
//! {"cmd": "shutdown"}
//! ```
//!
//! An empty (or absent) `conditions` array means all seven. Conditions
//! travel as their stable CLI ids (`ec1`..`ec7`, see [`Condition::id`]);
//! table marks as the tags `verified` / `partial` / `counterexample` /
//! `unknown` / `na`.
//!
//! ## Policies
//!
//! * `gate` — the `xcverify` CI-gate configuration: per-box wall budget and
//!   recursion floor, with the per-arity depth cap derived server-side via
//!   [`Policy::verifier_config`]. The in-process `xcverify` path calls the
//!   *same* function, so `--server` and in-process runs are configured
//!   identically by construction.
//! * `flat` — one explicit node-budgeted [`VerifierConfig`] for every pair
//!   (deterministic: used by `solver_bench --service` and the integration
//!   tests, where bit-identical marks are asserted).
//!
//! ## Events
//!
//! ```text
//! {"event": "started", "functional": "PBE", "condition": "ec1"}
//! {"event": "counterexample", "functional": "LYP", "condition": "ec1", "witness": [..]}
//! {"event": "pair", "functional": "PBE", "condition": "ec1", "mark": "verified",
//!  "wall_ms": 12, "cached": false, "skipped": null}
//! {"event": "done", "pairs": 49, "cached": 45, "solved": 0, "coalesced": 0,
//!  "l1_hits": 45, "l1_misses": 0, "compile_count": 90, "wall_ms": 3, "timeouts": 0}
//! ```
//!
//! `cached: true` marks a level-2 store hit (the pair was answered without
//! solving; its recorded counterexamples are replayed as `counterexample`
//! events first, so a thin client renders cached and fresh pairs
//! identically). The `done` counters expose the cache behaviour a client
//! (or CI) asserts on: `cached`/`solved`/`coalesced` partition the
//! applicable pairs of this request, `l1_*` are the request's
//! compiled-problem cache deltas, `compile_count` is the daemon's
//! process-global tape-compilation counter — flat across a warm request —
//! and `timeouts` counts pairs the request's wall deadline expired on
//! (each also reported as a `pair` event with `skipped: "timeout"`).

use xcv_cert::json::{escape, fmt_f64, Json};
use xcv_conditions::Condition;
use xcv_core::presets::repro_config;
use xcv_core::{TableMark, VerifierConfig};
use xcv_functionals::Functional;
use xcv_solver::{DeltaSolver, SolveBudget};

/// How a verify request's per-pair [`VerifierConfig`] is derived.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// The `xcverify` gate configuration: [`repro_config`] with the
    /// per-arity recursion depth cap (spin-resolved 2, meta-GGA 3, else 5).
    Gate { budget_ms: u64, threshold: f64 },
    /// One explicit deterministic config for every pair (sequential,
    /// node-budgeted, no deadline) — the reproducible-benchmark policy.
    Flat {
        delta: f64,
        max_nodes: u64,
        split_threshold: f64,
        max_depth: u32,
    },
}

impl Policy {
    /// The effective verifier configuration for one functional under this
    /// policy. `xcverify` uses this for its in-process campaign too, so the
    /// daemon and the CLI derive identical configurations (and therefore
    /// identical level-2 cache keys) by construction.
    pub fn verifier_config(&self, f: &dyn Functional) -> VerifierConfig {
        match *self {
            Policy::Gate {
                budget_ms,
                threshold,
            } => {
                let max_depth = match f.arity() {
                    4.. => 2, // ζ-resolved: 16 children per split level
                    3 => 3,
                    _ => 5,
                };
                repro_config(budget_ms, threshold, max_depth)
            }
            Policy::Flat {
                delta,
                max_nodes,
                split_threshold,
                max_depth,
            } => VerifierConfig {
                split_threshold,
                solver: DeltaSolver::new(delta, SolveBudget::nodes(max_nodes)),
                parallel: false,
                parallel_depth: 0,
                max_depth,
                pair_deadline_ms: None,
            },
        }
    }

    fn to_json(self) -> String {
        match self {
            Policy::Gate {
                budget_ms,
                threshold,
            } => format!(
                "{{\"mode\": \"gate\", \"budget_ms\": {budget_ms}, \"threshold\": {}}}",
                fmt_f64(threshold)
            ),
            Policy::Flat {
                delta,
                max_nodes,
                split_threshold,
                max_depth,
            } => format!(
                "{{\"mode\": \"flat\", \"delta\": {}, \"max_nodes\": {max_nodes}, \
                 \"split_threshold\": {}, \"max_depth\": {max_depth}}}",
                fmt_f64(delta),
                fmt_f64(split_threshold)
            ),
        }
    }

    fn parse(v: &Json) -> Result<Policy, String> {
        match v.want("mode")?.as_str()? {
            "gate" => Ok(Policy::Gate {
                budget_ms: v.want("budget_ms")?.as_u64()?,
                threshold: v.want("threshold")?.as_f64()?,
            }),
            "flat" => Ok(Policy::Flat {
                delta: v.want("delta")?.as_f64()?,
                max_nodes: v.want("max_nodes")?.as_u64()?,
                split_threshold: v.want("split_threshold")?.as_f64()?,
                max_depth: u32::try_from(v.want("max_depth")?.as_u64()?)
                    .map_err(|e| e.to_string())?,
            }),
            other => Err(format!("unknown policy mode {other:?}")),
        }
    }
}

/// One `verify` query: a sub-matrix (functionals × conditions) plus the
/// configuration policy.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyRequest {
    /// Registry names (daemon-side alias resolution applies, see
    /// [`crate::canonical_name`]).
    pub functionals: Vec<String>,
    /// Empty = all seven conditions.
    pub conditions: Vec<Condition>,
    pub policy: Policy,
}

/// A client request, one JSON object per line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Verify(VerifyRequest),
    Stats,
    Ping,
    Shutdown,
}

impl Request {
    /// Serialize as one line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Request::Stats => "{\"cmd\": \"stats\"}".to_string(),
            Request::Ping => "{\"cmd\": \"ping\"}".to_string(),
            Request::Shutdown => "{\"cmd\": \"shutdown\"}".to_string(),
            Request::Verify(v) => {
                let fs = v
                    .functionals
                    .iter()
                    .map(|f| format!("\"{}\"", escape(f)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let cs = v
                    .conditions
                    .iter()
                    .map(|c| format!("\"{}\"", c.id()))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"cmd\": \"verify\", \"functionals\": [{fs}], \"conditions\": [{cs}], \
                     \"policy\": {}}}",
                    v.policy.to_json()
                )
            }
        }
    }

    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line)?;
        match doc.want("cmd")?.as_str()? {
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "verify" => {
                let functionals = doc
                    .want("functionals")?
                    .as_arr()?
                    .iter()
                    .map(|f| f.as_str().map(str::to_string))
                    .collect::<Result<Vec<_>, _>>()?;
                let conditions = match doc.get("conditions") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()?
                        .iter()
                        .map(|c| {
                            let id = c.as_str()?;
                            Condition::from_id(id)
                                .ok_or_else(|| format!("unknown condition {id:?}"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                Ok(Request::Verify(VerifyRequest {
                    functionals,
                    conditions,
                    policy: Policy::parse(doc.want("policy")?)?,
                }))
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

/// Wire tag of a table mark.
pub fn mark_tag(mark: TableMark) -> &'static str {
    match mark {
        TableMark::Verified => "verified",
        TableMark::PartiallyVerified => "partial",
        TableMark::Counterexample => "counterexample",
        TableMark::Unknown => "unknown",
        TableMark::NotApplicable => "na",
    }
}

/// Parse a wire mark tag.
pub fn parse_mark(tag: &str) -> Option<TableMark> {
    Some(match tag {
        "verified" => TableMark::Verified,
        "partial" => TableMark::PartiallyVerified,
        "counterexample" => TableMark::Counterexample,
        "unknown" => TableMark::Unknown,
        "na" => TableMark::NotApplicable,
        _ => return None,
    })
}

/// The terminal summary of one verify stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Done {
    /// Matrix cells in the request (inapplicable ones included).
    pub pairs: u64,
    /// Answered from the level-2 result store without solving.
    pub cached: u64,
    /// Solved by this request (it was the coalescing leader).
    pub solved: u64,
    /// Of `cached`: pairs that waited on another request's identical
    /// in-flight solve (level-3 coalescing) instead of hitting warm memory.
    pub coalesced: u64,
    /// Compiled-problem (level 1) cache hits/misses during this request.
    pub l1_hits: u64,
    pub l1_misses: u64,
    /// The daemon's process-global tape-compilation counter after this
    /// request ([`xcv_solver::compile_count`]) — flat across a warm repeat.
    pub compile_count: u64,
    pub wall_ms: u64,
    /// Pairs the request's wall deadline expired on (`skipped: "timeout"`
    /// pair events): the request degraded gracefully instead of running
    /// past its deadline — already-solved pairs were still answered.
    pub timeouts: u64,
}

/// Daemon-lifetime counters (the `stats` command).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Level 1: compiled-problem cache lines / hits / misses.
    pub problems: u64,
    pub l1_hits: u64,
    pub l1_misses: u64,
    /// Level 2: memoized results / memo hits / campaign solves / disk
    /// persists / results warm-loaded from the store directory at startup.
    pub results: u64,
    pub result_hits: u64,
    pub solves: u64,
    pub persisted: u64,
    pub warm_loaded: u64,
    /// Level 3: requests that waited on an identical in-flight solve.
    pub coalesced: u64,
    pub compile_count: u64,
    /// Corrupt store documents renamed `*.bad` at warm start (each one
    /// recomputes on first demand instead of serving garbage).
    pub quarantined: u64,
    /// Panics isolated by the per-request / per-solve `catch_unwind`
    /// boundaries — the daemon kept serving through every one of them.
    pub panics: u64,
}

/// One event line of a response stream.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    Started {
        functional: String,
        condition: Condition,
    },
    Counterexample {
        functional: String,
        condition: Condition,
        witness: Vec<f64>,
    },
    Pair {
        functional: String,
        condition: Condition,
        mark: TableMark,
        wall_ms: u64,
        cached: bool,
        /// `None` when the pair actually ran; otherwise the skip tag
        /// (`na`, `encode_failed`, `budget`, `cancelled`, `other_shard`,
        /// `timeout` — the request's wall deadline expired first).
        skipped: Option<String>,
    },
    Done(Done),
    Stats(ServerStats),
    Pong,
    Ok,
    Error {
        message: String,
    },
}

impl Event {
    /// Is this the last event of its stream?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Done(_) | Event::Stats(_) | Event::Pong | Event::Ok | Event::Error { .. }
        )
    }

    /// Serialize as one line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Event::Started {
                functional,
                condition,
            } => format!(
                "{{\"event\": \"started\", \"functional\": \"{}\", \"condition\": \"{}\"}}",
                escape(functional),
                condition.id()
            ),
            Event::Counterexample {
                functional,
                condition,
                witness,
            } => format!(
                "{{\"event\": \"counterexample\", \"functional\": \"{}\", \"condition\": \"{}\", \
                 \"witness\": [{}]}}",
                escape(functional),
                condition.id(),
                witness
                    .iter()
                    .map(|v| fmt_f64(*v))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Event::Pair {
                functional,
                condition,
                mark,
                wall_ms,
                cached,
                skipped,
            } => format!(
                "{{\"event\": \"pair\", \"functional\": \"{}\", \"condition\": \"{}\", \
                 \"mark\": \"{}\", \"wall_ms\": {wall_ms}, \"cached\": {cached}, \
                 \"skipped\": {}}}",
                escape(functional),
                condition.id(),
                mark_tag(*mark),
                match skipped {
                    Some(tag) => format!("\"{}\"", escape(tag)),
                    None => "null".to_string(),
                }
            ),
            Event::Done(d) => format!(
                "{{\"event\": \"done\", \"pairs\": {}, \"cached\": {}, \"solved\": {}, \
                 \"coalesced\": {}, \"l1_hits\": {}, \"l1_misses\": {}, \
                 \"compile_count\": {}, \"wall_ms\": {}, \"timeouts\": {}}}",
                d.pairs,
                d.cached,
                d.solved,
                d.coalesced,
                d.l1_hits,
                d.l1_misses,
                d.compile_count,
                d.wall_ms,
                d.timeouts
            ),
            Event::Stats(s) => format!(
                "{{\"event\": \"stats\", \"problems\": {}, \"l1_hits\": {}, \"l1_misses\": {}, \
                 \"results\": {}, \"result_hits\": {}, \"solves\": {}, \"persisted\": {}, \
                 \"warm_loaded\": {}, \"coalesced\": {}, \"compile_count\": {}, \
                 \"quarantined\": {}, \"panics\": {}}}",
                s.problems,
                s.l1_hits,
                s.l1_misses,
                s.results,
                s.result_hits,
                s.solves,
                s.persisted,
                s.warm_loaded,
                s.coalesced,
                s.compile_count,
                s.quarantined,
                s.panics
            ),
            Event::Pong => "{\"event\": \"pong\"}".to_string(),
            Event::Ok => "{\"event\": \"ok\"}".to_string(),
            Event::Error { message } => {
                format!(
                    "{{\"event\": \"error\", \"message\": \"{}\"}}",
                    escape(message)
                )
            }
        }
    }

    /// Parse one event line.
    pub fn parse(line: &str) -> Result<Event, String> {
        let doc = Json::parse(line)?;
        let condition = |doc: &Json| -> Result<Condition, String> {
            let id = doc.want("condition")?.as_str()?;
            Condition::from_id(id).ok_or_else(|| format!("unknown condition {id:?}"))
        };
        match doc.want("event")?.as_str()? {
            "started" => Ok(Event::Started {
                functional: doc.want("functional")?.as_str()?.to_string(),
                condition: condition(&doc)?,
            }),
            "counterexample" => Ok(Event::Counterexample {
                functional: doc.want("functional")?.as_str()?.to_string(),
                condition: condition(&doc)?,
                witness: doc
                    .want("witness")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "pair" => {
                let tag = doc.want("mark")?.as_str()?;
                Ok(Event::Pair {
                    functional: doc.want("functional")?.as_str()?.to_string(),
                    condition: condition(&doc)?,
                    mark: parse_mark(tag).ok_or_else(|| format!("unknown mark {tag:?}"))?,
                    wall_ms: doc.want("wall_ms")?.as_u64()?,
                    cached: doc.want("cached")?.as_bool()?,
                    skipped: match doc.want("skipped")? {
                        Json::Null => None,
                        v => Some(v.as_str()?.to_string()),
                    },
                })
            }
            "done" => Ok(Event::Done(Done {
                pairs: doc.want("pairs")?.as_u64()?,
                cached: doc.want("cached")?.as_u64()?,
                solved: doc.want("solved")?.as_u64()?,
                coalesced: doc.want("coalesced")?.as_u64()?,
                l1_hits: doc.want("l1_hits")?.as_u64()?,
                l1_misses: doc.want("l1_misses")?.as_u64()?,
                compile_count: doc.want("compile_count")?.as_u64()?,
                wall_ms: doc.want("wall_ms")?.as_u64()?,
                timeouts: doc.want("timeouts")?.as_u64()?,
            })),
            "stats" => Ok(Event::Stats(ServerStats {
                problems: doc.want("problems")?.as_u64()?,
                l1_hits: doc.want("l1_hits")?.as_u64()?,
                l1_misses: doc.want("l1_misses")?.as_u64()?,
                results: doc.want("results")?.as_u64()?,
                result_hits: doc.want("result_hits")?.as_u64()?,
                solves: doc.want("solves")?.as_u64()?,
                persisted: doc.want("persisted")?.as_u64()?,
                warm_loaded: doc.want("warm_loaded")?.as_u64()?,
                coalesced: doc.want("coalesced")?.as_u64()?,
                compile_count: doc.want("compile_count")?.as_u64()?,
                quarantined: doc.want("quarantined")?.as_u64()?,
                panics: doc.want("panics")?.as_u64()?,
            })),
            "pong" => Ok(Event::Pong),
            "ok" => Ok(Event::Ok),
            "error" => Ok(Event::Error {
                message: doc.want("message")?.as_str()?.to_string(),
            }),
            other => Err(format!("unknown event {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Verify(VerifyRequest {
                functionals: vec!["PBE".into(), "VWN RPA".into()],
                conditions: vec![Condition::EcNonPositivity, Condition::LiebOxford],
                policy: Policy::Gate {
                    budget_ms: 100,
                    threshold: 0.3,
                },
            }),
            Request::Verify(VerifyRequest {
                functionals: vec!["LYP".into()],
                conditions: Vec::new(),
                policy: Policy::Flat {
                    delta: 1e-3,
                    max_nodes: 800,
                    split_threshold: 0.625,
                    max_depth: 2,
                },
            }),
        ];
        for r in reqs {
            let line = r.to_json();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn events_round_trip() {
        let events = [
            Event::Started {
                functional: "PBE".into(),
                condition: Condition::EcScaling,
            },
            Event::Counterexample {
                functional: "LYP".into(),
                condition: Condition::EcNonPositivity,
                witness: vec![0.1, 2.5e-3, -1.0],
            },
            Event::Pair {
                functional: "B88(ζ)".into(),
                condition: Condition::LiebOxfordExt,
                mark: TableMark::Counterexample,
                wall_ms: 42,
                cached: true,
                skipped: None,
            },
            Event::Pair {
                functional: "LYP".into(),
                condition: Condition::LiebOxford,
                mark: TableMark::NotApplicable,
                wall_ms: 0,
                cached: false,
                skipped: Some("na".into()),
            },
            Event::Done(Done {
                pairs: 49,
                cached: 45,
                solved: 0,
                coalesced: 0,
                l1_hits: 45,
                l1_misses: 0,
                compile_count: 90,
                wall_ms: 3,
                timeouts: 2,
            }),
            Event::Stats(ServerStats {
                quarantined: 1,
                panics: 2,
                ..ServerStats::default()
            }),
            Event::Pong,
            Event::Ok,
            Event::Error {
                message: "unknown functional \"nope\"".into(),
            },
        ];
        for e in events {
            let line = e.to_json();
            assert!(!line.contains('\n'));
            assert_eq!(Event::parse(&line).unwrap(), e, "{line}");
        }
    }

    #[test]
    fn every_mark_has_a_stable_tag() {
        for m in [
            TableMark::Verified,
            TableMark::PartiallyVerified,
            TableMark::Counterexample,
            TableMark::Unknown,
            TableMark::NotApplicable,
        ] {
            assert_eq!(parse_mark(mark_tag(m)), Some(m));
        }
        assert_eq!(parse_mark("nope"), None);
    }

    #[test]
    fn gate_policy_matches_the_cli_depth_caps() {
        use xcv_functionals::{Dfa, IntoFunctional, Registry};
        let policy = Policy::Gate {
            budget_ms: 100,
            threshold: 0.3,
        };
        // LDA/GGA arity 2 → depth 5; meta-GGA arity 3 → 3; spin arity 4 → 2.
        let pbe = Dfa::Pbe.into_handle();
        assert_eq!(policy.verifier_config(pbe.as_ref()).max_depth, 5);
        let scan = Dfa::Scan.into_handle();
        assert_eq!(policy.verifier_config(scan.as_ref()).max_depth, 3);
        let spin = Registry::spin_general().get("PBE(ζ)").unwrap();
        assert_eq!(policy.verifier_config(spin.as_ref()).max_depth, 2);
    }
}
