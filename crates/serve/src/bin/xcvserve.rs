//! xcvserve — run the verification daemon.
//!
//! ```text
//! xcvserve [--addr HOST:PORT] [--store DIR] [--admit-ms N]
//!          [--max-conns N] [--deadline-ms N] [--idle-ms N]
//!          [--port-file PATH] [--quiet]
//! ```
//!
//! * `--addr` — bind address (default `127.0.0.1:7878`; port `0` picks an
//!   ephemeral port).
//! * `--store DIR` — persist expensive results under `DIR` and warm-load
//!   it at startup (default: in-memory only).
//! * `--admit-ms N` — persistence admission threshold in milliseconds
//!   (default 5): cheaper solves are memoized but not written to disk.
//! * `--max-conns N` — concurrent-connection cap (default 64); past it,
//!   connections are rejected with an explicit `busy` error line.
//! * `--deadline-ms N` — per-request wall deadline (default: none); pairs
//!   not finished in time stream as `skipped: "timeout"` and the request
//!   degrades gracefully instead of running on.
//! * `--idle-ms N` — socket read timeout (default 30000): a connection
//!   idle or wedged mid-line this long is reaped.
//! * `--port-file PATH` — write the actually-bound address to `PATH`
//!   (atomic), for scripts that launch with port 0.
//! * `--quiet` — suppress the startup line.
//!
//! The daemon runs until a client sends `{"cmd": "shutdown"}` (or the
//! process is signalled). The scheduler cost model is loaded the same way
//! `xcverify` loads it: `$XCV_COST_MODEL` or `BENCH_solver.json`.

use xcv_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: xcvserve [--addr HOST:PORT] [--store DIR] [--admit-ms N] \
         [--max-conns N] [--deadline-ms N] [--idle-ms N] \
         [--port-file PATH] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut port_file: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => config.addr = value(),
            "--store" => config.store_dir = Some(value().into()),
            "--admit-ms" => {
                config.admit_ms = value().parse().unwrap_or_else(|_| usage());
            }
            "--max-conns" => {
                config.max_connections = value().parse().unwrap_or_else(|_| usage());
            }
            "--deadline-ms" => {
                config.request_deadline_ms = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--idle-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                config.read_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--port-file" => port_file = Some(value()),
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    config.cost_model = xcv_core::presets::load_cost_model();
    let mut server = match Server::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xcvserve: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = port_file {
        if let Err(e) =
            xcv_cert::store::write_atomic(path.as_ref(), &format!("{}\n", server.addr()))
        {
            eprintln!("xcvserve: writing {path}: {e}");
            std::process::exit(1);
        }
    }
    if !quiet {
        eprintln!("xcvserve listening on {}", server.addr());
    }
    server.wait();
}
