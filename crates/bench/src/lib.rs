//! Shared presets for the benchmark harness and the `repro` binary.
//!
//! The reproduction presets (`repro_config`, `config_for`, the cost-model
//! loader, …) moved to [`xcv_core::presets`] so the `xcvserve` daemon can
//! derive identical per-functional configurations without depending on this
//! crate; they are re-exported here verbatim for existing call sites.

pub mod seed_baseline;

pub use xcv_core::presets::{
    config_for, load_cost_model, repro_config, repro_verifier, verifier_for,
};

use xcv_core::Verifier;
use xcv_grid::GridConfig;

/// Grid preset for reproduction runs (the paper meshes 10⁵ samples per axis;
/// 200 per axis keeps full-table runs interactive while preserving every
/// region-level conclusion — the resolution is swept in `grid_scaling`).
/// The α, ζ and per-spin `s_σ` axes mesh coarsely: the baseline's cost is
/// the product over axes.
pub fn default_grid() -> GridConfig {
    GridConfig {
        n_rs: 200,
        n_s: 200,
        n_alpha: 9,
        n_zeta: 9,
        tol: 1e-9,
    }
}

/// Fast verifier for Criterion timing loops.
pub fn bench_verifier() -> Verifier {
    repro_verifier(50, 1.25, 3)
}
