//! The seed solver architecture, vendored verbatim as a benchmark baseline.
//!
//! Before the compile-once rework, `DeltaSolver::solve` rebuilt its HC4
//! contractor — topological sort, `HashMap` slot maps, op lowering over the
//! expression DAG — on **every** box, ran forward interval passes through
//! `IntervalEnv`'s per-child hash lookups, and scored branches with the
//! allocating recursive `Expr::eval`. `solver_bench` measures the production
//! session path against this module so the reported speedups compare against
//! what the code actually did, not against a weakened strawman. Nothing
//! outside the benchmarks may use this.

use std::time::Instant;
use xcv_expr::{Expr, IntervalEnv, Kind};
use xcv_interval::{round, Interval};
use xcv_solver::{BoxDomain, DeltaSolver, Formula, Outcome, Rel, SolveStats};

/// Outcome of a contraction (private mirror of the seed's enum).
enum Contraction {
    Empty,
    Box(BoxDomain),
}

/// Node operation with pre-resolved child indices (the seed's lowering).
#[derive(Clone, Copy)]
enum Op {
    Leaf,
    Var,
    Add(u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Neg(u32),
    PowI(u32, i32),
    Pow(u32, u32),
    Exp(u32),
    Ln(u32),
    Sqrt(u32),
    Cbrt(u32),
    Atan(u32),
    Sin,
    Cos,
    Tanh(u32),
    Abs(u32),
    Min(u32, u32),
    Max(u32, u32),
    LambertW(u32),
    Ite(u32, u32, u32),
}

/// The seed's HC4 contractor over `IntervalEnv` (hash-mapped slot storage).
struct SeedHc4 {
    env: IntervalEnv,
    ops: Vec<Op>,
    roots: Vec<(usize, Interval)>,
    var_slots: Vec<(usize, u32)>,
    max_rounds: usize,
}

impl SeedHc4 {
    fn new(formula: &Formula) -> SeedHc4 {
        let roots_exprs: Vec<Expr> = formula.atoms.iter().map(|a| a.expr.clone()).collect();
        let env = IntervalEnv::new(&roots_exprs);
        let idx = |e: &Expr| env.index_of(e).expect("node in env") as u32;
        let mut ops = Vec::with_capacity(env.len());
        let mut var_slots = Vec::new();
        for (i, e) in env.order().iter().enumerate() {
            let op = match e.kind() {
                Kind::Const(_) => Op::Leaf,
                Kind::Var(v) => {
                    var_slots.push((i, *v));
                    Op::Var
                }
                Kind::Add(a, b) => Op::Add(idx(a), idx(b)),
                Kind::Mul(a, b) => Op::Mul(idx(a), idx(b)),
                Kind::Div(a, b) => Op::Div(idx(a), idx(b)),
                Kind::Neg(a) => Op::Neg(idx(a)),
                Kind::PowI(a, n) => Op::PowI(idx(a), *n),
                Kind::Pow(a, b) => Op::Pow(idx(a), idx(b)),
                Kind::Exp(a) => Op::Exp(idx(a)),
                Kind::Ln(a) => Op::Ln(idx(a)),
                Kind::Sqrt(a) => Op::Sqrt(idx(a)),
                Kind::Cbrt(a) => Op::Cbrt(idx(a)),
                Kind::Atan(a) => Op::Atan(idx(a)),
                Kind::Sin(_) => Op::Sin,
                Kind::Cos(_) => Op::Cos,
                Kind::Tanh(a) => Op::Tanh(idx(a)),
                Kind::Abs(a) => Op::Abs(idx(a)),
                Kind::Min(a, b) => Op::Min(idx(a), idx(b)),
                Kind::Max(a, b) => Op::Max(idx(a), idx(b)),
                Kind::LambertW(a) => Op::LambertW(idx(a)),
                Kind::Ite {
                    cond,
                    then,
                    otherwise,
                } => Op::Ite(idx(cond), idx(then), idx(otherwise)),
            };
            ops.push(op);
        }
        let roots = formula
            .atoms
            .iter()
            .map(|a| (env.index_of(&a.expr).expect("root in env"), a.rel.allowed()))
            .collect();
        SeedHc4 {
            env,
            ops,
            roots,
            var_slots,
            max_rounds: 3,
        }
    }

    fn contract(&mut self, b: &BoxDomain) -> Contraction {
        self.env.forward(b.dims());
        let mut current = b.clone();
        for round in 0..self.max_rounds {
            if round > 0 {
                self.env.forward_meet();
            }
            for &(idx, allowed) in &self.roots {
                if self.env.meet_at(idx, allowed).is_empty() {
                    return Contraction::Empty;
                }
            }
            if !self.backward() {
                return Contraction::Empty;
            }
            let mut next = current.clone();
            for &(idx, v) in &self.var_slots {
                if (v as usize) >= current.ndim() {
                    continue;
                }
                let dom = self.env.value_at(idx);
                let met = dom.intersect(&current.dim(v as usize));
                if met.is_empty() {
                    return Contraction::Empty;
                }
                next.set_dim(v as usize, met);
            }
            let gain = improvement(&current, &next);
            current = next;
            if gain < 0.05 {
                break;
            }
        }
        Contraction::Box(current)
    }

    fn backward(&mut self) -> bool {
        for i in (0..self.ops.len()).rev() {
            let d = self.env.value_at(i);
            if d.is_empty() {
                return false;
            }
            let op = self.ops[i];
            match op {
                Op::Leaf | Op::Var => {}
                Op::Add(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    if !self.meet(a, d.sub(&cb)) || !self.meet(b, d.sub(&ca)) {
                        return false;
                    }
                }
                Op::Mul(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    if !self.meet(a, d.div(&cb)) || !self.meet(b, d.div(&ca)) {
                        return false;
                    }
                }
                Op::Div(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    if !self.meet(a, d.mul(&cb)) || !self.meet(b, ca.div(&d)) {
                        return false;
                    }
                }
                Op::Neg(a) => {
                    if !self.meet(a, d.neg()) {
                        return false;
                    }
                }
                Op::PowI(a, n) => {
                    if !self.backward_powi(a, n, d) {
                        return false;
                    }
                }
                Op::Pow(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    if ca.certainly_gt(0.0) {
                        let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                        if dpos.is_empty() {
                            return false;
                        }
                        let ld = dpos.ln();
                        if !ld.is_empty() {
                            let la = ca.ln();
                            if !self.meet(a, ld.div(&cb).exp()) {
                                return false;
                            }
                            if !la.is_empty() && !self.meet(b, ld.div(&la)) {
                                return false;
                            }
                        }
                    }
                }
                Op::Exp(a) => {
                    let pre = d.ln();
                    if pre.is_empty() || !self.meet(a, pre) {
                        return false;
                    }
                }
                Op::Ln(a) => {
                    if !self.meet(a, d.exp()) {
                        return false;
                    }
                }
                Op::Sqrt(a) => {
                    let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                    if dpos.is_empty() {
                        return false;
                    }
                    if !self.meet(a, dpos.powi(2)) {
                        return false;
                    }
                }
                Op::Cbrt(a) => {
                    if !self.meet(a, d.powi(3)) {
                        return false;
                    }
                }
                Op::Atan(a) => {
                    let range =
                        Interval::new(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
                    let dc = d.intersect(&range);
                    if dc.is_empty() {
                        return false;
                    }
                    let near_pole = std::f64::consts::FRAC_PI_2 - 1e-4;
                    let lo = if dc.lo <= -near_pole {
                        f64::NEG_INFINITY
                    } else {
                        round::libm_lo(dc.lo.tan())
                    };
                    let hi = if dc.hi >= near_pole {
                        f64::INFINITY
                    } else {
                        round::libm_hi(dc.hi.tan())
                    };
                    if !self.meet(a, Interval::checked(lo, hi)) {
                        return false;
                    }
                }
                Op::Sin | Op::Cos => {
                    if d.intersect(&Interval::new(-1.0, 1.0)).is_empty() {
                        return false;
                    }
                }
                Op::Tanh(a) => {
                    let dc = d.intersect(&Interval::new(-1.0, 1.0));
                    if dc.is_empty() {
                        return false;
                    }
                    let atanh = |x: f64, up: bool| -> f64 {
                        if x <= -1.0 {
                            f64::NEG_INFINITY
                        } else if x >= 1.0 {
                            f64::INFINITY
                        } else {
                            let v = 0.5 * ((1.0 + x) / (1.0 - x)).ln();
                            if up {
                                round::libm_hi(v)
                            } else {
                                round::libm_lo(v)
                            }
                        }
                    };
                    if !self.meet(
                        a,
                        Interval::checked(atanh(dc.lo, false), atanh(dc.hi, true)),
                    ) {
                        return false;
                    }
                }
                Op::Abs(a) => {
                    let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
                    if dpos.is_empty() {
                        return false;
                    }
                    let ca = self.val(a);
                    let pre = ca.intersect(&dpos).hull(&ca.intersect(&dpos.neg()));
                    if pre.is_empty() {
                        return false;
                    }
                    self.env.set_value_at(a as usize, pre);
                }
                Op::Min(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    let floor = Interval::new(d.lo, f64::INFINITY);
                    let mut na = ca.intersect(&floor);
                    let mut nb = cb.intersect(&floor);
                    if cb.lo > d.hi {
                        na = na.intersect(&d);
                    }
                    if ca.lo > d.hi {
                        nb = nb.intersect(&d);
                    }
                    if na.is_empty() || nb.is_empty() {
                        return false;
                    }
                    self.env.set_value_at(a as usize, na);
                    self.env.set_value_at(b as usize, nb);
                }
                Op::Max(a, b) => {
                    let (ca, cb) = (self.val(a), self.val(b));
                    let ceil = Interval::new(f64::NEG_INFINITY, d.hi);
                    let mut na = ca.intersect(&ceil);
                    let mut nb = cb.intersect(&ceil);
                    if cb.hi < d.lo {
                        na = na.intersect(&d);
                    }
                    if ca.hi < d.lo {
                        nb = nb.intersect(&d);
                    }
                    if na.is_empty() || nb.is_empty() {
                        return false;
                    }
                    self.env.set_value_at(a as usize, na);
                    self.env.set_value_at(b as usize, nb);
                }
                Op::LambertW(a) => {
                    if !self.meet(a, d.mul(&d.exp())) {
                        return false;
                    }
                }
                Op::Ite(c, t, e) => {
                    let cc = self.val(c);
                    if cc.certainly_ge(0.0) {
                        if !self.meet(t, d) {
                            return false;
                        }
                    } else if cc.certainly_lt(0.0) {
                        if !self.meet(e, d) {
                            return false;
                        }
                    } else {
                        let ct = self.val(t);
                        let ce = self.val(e);
                        let then_possible = !ct.intersect(&d).is_empty();
                        let else_possible = !ce.intersect(&d).is_empty();
                        match (then_possible, else_possible) {
                            (false, false) => return false,
                            (false, true) => {
                                if !self.meet(c, Interval::new(f64::NEG_INFINITY, 0.0))
                                    || !self.meet(e, d)
                                {
                                    return false;
                                }
                            }
                            (true, false) => {
                                if !self.meet(c, Interval::new(0.0, f64::INFINITY))
                                    || !self.meet(t, d)
                                {
                                    return false;
                                }
                            }
                            (true, true) => {}
                        }
                    }
                }
            }
        }
        true
    }

    #[inline]
    fn val(&self, idx: u32) -> Interval {
        self.env.value_at(idx as usize)
    }

    #[inline]
    fn meet(&mut self, idx: u32, narrow: Interval) -> bool {
        !self.env.meet_at(idx as usize, narrow).is_empty()
    }

    fn backward_powi(&mut self, a: u32, n: i32, d: Interval) -> bool {
        if n == 0 {
            return !d.intersect(&Interval::ONE).is_empty();
        }
        if n < 0 {
            let dinv = d.recip();
            return self.backward_powi(a, -n, dinv);
        }
        if n % 2 == 1 {
            self.meet(a, d.nth_root(n))
        } else {
            let dpos = d.intersect(&Interval::new(0.0, f64::INFINITY));
            if dpos.is_empty() {
                return false;
            }
            let r = dpos.nth_root(n);
            let ca = self.val(a);
            let pre = ca.intersect(&r).hull(&ca.intersect(&r.neg()));
            if pre.is_empty() {
                return false;
            }
            self.env.set_value_at(a as usize, pre);
            true
        }
    }
}

fn improvement(before: &BoxDomain, after: &BoxDomain) -> f64 {
    let mut best: f64 = 0.0;
    for i in 0..before.ndim() {
        let wb = before.dim(i).width();
        let wa = after.dim(i).width();
        if wb > 0.0 && wb.is_finite() {
            best = best.max((wb - wa) / wb);
        } else if wb.is_infinite() && wa.is_finite() {
            best = 1.0;
        }
    }
    best
}

/// The seed `DeltaSolver::solve_with_stats` (mean-value path omitted — the
/// benchmarks run with it disabled): contractor rebuilt per call, branch
/// scoring through the recursive memoizing evaluator.
pub fn seed_solve_with_stats(
    solver: &DeltaSolver,
    domain: &BoxDomain,
    formula: &Formula,
) -> (Outcome, SolveStats) {
    let mut stats = SolveStats::default();
    if domain.is_empty() {
        return (Outcome::Unsat, stats);
    }
    let start = Instant::now();
    let mut hc4 = SeedHc4::new(formula);
    let mut stack: Vec<(BoxDomain, u32)> = vec![(domain.clone(), 0)];
    let width_floor = solver.delta.max(1e-12);
    while let Some((b, depth)) = stack.pop() {
        stats.nodes += 1;
        stats.max_depth = stats.max_depth.max(depth);
        if stats.nodes > solver.budget.max_nodes
            || (stats.nodes % 64 == 0
                && start.elapsed().as_millis() as u64 > solver.budget.max_millis)
        {
            return (Outcome::Timeout, stats);
        }
        let contracted = match hc4.contract(&b) {
            Contraction::Empty => {
                stats.pruned += 1;
                continue;
            }
            Contraction::Box(nb) => nb,
        };
        if contracted.is_empty() {
            stats.pruned += 1;
            continue;
        }
        let mid = contracted.midpoint();
        if formula.holds_at(&mid) {
            return (Outcome::DeltaSat(mid), stats);
        }
        if contracted.max_width() <= width_floor {
            return (Outcome::DeltaSat(mid), stats);
        }
        let (l, r) = contracted.bisect_widest();
        stats.branched += 1;
        let score = |bx: &BoxDomain| -> f64 {
            let m = bx.midpoint();
            formula
                .atoms
                .iter()
                .map(|a| match a.expr.eval(&m) {
                    Ok(v) if !v.is_nan() => match a.rel {
                        Rel::Le | Rel::Lt => v.max(0.0),
                        Rel::Ge | Rel::Gt => (-v).max(0.0),
                    },
                    _ => f64::INFINITY,
                })
                .fold(0.0, f64::max)
        };
        let (sl, sr) = (score(&l), score(&r));
        if sl <= sr {
            if !r.is_empty() {
                stack.push((r, depth + 1));
            }
            if !l.is_empty() {
                stack.push((l, depth + 1));
            }
        } else {
            if !l.is_empty() {
                stack.push((l, depth + 1));
            }
            if !r.is_empty() {
                stack.push((r, depth + 1));
            }
        }
    }
    (Outcome::Unsat, stats)
}
