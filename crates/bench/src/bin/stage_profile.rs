//! Stage profiler (a developer tool, not part of the snapshot): where does
//! a solve's wall-clock go on a heavy pair? Breaks a node's cost into
//! forward / HC4-round / decision-stage pieces and measures the batched
//! tape primitives (full, masked, and mixed-mask lanes) against their
//! scalar counterparts — the numbers behind the batched-engine design
//! notes in ROADMAP.md.

use std::time::Instant;
use xcv_conditions::Condition;
use xcv_core::Encoder;
use xcv_functionals::Dfa;
use xcv_solver::{CompiledFormula, DeltaSolver, SolveBudget, SolveScratch};

fn main() {
    for (dfa, cond) in [
        (Dfa::Scan, Condition::UcMonotonicity),
        (Dfa::Scan, Condition::EcScaling),
        (Dfa::Pbe, Condition::UcMonotonicity),
    ] {
        let p = Encoder::encode(dfa, cond).unwrap();
        let compiled = p.compiled();
        let mut scratch = SolveScratch::new();
        let b = &p.domain;
        println!(
            "{:?}/{:?}: {} interval slots",
            dfa,
            cond,
            compiled.interval_slots()
        );
        // Forward-only cost.
        let anon = CompiledFormula::compile(p.negation());
        let n = 2000;
        let t0 = Instant::now();
        for _ in 0..n {
            let c = anon.contract_with_rounds(b, &mut scratch, 0);
            std::hint::black_box(&c);
        }
        println!(
            "  forward+extract only (0 rounds): {:?}/call",
            t0.elapsed() / n
        );
        let t0 = Instant::now();
        for _ in 0..n {
            let c = anon.contract_with_rounds(b, &mut scratch, 1);
            std::hint::black_box(&c);
        }
        println!("  1 round : {:?}/call", t0.elapsed() / n);
        let t0 = Instant::now();
        for _ in 0..n {
            let c = anon.contract_with_rounds(b, &mut scratch, 3);
            std::hint::black_box(&c);
        }
        println!("  3 rounds: {:?}/call", t0.elapsed() / n);
        // Whole solve at the bench budget.
        let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(800));
        let t0 = Instant::now();
        let (_, stats) = solver.solve_compiled_with_stats(b, compiled, &mut scratch);
        let el = t0.elapsed();
        println!(
            "  solve: {} nodes in {:?} ({:?}/node)",
            stats.nodes,
            el,
            el / stats.nodes.max(1) as u32
        );
        // Decision-stage costs: the f64 midpoint checks and branch scoring.
        let mid = b.midpoint();
        let t0 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(compiled.holds_at(&mid, &mut scratch));
        }
        println!("  holds_at(mid): {:?}", t0.elapsed() / n);
        let t0 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(compiled.violation_score(&mid, &mut scratch));
        }
        println!("  violation_score: {:?}", t0.elapsed() / n);
        let t0 = Instant::now();
        for _ in 0..n {
            let m = b.midpoint();
            let (l, r, _) = compiled.bisect_supported(b);
            std::hint::black_box((m, l, r));
        }
        println!("  midpoint+bisect: {:?}", t0.elapsed() / n);
        // Raw tape primitives: scalar forward x8 vs one SoA batch of 8.
        use xcv_expr::IntervalTape;
        use xcv_interval::Interval;
        let roots: Vec<xcv_expr::Expr> =
            p.negation().atoms.iter().map(|a| a.expr.clone()).collect();
        let tape = IntervalTape::compile(&roots);
        let boxes: Vec<Vec<Interval>> = (0..8)
            .map(|k| {
                b.dims()
                    .iter()
                    .map(|d| {
                        let w = d.width();
                        Interval::new(d.lo, d.lo + w * (0.3 + 0.08 * k as f64))
                    })
                    .collect()
            })
            .collect();
        let mut vals = tape.scratch();
        let t0 = Instant::now();
        for _ in 0..n {
            for bx in &boxes {
                tape.forward(bx, &mut vals);
                std::hint::black_box(&vals);
            }
        }
        println!("  scalar forward x8: {:?}", t0.elapsed() / n);
        let domains: Vec<&[Interval]> = boxes.iter().map(|v| v.as_slice()).collect();
        let dirty = vec![u64::MAX; 8];
        let mut soa = tape.scratch_batch(8);
        let t0 = Instant::now();
        for _ in 0..n {
            tape.forward_batch(8, &domains, &dirty, &mut soa);
            std::hint::black_box(&soa);
        }
        println!("  forward_batch w=8 full: {:?}", t0.elapsed() / n);
        // Per-axis cones and masked-forward costs.
        for axis in 0..b.ndim() {
            let cone = tape.cone_count(1 << axis);
            tape.forward(&boxes[0], &mut vals);
            let t0 = Instant::now();
            for _ in 0..n {
                tape.forward_masked(1 << axis, &boxes[0], &mut vals);
                std::hint::black_box(&vals);
            }
            println!(
                "  axis {axis}: cone {cone}/{} masked forward {:?}",
                tape.len(),
                t0.elapsed() / n
            );
        }
        // Backward: scalar x8 vs one batched sweep over 8 lanes.
        let mut cols: Vec<Vec<Interval>> = (0..8)
            .map(|j| {
                tape.forward(&boxes[j], &mut vals);
                vals.clone()
            })
            .collect();
        let t0 = Instant::now();
        for _ in 0..n {
            for c in cols.iter_mut() {
                std::hint::black_box(tape.backward(c));
            }
        }
        println!("  scalar backward x8: {:?}", t0.elapsed() / n);
        for j in 0..8 {
            for i in 0..tape.len() {
                soa[i * 8 + j] = cols[j][i];
            }
        }
        let mut alive = [true; 8];
        let t0 = Instant::now();
        for _ in 0..n {
            alive = [true; 8];
            tape.backward_batch(8, &mut alive, &mut soa);
            std::hint::black_box(&alive);
        }
        println!(
            "  backward_batch w=8: {:?} (alive {:?})",
            t0.elapsed() / n,
            alive
        );
        // Mixed batch: singleton masks rotating over axes (seeded columns).
        let mut dirty2 = vec![0u64; 8];
        for (k, d) in dirty2.iter_mut().enumerate() {
            *d = 1 << (k % b.ndim());
        }
        for j in 0..8 {
            tape.forward(&boxes[j], &mut vals);
            for i in 0..tape.len() {
                soa[i * 8 + j] = vals[i];
            }
        }
        let t0 = Instant::now();
        for _ in 0..n {
            tape.forward_batch(8, &domains, &dirty2, &mut soa);
            std::hint::black_box(&soa);
        }
        println!(
            "  forward_batch w=8 singleton masks: {:?}",
            t0.elapsed() / n
        );
    }
}
