//! Solver throughput benchmark: compile-once sessions (scalar and batched)
//! vs the seed per-call path, on a deterministic box schedule per Table I
//! pair.
//!
//! ```text
//! solver_bench [--nodes N] [--depth D] [--batch B] [--out FILE] [--extended] [--spin]
//! solver_bench --service [--nodes N]     (service cold/warm benchmark only, no JSON)
//! ```
//!
//! For every applicable (functional, condition) pair the PB domain is split
//! `--depth` times (the verifier's `split(D)` schedule), and each resulting
//! box is solved with a `--nodes` node budget five ways:
//!
//! * **session**   — one `CompiledFormula` + one `SolveScratch` shared
//!   across the whole schedule, scalar DFS;
//! * **batched**   — the same session with `batch_width = --batch`: the
//!   frontier engine evaluates up to B boxes per SoA tape pass and
//!   re-evaluates children dirty-slot-only from their parent's forward
//!   image. Outcomes are asserted identical to the scalar session, tally
//!   by tally — the engines run the same search;
//! * **recompile** — the scalar tape machinery, recompiled per box
//!   (isolates the compilation overhead the session removes);
//! * **seed**      — the original architecture, vendored in
//!   [`xcv_bench::seed_baseline`]: contractor rebuilt per box over
//!   hash-mapped `IntervalEnv` storage, branch scoring through the
//!   allocating recursive evaluator;
//! * **ladder**    — the batched session with the full contractor
//!   escalation ladder ([`Escalation::full`]): stalled boxes get
//!   interval-Newton sweeps (rung 1) and 3B slab shaving (rung 2) instead
//!   of burning the node budget on bisection. Per box, the outcome may
//!   cross the Timeout boundary in either direction (a timeout becomes a
//!   decision; rarely, a *spurious* rung-0 δ-sat is re-opened when Newton
//!   prunes the sub-δ box HC4 gave up on) and may strengthen a spurious
//!   δ-sat into a sound `Unsat` proof, but is asserted to never regress
//!   an Unsat — Unsat→δ-Sat would be a soundness bug.
//!
//! Results (boxes, solver nodes, wall-clock, nodes/sec, speedups) are
//! printed as a table and written as JSON to `--out` (default
//! `BENCH_solver.json`) — the checked-in snapshot tracks the perf
//! trajectory across PRs.
//!
//! The JSON (schema v7; v5 renamed every mode entry's `timeout` count to
//! `timeouts`, v6 added the `ladder` mode and a top-level `ladder` entry
//! whose `timeouts` array is the trajectory `[rung 0, ≤ rung 1, ≤ rung 2]`
//! — the timeout count as each rung of the ladder is enabled over the same
//! matrix, v7 added the `service` entry: the pinned extended matrix asked
//! of an in-process `xcv-serve` daemon cold then warm, with the warm pass
//! asserted mark-identical to an in-process campaign and compile-free)
//! also carries: a `batched` entry — batch width,
//! total batched vs scalar-session wall, and a campaign-level TableMark
//! identity check; a `campaign` entry — the same matrix run as one
//! [`Campaign`] under matrix-order and under cost-aware scheduling, with
//! both wall-clocks; and a `cost_model` entry: the log-linear scheduler
//! cost model **fit by least squares from the matrix-order run's own
//! recorded per-pair wall-clocks**. The cost-aware run is scheduled by that
//! fitted model, not the hand weights; `tests/bench_snapshot.rs` pins the
//! checked-in snapshot (including batched ≤ scalar-session wall).

use std::fmt::Write as _;
use std::time::Instant;
use xcv_bench::seed_baseline::seed_solve_with_stats;
use xcv_core::{Campaign, CampaignReport, CampaignSchedule, CostModel, Encoder, VerifierConfig};
use xcv_functionals::Registry;
use xcv_solver::{BoxDomain, DeltaSolver, Escalation, Outcome, SolveBudget, SolveScratch};

struct Opts {
    nodes: u64,
    depth: u32,
    batch: usize,
    out: String,
    extended: bool,
    spin: bool,
    service_only: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        nodes: 800,
        depth: 2,
        batch: 8,
        out: "BENCH_solver.json".into(),
        extended: false,
        spin: false,
        service_only: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                i += 1;
                o.nodes = args[i].parse().expect("--nodes takes an integer");
            }
            "--depth" => {
                i += 1;
                o.depth = args[i].parse().expect("--depth takes an integer");
            }
            "--batch" => {
                i += 1;
                o.batch = args[i].parse().expect("--batch takes an integer");
            }
            "--out" => {
                i += 1;
                o.out = args[i].clone();
            }
            "--extended" => o.extended = true,
            "--spin" => o.spin = true,
            "--service" => o.service_only = true,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o
}

/// Counters for one run mode over a pair's box schedule.
#[derive(Default, Clone, Copy)]
struct ModeResult {
    nodes: u64,
    unsat: u64,
    delta_sat: u64,
    timeout: u64,
    wall_s: f64,
}

impl ModeResult {
    fn knodes_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.nodes as f64 / self.wall_s / 1e3
        } else {
            f64::INFINITY
        }
    }

    fn absorb_outcome(&mut self, outcome: &Outcome) {
        match outcome {
            Outcome::Unsat => self.unsat += 1,
            Outcome::DeltaSat(_) => self.delta_sat += 1,
            Outcome::Timeout => self.timeout += 1,
        }
    }
}

/// The ladder may move boxes across the Timeout boundary in either
/// direction — a rung-0 timeout becomes a decision, and (rarely) a
/// *spurious* rung-0 δ-sat becomes more search when Newton prunes the
/// sub-δ box HC4 had given up on — and it may *strengthen* a spurious
/// δ-sat into `Unsat` (sound by construction: `Unsat` is only ever
/// emitted when interval reasoning proves the box empty, which is
/// impossible when a real solution exists). The one forbidden
/// transition is the reverse, `Unsat -> DeltaSat`: discarding a sound
/// proof for a weaker claim would be a soundness bug, not a budget
/// artifact.
fn no_unsat_regression(before: &Outcome, after: &Outcome) -> bool {
    !matches!((before, after), (Outcome::Unsat, Outcome::DeltaSat(_)))
}

fn box_schedule(domain: &BoxDomain, depth: u32) -> Vec<BoxDomain> {
    let mut boxes = vec![domain.clone()];
    for _ in 0..depth {
        boxes = boxes.iter().flat_map(|b| b.split_all()).collect();
    }
    boxes
}

fn json_mode(m: &ModeResult) -> String {
    format!(
        "{{\"nodes\": {}, \"unsat\": {}, \"delta_sat\": {}, \"timeouts\": {}, \
         \"wall_ms\": {:.3}, \"knodes_per_sec\": {:.1}}}",
        m.nodes,
        m.unsat,
        m.delta_sat,
        m.timeout,
        m.wall_s * 1e3,
        m.knodes_per_sec()
    )
}

/// One campaign over the matrix under the given schedule (cost-aware runs
/// rank by `model` when given); returns the wall-clock and the full report
/// so marks can be compared and a cost model fit from the recorded
/// per-pair wall-clocks.
fn campaign_run(
    registry: &Registry,
    nodes: u64,
    schedule: CampaignSchedule,
    model: Option<&CostModel>,
    batch: Option<usize>,
) -> (f64, CampaignReport) {
    let config = VerifierConfig {
        split_threshold: 0.625,
        solver: DeltaSolver::new(1e-3, SolveBudget::nodes(nodes)),
        // Pairs themselves are the parallel unit here: per-pair recursion
        // stays sequential so the schedule's chunk balance is what is
        // measured.
        parallel: false,
        parallel_depth: 0,
        max_depth: 2,
        pair_deadline_ms: None,
    };
    let mut builder = Campaign::builder()
        .registry(registry)
        .config(config)
        .schedule(schedule);
    if let Some(m) = model {
        builder = builder.cost_model(m.clone());
    }
    if let Some(w) = batch {
        builder = builder.batch_width(w);
    }
    let campaign = builder.build().expect("registry is non-empty");
    let t0 = Instant::now();
    let report = campaign.run();
    (t0.elapsed().as_secs_f64(), report)
}

/// The verification-service benchmark: the pinned extended matrix (45
/// applicable of 49 cells) asked of an in-process `xcv-serve` daemon cold,
/// then again warm. The warm pass must answer every applicable pair from
/// the level-2 result cache (zero solves), with a flat process-global
/// tape-compile counter, and with marks identical to an in-process
/// [`Campaign`] over the same matrix under the same flat config — the
/// service is pure speed, never a different answer. Returns the `service`
/// JSON entry for the benchmark snapshot.
fn service_bench(nodes: u64) -> String {
    use xcv_serve::{Client, Event, Policy, Server, ServerConfig, VerifyRequest};
    let registry = Registry::extended();
    // The exact flat config campaign_run measures with, as a shared policy:
    // the daemon derives its VerifierConfig (and cache keys) from this.
    let policy = Policy::Flat {
        delta: 1e-3,
        max_nodes: nodes,
        split_threshold: 0.625,
        max_depth: 2,
    };
    let (_, reference) = campaign_run(&registry, nodes, CampaignSchedule::MatrixOrder, None, None);
    let mut reference_marks: Vec<(String, String, xcv_core::TableMark)> = reference
        .pairs
        .iter()
        .map(|p| (p.functional_name(), p.condition.id().to_string(), p.mark))
        .collect();
    reference_marks.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));

    let mut server = Server::spawn(ServerConfig::default()).expect("bind an ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect to in-process daemon");
    let request = VerifyRequest {
        functionals: registry.names().iter().map(|n| n.to_string()).collect(),
        conditions: Vec::new(), // all seven
        policy,
    };
    let pass = |client: &mut Client| {
        let mut marks = Vec::new();
        let t0 = Instant::now();
        let done = client
            .verify(&request, |e| {
                if let Event::Pair {
                    functional,
                    condition,
                    mark,
                    ..
                } = e
                {
                    marks.push((functional.clone(), condition.id().to_string(), *mark));
                }
            })
            .expect("service verify");
        let wall_s = t0.elapsed().as_secs_f64();
        marks.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        (wall_s, done, marks)
    };
    let (cold_s, cold, cold_marks) = pass(&mut client);
    let (warm_s, warm, warm_marks) = pass(&mut client);
    server.shutdown();

    // Hard identities: the service changes wall-clock, never marks.
    assert_eq!(
        cold_marks, reference_marks,
        "service cold marks diverged from the in-process campaign"
    );
    assert_eq!(warm_marks, cold_marks, "warm marks diverged from cold");
    assert_eq!(warm.solved, 0, "warm pass re-solved a cached pair");
    let compile_delta = warm.compile_count - cold.compile_count;
    assert_eq!(compile_delta, 0, "warm pass compiled a tape");
    let applicable = cold.cached + cold.solved;
    let speedup = cold_s / warm_s.max(1e-6);
    println!(
        "service: {} cells ({} applicable), cold {:.0} ms, warm {:.3} ms ({:.0}x), \
         warm cached {}/{}, warm l1 {}/{} hit, compile delta {}",
        cold.pairs,
        applicable,
        cold_s * 1e3,
        warm_s * 1e3,
        speedup,
        warm.cached,
        applicable,
        warm.l1_hits,
        warm.l1_hits + warm.l1_misses,
        compile_delta,
    );
    format!(
        "{{\"pairs\": {}, \"applicable\": {}, \"cold_wall_ms\": {:.3}, \"warm_wall_ms\": {:.3}, \
         \"speedup\": {:.1}, \"cached_warm\": {}, \"l1_hits_warm\": {}, \"l1_misses_warm\": {}, \
         \"marks_identical\": true, \"compile_count_delta_warm\": {}}}",
        cold.pairs,
        applicable,
        cold_s * 1e3,
        warm_s * 1e3,
        speedup,
        warm.cached,
        warm.l1_hits,
        warm.l1_misses,
        compile_delta,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_opts(&args);
    if opts.service_only {
        service_bench(opts.nodes);
        return;
    }
    let (problems, registry) = if opts.spin {
        (Encoder::encode_all_spin(), Registry::spin_general())
    } else if opts.extended {
        (Encoder::encode_all_extended(), Registry::extended())
    } else {
        (Encoder::encode_all(), Registry::builtin())
    };
    let solver = DeltaSolver::new(1e-3, SolveBudget::nodes(opts.nodes));
    let batched_solver = solver.clone().with_batch_width(opts.batch);
    // The two ladder stops share the batched engine: rung 1 (Newton only)
    // exists solely to attribute the timeout trajectory per rung.
    let rung1_solver = batched_solver.clone().with_escalation(Escalation {
        max_rung: 1,
        ..Escalation::full()
    });
    let ladder_solver = batched_solver.clone().with_escalation(Escalation::full());
    println!(
        "== solver_bench: {} pairs, split depth {}, {} nodes/box, batch width {} ==",
        problems.len(),
        opts.depth,
        opts.nodes,
        opts.batch
    );
    println!(
        "{:<12} {:<28} {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "functional",
        "condition",
        "boxes",
        "sess kn/s",
        "batch kn/s",
        "rcmp kn/s",
        "seed kn/s",
        "ladd kn/s",
        "vs seed",
        "t.o. -"
    );
    let mut records = Vec::new();
    let mut totals = [ModeResult::default(); 5];
    let mut rung1_timeouts = 0u64;
    let mut resolved_timeouts = 0u64;
    let mut regressed_timeouts = 0u64;
    let mut strengthened_decisions = 0u64;
    for p in &problems {
        let boxes = box_schedule(&p.domain, opts.depth);
        // Session mode: the problem's compiled formula + one scratch, shared
        // across the schedule (one warm box first so lazy state and code
        // paths are faulted in evenly across modes).
        let mut scratch = SolveScratch::new();
        let _ = solver.solve_compiled(&boxes[0], p.compiled(), &mut scratch);
        let mut session = ModeResult::default();
        let mut session_outcomes = Vec::with_capacity(boxes.len());
        let t0 = Instant::now();
        for b in &boxes {
            let (outcome, stats) = solver.solve_compiled_with_stats(b, p.compiled(), &mut scratch);
            session.nodes += stats.nodes;
            session.absorb_outcome(&outcome);
            session_outcomes.push(outcome);
        }
        session.wall_s = t0.elapsed().as_secs_f64();
        // Batched mode: same compiled formula and scratch, frontier engine.
        let _ = batched_solver.solve_compiled(&boxes[0], p.compiled(), &mut scratch);
        let mut batched = ModeResult::default();
        let t0 = Instant::now();
        for b in &boxes {
            let (outcome, stats) =
                batched_solver.solve_compiled_with_stats(b, p.compiled(), &mut scratch);
            batched.nodes += stats.nodes;
            batched.absorb_outcome(&outcome);
        }
        batched.wall_s = t0.elapsed().as_secs_f64();
        // Recompile mode: same tapes, compiled per call.
        let mut recompile = ModeResult::default();
        let t0 = Instant::now();
        for b in &boxes {
            let (outcome, stats) = solver.solve_with_stats(b, p.negation());
            recompile.nodes += stats.nodes;
            recompile.absorb_outcome(&outcome);
        }
        recompile.wall_s = t0.elapsed().as_secs_f64();
        // Seed mode: the vendored original architecture.
        let mut seed = ModeResult::default();
        let t0 = Instant::now();
        for b in &boxes {
            let (outcome, stats) = seed_solve_with_stats(&solver, b, p.negation());
            seed.nodes += stats.nodes;
            seed.absorb_outcome(&outcome);
        }
        seed.wall_s = t0.elapsed().as_secs_f64();
        // Ladder mode: the batched session with the full escalation ladder.
        // Per box the outcome may cross the Timeout boundary either way and
        // may strengthen a spurious δ-sat into Unsat, but must never
        // regress an Unsat proof (see [`no_unsat_regression`]).
        let _ = ladder_solver.solve_compiled(&boxes[0], p.compiled(), &mut scratch);
        let mut ladder = ModeResult::default();
        let t0 = Instant::now();
        for (b, before) in boxes.iter().zip(&session_outcomes) {
            let (outcome, stats) =
                ladder_solver.solve_compiled_with_stats(b, p.compiled(), &mut scratch);
            ladder.nodes += stats.nodes;
            ladder.absorb_outcome(&outcome);
            assert!(
                no_unsat_regression(before, &outcome),
                "ladder regressed an Unsat proof on {} / {}: {:?} -> {:?}",
                p.functional_name(),
                p.condition.name(),
                before,
                outcome
            );
            match (before, &outcome) {
                (Outcome::Timeout, o) if *o != Outcome::Timeout => resolved_timeouts += 1,
                (b, Outcome::Timeout) if *b != Outcome::Timeout => regressed_timeouts += 1,
                (Outcome::DeltaSat(_), Outcome::Unsat) => strengthened_decisions += 1,
                _ => {}
            }
        }
        ladder.wall_s = t0.elapsed().as_secs_f64();
        // Rung-1 stop (Newton only, no 3B shaving): untabulated, it exists
        // to attribute the timeout trajectory to the individual rungs.
        for (b, before) in boxes.iter().zip(&session_outcomes) {
            let (outcome, _) =
                rung1_solver.solve_compiled_with_stats(b, p.compiled(), &mut scratch);
            assert!(
                no_unsat_regression(before, &outcome),
                "rung-1 ladder regressed an Unsat proof on {} / {}: {:?} -> {:?}",
                p.functional_name(),
                p.condition.name(),
                before,
                outcome
            );
            if outcome == Outcome::Timeout {
                rung1_timeouts += 1;
            }
        }
        // All compiled modes run the same deterministic search under a pure
        // node budget: any divergence is a correctness bug, not a benchmark
        // artifact. The batched engine must even match node for node.
        let counts = |m: &ModeResult| (m.unsat, m.delta_sat, m.timeout);
        assert_eq!(
            (session.nodes, counts(&session)),
            (batched.nodes, counts(&batched)),
            "batched and scalar sessions diverged on {} / {}",
            p.functional_name(),
            p.condition.name()
        );
        assert_eq!(
            counts(&session),
            counts(&recompile),
            "session and recompile outcomes diverged on {} / {}",
            p.functional_name(),
            p.condition.name()
        );
        // The vendored seed always bisects the globally widest axis; the
        // current solver deliberately never splits axes the formula does
        // not mention, so a pair whose atom leaves some axis untouched
        // (several ζ-resolved cells) legitimately decides cells the seed
        // burns its budget splitting. Tally identity with the seed is only
        // asserted where the policies coincide — full support.
        let full_support = (0..p.domain.ndim()).all(|i| p.compiled().supports_axis(i));
        if full_support {
            assert_eq!(
                counts(&session),
                counts(&seed),
                "session and seed outcomes diverged on {} / {}",
                p.functional_name(),
                p.condition.name()
            );
        }
        let vs_session = session.wall_s / batched.wall_s.max(1e-12);
        let vs_seed = seed.wall_s / session.wall_s.max(1e-12);
        let vs_recompile = recompile.wall_s / session.wall_s.max(1e-12);
        println!(
            "{:<12} {:<28} {:>5} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x {:>7}",
            p.functional_name(),
            p.condition.name(),
            boxes.len(),
            session.knodes_per_sec(),
            batched.knodes_per_sec(),
            recompile.knodes_per_sec(),
            seed.knodes_per_sec(),
            ladder.knodes_per_sec(),
            vs_seed,
            session.timeout as i64 - ladder.timeout as i64
        );
        let mut rec = String::new();
        let _ = write!(
            rec,
            "    {{\"functional\": \"{}\", \"condition\": \"{}\", \"boxes\": {}, \
             \"session\": {}, \"batched\": {}, \"recompile\": {}, \"seed\": {}, \
             \"ladder\": {}, \"speedup_vs_seed\": {:.2}, \"speedup_vs_recompile\": {:.2}, \
             \"batched_speedup_vs_session\": {:.2}}}",
            p.functional_name(),
            p.condition.name(),
            boxes.len(),
            json_mode(&session),
            json_mode(&batched),
            json_mode(&recompile),
            json_mode(&seed),
            json_mode(&ladder),
            vs_seed,
            vs_recompile,
            vs_session
        );
        records.push(rec);
        for (t, m) in totals
            .iter_mut()
            .zip([session, batched, recompile, seed, ladder])
        {
            t.nodes += m.nodes;
            t.unsat += m.unsat;
            t.delta_sat += m.delta_sat;
            t.timeout += m.timeout;
            t.wall_s += m.wall_s;
        }
    }
    // Scheduling-order regression: the same matrix as one campaign, matrix
    // order vs cost-aware. The cost-aware run is ranked by a model *fit by
    // least squares from the matrix-order run's recorded per-pair
    // wall-clocks* (measurement replacing the hand weights). Marks must
    // agree exactly; wall-clocks are the min over interleaved repeats (the
    // total work per schedule is identical, so the min is the noise-robust
    // estimator — on a one-core machine the two converge, on many cores
    // cost-aware wins the makespan).
    let (matrix_s, matrix_report) = campaign_run(
        &registry,
        opts.nodes,
        CampaignSchedule::MatrixOrder,
        None,
        None,
    );
    let model = matrix_report
        .fit_cost_model()
        .expect("matrix cells recorded wall-clocks");
    println!(
        "cost model (fit from {} measured cells, r2 {:.3}): ln(cost) = {:.3} \
         + {:.3}·ln(family) + {:.3}·ln(2^ndim) + {:.3}·ln(class)",
        model.samples,
        model.r2,
        model.weights[0],
        model.weights[1],
        model.weights[2],
        model.weights[3]
    );
    let (cost_s, cost_report) = campaign_run(
        &registry,
        opts.nodes,
        CampaignSchedule::CostAware,
        Some(&model),
        None,
    );
    let matrix_marks: Vec<xcv_core::TableMark> =
        matrix_report.pairs.iter().map(|p| p.mark).collect();
    let cost_marks: Vec<xcv_core::TableMark> = cost_report.pairs.iter().map(|p| p.mark).collect();
    assert_eq!(
        matrix_marks, cost_marks,
        "scheduling order changed campaign outcomes"
    );
    // Batched campaign: identical TableMarks are a hard requirement — the
    // batch width is pure perf.
    let (batched_campaign_s, batched_report) = campaign_run(
        &registry,
        opts.nodes,
        CampaignSchedule::CostAware,
        Some(&model),
        Some(opts.batch),
    );
    let batched_marks: Vec<xcv_core::TableMark> =
        batched_report.pairs.iter().map(|p| p.mark).collect();
    assert_eq!(
        matrix_marks, batched_marks,
        "batched solving changed campaign outcomes"
    );
    let (matrix_s2, _) = campaign_run(
        &registry,
        opts.nodes,
        CampaignSchedule::MatrixOrder,
        None,
        None,
    );
    let (cost_s2, _) = campaign_run(
        &registry,
        opts.nodes,
        CampaignSchedule::CostAware,
        Some(&model),
        None,
    );
    let matrix_s = matrix_s.min(matrix_s2);
    let cost_s = cost_s.min(cost_s2);
    println!(
        "campaign ({} cells): matrix-order {:.0} ms, cost-aware (measured model) {:.0} ms ({:.2}x), \
         batched (width {}) {:.0} ms",
        matrix_marks.len(),
        matrix_s * 1e3,
        cost_s * 1e3,
        matrix_s / cost_s.max(1e-12),
        opts.batch,
        batched_campaign_s * 1e3,
    );

    let [total_session, total_batched, total_recompile, total_seed, total_ladder] = totals;
    let total_vs_seed = total_seed.wall_s / total_session.wall_s.max(1e-12);
    let batched_vs_session = total_session.wall_s / total_batched.wall_s.max(1e-12);
    println!(
        "ladder: timeouts {} -> {} (rung 1) -> {} (full); {} resolved, {} re-opened \
         (spurious rung-0 delta-sat), {} strengthened (delta-sat -> unsat), 0 unsat \
         regressions; wall {:.0} ms vs batched {:.0} ms",
        total_session.timeout,
        rung1_timeouts,
        total_ladder.timeout,
        resolved_timeouts,
        regressed_timeouts,
        strengthened_decisions,
        total_ladder.wall_s * 1e3,
        total_batched.wall_s * 1e3,
    );
    println!(
        "total: session {:.1} knodes/s ({:.0} ms), batched {:.1} knodes/s ({:.0} ms, {:.2}x vs \
         session), recompile {:.1} knodes/s ({:.0} ms), seed {:.1} knodes/s ({:.0} ms) => {:.2}x \
         vs seed (scalar), {:.2}x (batched)",
        total_session.knodes_per_sec(),
        total_session.wall_s * 1e3,
        total_batched.knodes_per_sec(),
        total_batched.wall_s * 1e3,
        batched_vs_session,
        total_recompile.knodes_per_sec(),
        total_recompile.wall_s * 1e3,
        total_seed.knodes_per_sec(),
        total_seed.wall_s * 1e3,
        total_vs_seed,
        total_seed.wall_s / total_batched.wall_s.max(1e-12),
    );
    // The service benchmark runs last: it spins its own in-process daemon
    // and is independent of the per-box modes above.
    let service_json = service_bench(opts.nodes);
    let json = format!(
        "{{\n  \"schema\": \"xcv-bench-solver/v7\",\n  \"config\": {{\"nodes_per_box\": {}, \
         \"split_depth\": {}, \"delta\": 1e-3, \"pairs\": {}}},\n  \"total\": {{\"session\": {}, \
         \"batched\": {}, \"recompile\": {}, \"seed\": {}, \"ladder\": {}, \
         \"speedup_vs_seed\": {:.2}}},\n  \
         \"batched\": {{\"batch_width\": {}, \"wall_ms\": {:.3}, \"session_wall_ms\": {:.3}, \
         \"speedup_vs_session\": {:.2}, \"campaign_wall_ms\": {:.3}, \"marks_identical\": true, \
         \"tallies_identical\": true}},\n  \
         \"ladder\": {{\"escalation\": \"full\", \"batch_width\": {}, \"wall_ms\": {:.3}, \
         \"batched_wall_ms\": {:.3}, \"timeouts\": [{}, {}, {}], \"resolved_timeouts\": {}, \
         \"regressed_timeouts\": {}, \"strengthened_decisions\": {}, \
         \"unsat_regressions\": 0}},\n  \"campaign\": \
         {{\"cells\": {}, \"matrix_order_wall_ms\": {:.3}, \"cost_aware_wall_ms\": {:.3}, \
         \"speedup_vs_matrix_order\": {:.2}, \"scheduler\": \"measured-cost-model\"}},\n  \
         \"service\": {},\n  \
         \"cost_model\": {{\"kind\": \"log-linear\", \"features\": [\"family\", \"2^ndim\", \
         \"condition_class\"], \"weights\": [{:.6}, {:.6}, {:.6}, {:.6}], \"samples\": {}, \
         \"r2\": {:.4}}},\n  \"pairs\": [\n{}\n  ]\n}}\n",
        opts.nodes,
        opts.depth,
        problems.len(),
        json_mode(&total_session),
        json_mode(&total_batched),
        json_mode(&total_recompile),
        json_mode(&total_seed),
        json_mode(&total_ladder),
        total_vs_seed,
        opts.batch,
        total_batched.wall_s * 1e3,
        total_session.wall_s * 1e3,
        batched_vs_session,
        batched_campaign_s * 1e3,
        opts.batch,
        total_ladder.wall_s * 1e3,
        total_batched.wall_s * 1e3,
        total_session.timeout,
        rung1_timeouts,
        total_ladder.timeout,
        resolved_timeouts,
        regressed_timeouts,
        strengthened_decisions,
        matrix_marks.len(),
        matrix_s * 1e3,
        cost_s * 1e3,
        matrix_s / cost_s.max(1e-12),
        service_json,
        model.weights[0],
        model.weights[1],
        model.weights[2],
        model.weights[3],
        model.samples,
        model.r2,
        records.join(",\n")
    );
    std::fs::write(&opts.out, json).expect("write bench json");
    println!("wrote {}", opts.out);
}
