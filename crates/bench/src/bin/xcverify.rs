//! `xcverify` — a CI-style command-line checker, the integration mode the
//! paper proposes for LIBXC's continuous integration (Section VI-B), now a
//! thin shell over the campaign engine and the functional registry.
//!
//! ```text
//! xcverify --dfa PBE --condition ec1 [--budget-ms 100] [--threshold 0.3] [--quiet]
//! xcverify --dfa LYP --all [--deadline-ms N]
//! xcverify --spin [--dfa "PBE(ζ)"] [...]      gate the ζ-resolved matrix
//! xcverify --matrix [--emit-certs DIR] [...]  gate the whole extended matrix
//! xcverify --matrix --shard 0/2 --checkpoint s0.json [...]
//! xcverify --merge s0.json s1.json            union sharded checkpoints
//! xcverify --merge --allow-missing s*.json    tolerate absent shards (exit 3)
//! xcverify --server 127.0.0.1:7878 --matrix   answer from a running xcvserve
//! xcverify --server ADDR --fallback-local ... degrade to in-process on failure
//! xcverify --list [--spin]
//! ```
//!
//! `--spin` registers the spin-resolved (`ζ ≠ 0`) citizens next to the
//! built-ins; without `--dfa` it gates the whole ζ-resolved matrix
//! (`PBE(ζ)`, `PW92(ζ)`, `LSDA-X(ζ)` × every applicable condition) in one
//! campaign. `--matrix` does the same for the extended charge-only registry.
//!
//! `--emit-certs DIR` records a replayable proof certificate per pair and
//! writes them to `DIR`; audit them independently with `xcvcheck DIR`. On a
//! failed gate the certificate path is printed next to each refuted pair's
//! witnesses, so the refutation ships with its own replayable evidence.
//!
//! `--ladder` arms the contractor escalation ladder ([`xcv_solver::
//! Escalation::full`]): boxes where HC4 stalls get interval-Newton sweeps
//! and 3B slab shaving instead of timing out. Marks only ever improve —
//! timeouts become decisions, spurious δ-sat leaves become sound `Unsat`
//! proofs — and every ladder step stays replayable under `--emit-certs`.
//!
//! `--checkpoint PATH` persists progress (atomically, after every pair);
//! re-running the same command resumes mid-matrix — even mid-pair — with
//! identical marks. `--shard i/n` runs only the i-th of `n` deterministic
//! LPT shards; `--merge` unions the shard checkpoints and prints the
//! combined matrix, sorted, one `functional / condition: mark` per line.
//! With `--allow-missing`, absent or unreadable shard checkpoints are
//! reported on stderr and the merge of the rest still prints, exiting 3 —
//! an incomplete union is auditable but never reads as a green gate.
//!
//! `--server ADDR` answers the same query through a running `xcvserve`
//! daemon instead of solving in-process: identical per-pair output lines,
//! identical exit codes, identical marks (both paths derive their verifier
//! configuration from the same [`xcv_serve::Policy`]), but warm queries
//! return from the daemon's result cache without solving anything. With
//! `--fallback-local`, an unreachable or failing daemon degrades to the
//! in-process path (stderr warning, bit-identical marks) instead of
//! failing the gate on infrastructure.
//!
//! Exit status: 0 when every checked condition ran and none was refuted;
//! 1 when any counterexample is found; 2 on usage errors; 3 when the
//! `--deadline-ms` budget (or a defect in the functional) skipped one or
//! more conditions — an incomplete run must not read as a green gate. A CI
//! job can therefore gate a functional-implementation change on `xcverify`.

use std::path::PathBuf;
use std::process::ExitCode;
use xcv_conditions::Condition;
use xcv_core::{checkpoint_marks, Campaign, CampaignEvent, CampaignReport, SkipReason, TableMark};
use xcv_functionals::{FunctionalHandle, Registry};
use xcv_serve::{Client, Event, Policy, VerifyRequest};

/// Resolve a CLI name against the registry (aliases included; the spin
/// citizens get ASCII aliases so no shell has to type `ζ`).
fn lookup_dfa(registry: &Registry, name: &str) -> Option<FunctionalHandle> {
    let canonical = match name.to_ascii_uppercase().as_str() {
        "VWN" | "VWN_RPA" | "VWNRPA" => "VWN RPA".to_string(),
        "RSCAN" | "RSCAN_REG" => "rSCAN(reg)".to_string(),
        "PBE_SPIN" | "PBEZ" | "PBE(Z)" => "PBE(ζ)".to_string(),
        "PW92_SPIN" | "PW92Z" | "PW92(Z)" => "PW92(ζ)".to_string(),
        "LSDA_X" | "LSDAX" | "LSDA-X" | "LSDA-X(Z)" => "LSDA-X(ζ)".to_string(),
        "B88_SPIN" | "B88Z" | "B88(Z)" => "B88(ζ)".to_string(),
        "PBEX_SPIN" | "PBEX" | "PBE-X" | "PBE-X(Z)" => "PBE-X(ζ)".to_string(),
        other => other.to_string(),
    };
    registry.get(&canonical)
}

fn parse_condition(name: &str) -> Option<Condition> {
    match name.to_ascii_lowercase().as_str() {
        "ec1" | "nonpositivity" => Some(Condition::EcNonPositivity),
        "ec2" | "scaling" => Some(Condition::EcScaling),
        "ec3" | "uc" => Some(Condition::UcMonotonicity),
        "ec4" | "lo" => Some(Condition::LiebOxford),
        "ec5" | "lo-ext" => Some(Condition::LiebOxfordExt),
        "ec6" | "tc" => Some(Condition::TcUpperBound),
        "ec7" | "conj-tc" => Some(Condition::ConjTcUpperBound),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: xcverify --dfa <PBE|SCAN|LYP|AM05|VWN_RPA|RSCAN|BLYP> \
         (--condition <ec1..ec7> | --all) [--budget-ms N] [--threshold T] \
         [--deadline-ms N] [--spin] [--ladder] [--expect-pairs N] \
         [--emit-certs DIR] [--checkpoint PATH] [--shard I/N] [--quiet]\n\
         \u{20}      xcverify --spin [--all]   (gate the whole ζ-resolved matrix)\n\
         \u{20}      xcverify --matrix [--all] (gate the whole extended matrix)\n\
         \u{20}      xcverify --merge [--allow-missing] CKPT.json... (union shard checkpoints)\n\
         \u{20}      xcverify --server ADDR [--fallback-local] ...  (query a running xcvserve daemon)\n\
         \u{20}      xcverify --list [--spin]\n\
         \u{20}      --expect-pairs N pins the applicable cell count: a grown or \
         shrunken matrix exits 2 before anything runs"
    );
    ExitCode::from(2)
}

/// `--merge`: union the per-shard (or interrupted-run) checkpoints and print
/// the combined matrix, sorted, in the same `functional / condition: mark`
/// shape the live gate streams — so a two-shard run is auditable against a
/// single-process run with a plain `diff`. `--allow-missing` downgrades an
/// absent or unreadable shard from a hard usage error to a reported gap:
/// the surviving union still prints, but the exit code is 3 — the same
/// "incomplete gate" verdict a deadline-skipped live run gets.
fn merge_checkpoints(args: &[String]) -> ExitCode {
    let allow_missing = args.iter().any(|a| a == "--allow-missing");
    let files: Vec<&String> = args.iter().filter(|a| *a != "--allow-missing").collect();
    if files.is_empty() {
        return usage();
    }
    let mut missing = Vec::new();
    // Each mark remembers which shard file contributed it, so a conflict
    // names both offending checkpoints — the first thing an operator needs
    // to triage a mixed-version or mixed-config shard fleet.
    let mut merged = std::collections::BTreeMap::<(String, String), (TableMark, String)>::new();
    for file in files {
        let marks = match checkpoint_marks(file) {
            Ok(m) => m,
            Err(e) if allow_missing => {
                eprintln!("--merge: missing shard {file}: {e}");
                missing.push(file.clone());
                continue;
            }
            Err(e) => {
                eprintln!("--merge {file}: {e}");
                return ExitCode::from(2);
            }
        };
        for (functional, condition, mark) in marks {
            let key = (functional, condition.to_string());
            if let Some((prev, prev_file)) = merged.get(&key) {
                if *prev != mark {
                    eprintln!(
                        "--merge: conflicting marks for {} / {}: \
                         {prev} (from {prev_file}) vs {mark} (from {file}); \
                         shards disagree — were they run with the same \
                         binary and policy?",
                        key.0, key.1
                    );
                    return ExitCode::from(2);
                }
                continue; // keep the first contributor's attribution
            }
            merged.insert(key, (mark, file.to_string()));
        }
    }
    for ((functional, condition), (mark, _)) in &merged {
        println!("{functional} / {condition}: {mark}");
    }
    if !missing.is_empty() {
        eprintln!(
            "warning: {} shard checkpoint(s) missing ({}); union is incomplete",
            missing.len(),
            missing.join(", ")
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}

/// `--server ADDR`: run the gate as a thin client of a running `xcvserve`.
/// Output lines, counterexample capping, and exit codes match the
/// in-process path exactly; only the execution engine differs — the daemon
/// answers warm queries from its result cache without solving.
///
/// `Err` means the daemon was unusable (connect failure, transport error,
/// or a server-side `error` event): with `--fallback-local` armed the
/// caller degrades to the in-process path, so when buffering is requested
/// all stdout lines are held back until the server run actually completes —
/// a half-streamed server run followed by a full local run must not print
/// its pairs twice.
fn run_against_server(
    addr: &str,
    registry: &Registry,
    targets: &[FunctionalHandle],
    conditions: &[Condition],
    policy: Policy,
    quiet: bool,
    buffer_output: bool,
) -> Result<ExitCode, String> {
    let mut client = Client::connect_retry(addr, 3, std::time::Duration::from_millis(50))
        .map_err(|e| format!("{e}"))?;
    let request = VerifyRequest {
        functionals: targets.iter().map(|f| f.name()).collect(),
        conditions: conditions.to_vec(),
        policy,
    };
    let mut any_ce = false;
    let mut unrun: Vec<String> = Vec::new();
    let mut shown = std::collections::HashMap::<String, usize>::new();
    let mut held: Vec<String> = Vec::new();
    let done = client.verify(&request, |event| {
        let mut out = |line: String| {
            if buffer_output {
                held.push(line);
            } else {
                println!("{line}");
            }
        };
        match event {
            Event::Counterexample {
                functional,
                condition,
                witness,
            } => {
                if quiet {
                    return;
                }
                let n = shown
                    .entry(format!("{functional}/{}", condition.name()))
                    .or_insert(0);
                *n += 1;
                if *n <= 5 {
                    let coords = match registry.get(functional) {
                        Some(f) => f.var_space().label_point(witness),
                        None => witness
                            .iter()
                            .map(|v| format!("{v:.4}"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    };
                    out(format!(
                        "  [{}] counterexample at ({coords})",
                        short_name(*condition)
                    ));
                }
            }
            Event::Pair {
                functional,
                condition,
                mark,
                skipped,
                ..
            } => match skipped {
                None => {
                    if *mark == TableMark::Counterexample {
                        any_ce = true;
                    }
                    if !quiet {
                        out(format!("{functional} / {condition}: {mark}"));
                    }
                }
                Some(tag) if tag != "na" && tag != "other_shard" => {
                    unrun.push(format!("{functional}/{}", short_name(*condition)));
                }
                Some(_) => {}
            },
            _ => {}
        }
    });
    let done = done?;
    for line in held {
        println!("{line}");
    }
    if !quiet {
        eprintln!(
            "server cache: {}/{} warm",
            done.cached,
            done.cached + done.solved
        );
    }
    if any_ce {
        return Ok(ExitCode::FAILURE);
    }
    if !unrun.is_empty() {
        eprintln!(
            "warning: {} condition(s) never ran ({}); gate is inconclusive",
            unrun.len(),
            unrun.join(", ")
        );
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

/// Parse `--shard I/N` (e.g. `0/2`).
fn parse_shard(s: &str) -> Option<(usize, usize)> {
    let (i, n) = s.split_once('/')?;
    let (i, n) = (i.parse().ok()?, n.parse().ok()?);
    (n >= 1 && i < n).then_some((i, n))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--merge` is a pure file mode: no campaign, no registry.
    if args.first().map(String::as_str) == Some("--merge") {
        return merge_checkpoints(&args[1..]);
    }
    // `--spin` changes which names resolve, so scan for it before parsing.
    let spin = args.iter().any(|a| a == "--spin");
    let registry = if spin {
        Registry::spin_general()
    } else {
        Registry::extended()
    };
    let mut dfa: Option<FunctionalHandle> = None;
    let mut condition: Option<Condition> = None;
    let mut all = false;
    let mut budget_ms = 100u64;
    let mut threshold = 0.3f64;
    let mut deadline_ms: Option<u64> = None;
    let mut expect_pairs: Option<usize> = None;
    let mut quiet = false;
    let mut matrix = false;
    let mut emit_certs: Option<PathBuf> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut ladder = false;
    let mut server: Option<String> = None;
    let mut fallback_local = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                println!("DFAs: {}", registry.names().join(" "));
                println!("conditions:");
                for c in Condition::all() {
                    println!("  {:8} {}", short_name(c), c);
                }
                return ExitCode::SUCCESS;
            }
            "--dfa" => {
                i += 1;
                dfa = args.get(i).and_then(|s| lookup_dfa(&registry, s));
                if dfa.is_none() {
                    return usage();
                }
            }
            "--condition" => {
                i += 1;
                condition = args.get(i).and_then(|s| parse_condition(s));
                if condition.is_none() {
                    return usage();
                }
            }
            "--all" => all = true,
            "--spin" => {} // consumed by the pre-scan above
            "--budget-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => budget_ms = v,
                    None => return usage(),
                }
            }
            "--threshold" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => threshold = v,
                    None => return usage(),
                }
            }
            "--deadline-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => deadline_ms = Some(v),
                    None => return usage(),
                }
            }
            "--expect-pairs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => expect_pairs = Some(v),
                    None => return usage(),
                }
            }
            "--quiet" => quiet = true,
            "--matrix" => matrix = true,
            "--ladder" => ladder = true,
            "--emit-certs" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => emit_certs = Some(PathBuf::from(dir)),
                    None => return usage(),
                }
            }
            "--checkpoint" => {
                i += 1;
                match args.get(i) {
                    Some(path) => checkpoint = Some(PathBuf::from(path)),
                    None => return usage(),
                }
            }
            "--shard" => {
                i += 1;
                match args.get(i).and_then(|s| parse_shard(s)) {
                    Some(v) => shard = Some(v),
                    None => return usage(),
                }
            }
            "--server" => {
                i += 1;
                match args.get(i) {
                    Some(addr) => server = Some(addr.clone()),
                    None => return usage(),
                }
            }
            "--fallback-local" => fallback_local = true,
            _ => return usage(),
        }
        i += 1;
    }
    // `--spin` without `--dfa` gates the whole ζ-resolved matrix; `--matrix`
    // gates the whole (extended) registry; otherwise a functional is
    // mandatory.
    let targets: Vec<FunctionalHandle> = match &dfa {
        Some(d) => vec![std::sync::Arc::clone(d)],
        None if spin => Registry::spin().handles().to_vec(),
        None if matrix => registry.handles().to_vec(),
        None => return usage(),
    };
    let conditions: Vec<Condition> = if targets.len() > 1 {
        // Multi-functional gate: keep every requested (or all) conditions;
        // inapplicable cells come back as legitimate `−` skips.
        match condition {
            Some(c) => vec![c],
            None => Condition::all().to_vec(),
        }
    } else if all {
        Condition::all()
            .into_iter()
            .filter(|c| c.applies_to(targets[0].as_ref()))
            .collect()
    } else {
        match condition {
            Some(c) if c.applies_to(targets[0].as_ref()) => vec![c],
            Some(c) => {
                eprintln!("{c} does not apply to {}", targets[0].name());
                return ExitCode::from(2);
            }
            None => return usage(),
        }
    };
    // Pinned-matrix assertion: a CI gate that silently runs more or fewer
    // cells than it did yesterday is not the gate it claims to be. Checked
    // before anything runs, so a grown matrix fails fast as a usage error.
    if let Some(want) = expect_pairs {
        let applicable: usize = targets
            .iter()
            .map(|f| {
                conditions
                    .iter()
                    .filter(|c| c.applies_to(f.as_ref()))
                    .count()
            })
            .sum();
        if applicable != want {
            eprintln!(
                "matrix changed: {applicable} applicable pair(s), --expect-pairs said {want}; \
                 update the pin deliberately"
            );
            return ExitCode::from(2);
        }
    }

    // Both execution paths — in-process campaign and `--server` daemon —
    // derive every pair's verifier configuration from this one policy
    // value, so their marks (and the daemon's cache keys) agree by
    // construction.
    let policy = Policy::Gate {
        budget_ms,
        threshold,
    };
    if fallback_local && server.is_none() {
        eprintln!("--fallback-local requires --server");
        return ExitCode::from(2);
    }
    if let Some(addr) = &server {
        // The daemon owns scheduling and persistence; the flags that steer
        // the in-process campaign's execution have no server-side meaning.
        if ladder
            || checkpoint.is_some()
            || shard.is_some()
            || emit_certs.is_some()
            || deadline_ms.is_some()
        {
            eprintln!(
                "--server is incompatible with --ladder/--checkpoint/--shard/\
                 --emit-certs/--deadline-ms (the daemon owns execution)"
            );
            return ExitCode::from(2);
        }
        match run_against_server(
            addr,
            &registry,
            &targets,
            &conditions,
            policy,
            quiet,
            fallback_local,
        ) {
            Ok(code) => return code,
            Err(e) if fallback_local => {
                // Degrade, don't die: the in-process path derives its
                // verifier configuration from the same `policy`, so the
                // marks are bit-identical — only the cache warmth is lost.
                eprintln!("--server {addr}: {e}; falling back to in-process verification");
            }
            Err(e) => {
                eprintln!("--server {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut builder = Campaign::builder()
        .functionals(targets)
        .conditions(conditions)
        .config_policy(move |f, _| policy.verifier_config(f));
    // Start measured when a persisted scheduler model is available (the
    // `cost_model` entry of BENCH_solver.json); ordering only — a stale or
    // absent model never changes any verdict.
    if let Some(m) = xcv_bench::load_cost_model() {
        if !quiet {
            eprintln!(
                "scheduler: measured cost model ({} samples, r\u{b2} {:.2}) from BENCH_solver.json",
                m.samples, m.r2
            );
        }
        builder = builder.cost_model(m);
    }
    if let Some(ms) = deadline_ms {
        builder = builder.global_budget_ms(ms);
    }
    if emit_certs.is_some() {
        builder = builder.emit_certificates(true);
    }
    if let Some(path) = &checkpoint {
        builder = builder.checkpoint(path.clone());
    }
    if let Some((index, of)) = shard {
        builder = builder.shard(index, of);
    }
    // `--ladder` arms the contractor escalation ladder (interval-Newton +
    // 3B shaving on stalled boxes); the campaign's measured cost model
    // still demotes pairs predicted too cheap to ever stall.
    if ladder {
        builder = builder.escalation(xcv_solver::Escalation::full());
    }
    if !quiet {
        // Pairs run concurrently, so cap witness lines per (functional,
        // condition) pair and label each line with its pair. Witness
        // coordinates are labeled by the functional's typed variable space
        // (`rs=…, s_up=…`), so a per-spin axis never reads as an α.
        let spaces = registry.clone();
        let shown = std::sync::Mutex::new(std::collections::HashMap::<String, usize>::new());
        builder = builder.on_event(move |e| match e {
            CampaignEvent::PairFinished {
                functional,
                condition,
                mark,
                ..
            } => println!("{functional} / {condition}: {mark}"),
            CampaignEvent::CounterexampleFound {
                functional,
                condition,
                witness,
            } => {
                let n = {
                    let mut map = shown.lock().expect("poisoned");
                    let n = map
                        .entry(format!("{functional}/{}", condition.name()))
                        .or_insert(0);
                    *n += 1;
                    *n
                };
                if n <= 5 {
                    let coords = match spaces.get(functional) {
                        Some(f) => f.var_space().label_point(witness),
                        None => witness
                            .iter()
                            .map(|v| format!("{v:.4}"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    };
                    println!(
                        "  [{}] counterexample at ({coords})",
                        short_name(*condition)
                    );
                }
            }
            _ => {}
        });
    }
    let report = builder.build().expect("at least one functional").run();
    if let Some(dir) = &emit_certs {
        match report.write_certificates(dir) {
            Ok(paths) => {
                if !quiet {
                    eprintln!("wrote {} certificate(s) to {}", paths.len(), dir.display());
                }
            }
            Err(e) => {
                eprintln!("--emit-certs {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if report.count(|m| m == TableMark::Counterexample) > 0 {
        // A refuted pair ships its own evidence: point at the replayable
        // certificate (audit with `xcvcheck`) next to the witnesses already
        // streamed above.
        if let Some(dir) = &emit_certs {
            for p in &report.pairs {
                if p.mark == TableMark::Counterexample && p.certificate.is_some() {
                    println!(
                        "{} / {}: certificate {}",
                        p.functional_name(),
                        p.condition,
                        dir.join(CampaignReport::certificate_file_name(
                            &p.functional_name(),
                            p.condition,
                        ))
                        .display()
                    );
                }
            }
        }
        return ExitCode::FAILURE;
    }
    // A condition the campaign never ran (deadline hit, defect) is not a
    // pass: refuse to green-light an incomplete gate. Cells owned by a
    // sibling `--shard` process are its responsibility, not an incomplete
    // run here — `--merge` audits the union.
    let unrun: Vec<String> = report
        .pairs
        .iter()
        .filter(|p| {
            !matches!(
                p.skipped,
                None | Some(SkipReason::NotApplicable) | Some(SkipReason::OtherShard)
            )
        })
        .map(|p| format!("{}/{}", p.functional_name(), short_name(p.condition)))
        .collect();
    if !unrun.is_empty() {
        eprintln!(
            "warning: {} condition(s) never ran ({}); gate is inconclusive",
            unrun.len(),
            unrun.join(", ")
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}

fn short_name(c: Condition) -> &'static str {
    match c {
        Condition::EcNonPositivity => "ec1",
        Condition::EcScaling => "ec2",
        Condition::UcMonotonicity => "ec3",
        Condition::TcUpperBound => "ec6",
        Condition::ConjTcUpperBound => "ec7",
        Condition::LiebOxford => "ec4",
        Condition::LiebOxfordExt => "ec5",
    }
}
