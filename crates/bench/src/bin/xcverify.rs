//! `xcverify` — a CI-style command-line checker, the integration mode the
//! paper proposes for LIBXC's continuous integration (Section VI-B).
//!
//! ```text
//! xcverify --dfa PBE --condition ec1 [--budget-ms 100] [--threshold 0.3] [--quiet]
//! xcverify --dfa LYP --all
//! xcverify --list
//! ```
//!
//! Exit status: 0 when every checked condition is verified or partially
//! verified; 1 when any counterexample is found; 2 on usage errors. A CI job
//! can therefore gate a functional-implementation change on `xcverify`.

use std::process::ExitCode;
use xcv_bench::repro_verifier;
use xcv_conditions::Condition;
use xcv_core::{Encoder, TableMark};
use xcv_functionals::Dfa;

fn parse_dfa(name: &str) -> Option<Dfa> {
    match name.to_ascii_uppercase().as_str() {
        "PBE" => Some(Dfa::Pbe),
        "SCAN" => Some(Dfa::Scan),
        "LYP" => Some(Dfa::Lyp),
        "AM05" => Some(Dfa::Am05),
        "VWN" | "VWN_RPA" | "VWNRPA" => Some(Dfa::VwnRpa),
        "RSCAN" | "RSCAN_REG" => Some(Dfa::RScan),
        "BLYP" => Some(Dfa::Blyp),
        _ => None,
    }
}

fn parse_condition(name: &str) -> Option<Condition> {
    match name.to_ascii_lowercase().as_str() {
        "ec1" | "nonpositivity" => Some(Condition::EcNonPositivity),
        "ec2" | "scaling" => Some(Condition::EcScaling),
        "ec3" | "uc" => Some(Condition::UcMonotonicity),
        "ec4" | "lo" => Some(Condition::LiebOxford),
        "ec5" | "lo-ext" => Some(Condition::LiebOxfordExt),
        "ec6" | "tc" => Some(Condition::TcUpperBound),
        "ec7" | "conj-tc" => Some(Condition::ConjTcUpperBound),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: xcverify --dfa <PBE|SCAN|LYP|AM05|VWN_RPA|RSCAN> \
         (--condition <ec1..ec7> | --all) [--budget-ms N] [--threshold T] [--quiet]\n\
         \u{20}      xcverify --list"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dfa: Option<Dfa> = None;
    let mut condition: Option<Condition> = None;
    let mut all = false;
    let mut budget_ms = 100u64;
    let mut threshold = 0.3f64;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                println!("DFAs: PBE SCAN LYP AM05 VWN_RPA RSCAN BLYP");
                println!("conditions:");
                for c in Condition::all() {
                    println!("  {:8} {}", short_name(c), c);
                }
                return ExitCode::SUCCESS;
            }
            "--dfa" => {
                i += 1;
                dfa = args.get(i).and_then(|s| parse_dfa(s));
                if dfa.is_none() {
                    return usage();
                }
            }
            "--condition" => {
                i += 1;
                condition = args.get(i).and_then(|s| parse_condition(s));
                if condition.is_none() {
                    return usage();
                }
            }
            "--all" => all = true,
            "--budget-ms" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => budget_ms = v,
                    None => return usage(),
                }
            }
            "--threshold" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => threshold = v,
                    None => return usage(),
                }
            }
            "--quiet" => quiet = true,
            _ => return usage(),
        }
        i += 1;
    }
    let Some(dfa) = dfa else { return usage() };
    let conditions: Vec<Condition> = if all {
        Condition::all()
            .into_iter()
            .filter(|c| c.applies_to(dfa))
            .collect()
    } else {
        match condition {
            Some(c) if c.applies_to(dfa) => vec![c],
            Some(c) => {
                eprintln!("{c} does not apply to {dfa}");
                return ExitCode::from(2);
            }
            None => return usage(),
        }
    };

    let max_depth = if dfa.arity() >= 3 { 3 } else { 5 };
    let verifier = repro_verifier(budget_ms, threshold, max_depth);
    let mut failed = false;
    for cond in conditions {
        let problem = Encoder::encode(dfa, cond).expect("applicability checked");
        let map = verifier.verify(&problem);
        let mark = map.table_mark();
        if !quiet {
            println!("{dfa} / {cond}: {mark}");
            for ce in map.counterexamples().into_iter().take(5) {
                let coords: Vec<String> = ce.iter().map(|v| format!("{v:.4}")).collect();
                println!("  counterexample at ({})", coords.join(", "));
            }
        }
        if mark == TableMark::Counterexample {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn short_name(c: Condition) -> &'static str {
    match c {
        Condition::EcNonPositivity => "ec1",
        Condition::EcScaling => "ec2",
        Condition::UcMonotonicity => "ec3",
        Condition::TcUpperBound => "ec6",
        Condition::ConjTcUpperBound => "ec7",
        Condition::LiebOxford => "ec4",
        Condition::LiebOxfordExt => "ec5",
    }
}
